"""Timer-wheel scheduler backend: knob, equivalence and wheel mechanics.

The wheel's contract (``REPRO_SCHED=wheel``) is *bit-for-bit* the heap's:
identical firing order — including same-timestamp insertion-order ties —
identical cancellation semantics, identical ``now``/``pending``/
``events_processed`` accounting, for any program of ``schedule`` /
``schedule_at`` / ``post`` / ``cancel`` / nested re-scheduling calls.
Hypothesis drives randomized programs through both backends here; the
golden-trace and golden-metro suites pin real workloads against committed
snapshots.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import sched
from repro.simulator.engine import EventLoop, TimerWheelLoop

SETTINGS = settings(max_examples=60, deadline=None)

#: Time palette for generated programs: deliberate duplicates (tie-breaks),
#: sub-slot times, slot boundaries, and times beyond the 8 s wheel horizon
#: (``NUM_SLOTS * SLOT_WIDTH``) so schedules exercise the overflow heap and
#: its drain-on-rotation path, not just the near-future buckets.
_TIMES = (0.0, 0.0005, 0.25, 0.25, 1.0, 1.0, 4.0, 7.999, 9.0, 9.0,
          25.0, 120.0)

_HORIZON = TimerWheelLoop.NUM_SLOTS * TimerWheelLoop.SLOT_WIDTH


# ---------------------------------------------------------------- knob
def test_knob_selects_backend(monkeypatch):
    monkeypatch.delenv(sched.ENV_KNOB, raising=False)
    assert sched.backend() == "heap"
    assert type(EventLoop()) is EventLoop
    monkeypatch.setenv(sched.ENV_KNOB, "wheel")
    assert sched.backend() == "wheel"
    assert type(EventLoop()) is TimerWheelLoop
    monkeypatch.setenv(sched.ENV_KNOB, "banana")
    with pytest.raises(ValueError, match="REPRO_SCHED"):
        sched.backend()


def test_override_nests_and_restores(monkeypatch):
    monkeypatch.delenv(sched.ENV_KNOB, raising=False)
    with sched.override("wheel"):
        assert sched.wheel_enabled()
        with sched.override("heap"):
            assert not sched.wheel_enabled()
        with sched.override(None):        # None = inherit, not reset
            assert sched.wheel_enabled()
        assert type(EventLoop()) is TimerWheelLoop
    assert not sched.wheel_enabled()


def test_explicit_subclasses_never_redirect():
    """Only plain ``EventLoop()`` construction dispatches on the knob; code
    that subclasses the heap engine keeps the heap implementation."""
    class Derived(EventLoop):
        pass

    with sched.override("wheel"):
        assert type(Derived()) is Derived
        assert type(TimerWheelLoop()) is TimerWheelLoop


# ------------------------------------------------- randomized equivalence
def _replay(backend, ops):
    """Run one generated scheduler program; returns its complete observable
    behaviour (fire log with timestamps, final clock, counters)."""
    with sched.override(backend):
        loop = EventLoop()
    fired = []
    handles = []

    def make_callback(op_id, nest_idx):
        def callback():
            fired.append((op_id, repr(loop.now)))
            if nest_idx is not None:
                # Nested re-schedule relative to the running clock: lands in
                # the active bucket, a later slot, or the overflow heap.
                loop.schedule(_TIMES[nest_idx], fired.append,
                              (op_id, "nested", repr(loop.now)))
        return callback

    for op_id, (kind, time_idx, nested, cancel_idx) in enumerate(ops):
        delay = _TIMES[time_idx % len(_TIMES)]
        nest_idx = time_idx % len(_TIMES) if nested else None
        kind %= 3
        if kind == 0:
            handles.append(loop.schedule(delay, make_callback(op_id, nest_idx)))
        elif kind == 1:
            handles.append(loop.schedule_at(delay, make_callback(op_id, nest_idx)))
        else:
            loop.post(delay, make_callback(op_id, nest_idx))
        if cancel_idx is not None and handles:
            handles[cancel_idx % len(handles)].cancel()
    loop.run()
    return (fired, repr(loop.now), loop.events_processed, loop.pending)


_programs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2),      # schedule/at/post
              st.integers(min_value=0, max_value=23),      # time palette idx
              st.booleans(),                               # nested reschedule
              st.one_of(st.none(), st.integers(min_value=0, max_value=40))),
    min_size=1, max_size=40)


@SETTINGS
@given(_programs)
def test_wheel_matches_heap_on_random_programs(ops):
    assert _replay("wheel", ops) == _replay("heap", ops)


@SETTINGS
@given(_programs, st.sampled_from(_TIMES))
def test_wheel_matches_heap_under_partial_runs(ops, split):
    """Running in two segments (``run(until=split)`` then ``run()``) must
    agree between backends at the split point and at the end."""
    def segmented(backend):
        with sched.override(backend):
            loop = EventLoop()
        fired = []
        for op_id, (kind, time_idx, _nested, _cancel) in enumerate(ops):
            delay = _TIMES[time_idx % len(_TIMES)]
            if kind % 2:
                loop.schedule_at(delay, fired.append, (op_id, repr(delay)))
            else:
                loop.schedule(delay, fired.append, (op_id, repr(delay)))
        loop.run(until=split)
        mid = (list(fired), repr(loop.now), loop.pending)
        loop.run()
        return (mid, fired, repr(loop.now), loop.pending,
                loop.events_processed)

    assert segmented("wheel") == segmented("heap")


# ---------------------------------------------------------- wheel mechanics
def _wheel():
    with sched.override("wheel"):
        loop = EventLoop()
    assert type(loop) is TimerWheelLoop
    return loop


def test_overflow_spill_and_drain():
    loop = _wheel()
    fired = []
    far = _HORIZON * 3.5                      # beyond the initial horizon
    loop.schedule(far, fired.append, "far")
    loop.schedule(0.5, fired.append, "near")
    assert loop.overflow_spills == 1
    assert loop.pending == 2
    loop.run()
    assert fired == ["near", "far"]
    assert loop.now == far
    assert loop.rotations >= 1               # the cursor wrapped (or jumped)


def test_fast_forward_skips_empty_regions():
    """With nothing inside the horizon, the cursor jumps straight to the
    next overflow event instead of stepping through empty slots."""
    loop = _wheel()
    fired = []
    loop.schedule(1000.0, fired.append, "sparse")
    loop.run()
    assert fired == ["sparse"] and loop.now == 1000.0
    # A sparse jump is not thousands of rotations.
    assert loop.rotations < 8


def test_cancel_in_active_bucket_and_overflow():
    loop = _wheel()
    fired = []
    near = loop.schedule(0.25, fired.append, "near")
    far = loop.schedule(_HORIZON + 1.0, fired.append, "far")
    near.cancel()
    far.cancel()
    assert loop.pending == 0
    keep = loop.schedule(0.5, fired.append, "keep")

    def cancel_sibling():
        keep2.cancel()                        # same-timestamp lazy cancel

    loop.schedule(0.5, cancel_sibling)
    keep2 = loop.schedule(0.5, fired.append, "never")
    loop.run()
    assert fired == ["keep"]
    assert keep.cancelled is False


def test_clear_inside_callback():
    loop = _wheel()
    fired = []
    loop.schedule(0.1, fired.append, "first")
    loop.schedule(0.1, loop.clear)            # wipes the rest mid-bucket
    loop.schedule(0.1, fired.append, "gone")
    loop.schedule(5.0, fired.append, "gone-too")
    loop.schedule(_HORIZON + 2.0, fired.append, "gone-overflow")
    loop.run()
    assert fired == ["first"]
    assert loop.pending == 0
    # The loop is reusable after an in-callback clear.
    loop.schedule(0.05, fired.append, "again")
    loop.run()
    assert fired == ["first", "again"]


def test_step_and_max_events():
    loop = _wheel()
    fired = []
    for i in range(4):
        loop.schedule(0.1 * (i + 1), fired.append, i)
    assert loop.step() is True
    assert fired == [0]
    loop.run(max_events=2)
    assert fired == [0, 1, 2]
    loop.run()
    assert fired == [0, 1, 2, 3]
    assert loop.step() is False


def test_run_until_advances_clock_without_events():
    loop = _wheel()
    loop.run(until=3.25)
    assert loop.now == 3.25
    fired = []
    loop.schedule(10.0, fired.append, "later")   # relative to now=3.25
    loop.run(until=5.0)
    assert fired == [] and loop.now == 5.0 and loop.pending == 1
    loop.run()
    assert fired == ["later"] and loop.now == 13.25


def test_heap_backend_reports_zero_wheel_counters():
    loop = EventLoop()
    assert loop.rotations == 0 and loop.overflow_spills == 0
