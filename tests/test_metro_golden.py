"""Golden regression for a small fixed-seed metro city.

Pins the complete per-cell result dicts — churn arrival schedules are
implicit in the flow-completion lists, scheme assignment in the ``schemes``
lists, and every throughput/delay float is compared exactly — plus the
city-wide aggregates, for one 4-cell city (two trace-driven cells, two
square-wave sectors) at seed 0.  The same golden values must come back from

* serial in-process execution,
* a 2-worker process pool (determinism across process boundaries), and
* a cache replay (determinism of the content-addressed result cache),

each under **both scheduler backends** (``REPRO_SCHED=heap|wheel`` — the
wheel's bit-for-bit contract), and, by the batched-ACK contract
(``tests/test_batched_ack.py``), from both ACK paths — CI runs this file
with ``REPRO_BATCH_ACKS`` both unset and set.

Regenerate only for an *intentional* change to the metro workload or the
simulation semantics::

    PYTHONPATH=src python tests/test_metro_golden.py --regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.metro import aggregate_city, metro_pack
from repro.runtime import SweepExecutor
from repro.simulator import sched

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_metro_city.json"

CITY = dict(n_cells=4, duration=3.0, trace_seed=2, seeds=(0,),
            arrival_rate=1.5)

BACKENDS = sched.BACKENDS


def run_city(executor: SweepExecutor) -> dict:
    spec = metro_pack(**CITY)
    results = [result for _cell, result in spec.run_cells(executor)]
    return {"cells": results, "city": aggregate_city(results)}


def _golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())["payload"]


def _roundtrip(payload: dict) -> dict:
    # Through JSON and back, so float repr/parse round-tripping (exact for
    # IEEE doubles) and int/list normalisation match the golden file's.
    return json.loads(json.dumps(payload))


@pytest.mark.parametrize("backend", BACKENDS)
def test_serial_matches_golden(backend):
    with sched.override(backend):
        payload = run_city(SweepExecutor(jobs=1))
    assert _roundtrip(payload) == _golden()


@pytest.mark.parametrize("backend", BACKENDS)
def test_parallel_matches_golden(backend, monkeypatch):
    # Pool workers are spawned per run() and inherit the environment, so the
    # knob must travel via the env var rather than the in-process override.
    monkeypatch.setenv(sched.ENV_KNOB, backend)
    assert _roundtrip(run_city(SweepExecutor(jobs=2))) == _golden()


CITY_CELL_NAMES = tuple(f"cell-{i:03d}" for i in range(CITY["n_cells"]))


@pytest.mark.parametrize("backend", BACKENDS)
def test_cache_replay_matches_golden(tmp_path, backend):
    with sched.override(backend):
        executor = SweepExecutor(jobs=1, cache_dir=tmp_path / "cache")
        assert _roundtrip(run_city(executor)) == _golden()    # populate
        assert _roundtrip(run_city(executor)) == _golden()    # replay
    assert executor.last_stats.cache_hits == len(CITY_CELL_NAMES), (
        "the replay run was expected to come entirely from the cache")


def test_city_shape():
    golden = _golden()
    assert [cell["cell"] for cell in golden["cells"]] == list(CITY_CELL_NAMES)
    city = golden["city"]
    assert city["cells"] == CITY["n_cells"]
    assert city["offered_flows"] > CITY["n_cells"] * 2, (
        "churn arrivals disappeared from the golden city")


def _regenerate() -> None:
    payload = _roundtrip(run_city(SweepExecutor(jobs=1)))
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps({
        "description": "full per-cell results + city aggregates of the "
                       "4-cell golden metro city; regenerate only for "
                       "intentional workload/semantics changes",
        "scenario": {**CITY, "seeds": list(CITY["seeds"])},
        "payload": payload,
    }, indent=1) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
