"""Golden per-event determinism trace for the engine hot path.

The hot-path optimisations (tuple-based heap entries, lazy cancellation with
compaction, slotted packets, flat-array monitors) are only admissible if they
leave the simulation's event sequence untouched.  This test replays a small
but representative scenario — two flows (ABC + Cubic) over a trace-driven
cellular bottleneck, exercising opportunity firing, ACK clocking, RTO
arm/cancel churn and queue sampling — while recording every fired event as
``(repr(now), callback qualname)``, and compares the sequence against a
golden trace captured from the seed (pre-optimisation) engine.

Any divergence — an event firing at a different time, in a different order,
or a different number of events — fails loudly.  Regenerate the golden file
only for an *intentional* semantic change::

    PYTHONPATH=src python tests/test_engine_golden_trace.py --regenerate
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.cc import make_cc
from repro.cellular.synthetic import lte_showcase_trace
from repro.core.params import ABCParams
from repro.core.router import ABCRouterQdisc
from repro.simulator import fastpath
from repro.simulator.engine import EventLoop
from repro.simulator.scenario import Scenario

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_event_trace.json"

DURATION = 3.0
TRACE_SEED = 11


class RecordingLoop(EventLoop):
    """EventLoop that logs ``(repr(now), callback qualname)`` per fired event.

    ``schedule`` and ``schedule_at`` are the engine's only entry points (both
    construct heap entries directly, for speed), so wrapping callbacks in
    both captures the complete event sequence.
    """

    def __init__(self, log: list):
        super().__init__()
        self._log = log

    def _wrap(self, callback):
        name = getattr(callback, "__qualname__",
                       getattr(callback, "__name__", str(callback)))

        def wrapped(*a, _cb=callback, _name=name):
            self._log.append((repr(self.now), _name))
            _cb(*a)

        return wrapped

    def schedule(self, delay, callback, *args):
        return super().schedule(delay, self._wrap(callback), *args)

    def schedule_at(self, time, callback, *args):
        return super().schedule_at(time, self._wrap(callback), *args)

    def post(self, delay, callback, *args):
        super().post(delay, self._wrap(callback), *args)

    def post_at(self, time, callback, *args):
        super().post_at(time, self._wrap(callback), *args)


def run_traced_scenario() -> list:
    """Run the canonical golden scenario and return the event log.

    Pinned to the classic (per-ACK) path: the batched fast path guarantees
    bit-identical *results*, not an identical event trace (its lazy RTO timer
    fires occasional no-op events and its fused hops change callback names).
    The batched path has its own differential layer in
    ``tests/test_batched_ack.py``.
    """
    log: list = []
    trace = lte_showcase_trace(duration=DURATION, seed=TRACE_SEED)
    with fastpath.override(False):
        scenario = Scenario()
        scenario.env = RecordingLoop(log)
        params = ABCParams()
        link = scenario.add_cellular_link(
            trace, qdisc=ABCRouterQdisc(params=params, buffer_packets=100),
            name="cell")
        scenario.add_flow(make_cc("abc", params=params), [link], rtt=0.08,
                          label="abc")
        scenario.add_flow(make_cc("cubic"), [link], rtt=0.08, label="cubic")
        scenario.run(DURATION)
    log.append(("final_now", repr(scenario.env.now)))
    log.append(("events_processed", str(scenario.env.events_processed)))
    return log


def _digest(log: list) -> str:
    payload = "\n".join(f"{t} {name}" for t, name in log)
    return hashlib.sha256(payload.encode()).hexdigest()


def test_event_sequence_matches_seed_engine():
    golden = json.loads(GOLDEN_PATH.read_text())
    log = run_traced_scenario()
    # Head/tail first: a readable diff when something diverges.
    head = [list(entry) for entry in log[:len(golden["head"])]]
    tail = [list(entry) for entry in log[-len(golden["tail"]):]]
    assert head == golden["head"]
    assert tail == golden["tail"]
    assert len(log) == golden["n_entries"]
    # Then the full sequence, compressed to a digest.
    assert _digest(log) == golden["sha256"]


def _regenerate() -> None:
    log = run_traced_scenario()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps({
        "description": "per-event (time, callback) trace of the golden "
                       "scenario; regenerate only for intentional changes",
        "duration": DURATION,
        "trace_seed": TRACE_SEED,
        "n_entries": len(log),
        "sha256": _digest(log),
        "head": [list(entry) for entry in log[:80]],
        "tail": [list(entry) for entry in log[-20:]],
    }, indent=1))
    print(f"wrote {GOLDEN_PATH} ({len(log)} entries, sha {_digest(log)[:12]})")


if __name__ == "__main__":
    import sys
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
