"""Golden per-event determinism trace for the engine hot path.

The hot-path optimisations (tuple-based heap entries, lazy cancellation with
compaction, slotted packets, flat-array monitors, the timer-wheel scheduler
backend) are only admissible if they leave the simulation's event sequence
untouched.  This test replays a small but representative scenario — two flows
(ABC + Cubic) over a trace-driven cellular bottleneck, exercising opportunity
firing, ACK clocking, RTO arm/cancel churn and queue sampling — while
recording every fired event as ``(repr(now), callback qualname)`` through the
engine's trace hook, and compares the sequence against a golden trace
captured from the seed (pre-optimisation) engine.

Both scheduler backends (``REPRO_SCHED=heap|wheel``) are pinned against the
*same* golden file: the wheel's contract is a bit-for-bit identical event
sequence, so any divergence — an event firing at a different time, in a
different order, or a different number of events — fails loudly.  Regenerate
the golden file only for an *intentional* semantic change::

    PYTHONPATH=src python tests/test_engine_golden_trace.py --regenerate
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.cc import make_cc
from repro.cellular.synthetic import lte_showcase_trace
from repro.core.params import ABCParams
from repro.core.router import ABCRouterQdisc
from repro.simulator import fastpath, sched
from repro.simulator.engine import EventLoop, TimerWheelLoop
from repro.simulator.scenario import Scenario

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_event_trace.json"

DURATION = 3.0
TRACE_SEED = 11


def run_traced_scenario(backend: str | None = None,
                        batched: bool = False) -> list:
    """Run the canonical golden scenario and return the event log.

    Recording goes through :meth:`EventLoop.set_trace_hook`, which works
    identically on both scheduler backends: the hook receives each entry's
    scheduled time (equal to ``now`` at dispatch) and the raw callback, so
    the log is exactly the ``(repr(now), qualname)`` sequence the seed
    recorder produced.

    The golden digest is pinned on the classic (per-ACK) path: the batched
    fast path guarantees bit-identical *results*, not an identical event
    trace (its lazy RTO timer fires occasional no-op events and its fused
    hops change callback names) — ``batched=True`` is used only for the
    backend-equivalence comparison below.
    """
    log: list = []

    def hook(time: float, callback, wall_ns: int) -> None:
        log.append((repr(time),
                    getattr(callback, "__qualname__",
                            getattr(callback, "__name__", str(callback)))))

    trace = lte_showcase_trace(duration=DURATION, seed=TRACE_SEED)
    with fastpath.override(batched), sched.override(backend):
        scenario = Scenario()
        scenario.env.set_trace_hook(hook)
        params = ABCParams()
        link = scenario.add_cellular_link(
            trace, qdisc=ABCRouterQdisc(params=params, buffer_packets=100),
            name="cell")
        scenario.add_flow(make_cc("abc", params=params), [link], rtt=0.08,
                          label="abc")
        scenario.add_flow(make_cc("cubic"), [link], rtt=0.08, label="cubic")
        if backend is not None:
            expected = TimerWheelLoop if backend == "wheel" else EventLoop
            assert type(scenario.env) is expected
        scenario.run(DURATION)
    log.append(("final_now", repr(scenario.env.now)))
    log.append(("events_processed", str(scenario.env.events_processed)))
    return log


def _digest(log: list) -> str:
    payload = "\n".join(f"{t} {name}" for t, name in log)
    return hashlib.sha256(payload.encode()).hexdigest()


@pytest.mark.parametrize("backend", sched.BACKENDS)
def test_event_sequence_matches_seed_engine(backend):
    golden = json.loads(GOLDEN_PATH.read_text())
    log = run_traced_scenario(backend)
    # Head/tail first: a readable diff when something diverges.
    head = [list(entry) for entry in log[:len(golden["head"])]]
    tail = [list(entry) for entry in log[-len(golden["tail"]):]]
    assert head == golden["head"]
    assert tail == golden["tail"]
    assert len(log) == golden["n_entries"]
    # Then the full sequence, compressed to a digest.
    assert _digest(log) == golden["sha256"]


def test_wheel_trace_matches_heap_under_batched_acks():
    """The backends must agree event for event in the batched-ACK mode too
    (that trace differs from the golden classic one, so it is compared
    heap-vs-wheel directly)."""
    heap_log = run_traced_scenario("heap", batched=True)
    wheel_log = run_traced_scenario("wheel", batched=True)
    assert heap_log == wheel_log


def _regenerate() -> None:
    log = run_traced_scenario()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps({
        "description": "per-event (time, callback) trace of the golden "
                       "scenario; regenerate only for intentional changes",
        "duration": DURATION,
        "trace_seed": TRACE_SEED,
        "n_entries": len(log),
        "sha256": _digest(log),
        "head": [list(entry) for entry in log[:80]],
        "tail": [list(entry) for entry in log[-20:]],
    }, indent=1))
    print(f"wrote {GOLDEN_PATH} ({len(log)} entries, sha {_digest(log)[:12]})")


if __name__ == "__main__":
    import sys
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
