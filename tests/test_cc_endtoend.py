"""Unit tests for the end-to-end congestion-control baselines.

These tests drive the algorithms directly through synthetic ACK feedback (no
simulator), checking each control law's defining behaviours.
"""

import math

import pytest

from repro.cc import (AIMD, BBR, Copa, Cubic, NewReno, PCCVivace, Sprout,
                      Vegas, Verus, available_schemes, make_cc)
from repro.simulator.packet import MTU, AckFeedback


def ack(now, rtt=0.1, bytes_acked=MTU, accel=True, ece=False, in_flight=10,
        sent_time=None):
    return AckFeedback(now=now, rtt=rtt, bytes_acked=bytes_acked, accel=accel,
                       ece=ece, packets_in_flight=in_flight,
                       sent_time=sent_time if sent_time is not None else now - (rtt or 0.1))


def drive(cc, n_acks=100, rtt=0.1, start=0.0, spacing=0.01, **kwargs):
    now = start
    for _ in range(n_acks):
        cc.on_ack(ack(now, rtt=rtt, **kwargs))
        now += spacing
    return now


# ------------------------------------------------------------ registry
def test_registry_lists_all_schemes():
    names = available_schemes()
    for expected in ("abc", "cubic", "bbr", "copa", "vegas", "sprout", "verus",
                     "pcc", "xcp", "rcp", "vcp", "newreno", "aimd"):
        assert expected in names


def test_registry_unknown_scheme_raises():
    with pytest.raises(KeyError):
        make_cc("quic-bbr3")


def test_registry_builds_instances():
    assert isinstance(make_cc("cubic"), Cubic)
    assert isinstance(make_cc("vegas"), Vegas)
    assert make_cc("abc").uses_abc


# ------------------------------------------------------------ AIMD / NewReno
def test_aimd_slow_start_doubles_per_window():
    cc = AIMD(initial_cwnd=2.0, ssthresh=64.0)
    drive(cc, n_acks=2)
    assert cc.cwnd() == pytest.approx(4.0)


def test_aimd_congestion_avoidance_linear():
    cc = AIMD(initial_cwnd=10.0, ssthresh=1.0)
    before = cc.cwnd()
    drive(cc, n_acks=10)  # one window's worth of ACKs -> +1 packet
    assert cc.cwnd() == pytest.approx(before + 1.0, rel=0.05)


def test_aimd_loss_halves_window():
    cc = AIMD(initial_cwnd=20.0, ssthresh=1.0)
    cc.on_loss(1.0)
    assert cc.cwnd() == pytest.approx(10.0)


def test_newreno_timeout_resets_to_min():
    cc = NewReno(initial_cwnd=30.0)
    cc.on_timeout(1.0)
    assert cc.cwnd() == cc.min_cwnd()


def test_newreno_reduces_once_per_rtt():
    cc = NewReno(initial_cwnd=32.0)
    cc.ssthresh = 1.0
    cc.on_loss(1.0)
    w = cc.cwnd()
    cc.on_loss(1.001)  # within the same RTT: ignored
    assert cc.cwnd() == w


# ------------------------------------------------------------ Cubic
def test_cubic_slow_start_growth():
    cc = Cubic(initial_cwnd=2.0)
    drive(cc, n_acks=4)
    assert cc.cwnd() == pytest.approx(6.0)


def test_cubic_loss_reduces_by_beta():
    cc = Cubic(initial_cwnd=100.0)
    cc.ssthresh = 1.0
    cc.on_loss(1.0)
    assert cc.cwnd() == pytest.approx(70.0, rel=0.01)


def test_cubic_concave_recovery_toward_wmax():
    cc = Cubic(initial_cwnd=100.0)
    cc.ssthresh = 1.0
    cc.on_loss(1.0)
    after_loss = cc.cwnd()
    drive(cc, n_acks=400, start=1.0, spacing=0.005)
    assert after_loss < cc.cwnd() <= 110.0


def test_cubic_ecn_reacts_like_loss():
    cc = Cubic(initial_cwnd=100.0)
    cc.ssthresh = 1.0
    cc.on_ack(ack(1.0, ece=True))
    assert cc.cwnd() < 100.0


def test_cubic_ecn_reduction_once_per_rtt():
    cc = Cubic(initial_cwnd=100.0)
    cc.ssthresh = 1.0
    cc.on_ack(ack(1.0, ece=True))
    w = cc.cwnd()
    cc.on_ack(ack(1.01, ece=True))
    assert cc.cwnd() == pytest.approx(w, rel=0.02)


def test_cubic_timeout_collapses_window():
    cc = Cubic(initial_cwnd=50.0)
    cc.on_timeout(2.0)
    assert cc.cwnd() == cc.min_cwnd()


def test_cubic_clamp_to_cap():
    cc = Cubic(initial_cwnd=50.0)
    cc.clamp_to(10.0)
    assert cc.cwnd() == 10.0


# ------------------------------------------------------------ Vegas
def test_vegas_increases_when_queue_small():
    cc = Vegas(initial_cwnd=10.0)
    cc._in_slow_start = False
    drive(cc, n_acks=20, rtt=0.1)   # base == actual RTT -> diff 0 < alpha
    assert cc.cwnd() > 10.0


def test_vegas_decreases_when_queue_large():
    cc = Vegas(initial_cwnd=50.0)
    cc._in_slow_start = False
    cc.base_rtt = 0.1
    drive(cc, n_acks=30, rtt=0.2)   # large standing queue -> diff > beta
    assert cc.cwnd() < 50.0


def test_vegas_leaves_slow_start_on_queueing():
    cc = Vegas(initial_cwnd=4.0)
    cc.base_rtt = 0.1
    drive(cc, n_acks=50, rtt=0.25)
    assert not cc._in_slow_start


def test_vegas_loss_is_gentle():
    cc = Vegas(initial_cwnd=40.0)
    cc.on_loss(1.0)
    assert cc.cwnd() == pytest.approx(30.0)


# ------------------------------------------------------------ BBR
def test_bbr_needs_pacing_flag():
    assert BBR.needs_pacing


def test_bbr_estimates_bandwidth_and_exits_startup():
    cc = BBR(initial_cwnd=10.0)
    now = 0.0
    for i in range(300):
        cc.on_ack(ack(now, rtt=0.1, in_flight=20))
        now += 0.004
    assert cc.btl_bw.get() > 0
    assert cc.state != BBR.STARTUP


def test_bbr_cwnd_tracks_bdp():
    cc = BBR()
    cc.btl_bw.update(0.0, 10e6)
    cc.min_rtt.update(0.0, 0.1)
    bdp_packets = 10e6 * 0.1 / (MTU * 8.0)
    assert cc.cwnd() == pytest.approx(cc.cwnd_gain * bdp_packets, rel=0.01)


def test_bbr_pacing_rate_positive_before_samples():
    assert BBR().pacing_rate() > 0


def test_bbr_probe_rtt_clamps_window():
    cc = BBR()
    cc.state = BBR.PROBE_RTT
    assert cc.cwnd() == 4.0


def test_bbr_timeout_restarts_startup():
    cc = BBR()
    cc.state = BBR.PROBE_BW
    cc.on_timeout(1.0)
    assert cc.state == BBR.STARTUP


# ------------------------------------------------------------ Copa
def test_copa_increases_on_empty_queue():
    cc = Copa(initial_cwnd=10.0)
    drive(cc, n_acks=30, rtt=0.1)
    assert cc.cwnd() > 10.0


def test_copa_decreases_when_queuing_delay_large():
    cc = Copa(initial_cwnd=100.0, delta=0.5)
    cc.rtt_min.update(0.0, 0.05)
    drive(cc, n_acks=60, rtt=0.4, start=0.1)
    assert cc.cwnd() < 100.0


def test_copa_velocity_resets_on_direction_change():
    cc = Copa(initial_cwnd=50.0)
    cc.rtt_min.update(0.0, 0.05)
    drive(cc, n_acks=30, rtt=0.05, start=0.0)      # increasing
    drive(cc, n_acks=30, rtt=0.5, start=1.0)       # now decreasing
    assert cc.velocity <= 2.0 or cc._direction == -1


def test_copa_loss_halves():
    cc = Copa(initial_cwnd=40.0)
    cc.on_loss(1.0)
    assert cc.cwnd() == pytest.approx(20.0)


# ------------------------------------------------------------ Sprout
def test_sprout_window_follows_forecast():
    cc = Sprout(initial_cwnd=4.0, target_delay=0.1)
    now = 0.0
    # 10 Mbit/s of ACKed traffic with no queuing delay.
    for _ in range(200):
        cc.on_ack(ack(now, rtt=0.05, bytes_acked=MTU))
        now += 0.0012
    assert cc.forecast_rate_bps() > 1e6
    assert cc.cwnd() > 4.0


def test_sprout_conservative_under_queueing():
    cc = Sprout(initial_cwnd=50.0, target_delay=0.1)
    cc.rtt_min = 0.05
    now = 0.0
    for _ in range(100):
        cc.on_ack(ack(now, rtt=0.3, bytes_acked=MTU))  # heavy queuing
        now += 0.01
    forecast_window = cc.forecast_rate_bps() * 0.1 / 8.0 / MTU
    assert cc.cwnd() == pytest.approx(max(forecast_window, 2.0), rel=0.05)


def test_sprout_timeout_resets():
    cc = Sprout(initial_cwnd=30.0)
    cc.on_timeout(1.0)
    assert cc.cwnd() == cc.min_cwnd()


# ------------------------------------------------------------ Verus
def test_verus_grows_when_delay_low():
    cc = Verus(initial_cwnd=10.0)
    drive(cc, n_acks=50, rtt=0.1)
    assert cc.cwnd() > 10.0


def test_verus_shrinks_when_delay_high():
    cc = Verus(initial_cwnd=50.0)
    cc.rtt_min.update(0.0, 0.05)
    drive(cc, n_acks=100, rtt=0.4, start=0.1, spacing=0.02)
    assert cc.cwnd() < 50.0


def test_verus_loss_reduces():
    cc = Verus(initial_cwnd=40.0)
    cc._smoothed_rtt.update(0.1)
    cc.on_loss(10.0)
    assert cc.cwnd() < 40.0


# ------------------------------------------------------------ PCC Vivace
def test_pcc_is_rate_based():
    assert PCCVivace.needs_pacing
    cc = PCCVivace(initial_rate_bps=2e6)
    assert cc.pacing_rate() > 0
    assert cc.cwnd() >= 4.0


def test_pcc_rate_increases_when_unconstrained():
    cc = PCCVivace(initial_rate_bps=2e6)
    now = 0.0
    initial = cc.base_rate
    # ACK everything promptly with flat RTT: utility rises with rate.
    for i in range(1500):
        cc.on_packet_sent(now, i, MTU, 10)
        cc.on_ack(ack(now + 0.05, rtt=0.05, sent_time=now))
        now += 0.003
    assert cc.base_rate > initial


def test_pcc_timeout_halves_rate():
    cc = PCCVivace(initial_rate_bps=8e6)
    cc.on_timeout(1.0)
    assert cc.base_rate == pytest.approx(4e6)


def test_pcc_utility_penalises_loss():
    from repro.cc.pcc_vivace import _MonitorInterval
    clean = _MonitorInterval(0.0, 0.1, 5e6)
    lossy = _MonitorInterval(0.0, 0.1, 5e6)
    for mi in (clean, lossy):
        mi.bytes_sent = 60 * MTU
        mi.bytes_acked = 60 * MTU
        mi.first_rtt = mi.last_rtt = 0.1
    lossy.losses = 10
    assert clean.utility(9.0, 11.35) > lossy.utility(9.0, 11.35)
