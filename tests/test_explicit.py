"""Tests for the explicit-feedback baselines: XCP, XCPw, RCP, VCP."""

import math

import pytest

from repro.explicit import (RCPRouterQdisc, RCPSender, VCPRouterQdisc,
                            VCPSender, XCPRouterQdisc, XCPSender)
from repro.explicit.vcp import HIGH_LOAD, LOW_LOAD, OVERLOAD
from repro.simulator.link import ConstantRate
from repro.simulator.packet import MTU, AckFeedback, Packet
from tests.conftest import run_single_flow


def ack_with_meta(meta, now=1.0, rtt=0.1):
    return AckFeedback(now=now, rtt=rtt, bytes_acked=MTU, accel=True, ece=False,
                       packets_in_flight=10, meta=meta)


class FakeLink:
    """Gives router qdiscs a fixed capacity without a full simulator."""

    def __init__(self, rate_bps):
        self.rate = rate_bps
        self.env = type("E", (), {"now": 0.0})()

    def capacity_bps(self, now):
        return self.rate


# ------------------------------------------------------------ XCP sender
def test_xcp_sender_stamps_congestion_header():
    cc = XCPSender(initial_cwnd=4.0)
    meta = cc.packet_meta(0.0)
    assert set(meta) == {"xcp_rtt", "xcp_cwnd_bytes", "xcp_feedback_bytes"}
    assert meta["xcp_cwnd_bytes"] == pytest.approx(4.0 * MTU)


def test_xcp_sender_applies_positive_feedback():
    cc = XCPSender(initial_cwnd=4.0)
    cc.on_ack(ack_with_meta({"xcp_feedback_bytes": 3 * MTU}))
    assert cc.cwnd() == pytest.approx(7.0)


def test_xcp_sender_applies_negative_feedback():
    cc = XCPSender(initial_cwnd=10.0)
    cc.on_ack(ack_with_meta({"xcp_feedback_bytes": -4 * MTU}))
    assert cc.cwnd() == pytest.approx(6.0)


def test_xcp_sender_ignores_missing_feedback():
    cc = XCPSender(initial_cwnd=10.0)
    cc.on_ack(ack_with_meta({}))
    assert cc.cwnd() == pytest.approx(10.0)


def test_xcp_sender_loss_and_timeout():
    cc = XCPSender(initial_cwnd=10.0)
    cc.on_loss(1.0)
    assert cc.cwnd() == pytest.approx(5.0)
    cc.on_timeout(2.0)
    assert cc.cwnd() == cc.min_cwnd()


# ------------------------------------------------------------ XCP router
def test_xcp_router_reduces_feedback_never_increases():
    router = XCPRouterQdisc()
    router.attach(FakeLink(10e6))
    pkt = Packet(flow_id=0, seq=0,
                 meta={"xcp_rtt": 0.1, "xcp_cwnd_bytes": 10 * MTU,
                       "xcp_feedback_bytes": math.inf})
    router.enqueue(pkt, 0.0)
    assert pkt.meta["xcp_feedback_bytes"] < math.inf


def test_xcp_router_negative_feedback_when_queue_large():
    router = XCPRouterQdisc(wireless=True)
    router.attach(FakeLink(5e6))
    now = 0.0
    # Stuff the queue so the persistent-queue term dominates.
    last = None
    for i in range(200):
        last = Packet(flow_id=0, seq=i,
                      meta={"xcp_rtt": 0.1, "xcp_cwnd_bytes": 100 * MTU,
                            "xcp_feedback_bytes": math.inf})
        router.enqueue(last, now)
        now += 0.001
    assert last.meta["xcp_feedback_bytes"] < 0


def test_xcp_router_ignores_non_xcp_packets():
    router = XCPRouterQdisc()
    router.attach(FakeLink(10e6))
    pkt = Packet(flow_id=0, seq=0)
    router.enqueue(pkt, 0.0)
    assert "xcp_feedback_bytes" not in pkt.meta


def test_xcpw_converges_on_constant_link():
    result, link, flow = run_single_flow(XCPSender(), XCPRouterQdisc(wireless=True),
                                         12e6, duration=10.0)
    assert result.link_utilization(link, t0=2.0) > 0.8
    assert flow.stats.delay_percentile(95, kind="queuing") < 0.15


def test_xcp_converges_on_constant_link():
    result, link, flow = run_single_flow(XCPSender(), XCPRouterQdisc(), 12e6,
                                         duration=10.0)
    assert result.link_utilization(link, t0=2.0) > 0.75


# ------------------------------------------------------------ RCP
def test_rcp_sender_is_rate_based():
    assert RCPSender.needs_pacing
    cc = RCPSender(initial_rate_bps=1e6)
    assert cc.pacing_rate() == 1e6
    assert cc.cwnd() >= 4.0


def test_rcp_sender_adopts_advertised_rate():
    cc = RCPSender(initial_rate_bps=1e6)
    cc.on_ack(ack_with_meta({"rcp_rate_bps": 5e6}))
    assert cc.pacing_rate() == pytest.approx(5e6)


def test_rcp_sender_ignores_unstamped_acks():
    cc = RCPSender(initial_rate_bps=1e6)
    cc.on_ack(ack_with_meta({"rcp_rate_bps": math.inf}))
    assert cc.pacing_rate() == pytest.approx(1e6)


def test_rcp_router_stamps_minimum_rate():
    router = RCPRouterQdisc(initial_rate_bps=3e6)
    router.attach(FakeLink(10e6))
    pkt = Packet(flow_id=0, seq=0, meta={"rcp_rtt": 0.1, "rcp_rate_bps": math.inf})
    router.enqueue(pkt, 0.0)
    assert pkt.meta["rcp_rate_bps"] == pytest.approx(3e6)


def test_rcp_router_rate_grows_toward_capacity():
    router = RCPRouterQdisc(initial_rate_bps=1e6)
    router.attach(FakeLink(10e6))
    now = 0.0
    for i in range(500):
        pkt = Packet(flow_id=0, seq=i, meta={"rcp_rtt": 0.1, "rcp_rate_bps": math.inf})
        router.enqueue(pkt, now)
        router.dequeue(now)
        now += 0.01
    assert router.rate_bps > 5e6


def test_rcp_converges_on_constant_link():
    result, link, flow = run_single_flow(RCPSender(), RCPRouterQdisc(), 10e6,
                                         duration=12.0)
    assert result.link_utilization(link, t0=4.0) > 0.8


# ------------------------------------------------------------ VCP
def test_vcp_sender_regions():
    cc = VCPSender(initial_cwnd=10.0)
    w0 = cc.cwnd()
    cc.on_ack(ack_with_meta({"vcp_region": LOW_LOAD}))
    assert cc.cwnd() > w0                       # MI
    w1 = cc.cwnd()
    cc.on_ack(ack_with_meta({"vcp_region": HIGH_LOAD}))
    assert cc.cwnd() > w1                       # AI (small)
    cc.on_ack(ack_with_meta({"vcp_region": OVERLOAD}, now=2.0))
    assert cc.cwnd() < w1                       # MD


def test_vcp_md_at_most_once_per_rtt():
    cc = VCPSender(initial_cwnd=32.0)
    cc.on_ack(ack_with_meta({"vcp_region": OVERLOAD}, now=1.0))
    w = cc.cwnd()
    cc.on_ack(ack_with_meta({"vcp_region": OVERLOAD}, now=1.01))
    assert cc.cwnd() == pytest.approx(w)


def test_vcp_mi_is_slow_doubling_takes_many_rtts():
    """§7: VCP can take ~12 RTTs to double its rate (0.0625 MI gain)."""
    cc = VCPSender(initial_cwnd=10.0)
    rtts = 0
    now = 0.0
    while cc.cwnd() < 20.0 and rtts < 30:
        for _ in range(int(cc.cwnd())):
            cc.on_ack(ack_with_meta({"vcp_region": LOW_LOAD}, now=now))
            now += 0.001
        rtts += 1
    assert 8 <= rtts <= 16


def test_vcp_router_load_factor_regions():
    router = VCPRouterQdisc(interval=0.1)
    router.attach(FakeLink(10e6))
    now = 0.0
    # Offer ~5 Mbit/s -> low load.
    for i in range(200):
        router.enqueue(Packet(flow_id=0, seq=i), now)
        router.dequeue(now)
        now += 0.0024
    assert router.region == LOW_LOAD
    # Now offer well above capacity without draining -> overload.
    for i in range(200, 900):
        router.enqueue(Packet(flow_id=0, seq=i), now)
        now += 0.0005
    assert router.region == OVERLOAD


def test_vcp_router_stamps_worst_region():
    router = VCPRouterQdisc()
    router.attach(FakeLink(10e6))
    router.region = HIGH_LOAD
    pkt = Packet(flow_id=0, seq=0, meta={"vcp_region": LOW_LOAD})
    router.enqueue(pkt, 0.0)
    assert pkt.meta["vcp_region"] == HIGH_LOAD
    pkt2 = Packet(flow_id=0, seq=1, meta={"vcp_region": OVERLOAD})
    router.enqueue(pkt2, 0.0)
    assert pkt2.meta["vcp_region"] == OVERLOAD


def test_vcp_converges_on_constant_link():
    result, link, flow = run_single_flow(VCPSender(), VCPRouterQdisc(), 10e6,
                                         duration=15.0)
    assert result.link_utilization(link, t0=5.0) > 0.6
