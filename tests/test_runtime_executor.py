"""Tests for the parallel sweep executor and its deterministic result cache.

The load-bearing property: a sweep's metrics are bit-for-bit identical
whether it runs serially, on a multiprocessing pool, or is replayed from the
on-disk cache.
"""

from __future__ import annotations

import dataclasses
import os
import time

import numpy as np
import pytest

from repro.cellular.synthetic import SyntheticTraceConfig, synthetic_trace
from repro.core.params import ABCParams
from repro.experiments.runner import run_cellular_sweep, sweep_averages
from repro.runtime import (ResultCache, SweepExecutor, SweepJob, SweepSpec,
                           resolve_worker_count, stable_hash)


def _tiny_traces():
    config = SyntheticTraceConfig(mean_rate_bps=10e6, min_rate_bps=2e6,
                                  max_rate_bps=20e6, volatility=0.2,
                                  outage_rate_per_s=0.0, name="exec-test")
    return {
        "t1": synthetic_trace(config, duration=3.0, seed=5),
        "t2": synthetic_trace(config, duration=3.0, seed=6),
    }


def _metrics(result) -> tuple:
    return (result.scheme, result.trace, result.throughput_bps,
            result.utilization, result.delay_p95_ms, result.delay_mean_ms,
            result.queuing_p95_ms, result.queuing_mean_ms, result.drops)


def _spec(traces) -> SweepSpec:
    return SweepSpec(schemes=["abc", "cubic"], traces=traces, duration=3.0)


# Module-level so jobs survive pickling into pool workers.
def _echo_job(value: int, delay: float = 0.0) -> int:
    if delay:
        time.sleep(delay)
    return value


# ---------------------------------------------------------------- equivalence
def test_serial_parallel_cached_equivalence(tmp_path):
    """Same SweepSpec -> identical metrics across all three backends."""
    traces = _tiny_traces()
    serial = _spec(traces).run(SweepExecutor(jobs=1))
    parallel = _spec(traces).run(SweepExecutor(jobs=2))

    cached_executor = SweepExecutor(jobs=2, cache_dir=tmp_path / "cache")
    _spec(traces).run(cached_executor)          # populate
    assert cached_executor.last_stats.executed == 4
    replay = _spec(traces).run(cached_executor)  # replay
    assert cached_executor.last_stats.executed == 0
    assert cached_executor.last_stats.cache_hits == 4

    for scheme in ("abc", "cubic"):
        for trace in ("t1", "t2"):
            expected = _metrics(serial[scheme][trace])
            assert _metrics(parallel[scheme][trace]) == expected
            assert _metrics(replay[scheme][trace]) == expected


def test_parallel_results_preserve_submission_order():
    jobs = [SweepJob(func=_echo_job,
                     kwargs=dict(value=i, delay=0.05 if i == 0 else 0.0))
            for i in range(4)]
    assert SweepExecutor(jobs=2).run(jobs) == [0, 1, 2, 3]


# ---------------------------------------------------------------- cache
def test_cache_hit_miss_and_invalidation(tmp_path):
    executor = SweepExecutor(jobs=1, cache_dir=tmp_path)
    jobs = [SweepJob(func=_echo_job, kwargs=dict(value=7))]

    assert executor.run(jobs) == [7]
    assert executor.last_stats.executed == 1
    assert executor.last_stats.cache_hits == 0

    assert executor.run(jobs) == [7]
    assert executor.last_stats.executed == 0
    assert executor.last_stats.cache_hits == 1

    key = jobs[0].cache_key(executor.salt)
    assert executor.cache.contains(key)
    assert executor.cache.invalidate(key)
    assert not executor.cache.contains(key)
    assert executor.run(jobs) == [7]
    assert executor.last_stats.executed == 1

    # Different kwargs -> different key -> miss.
    other = [SweepJob(func=_echo_job, kwargs=dict(value=8))]
    assert executor.run(other) == [8]
    assert executor.last_stats.executed == 1


def test_cache_salt_invalidates(tmp_path):
    warm = SweepExecutor(jobs=1, cache_dir=tmp_path, salt="v1")
    jobs = [SweepJob(func=_echo_job, kwargs=dict(value=1))]
    warm.run(jobs)
    warm.run(jobs)
    assert warm.last_stats.cache_hits == 1

    bumped = SweepExecutor(jobs=1, cache_dir=tmp_path, salt="v2")
    bumped.run(jobs)
    assert bumped.last_stats.cache_hits == 0
    assert bumped.last_stats.executed == 1


def test_cache_clear_and_corrupt_entry(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("ab" + "0" * 62, {"x": 1.5})
    hit, value = cache.get("ab" + "0" * 62)
    assert hit and value == {"x": 1.5}
    assert len(cache) == 1

    # A torn/corrupt entry reads as a miss and is removed.
    path = cache._path("ab" + "0" * 62)
    path.write_bytes(b"not a pickle")
    hit, _ = cache.get("ab" + "0" * 62)
    assert not hit
    assert not path.exists()

    cache.put("cd" + "1" * 62, [1, 2])
    assert cache.clear() == 1
    assert len(cache) == 0


def test_stable_hash_is_content_addressed():
    traces = _tiny_traces()
    same = synthetic_trace(
        SyntheticTraceConfig(mean_rate_bps=10e6, min_rate_bps=2e6,
                             max_rate_bps=20e6, volatility=0.2,
                             outage_rate_per_s=0.0, name="exec-test"),
        duration=3.0, seed=5)
    assert stable_hash(traces["t1"]) == stable_hash(same)
    assert stable_hash(traces["t1"]) != stable_hash(traces["t2"])
    assert stable_hash(ABCParams()) == stable_hash(ABCParams())
    assert stable_hash(ABCParams()) != stable_hash(
        ABCParams().with_overrides(delta=0.123))
    assert stable_hash(np.arange(4)) == stable_hash(np.arange(4))
    assert stable_hash(np.arange(4)) != stable_hash(np.arange(5))
    assert stable_hash({"a": 1, "b": 2.0}) == stable_hash({"b": 2.0, "a": 1})


# ---------------------------------------------------------------- REPRO_JOBS
def test_repro_jobs_env_fallback(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "1")
    assert SweepExecutor().workers == 1
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert SweepExecutor().workers == 4
    monkeypatch.setenv("REPRO_JOBS", "auto")
    assert SweepExecutor().workers == (os.cpu_count() or 1)
    monkeypatch.delenv("REPRO_JOBS")
    assert SweepExecutor().workers == 1
    monkeypatch.setenv("REPRO_JOBS", "banana")
    with pytest.raises(ValueError):
        SweepExecutor()


def test_explicit_jobs_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "8")
    assert SweepExecutor(jobs=2).workers == 2
    assert resolve_worker_count(0) == (os.cpu_count() or 1)
    with pytest.raises(ValueError):
        resolve_worker_count(-1)


def test_repro_jobs_1_runs_in_process(monkeypatch):
    """Serial fallback executes jobs in this very process."""
    monkeypatch.setenv("REPRO_JOBS", "1")
    observed = []
    jobs = [SweepJob(func=_echo_job, kwargs=dict(value=3))]
    executor = SweepExecutor()
    # Local (unpicklable-by-reference) callables only work in-process.
    jobs.append(SweepJob(func=lambda: observed.append(os.getpid()) or 9,
                         kwargs={}))
    assert executor.run(jobs) == [3, 9]
    assert observed == [os.getpid()]


# ---------------------------------------------------------------- validation
def test_run_cellular_sweep_rejects_unknown_scheme():
    with pytest.raises(ValueError, match="unknown scheme label"):
        run_cellular_sweep(["abc", "not-a-scheme"], _tiny_traces(),
                           duration=1.0)


def test_run_cellular_sweep_rejects_empty_axes():
    with pytest.raises(ValueError, match="non-empty trace set"):
        run_cellular_sweep(["abc"], {}, duration=1.0)
    with pytest.raises(ValueError, match="at least one scheme"):
        run_cellular_sweep([], _tiny_traces(), duration=1.0)


def test_sweep_averages_rejects_empty_inputs():
    with pytest.raises(ValueError, match="non-empty results"):
        sweep_averages({})
    with pytest.raises(ValueError, match="empty trace set"):
        sweep_averages({"abc": {}})


# ---------------------------------------------------------------- SweepSpec
def test_sweep_spec_param_grid_and_ordering():
    traces = _tiny_traces()
    spec = SweepSpec(schemes=["abc"], traces={"t1": traces["t1"]},
                     seeds=(0, 1), duration=3.0,
                     param_grid=({"rtt": 0.05}, {"rtt": 0.1}))
    cells, jobs = spec.expand()
    assert len(cells) == len(jobs) == 4
    assert [c.seed for c in cells] == [0, 0, 1, 1]
    assert [dict(c.overrides)["rtt"] for c in cells] == [0.05, 0.1, 0.05, 0.1]
    assert jobs[0].kwargs["rtt"] == 0.05

    with pytest.raises(ValueError, match="exactly one seed"):
        spec.run()


def test_mixed_case_labels_keep_caller_keys_and_share_cache(tmp_path):
    """Results stay keyed by the caller's spelling; the cache key does not
    depend on label case (the cell normalises before hashing)."""
    traces = {"t1": _tiny_traces()["t1"]}
    executor = SweepExecutor(jobs=1, cache_dir=tmp_path)
    upper = run_cellular_sweep(["ABC"], traces, duration=3.0,
                               executor=executor)
    assert set(upper) == {"ABC"}
    assert executor.last_stats.executed == 1

    lower = run_cellular_sweep(["abc"], traces, duration=3.0,
                               executor=executor)
    assert set(lower) == {"abc"}
    assert executor.last_stats.executed == 0
    assert executor.last_stats.cache_hits == 1
    assert _metrics(lower["abc"]["t1"]) == _metrics(upper["ABC"]["t1"])


def test_sweep_spec_results_are_picklable():
    """Cells strip live simulator objects so results cross process/cache."""
    import pickle

    traces = _tiny_traces()
    results = SweepSpec(schemes=["abc"], traces={"t1": traces["t1"]},
                        duration=3.0).run(SweepExecutor(jobs=1))
    result = results["abc"]["t1"]
    assert dataclasses.is_dataclass(result)
    assert set(result.extra) <= {"per_link_utilization"}
    pickle.loads(pickle.dumps(result))


# ---------------------------------------------------------------- duplicates
def test_sweep_spec_rejects_duplicate_cells():
    """A repeated axis entry must fail expansion, not silently run twice."""
    traces = {"t1": _tiny_traces()["t1"]}

    with pytest.raises(ValueError, match="duplicate sweep cell"):
        SweepSpec(schemes=["abc", "abc"], traces=traces,
                  duration=3.0).expand()

    # Case-insensitive: "ABC" and "abc" are the same cell (they share a
    # cache key), so listing both is a duplicate too.
    with pytest.raises(ValueError, match="duplicate sweep cell"):
        SweepSpec(schemes=["ABC", "abc"], traces=traces,
                  duration=3.0).expand()

    with pytest.raises(ValueError, match="duplicate sweep cell"):
        SweepSpec(schemes=["abc"], traces=traces, seeds=(1, 2, 1),
                  duration=3.0).expand()

    with pytest.raises(ValueError, match="duplicate sweep cell"):
        SweepSpec(schemes=["abc"], traces=traces, duration=3.0,
                  param_grid=({"rtt": 0.05}, {"rtt": 0.05})).expand()


def test_sweep_spec_distinct_cells_still_expand():
    """The duplicate check never rejects a genuinely distinct grid."""
    traces = _tiny_traces()
    cells, jobs = SweepSpec(schemes=["abc", "cubic"], traces=traces,
                            seeds=(0, 1), duration=3.0,
                            param_grid=({"rtt": 0.05}, {"rtt": 0.1})).expand()
    assert len(cells) == len(jobs) == 2 * 2 * 2 * 2


# ---------------------------------------------------------------- corruption
def test_cache_truncated_entry_is_miss_and_rewritten(tmp_path):
    """A truncated pickle reads as a miss, is deleted, and the recomputed
    value is rewritten in its place (the full sweep-recovery path)."""
    executor = SweepExecutor(jobs=1, cache_dir=tmp_path)
    jobs = [SweepJob(func=_echo_job, kwargs=dict(value=11))]
    assert executor.run(jobs) == [11]
    key = jobs[0].cache_key(executor.salt)
    path = executor.cache._path(key)

    # Truncate the valid pickle mid-stream.
    complete = path.read_bytes()
    assert len(complete) > 4
    path.write_bytes(complete[: len(complete) // 2])

    assert executor.run(jobs) == [11]            # recomputed, not crashed
    assert executor.last_stats.executed == 1
    assert executor.last_stats.cache_hits == 0
    assert path.read_bytes() == complete          # rewritten intact

    assert executor.run(jobs) == [11]            # and now it hits again
    assert executor.last_stats.cache_hits == 1


@pytest.mark.parametrize("garbage", [b"", b"\x80", b"\x80\x04garbage.",
                                     b"(not(a(pickle"])
def test_cache_garbage_entries_are_misses(tmp_path, garbage):
    cache = ResultCache(tmp_path)
    key = "ef" + "2" * 62
    cache.put(key, {"ok": True})
    cache._path(key).write_bytes(garbage)
    hit, value = cache.get(key)
    assert not hit and value is None
    assert not cache._path(key).exists()
    # The slot is reusable after the corrupt entry was dropped.
    cache.put(key, {"ok": True})
    hit, value = cache.get(key)
    assert hit and value == {"ok": True}


# ------------------------------------------------------------ size cap
def _blob_job(value: int, kilobytes: int = 600) -> bytes:
    """A job whose cached pickle is ~``kilobytes`` KB (deterministic)."""
    return bytes([value % 256]) * (kilobytes * 1024)


def test_cache_size_cap_evicts_oldest_entries(tmp_path):
    # Cap ~1.25 MB with ~600 KB entries; the sweep interval floors at 1 MB,
    # so the first put sweeps immediately and the third put (>= 1 MB written
    # since) sweeps again and must evict the oldest entry.
    cache = ResultCache(tmp_path, max_mb=1.25)
    keys = [f"{i:02x}" + "0" * 62 for i in range(3)]
    cache.put(keys[0], _blob_job(0))
    os.utime(cache._path(keys[0]), (1000.0, 1000.0))   # force mtime order
    cache.put(keys[1], _blob_job(1))
    os.utime(cache._path(keys[1]), (2000.0, 2000.0))
    assert cache.evictions == 0 and len(cache) == 2
    cache.put(keys[2], _blob_job(2))                   # newest mtime wins
    assert cache.evictions == 1
    assert not cache.contains(keys[0]), "mtime-LRU must drop the oldest"
    assert cache.contains(keys[1]) and cache.contains(keys[2])


def test_cache_cap_env_knob(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_MAX_MB", "1.25")
    assert ResultCache(tmp_path)._max_bytes == int(1.25 * 1024 * 1024)
    monkeypatch.setenv("REPRO_CACHE_MAX_MB", "0")
    assert ResultCache(tmp_path)._max_bytes is None
    monkeypatch.delenv("REPRO_CACHE_MAX_MB")
    assert ResultCache(tmp_path)._max_bytes is None
    # Explicit argument beats the environment.
    monkeypatch.setenv("REPRO_CACHE_MAX_MB", "64")
    assert ResultCache(tmp_path, max_mb=2)._max_bytes == 2 * 1024 * 1024


def test_executor_reports_cache_evictions(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_MAX_MB", "1")
    executor = SweepExecutor(jobs=1, cache_dir=tmp_path)
    jobs = [SweepJob(func=_blob_job, kwargs=dict(value=i)) for i in range(4)]
    results = executor.run(jobs)
    assert results == [_blob_job(i) for i in range(4)]
    assert executor.last_stats.cache_evictions > 0
    assert executor.cache.evictions == executor.last_stats.cache_evictions
    # An uncapped executor never evicts.
    monkeypatch.delenv("REPRO_CACHE_MAX_MB")
    unbounded = SweepExecutor(jobs=1, cache_dir=tmp_path / "u")
    unbounded.run(jobs)
    assert unbounded.last_stats.cache_evictions == 0
