"""Tests for the fluid model and Theorem 3.1."""

import numpy as np
import pytest

from repro.core.params import ABCParams
from repro.core.stability import (FluidModel, is_theoretically_stable,
                                  stability_threshold)


def test_stability_threshold_formula():
    assert stability_threshold(0.1) == pytest.approx(2.0 / 30.0)
    assert stability_threshold(0.0) == 0.0
    with pytest.raises(ValueError):
        stability_threshold(-1.0)


def test_paper_default_parameters_are_stable():
    """δ = 133 ms with τ = 100 ms satisfies δ > 2τ/3 (§3.1.4)."""
    assert is_theoretically_stable(0.133, 0.1)
    assert not is_theoretically_stable(0.05, 0.1)


def test_fluid_model_validation():
    with pytest.raises(ValueError):
        FluidModel(tau=0.0)
    with pytest.raises(ValueError):
        FluidModel(capacity_bps=0.0)
    model = FluidModel(tau=0.1)
    with pytest.raises(ValueError):
        model.simulate(step=0.2)  # step must be < tau
    with pytest.raises(ValueError):
        model.simulate(duration=0.0)


def test_drift_sign_depends_on_flow_count():
    # With no flows the additive-increase term vanishes and A = eta - 1 < 0.
    assert FluidModel(num_flows=0).drift < 0
    # With many flows on a slow link, A > 0.
    assert FluidModel(num_flows=50, capacity_bps=5e6).drift > 0


def test_fixed_point_zero_when_drift_negative():
    model = FluidModel(num_flows=0)
    assert model.fixed_point() == 0.0
    assert model.equilibrium_rate_fraction() <= 1.0


def test_fixed_point_formula_when_drift_positive():
    params = ABCParams(delta=0.133, delay_threshold=0.02)
    model = FluidModel(params=params, num_flows=20, capacity_bps=5e6, tau=0.1)
    a = model.drift
    assert model.fixed_point() == pytest.approx(a * 0.133 + 0.02)
    assert model.equilibrium_rate_fraction() == 1.0


def test_fluid_model_converges_when_stable():
    params = ABCParams(delta=0.133)
    model = FluidModel(params=params, tau=0.1, num_flows=10, capacity_bps=10e6)
    result = model.simulate(duration=30.0, initial_delay=0.4)
    assert result.converged
    assert result.final_error < 5e-3


def test_fluid_model_queue_stays_near_fixed_point():
    model = FluidModel(params=ABCParams(delta=0.2), tau=0.1, num_flows=10,
                       capacity_bps=10e6)
    result = model.simulate(duration=40.0, initial_delay=0.0)
    tail = result.queuing_delay[-1000:]
    assert np.allclose(tail, result.fixed_point, atol=5e-3)


def test_fluid_model_oscillates_when_delta_far_below_bound():
    """Well below δ = 2τ/3 the loop over-corrects and keeps oscillating."""
    stable = FluidModel(params=ABCParams(delta=0.133), tau=0.1, num_flows=10,
                        capacity_bps=10e6)
    unstable = FluidModel(params=ABCParams(delta=0.02), tau=0.1, num_flows=10,
                          capacity_bps=10e6)
    r_stable = stable.simulate(duration=40.0, initial_delay=0.4)
    r_unstable = unstable.simulate(duration=40.0, initial_delay=0.4)
    assert r_unstable.oscillation_amplitude > 5 * r_stable.oscillation_amplitude
    assert not r_unstable.converged


def test_queue_never_negative():
    model = FluidModel(num_flows=0, tau=0.1)
    result = model.simulate(duration=10.0, initial_delay=0.5)
    assert np.all(result.queuing_delay >= 0.0)


def test_empirical_stability_helper():
    assert FluidModel(params=ABCParams(delta=0.133), tau=0.1,
                      num_flows=10).empirical_stability(duration=30.0)


def test_stability_sweep_experiment():
    from repro.experiments.stability_eval import fluid_stability_sweep
    sweep = fluid_stability_sweep(delta_over_tau=(0.2, 1.33), tau=0.1)
    assert not sweep[0.2].theoretically_stable
    assert sweep[1.33].theoretically_stable
    assert sweep[1.33].fluid_converged
    assert sweep[0.2].fluid_oscillation_s > sweep[1.33].fluid_oscillation_s
