"""Tests for the fault-tolerance layer: injection, retries, resume.

The load-bearing property mirrors the executor's determinism contract: with
the same seed and the same ``REPRO_FAULTS`` spec, a chaos run produces
byte-identical results *and failure records* whether it executes serially or
on a pool — and a sweep killed mid-run resumes via its journal, re-executing
only the unfinished cells with final aggregates bit-identical to an
uninterrupted run.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.metro.aggregate import aggregate_city
from repro.obs.manifest import executor_record
from repro.obs.trace import sweep_trace_events
from repro.runtime import (FaultInjector, FaultSpec, JobFailure,
                           JobFailureError, ResultCache, RunJournal,
                           SweepExecutor, SweepJob, SweepSpec, is_failure,
                           resolve_fault_spec, retry_backoff, run_key_for)
from repro.runtime.faults import FaultInjectionError


# Module-level so jobs survive pickling into pool workers.
def _double(value: int, fail: bool = False) -> int:
    if fail:
        raise ValueError(f"bad value {value}")
    return value * 2


def _sleepy(value: int, seconds: float = 5.0) -> int:
    time.sleep(seconds)
    return value


def _jobs(n: int = 6):
    return [SweepJob(func=_double, kwargs={"value": i}, label=f"j{i}")
            for i in range(n)]


def _canonical_run(results) -> str:
    """A byte-comparable rendering of a run's results + failure records."""
    return json.dumps(
        [r.to_jsonable() if is_failure(r) else r for r in results],
        sort_keys=True)


# A spec that exercises every process-level fault kind with enough density
# to hit several of the six _jobs() cells.
CHAOS = "job_error:0.4,worker_crash:0.3,job_hang:0.2,seed:11"


# ------------------------------------------------------------- spec parsing
def test_fault_spec_parsing_roundtrip():
    spec = FaultSpec.parse("worker_crash:0.02, job_hang:0.01, seed:7")
    assert spec.seed == 7
    assert spec.rate("worker_crash") == 0.02
    assert spec.rate("job_hang") == 0.01
    assert spec.rate("job_error") == 0.0
    assert spec.active
    assert FaultSpec.parse(spec.describe()) == spec


@pytest.mark.parametrize("raw", [
    "explode:0.5",            # unknown kind
    "worker_crash",           # missing probability
    "worker_crash:lots",      # non-numeric probability
    "worker_crash:1.5",       # out of range
    "job_error:0.1,job_error:0.2",  # duplicate kind
    "seed:pi",                # non-integer seed
])
def test_fault_spec_rejects_bad_tokens(raw):
    with pytest.raises(ValueError):
        FaultSpec.parse(raw)


def test_resolve_fault_spec_env_and_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "job_error:0.5,seed:3")
    spec = resolve_fault_spec()
    assert spec is not None and spec.rate("job_error") == 0.5
    assert resolve_fault_spec(False) is None          # explicit off
    assert resolve_fault_spec("job_error:0.0") is None  # inactive spec
    monkeypatch.setenv("REPRO_FAULTS", "")
    assert resolve_fault_spec() is None


def test_injected_hang_requires_timeout():
    with pytest.raises(ValueError, match="job_hang"):
        SweepExecutor(jobs=1, faults="job_hang:0.5")
    # With a timeout the same spec is accepted.
    SweepExecutor(jobs=1, faults="job_hang:0.5", timeout=1.0)


def test_fault_decisions_are_pure_functions():
    spec = FaultSpec.parse("job_error:0.5,seed:9")
    a, b = FaultInjector(spec), FaultInjector(spec)
    decisions = [a.should("job_error", f"key{i}", 1) for i in range(64)]
    assert decisions == [b.should("job_error", f"key{i}", 1) for i in range(64)]
    assert any(decisions) and not all(decisions)
    # A different seed draws a different pattern.
    other = FaultInjector(FaultSpec.parse("job_error:0.5,seed:10"))
    assert decisions != [other.should("job_error", f"key{i}", 1)
                         for i in range(64)]


def test_retry_backoff_is_deterministic_and_bounded():
    first = retry_backoff("k", 1, base=0.1, seed=4)
    assert first == retry_backoff("k", 1, base=0.1, seed=4)
    assert 0.05 <= first < 0.1                     # base window, jittered
    assert 0.1 <= retry_backoff("k", 2, base=0.1, seed=4) < 0.2
    assert retry_backoff("k", 99, base=0.1, seed=4) <= 30.0  # capped
    assert retry_backoff("k", 1, base=0.0, seed=4) == 0.0


# ------------------------------------------------------- chaos determinism
def test_chaos_byte_identical_serial_vs_parallel():
    """The acceptance pin: same seed + spec => byte-identical records."""
    kwargs = dict(faults=CHAOS, retries=2, backoff=0.0, timeout=5.0,
                  failure_policy="salvage")
    serial = SweepExecutor(jobs=1, **kwargs).run(_jobs())
    serial_again = SweepExecutor(jobs=1, **kwargs).run(_jobs())
    parallel = SweepExecutor(jobs=3, **kwargs).run(_jobs())

    assert any(is_failure(r) for r in serial)       # the spec actually bites
    assert _canonical_run(serial) == _canonical_run(serial_again)
    assert _canonical_run(serial) == _canonical_run(parallel)
    # Slot-by-slot the records compare equal as values too (pickle bytes can
    # differ only via memoization of shared string identities, never values).
    assert serial == parallel
    for left, right in zip(serial, parallel):
        assert json.dumps(left.to_jsonable() if is_failure(left) else left,
                          sort_keys=True) == \
            json.dumps(right.to_jsonable() if is_failure(right) else right,
                       sort_keys=True)


def test_chaos_failure_records_carry_attempt_history():
    executor = SweepExecutor(jobs=1, faults="job_error:1.0,seed:2",
                             retries=2, backoff=0.01,
                             failure_policy="salvage")
    (result,) = executor.run(_jobs(1))
    assert is_failure(result)
    assert [a.attempt for a in result.attempts] == [1, 2, 3]
    assert all(a.outcome == "error" for a in result.attempts)
    assert all(a.injected for a in result.attempts)
    assert all(a.error_type == "FaultInjectionError" for a in result.attempts)
    # Backoff precedes every attempt but the last, deterministically.
    assert [a.backoff_seconds > 0 for a in result.attempts] == [
        True, True, False]
    assert result.attempts[0].backoff_seconds == retry_backoff(
        result.key, 1, 0.01, seed=2)
    stats = executor.last_stats
    assert (stats.retries, stats.failed_jobs) == (2, 1)
    assert stats.failures == [result.to_jsonable()]


def test_retries_recover_transient_faults():
    """A fault that hits attempt 1 but not attempt 2 costs a retry, not
    the job: with enough budget the sweep completes cleanly."""
    spec = FaultSpec.parse("job_error:0.4,seed:11")
    injector = FaultInjector(spec)
    executor = SweepExecutor(jobs=1, faults=spec, retries=6, backoff=0.0)
    jobs = _jobs()
    results = executor.run(jobs)
    assert results == [_double(i) for i in range(6)]
    # The spec fired on at least one first attempt (else the test is vacuous).
    keys = [job.cache_key(executor.salt) for job in jobs]
    assert any(injector.should("job_error", key, 1) for key in keys)
    assert executor.last_stats.retries > 0
    assert executor.last_stats.failed_jobs == 0


# ------------------------------------------------------------ timeouts
def test_timeout_kills_wedged_parallel_job():
    executor = SweepExecutor(jobs=2, timeout=0.5, retries=0,
                             failure_policy="salvage")
    ok, slow = executor.run([
        SweepJob(func=_double, kwargs={"value": 4}, label="fast"),
        SweepJob(func=_sleepy, kwargs={"value": 1, "seconds": 30.0},
                 label="slow"),
    ])
    assert ok == 8
    assert is_failure(slow) and slow.outcome == "timeout"
    assert "0.5" in slow.last.error
    assert executor.last_stats.timeouts == 1
    assert executor.last_stats.failed_jobs == 1


def test_injected_hang_times_out_serial_and_parallel_identically():
    kwargs = dict(faults="job_hang:1.0,seed:5", timeout=0.5, retries=1,
                  backoff=0.0, failure_policy="salvage")
    serial = SweepExecutor(jobs=1, **kwargs).run(_jobs(2))
    parallel = SweepExecutor(jobs=2, **kwargs).run(_jobs(2))
    assert all(is_failure(r) and r.outcome == "timeout" for r in serial)
    assert _canonical_run(serial) == _canonical_run(parallel)


def test_worker_crash_detected_and_resubmitted():
    """A crash on attempt 1 only: the pool respawns the worker and the
    resubmitted attempt completes the sweep."""
    executor = SweepExecutor(jobs=2, faults="worker_crash:0.3,seed:11",
                             retries=2, backoff=0.0, timeout=10.0)
    results = executor.run(_jobs())
    assert results == [_double(i) for i in range(6)]
    assert executor.last_stats.worker_crashes > 0
    assert executor.last_stats.retries > 0
    assert executor.last_stats.failed_jobs == 0


# ------------------------------------------------------ strict vs salvage
def test_strict_policy_reraises_original_exception():
    jobs = [SweepJob(func=_double, kwargs={"value": 1}),
            SweepJob(func=_double, kwargs={"value": 2, "fail": True})]
    for workers in (1, 2):
        executor = SweepExecutor(jobs=workers, retries=1, backoff=0.0)
        with pytest.raises(ValueError, match="bad value 2"):
            executor.run(jobs)
        # Stats and failure records are assembled before the raise.
        assert executor.last_stats.failed_jobs == 1
        assert executor.last_stats.retries == 1
        assert len(executor.last_stats.failures) == 1


def test_strict_policy_wraps_recordless_failures():
    executor = SweepExecutor(jobs=1, faults="worker_crash:1.0,seed:1",
                             retries=0, timeout=5.0)
    with pytest.raises(JobFailureError) as excinfo:
        executor.run(_jobs(1))
    assert excinfo.value.failure.outcome == "worker_crash"


def test_salvage_policy_returns_sentinels_in_slot():
    jobs = [SweepJob(func=_double, kwargs={"value": 1}),
            SweepJob(func=_double, kwargs={"value": 2, "fail": True}),
            SweepJob(func=_double, kwargs={"value": 3})]
    results = SweepExecutor(jobs=1, retries=0,
                            failure_policy="salvage").run(jobs)
    assert results[0] == 2 and results[2] == 6
    assert is_failure(results[1])
    assert results[1].last.error_type == "ValueError"
    assert "bad value 2" in results[1].last.error
    assert "ValueError" in results[1].last.traceback


def test_per_run_policy_overrides_executor_policy():
    executor = SweepExecutor(jobs=1, retries=0)  # strict by default
    jobs = [SweepJob(func=_double, kwargs={"value": 2, "fail": True})]
    (sentinel,) = executor.run(jobs, failure_policy="salvage")
    assert is_failure(sentinel)
    with pytest.raises(ValueError):
        executor.run(jobs)


def test_sweep_spec_failures_knob(tmp_path):
    """SweepSpec.run forwards the strict-vs-salvage knob to the executor."""
    from repro.cellular.synthetic import SyntheticTraceConfig, synthetic_trace
    config = SyntheticTraceConfig(mean_rate_bps=10e6, min_rate_bps=2e6,
                                  max_rate_bps=20e6, volatility=0.2,
                                  outage_rate_per_s=0.0, name="faults-test")
    traces = {"t1": synthetic_trace(config, duration=2.0, seed=5)}
    spec = SweepSpec(schemes=["abc"], traces=traces, duration=2.0)
    executor = SweepExecutor(jobs=1, faults="job_error:1.0,seed:1",
                             retries=0)
    with pytest.raises(FaultInjectionError):
        spec.run(executor)
    salvaged = spec.run(executor, failures="salvage")
    assert is_failure(salvaged["abc"]["t1"])


def test_aggregate_city_excludes_salvaged_cells():
    good = {"cell": "c0", "utilization": 0.9,
            "base_throughputs_bps": [1e6], "churn_throughputs_bps": [],
            "fct_s": [], "offered_flows": 1, "completed_flows": 1,
            "drops": 0, "queuing_hist": [0] * 58}
    bad = JobFailure(key="k", label="c1")
    city = aggregate_city([good, bad])
    assert city["cells"] == 1
    assert city["failed_cells"] == 1
    assert city["utilization_mean"] == pytest.approx(0.9)
    # Complete runs keep their golden-pinned layout.
    assert "failed_cells" not in aggregate_city([good])
    with pytest.raises(ValueError, match="1 failed"):
        aggregate_city([bad])


# ------------------------------------------------------- checkpoint/resume
def _interrupt_after(n: int):
    """A progress callback that raises KeyboardInterrupt mid-sweep."""
    state = {"calls": 0}

    def callback(progress):
        state["calls"] += 1
        # The tracker emits one initial tick before any job completes.
        if state["calls"] == n + 1:
            raise KeyboardInterrupt

    return callback


@pytest.mark.parametrize("use_cache", [False, True])
def test_journal_resume_executes_exactly_missing_cells(tmp_path, use_cache):
    cache_dir = (tmp_path / "cache") if use_cache else None
    jdir = tmp_path / "journal"
    jobs = _jobs()

    interrupted = SweepExecutor(jobs=1, cache_dir=cache_dir, journal=jdir,
                                progress=_interrupt_after(3))
    with pytest.raises(KeyboardInterrupt):
        interrupted.run(jobs)

    resumed = SweepExecutor(jobs=1, cache_dir=cache_dir, journal=jdir,
                            progress=False)
    results = resumed.run(jobs)
    stats = resumed.last_stats
    assert stats.executed == 3                       # exactly the missing ones
    if use_cache:
        assert stats.cache_hits == 3 and stats.journal_hits == 0
    else:
        assert stats.journal_hits == 3 and stats.cache_hits == 0

    reference = SweepExecutor(jobs=1).run(jobs)
    assert pickle.dumps(results) == pickle.dumps(reference)


def test_journal_is_keyed_by_job_content(tmp_path):
    """A different sweep (or changed code salt) gets a fresh journal."""
    jdir = tmp_path / "journal"
    first = SweepExecutor(jobs=1, journal=jdir)
    first.run(_jobs(3))
    other = SweepExecutor(jobs=1, journal=jdir)
    other.run(_jobs(4))                              # different grid
    assert len(list(jdir.glob("run-*.journal"))) == 2
    # Identical grid resumes instead of re-running.
    replay = SweepExecutor(jobs=1, journal=jdir)
    replay.run(_jobs(3))
    assert replay.last_stats.executed == 0
    assert replay.last_stats.journal_hits == 3


def test_journal_tolerates_torn_tail(tmp_path):
    jdir = tmp_path / "journal"
    executor = SweepExecutor(jobs=1, journal=jdir)
    jobs = _jobs(3)
    executor.run(jobs)
    path = next(jdir.glob("run-*.journal"))
    path.write_text(path.read_text() + '{"key": "tor')   # crash mid-append
    keys = [job.cache_key(executor.salt) for job in jobs]
    journal = RunJournal(jdir, run_key_for(keys))
    assert len(journal.load()) == 3


def test_run_key_is_order_independent():
    keys = [f"key-{i}" for i in range(5)]
    assert run_key_for(keys) == run_key_for(list(reversed(keys)))
    assert run_key_for(keys) != run_key_for(keys[:-1])


def test_failed_cells_are_not_journaled(tmp_path):
    jdir = tmp_path / "journal"
    executor = SweepExecutor(jobs=1, journal=jdir,
                             faults="job_error:1.0,seed:2", retries=0,
                             failure_policy="salvage")
    (sentinel,) = executor.run(_jobs(1))
    assert is_failure(sentinel)
    # A later run without faults re-executes the cell from scratch.
    retry = SweepExecutor(jobs=1, journal=jdir)
    (value,) = retry.run(_jobs(1))
    assert value == 0
    assert retry.last_stats.executed == 1


def test_fuzz_campaign_resume_and_salvage(tmp_path):
    from repro.fuzz.campaign import run_campaign

    jdir = tmp_path / "journal"
    first = run_campaign(budget=2, seed=3, jobs=1, shrink=False,
                         check_determinism=False, journal=jdir)
    # Resume of the identical campaign executes nothing new.
    executor = SweepExecutor(jobs=1, journal=jdir)
    resumed = run_campaign(budget=2, seed=3, executor=executor, shrink=False,
                           check_determinism=False)
    assert executor.last_stats.executed == 0
    assert executor.last_stats.journal_hits == 2
    assert resumed == first
    assert first["failed_jobs"] == []

    # Salvage: an exhausted scenario becomes a failed_jobs entry, and the
    # report stays deterministic under the same fault spec.
    def chaos_campaign():
        chaos_executor = SweepExecutor(jobs=1, faults="job_error:0.6,seed:4",
                                       retries=0)
        return run_campaign(budget=3, seed=3, executor=chaos_executor,
                            shrink=False, check_determinism=False,
                            failures="salvage")
    report = chaos_campaign()
    assert report["format"] == 3
    assert len(report["failed_jobs"]) > 0
    assert not report["clean"]
    assert report == chaos_campaign()


# ---------------------------------------------------------- cache satellite
def test_cache_write_failure_degrades_to_miss(tmp_path, monkeypatch, capsys):
    cache = ResultCache(tmp_path / "cache")

    def refuse(*args, **kwargs):
        raise PermissionError("read-only file system")

    monkeypatch.setattr("repro.runtime.cache.tempfile.mkstemp", refuse)
    cache.put("a" * 64, {"value": 1})                # must not raise
    assert cache.write_errors == 1
    assert cache.stores == 0
    assert "cache write failed" in capsys.readouterr().err
    hit, _ = cache.get("a" * 64)
    assert not hit


def test_read_only_cache_dir_does_not_crash_sweep(tmp_path):
    cache_dir = tmp_path / "cache"
    cache_dir.mkdir()
    cache_dir.chmod(0o500)
    try:
        probe = cache_dir / "probe"
        writable = True
        try:
            probe.mkdir()
            probe.rmdir()
        except OSError:
            writable = False
        if writable:
            pytest.skip("running with CAP_DAC_OVERRIDE; chmod cannot "
                        "produce a read-only dir")
        executor = SweepExecutor(jobs=1, cache_dir=cache_dir)
        assert executor.run(_jobs(3)) == [0, 2, 4]
        assert executor.last_stats.cache_write_errors == 3
    finally:
        cache_dir.chmod(0o700)


def test_injected_cache_write_faults_are_counted(tmp_path):
    executor = SweepExecutor(jobs=1, cache_dir=tmp_path / "cache",
                             faults="cache_write_fail:1.0,seed:1")
    assert executor.run(_jobs(3)) == [0, 2, 4]
    assert executor.last_stats.cache_write_errors == 3
    # Nothing was cached: the replay executes everything again.
    replay = SweepExecutor(jobs=1, cache_dir=tmp_path / "cache")
    replay.run(_jobs(3))
    assert replay.last_stats.executed == 3


# ----------------------------------------------------- observability hooks
def test_manifest_records_failures_and_retry_stats():
    executor = SweepExecutor(jobs=1, faults="job_error:1.0,seed:2",
                             retries=1, backoff=0.0,
                             failure_policy="salvage")
    executor.run(_jobs(1))
    record = executor_record(executor)
    assert record["retries"] == 1
    assert record["failed_jobs"] == 1
    assert len(record["failures"]) == 1
    assert record["failures"][0]["attempts"][0]["outcome"] == "error"
    json.dumps(record)                                # JSON-able end to end

    # A clean run keeps the legacy manifest layout (no zero-noise keys).
    clean = SweepExecutor(jobs=1)
    clean.run(_jobs(1))
    clean_record = executor_record(clean)
    assert "failures" not in clean_record
    assert "retries" not in clean_record


def test_trace_renders_retried_attempts_as_spans():
    records = [
        {"label": "cell-a", "pid": 10, "start_unix": 100.0,
         "wall_seconds": 0.2, "attempt": 1, "outcome": "error"},
        {"label": "cell-a", "pid": 11, "start_unix": 101.0,
         "wall_seconds": 0.3, "attempt": 2, "outcome": "ok"},
        {"label": "cell-b", "pid": None, "start_unix": 100.5,
         "wall_seconds": 0.1, "attempt": 1, "outcome": "worker_crash"},
        {"label": "cell-c", "pid": 10, "start_unix": 102.0,
         "wall_seconds": 0.2},
    ]
    events = sweep_trace_events(records)
    spans = {e["name"]: e for e in events if e.get("ph") == "X"}
    assert spans["cell-a [attempt 1]"]["cat"] == "retry"
    assert spans["cell-a [attempt 2]"]["cat"] == "retry"
    assert spans["cell-b [attempt 1]"]["cat"] == "worker_crash"
    assert spans["cell-c"]["cat"] == "sweep"
    # Unattributed records land on their own labelled row.
    names = [e["args"]["name"] for e in events if e.get("ph") == "M"]
    assert "unattributed" in names


def test_resilient_job_records_tag_attempts():
    executor = SweepExecutor(jobs=1, faults="job_error:1.0,seed:2",
                             retries=1, backoff=0.0,
                             failure_policy="salvage")
    executor.run(_jobs(1))
    outcomes = [(r["attempt"], r["outcome"])
                for r in executor.last_stats.job_records]
    assert outcomes == [(1, "error"), (2, "error")]


# --------------------------------------------------------- SIGINT cleanup
_SIGINT_SCRIPT = textwrap.dedent("""
    import multiprocessing
    import sys
    import time

    sys.path.insert(0, {src!r})
    from repro.runtime import SweepExecutor, SweepJob
    from tests.test_runtime_faults import _sleepy

    if __name__ == "__main__":
        with SweepExecutor(jobs=2) as executor:
            jobs = [SweepJob(func=_sleepy,
                             kwargs={{"value": i, "seconds": 60.0}})
                    for i in range(2)]
            print("READY", flush=True)
            try:
                executor.run(jobs)
            except KeyboardInterrupt:
                # The executor must have torn its pool down already.
                leftover = multiprocessing.active_children()
                print(f"ORPHANS {{len(leftover)}}", flush=True)
                sys.exit(0)
        print("ORPHANS unreachable", flush=True)
        sys.exit(1)
""")


def test_sigint_leaves_no_orphaned_workers(tmp_path):
    repo_root = Path(__file__).resolve().parents[1]
    script = tmp_path / "sigint_child.py"
    script.write_text(_SIGINT_SCRIPT.format(src=str(repo_root / "src")))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(repo_root / "src"), str(repo_root)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    child = subprocess.Popen([sys.executable, str(script)],
                             stdout=subprocess.PIPE, text=True, env=env,
                             cwd=repo_root)
    try:
        assert child.stdout.readline().strip() == "READY"
        time.sleep(1.0)                  # let the pool start its workers
        child.send_signal(signal.SIGINT)
        out, _ = child.communicate(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
            child.communicate()
    assert child.returncode == 0, out
    assert "ORPHANS 0" in out
