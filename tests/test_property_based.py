"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fairness import jain_fairness_index
from repro.analysis.maxmin import max_min_allocation
from repro.analysis.topk import SpaceSaving
from repro.core.marking import TokenBucketMarker
from repro.core.params import ABCParams
from repro.core.router import ABCRouterQdisc
from repro.core.sender import ABCWindowControl
from repro.core.stability import FluidModel
from repro.simulator.engine import EventLoop
from repro.simulator.estimators import WindowedMinMax, WindowedRateEstimator
from repro.simulator.packet import AckFeedback, ECN, MTU, Packet, apply_brake
from repro.simulator.qdisc import FifoQdisc

# Keep hypothesis example counts moderate so the suite stays fast.
SETTINGS = settings(max_examples=60, deadline=None)


# ------------------------------------------------------------ event loop
@SETTINGS
@given(st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=50))
def test_event_loop_processes_events_in_nondecreasing_time(delays):
    loop = EventLoop()
    fired = []
    for d in delays:
        loop.schedule(d, lambda t=d: fired.append(loop.now))
    loop.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


#: Small palette with deliberate duplicates so generated schedules collide on
#: identical timestamps, exercising the insertion-order tie-break.
_TIE_TIMES = (0.0, 0.25, 0.25, 0.5, 1.0, 1.0)


def _run_interleaved_schedule(ops):
    """Replay a schedule of same-timestamp inserts, cancellations and nested
    re-scheduling; returns (firing order, cancelled ids)."""
    loop = EventLoop()
    fired = []
    handles = []
    cancelled = set()

    def make_callback(op_id, nest_delay):
        def callback():
            fired.append(op_id)
            if nest_delay is not None:
                # Nested event lands on an already-populated timestamp.
                loop.schedule(nest_delay, fired.append, (op_id, "nested"))
        return callback

    for op_id, (time_idx, nested, cancel) in enumerate(ops):
        delay = _TIE_TIMES[time_idx % len(_TIE_TIMES)]
        handle = loop.schedule(delay, make_callback(op_id, 0.0 if nested else None))
        handles.append(handle)
        if cancel and handles:
            victim = len(handles) // 2
            handles[victim].cancel()
            cancelled.add(victim)
    loop.run()
    return fired, cancelled


@SETTINGS
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=11),
                          st.booleans(), st.booleans()),
                min_size=1, max_size=40))
def test_event_loop_interleaved_schedule_is_deterministic(ops):
    """Two identical runs fire callbacks in identical order (the property the
    parallel sweep executor's bit-for-bit equivalence rests on)."""
    first, cancelled_a = _run_interleaved_schedule(ops)
    second, cancelled_b = _run_interleaved_schedule(ops)
    assert first == second
    assert cancelled_a == cancelled_b
    # Cancelled events never fire, everything else fires exactly once.
    fired_ids = [f for f in first if isinstance(f, int)]
    assert set(fired_ids) == set(range(len(ops))) - cancelled_a
    assert len(fired_ids) == len(set(fired_ids))


@SETTINGS
@given(st.lists(st.integers(min_value=0, max_value=11), min_size=2, max_size=30))
def test_event_loop_ties_fire_in_insertion_order(time_indices):
    loop = EventLoop()
    fired = []
    for op_id, time_idx in enumerate(time_indices):
        loop.schedule(_TIE_TIMES[time_idx % len(_TIE_TIMES)],
                      fired.append, op_id)
    loop.run()
    by_time = {}
    for op_id in fired:
        delay = _TIE_TIMES[time_indices[op_id] % len(_TIE_TIMES)]
        by_time.setdefault(delay, []).append(op_id)
    for same_time_ids in by_time.values():
        assert same_time_ids == sorted(same_time_ids)


# ------------------------------------------------------------ token bucket
@SETTINGS
@given(st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=1, max_value=2000))
def test_token_bucket_fraction_invariant(fraction, n):
    marker = TokenBucketMarker()
    accels = sum(marker.mark(fraction) for _ in range(n))
    # Never more accelerates than the cumulative fraction allows (+1 for the
    # token that may be outstanding at the end).
    assert accels <= fraction * n + 1.0


@SETTINGS
@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=500))
def test_token_bucket_bounded_by_cumulative_fraction(fractions):
    marker = TokenBucketMarker()
    accels = sum(marker.mark(f) for f in fractions)
    assert accels <= sum(fractions) + 1.0
    assert marker.token >= 0.0


# ------------------------------------------------------------ ECN / router
@SETTINGS
@given(st.sampled_from(list(ECN)))
def test_apply_brake_never_upgrades(codepoint):
    result = apply_brake(codepoint)
    assert result != ECN.ACCEL or codepoint == ECN.ACCEL
    # Applying brake twice is idempotent.
    assert apply_brake(result) == result


@SETTINGS
@given(st.floats(min_value=1e5, max_value=1e9),
       st.integers(min_value=0, max_value=400),
       st.floats(min_value=0.01, max_value=1.0))
def test_router_target_rate_bounded(capacity, queue_packets, delta):
    params = ABCParams(delta=delta)
    router = ABCRouterQdisc(params=params, buffer_packets=500,
                            capacity_fn=lambda now: capacity)
    for i in range(queue_packets):
        router.enqueue(Packet(flow_id=0, seq=i), 0.0)
    tr = router.target_rate(0.0)
    assert 0.0 <= tr <= params.eta * capacity + 1e-6


@SETTINGS
@given(st.floats(min_value=1e5, max_value=1e8))
def test_router_accel_fraction_in_unit_interval(capacity):
    router = ABCRouterQdisc(capacity_fn=lambda now: capacity)
    now = 0.0
    for i in range(50):
        router.enqueue(Packet(flow_id=0, seq=i), now)
        router.dequeue(now)
        now += 0.001
    assert 0.0 <= router.accel_fraction(now) <= 1.0


# ------------------------------------------------------------ ABC sender
@SETTINGS
@given(st.lists(st.booleans(), min_size=1, max_size=400),
       st.floats(min_value=2.0, max_value=100.0))
def test_abc_window_stays_positive_and_finite(accel_pattern, initial):
    cc = ABCWindowControl(initial_cwnd=initial, dual_window=False)
    now = 0.0
    for accel in accel_pattern:
        cc.on_ack(AckFeedback(now=now, rtt=0.1, bytes_acked=MTU, accel=accel,
                              ece=False, packets_in_flight=50))
        now += 0.001
    assert cc.w_abc >= cc.min_cwnd()
    assert math.isfinite(cc.w_abc)
    assert cc.cwnd() >= cc.min_cwnd()


@SETTINGS
@given(st.integers(min_value=1, max_value=60))
def test_abc_window_cap_respects_in_flight(in_flight):
    cc = ABCWindowControl(initial_cwnd=5.0)
    cc.w_abc = 10_000.0
    cc.cubic._cwnd = 10_000.0
    cc.on_ack(AckFeedback(now=1.0, rtt=0.1, bytes_acked=MTU, accel=True,
                          ece=False, packets_in_flight=in_flight))
    cap = cc.params.window_cap_factor * (in_flight + 1)
    assert cc.w_abc <= cap + 1e-9
    assert cc.w_nonabc <= cap + 1e-9


# ------------------------------------------------------------ estimators
@SETTINGS
@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=100.0),
                          st.integers(min_value=1, max_value=100_000)),
                min_size=1, max_size=100))
def test_rate_estimator_never_negative(samples):
    est = WindowedRateEstimator(window=0.5)
    last = 0.0
    for t, size in sorted(samples):
        est.add(t, size)
        last = t
    assert est.rate_bps(last) >= 0.0


@SETTINGS
@given(st.lists(st.floats(min_value=0.001, max_value=10.0), min_size=1, max_size=200))
def test_windowed_minmax_invariants(values):
    w_max = WindowedMinMax(window=1e9, mode="max")
    w_min = WindowedMinMax(window=1e9, mode="min")
    for i, v in enumerate(values):
        w_max.update(float(i), v)
        w_min.update(float(i), v)
    assert w_max.get() == max(values)
    assert w_min.get() == min(values)


# ------------------------------------------------------------ queues
@SETTINGS
@given(st.lists(st.integers(min_value=40, max_value=3000), min_size=1, max_size=300),
       st.integers(min_value=1, max_value=100))
def test_fifo_conservation(sizes, buffer_packets):
    q = FifoQdisc(buffer_packets=buffer_packets)
    accepted = 0
    for i, size in enumerate(sizes):
        if q.enqueue(Packet(flow_id=0, seq=i, size=size), 0.0):
            accepted += 1
    dequeued = 0
    while q.dequeue(1.0) is not None:
        dequeued += 1
    assert accepted == dequeued
    assert accepted + q.dropped_packets == len(sizes)
    assert q.backlog_bytes == 0 and q.backlog_packets == 0


# ------------------------------------------------------------ allocation
@SETTINGS
@given(st.dictionaries(st.integers(min_value=0, max_value=20),
                       st.floats(min_value=0.0, max_value=100.0),
                       min_size=1, max_size=20),
       st.floats(min_value=0.0, max_value=200.0))
def test_max_min_allocation_invariants(demands, capacity):
    allocation = max_min_allocation(demands, capacity)
    assert sum(allocation.values()) <= capacity + 1e-6
    for key, value in allocation.items():
        assert -1e-9 <= value <= max(demands[key], 0.0) + 1e-6


@SETTINGS
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_jain_index_bounds(allocations):
    index = jain_fairness_index(allocations)
    assert 1.0 / len(allocations) - 1e-9 <= index <= 1.0 + 1e-9


# ------------------------------------------------------------ Space-Saving
@SETTINGS
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=30),
                          st.integers(min_value=1, max_value=1000)),
                min_size=1, max_size=300),
       st.integers(min_value=1, max_value=16))
def test_space_saving_never_underestimates_and_bounded(updates, capacity):
    ss = SpaceSaving(capacity=capacity)
    true_counts = {}
    for key, amount in updates:
        ss.update(key, amount)
        true_counts[key] = true_counts.get(key, 0) + amount
    assert len(ss) <= capacity
    for key in ss.tracked_keys():
        assert ss.estimate(key) + 1e-9 >= true_counts.get(key, 0)


# ------------------------------------------------------------ fluid model
@SETTINGS
@given(st.floats(min_value=0.07, max_value=0.5),
       st.integers(min_value=0, max_value=30),
       st.floats(min_value=0.0, max_value=0.5))
def test_fluid_model_queue_nonnegative_and_bounded(delta, flows, initial):
    model = FluidModel(params=ABCParams(delta=delta), tau=0.05,
                       num_flows=flows, capacity_bps=20e6)
    result = model.simulate(duration=5.0, step=5e-3, initial_delay=initial)
    assert (result.queuing_delay >= 0.0).all()
    assert (result.queuing_delay <= max(initial, result.fixed_point) + 1.0).all()


# ------------------------------------------------------------ full scenarios
# End-to-end property: ANY small valid scenario satisfies the fuzzing
# invariant suite.  Reuses repro.fuzz.invariants rather than re-deriving the
# checks; the fuzz campaign explores this space at scale, hypothesis owns
# the corner-seeking (minimum rates, boundary RTTs, simultaneous starts).
from repro.fuzz.generator import FlowSpec, FuzzScenario, LinkSpec, NATIVE
from repro.fuzz.generator import build_scenario
from repro.fuzz.invariants import CheckContext, CwndProbe, run_invariants

# A fast subset of the scheme pool (one loss-based, one delay-based, one
# AQM pairing, ABC itself, and one explicit-feedback router).
_SCENARIO_SCHEMES = ("cubic", "vegas", "cubic+codel", "abc", "rcp")

_link_specs = st.one_of(
    st.builds(lambda rate, buf: LinkSpec(kind="constant",
                                         params={"rate_bps": rate},
                                         buffer_packets=buf),
              st.floats(min_value=1e6, max_value=15e6),
              st.sampled_from((10, 50, 250))),
    st.builds(lambda low, ratio, period, buf: LinkSpec(
                  kind="square",
                  params={"low_bps": low, "high_bps": low * ratio,
                          "half_period": period},
                  buffer_packets=buf),
              st.floats(min_value=1e6, max_value=6e6),
              st.floats(min_value=1.5, max_value=3.0),
              st.floats(min_value=0.2, max_value=0.8),
              st.sampled_from((25, 100))),
)

_flow_specs = st.builds(
    lambda rtt, start: FlowSpec(cc=NATIVE, rtt=rtt, start_time=start),
    st.floats(min_value=0.02, max_value=0.2),
    st.floats(min_value=0.0, max_value=0.75))

_scenarios = st.builds(
    lambda scheme, link, flows, sim_seed: FuzzScenario(
        scenario_id=0, scheme=scheme, duration=1.5, links=[link],
        flows=flows, sim_seed=sim_seed),
    st.sampled_from(_SCENARIO_SCHEMES),
    _link_specs,
    st.lists(_flow_specs, min_size=1, max_size=3),
    st.integers(min_value=0, max_value=2**16))


@settings(max_examples=12, deadline=None)
@given(_scenarios)
def test_random_small_scenarios_satisfy_invariant_suite(fuzz):
    fuzz.validate()
    built = build_scenario(fuzz)
    probe = CwndProbe(built)
    result = built.scenario.run(fuzz.duration)
    ctx = CheckContext(fuzz=fuzz, built=built, result=result,
                       cwnd_samples=probe.samples)
    violations = run_invariants(ctx)
    assert violations == [], [v.message for v in violations]


# ------------------------------------------------------------ metro workload
# The metro pack's determinism contract: every generator is a pure function
# of (cell, seed), bounds are hard, and the generated workload survives the
# pickle round-trip the multiprocessing sweep executor puts it through.
import pickle

from repro.metro.workload import (bounded_pareto_sizes, parse_mix,
                                  poisson_arrivals, scheme_assignment)

_cells = st.text(alphabet="abcdefgh-0123456789", min_size=1, max_size=12)
_seeds = st.integers(min_value=0, max_value=2**32)


@SETTINGS
@given(st.floats(min_value=0.1, max_value=50.0),
       st.floats(min_value=0.1, max_value=20.0), _cells, _seeds)
def test_poisson_arrivals_deterministic_ascending_bounded(rate, duration,
                                                          cell, seed):
    first = poisson_arrivals(rate, duration, cell, seed)
    assert first == poisson_arrivals(rate, duration, cell, seed)
    assert first == sorted(first)
    assert len(first) == len(set(first)), "coincident arrivals"
    assert all(0.0 < t < duration for t in first)


@SETTINGS
@given(st.floats(max_value=0.0, min_value=-10.0), _cells, _seeds)
def test_poisson_arrivals_empty_for_nonpositive_rate(rate, cell, seed):
    assert poisson_arrivals(rate, 10.0, cell, seed) == []
    assert poisson_arrivals(2.0, 0.0, cell, seed) == []


@SETTINGS
@given(st.integers(min_value=0, max_value=500),
       st.integers(min_value=1, max_value=10_000),
       st.integers(min_value=0, max_value=1_000_000),
       st.floats(min_value=0.3, max_value=3.0), _cells, _seeds)
def test_bounded_pareto_sizes_deterministic_and_bounded(n, min_bytes, extra,
                                                        alpha, cell, seed):
    max_bytes = min_bytes + extra
    first = bounded_pareto_sizes(n, cell, seed, min_bytes=min_bytes,
                                 max_bytes=max_bytes, alpha=alpha)
    assert first == bounded_pareto_sizes(n, cell, seed, min_bytes=min_bytes,
                                         max_bytes=max_bytes, alpha=alpha)
    assert len(first) == n
    assert all(isinstance(size, int) for size in first)
    assert all(min_bytes <= size <= max_bytes for size in first)


@SETTINGS
@given(st.integers(min_value=0, max_value=300),
       st.lists(st.tuples(st.sampled_from(("abc", "cubic", "bbr", "vegas")),
                          st.floats(min_value=0.01, max_value=10.0)),
                min_size=1, max_size=4), _cells, _seeds)
def test_scheme_assignment_deterministic_and_closed(n, mix, cell, seed):
    first = scheme_assignment(n, mix, cell, seed)
    assert first == scheme_assignment(n, mix, cell, seed)
    assert len(first) == n
    names = {name for name, _ in mix}
    assert all(scheme in names for scheme in first)


@SETTINGS
@given(st.lists(st.tuples(st.sampled_from(("abc", "cubic", "bbr", "sprout")),
                          st.floats(min_value=0.01, max_value=9.99)),
                min_size=1, max_size=5, unique_by=lambda pair: pair[0]))
def test_parse_mix_round_trips_weighted_labels(mix):
    label = ",".join(f"{name}:{weight!r}" for name, weight in mix)
    assert parse_mix(label) == list(mix)
    # A bare scheme name is a weight-1.0 single-scheme mix.
    assert parse_mix(mix[0][0]) == [(mix[0][0], 1.0)]


@SETTINGS
@given(_cells, _seeds, st.floats(min_value=0.5, max_value=4.0))
def test_metro_jobs_pickle_round_trip(cell_suffix, seed, rate):
    """Sweep-job kwargs — including the square-wave link tuples — must
    survive the pickle trip to a multiprocessing worker unchanged."""
    from repro.metro import metro_pack

    spec = metro_pack(2, duration=1.0, trace_seed=seed % 1000 + 1,
                      seeds=(seed % 7,), arrival_rate=rate)
    _cells_out, jobs = spec.expand()
    for job in jobs:
        assert pickle.loads(pickle.dumps(job.kwargs)) == job.kwargs
