"""Observability subsystem: registry, harvest, merge-back, manifests, traces.

Pins the contracts ``src/repro/obs`` is built on:

* disabled mode hands out shared no-op instruments and records nothing;
* instruments merge exactly and order-independently, so serial and parallel
  sweeps produce identical merged counter totals;
* simulation results are bit-identical with telemetry on and off (and with
  the engine trace hook attached);
* run manifests round-trip through JSON with the documented schema, and the
  provenance record embedded in fuzz reports is deterministic;
* the executor counts corrupt cache entries distinctly from ordinary misses.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import manifest as obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs import progress
from repro.obs.manifest import MANIFEST_SCHEMA, provenance
from repro.obs.metrics import (NULL_COUNTER, NULL_GAUGE, NULL_TIMER,
                               MetricsRegistry, TimerHist)
from repro.obs.progress import (ProgressTracker, resolve_progress,
                                stderr_reporter)
from repro.obs.trace import (EventTraceRecorder, sweep_trace_events,
                             write_chrome_trace)
from repro.runtime.executor import SweepExecutor, SweepJob
from repro.runtime.spec import SweepSpec
from repro.simulator.engine import EventLoop

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _clean_registry():
    """Each test starts and ends with an empty process registry."""
    obs_metrics.registry().reset()
    yield
    obs_metrics.registry().reset()


# ---------------------------------------------------------------------------
# Registry: enabled vs disabled
# ---------------------------------------------------------------------------
def test_disabled_handles_are_noop_singletons():
    with obs_metrics.override(False):
        assert obs_metrics.counter("x") is NULL_COUNTER
        assert obs_metrics.gauge("x") is NULL_GAUGE
        assert obs_metrics.timer("x") is NULL_TIMER
        obs_metrics.counter("x").inc(5)
        obs_metrics.gauge("x").set(3.0)
        obs_metrics.timer("x").observe_ns(100)
        with obs_metrics.timer("x").time():
            pass
    snap = obs_metrics.registry().snapshot()
    assert snap == {"counters": {}, "gauges": {}, "timers": {}}


def test_enabled_handles_record():
    with obs_metrics.override(True):
        obs_metrics.counter("a").inc()
        obs_metrics.counter("a").inc(2)
        obs_metrics.gauge("g").set(7)
        with obs_metrics.timer("t").time():
            pass
    snap = obs_metrics.registry().snapshot()
    assert snap["counters"] == {"a": 3}
    assert snap["gauges"] == {"g": 7}
    assert snap["timers"]["t"]["count"] == 1
    assert snap["timers"]["t"]["total_ns"] >= 0


def test_override_nesting_restores_previous_state(monkeypatch):
    monkeypatch.delenv(obs_metrics.TELEMETRY_ENV, raising=False)
    assert not obs_metrics.enabled()
    with obs_metrics.override(True):
        assert obs_metrics.enabled()
        with obs_metrics.override(False):
            assert not obs_metrics.enabled()
        assert obs_metrics.enabled()
    assert not obs_metrics.enabled()


def test_env_knob(monkeypatch):
    monkeypatch.setenv(obs_metrics.TELEMETRY_ENV, "1")
    assert obs_metrics.enabled()
    monkeypatch.setenv(obs_metrics.TELEMETRY_ENV, "0")
    assert not obs_metrics.enabled()


# ---------------------------------------------------------------------------
# TimerHist math and merging
# ---------------------------------------------------------------------------
def test_timer_hist_stats():
    t = TimerHist("t")
    for ns in (5, 1, 9, 0):
        t.observe_ns(ns)
    assert t.count == 4
    assert t.total_ns == 15
    assert t.min_ns == 0
    assert t.max_ns == 9
    assert t.mean_ns == pytest.approx(3.75)
    data = t.to_jsonable()
    # 0 → bucket 0, 1 → bucket 1, 5 → bucket 3, 9 → bucket 4.
    assert data["buckets"] == [1, 1, 0, 1, 1]
    assert sum(data["buckets"]) == t.count


def test_timer_hist_merge_equals_combined_observations():
    combined, a, b = TimerHist("c"), TimerHist("a"), TimerHist("b")
    for ns in (10, 200, 3_000):
        a.observe_ns(ns)
        combined.observe_ns(ns)
    for ns in (1, 40_000):
        b.observe_ns(ns)
        combined.observe_ns(ns)
    a.merge(b.to_jsonable())
    assert a.to_jsonable() == combined.to_jsonable()


def test_registry_merge_is_order_independent():
    snap_a = {"counters": {"c": 3}, "gauges": {"g": 2.0},
              "timers": {"t": TimerHist("t").to_jsonable()}}
    snap_b = {"counters": {"c": 4, "d": 1}, "gauges": {"g": 5.0},
              "timers": {}}
    ab, ba = MetricsRegistry(), MetricsRegistry()
    ab.merge(snap_a), ab.merge(snap_b)
    ba.merge(snap_b), ba.merge(snap_a)
    assert ab.snapshot() == ba.snapshot()
    assert ab.snapshot()["counters"] == {"c": 7, "d": 1}
    assert ab.snapshot()["gauges"] == {"g": 5.0}


# ---------------------------------------------------------------------------
# Scenario harvest
# ---------------------------------------------------------------------------
def _run_fig_cell(**overrides):
    from repro.experiments.runner import run_single_bottleneck
    kwargs = dict(scheme="abc", link_spec=12e6, rtt=0.05, duration=2.0,
                  buffer_packets=100, seed=0)
    kwargs.update(overrides)
    return run_single_bottleneck(**kwargs)


def test_harvest_publishes_component_counters():
    with obs_metrics.override(True):
        result = _run_fig_cell()
    scenario = result.extra["scenario"]
    counters = obs_metrics.registry().snapshot()["counters"]
    assert counters["scenario.runs"] == 1
    assert counters["engine.events_dispatched"] == scenario.env.events_processed
    assert counters["engine.events_cancelled"] == scenario.env.cancels
    assert counters["engine.compactions"] == scenario.env.compactions
    link = scenario.links[0]
    assert counters["link.delivered_packets"] == link.delivered_packets
    sender = scenario.flows[0].sender
    assert counters["sender.acks_received"] == sender.acks_received
    assert counters["sender.rto_rearms"] == sender.rto_rearms
    assert counters["sender.packets_sent"] == sender.packets_sent
    assert sender.rto_rearms > 0  # ACK-clocked: re-armed throughout the run
    assert (counters["sender.fastpath_flows"]
            + counters["sender.classic_flows"]) == 1


def test_harvest_publishes_wheel_and_pacing_counters():
    """The scheduler-backend and fused-pacing counters ride the same
    end-of-run harvest: non-zero under REPRO_SCHED=wheel + a paced fastpath
    flow, zero (but present) on the classic heap/per-ACK configuration."""
    from repro.simulator import fastpath, sched

    with obs_metrics.override(True), sched.override("wheel"), \
            fastpath.override(True):
        # > 8 s so the cursor wraps the 4096-slot wheel at least once.
        result = _run_fig_cell(scheme="bbr", duration=9.0)
    scenario = result.extra["scenario"]
    counters = obs_metrics.registry().snapshot()["counters"]
    assert counters["engine.wheel_rotations"] == scenario.env.rotations
    assert counters["engine.wheel_rotations"] > 0
    assert counters["engine.overflow_spills"] == scenario.env.overflow_spills
    sender = scenario.flows[0].sender
    assert counters["sender.pace_ticks"] == sender.pace_ticks > 0
    assert counters["sender.pace_halts"] == sender.pace_halts

    obs_metrics.registry().reset()
    with obs_metrics.override(True), sched.override("heap"), \
            fastpath.override(False):
        _run_fig_cell(scheme="bbr")
    counters = obs_metrics.registry().snapshot()["counters"]
    assert counters["engine.wheel_rotations"] == 0
    assert counters["sender.pace_ticks"] == 0


def test_results_bit_identical_with_and_without_telemetry():
    with obs_metrics.override(False):
        off = _run_fig_cell()
    with obs_metrics.override(True):
        on = _run_fig_cell()
    assert off.throughput_bps == on.throughput_bps
    assert off.utilization == on.utilization
    assert off.delay_p95_ms == on.delay_p95_ms
    assert off.drops == on.drops


# ---------------------------------------------------------------------------
# Executor: merge-back determinism, job records, corrupt-entry accounting
# ---------------------------------------------------------------------------
def _scenario_counters(snapshot):
    """The deterministic (simulation-side) counters of a snapshot."""
    return {name: value for name, value in snapshot["counters"].items()
            if not name.startswith("executor.")}


def _small_spec():
    return SweepSpec(schemes=["abc", "cubic"], traces={"12mbps": 12e6},
                     seeds=(0, 1), duration=1.0)


def test_worker_merge_back_matches_serial(monkeypatch):
    monkeypatch.setenv(obs_metrics.TELEMETRY_ENV, "1")
    spec = _small_spec()

    obs_metrics.registry().reset()
    serial = spec.run_cells(SweepExecutor(jobs=1))
    serial_counters = _scenario_counters(obs_metrics.registry().snapshot())

    obs_metrics.registry().reset()
    parallel = spec.run_cells(SweepExecutor(jobs=2))
    parallel_counters = _scenario_counters(obs_metrics.registry().snapshot())

    assert serial_counters == parallel_counters
    assert serial_counters["scenario.runs"] == 4
    for (cell_s, res_s), (cell_p, res_p) in zip(serial, parallel):
        assert cell_s == cell_p
        assert res_s.throughput_bps == res_p.throughput_bps


def test_observed_run_collects_job_records(monkeypatch):
    monkeypatch.setenv(obs_metrics.TELEMETRY_ENV, "1")
    executor = SweepExecutor(jobs=2)
    _small_spec().run_cells(executor)
    stats = executor.last_stats
    assert stats.executed == 4
    assert len(stats.job_records) == 4
    for record in stats.job_records:
        assert record["wall_seconds"] > 0
        assert record["queue_wait_seconds"] >= 0
        assert record["pid"] > 0
        assert record["label"]
    timers = obs_metrics.registry().snapshot()["timers"]
    assert timers["executor.job_wall"]["count"] == 4


def test_unobserved_run_collects_nothing(monkeypatch):
    monkeypatch.delenv(obs_metrics.TELEMETRY_ENV, raising=False)
    monkeypatch.delenv(obs_manifest.RUN_DIR_ENV, raising=False)
    monkeypatch.delenv(progress.PROGRESS_ENV, raising=False)
    executor = SweepExecutor(jobs=1)
    SweepSpec(schemes=["abc"], traces={"12mbps": 12e6},
              duration=1.0).run_cells(executor)
    assert executor.last_stats.job_records == []
    assert obs_metrics.registry().snapshot()["counters"] == {}


def _double(x: int) -> int:
    return 2 * x


def test_executor_counts_corrupt_entries_distinctly(tmp_path):
    executor = SweepExecutor(jobs=1, cache_dir=tmp_path)
    jobs = [SweepJob(func=_double, kwargs={"x": 21}, label="j")]
    assert executor.run(jobs) == [42]
    assert executor.last_stats.cache_corrupt == 0
    (pkl,) = tmp_path.glob("*/*.pkl")
    pkl.write_bytes(b"not a pickle")
    assert executor.run(jobs) == [42]
    stats = executor.last_stats
    assert stats.cache_corrupt == 1
    assert stats.cache_hits == 0
    assert stats.executed == 1
    assert executor.cache.corrupt == 1
    # The corrupt entry was deleted and rewritten: next run hits cleanly.
    assert executor.run(jobs) == [42]
    assert executor.last_stats.cache_hits == 1
    assert executor.last_stats.cache_corrupt == 0


# ---------------------------------------------------------------------------
# Progress
# ---------------------------------------------------------------------------
def test_progress_tracker_counts_and_eta():
    seen = []
    tracker = ProgressTracker(total=3, cache_hits=1, callback=seen.append)
    assert seen[-1].done == 1 and seen[-1].eta_seconds is None
    tracker.job_done("a")
    tracker.job_done("b")
    last = seen[-1]
    assert last.done == 3 and last.total == 3
    assert last.executed == 2 and last.cache_hits == 1
    assert last.eta_seconds == pytest.approx(0.0, abs=1.0)
    assert last.cache_hit_rate == pytest.approx(1 / 3)
    assert last.label == "b"


def test_resolve_progress_semantics(monkeypatch):
    monkeypatch.delenv("REPRO_PROGRESS", raising=False)
    assert resolve_progress(None) is None
    assert resolve_progress(False) is None
    assert resolve_progress(True) is stderr_reporter
    sink = lambda p: None  # noqa: E731
    assert resolve_progress(sink) is sink
    monkeypatch.setenv("REPRO_PROGRESS", "1")
    assert resolve_progress(None) is stderr_reporter
    assert resolve_progress(False) is None
    with pytest.raises(TypeError):
        resolve_progress(42)


def test_executor_progress_callback():
    seen = []
    executor = SweepExecutor(jobs=1, progress=seen.append)
    SweepSpec(schemes=["abc"], traces={"12mbps": 12e6},
              duration=1.0).run_cells(executor)
    assert seen[-1].done == seen[-1].total == 1


# ---------------------------------------------------------------------------
# Manifests
# ---------------------------------------------------------------------------
def test_provenance_is_deterministic_and_timestamp_free():
    first, second = provenance(), provenance()
    assert first == second
    assert first["schema"] == MANIFEST_SCHEMA
    assert "created_unix" not in first
    assert first["code_version_salt"].startswith("repro-runtime")
    assert isinstance(first["knobs"], dict)


def test_sweep_manifest_round_trip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "runs"))
    monkeypatch.setenv(obs_metrics.TELEMETRY_ENV, "1")
    executor = SweepExecutor(jobs=1)
    spec = _small_spec()
    spec.run_cells(executor)
    (path,) = (tmp_path / "runs").glob("sweep-*.json")
    manifest = json.loads(path.read_text())
    assert manifest["schema"] == MANIFEST_SCHEMA
    assert manifest["kind"] == "sweep"
    assert manifest["created_unix"] > 0
    assert manifest["knobs"]["REPRO_TELEMETRY"] == "1"
    assert manifest["spec"]["schemes"] == ["abc", "cubic"]
    assert manifest["spec"]["seeds"] == [0, 1]
    assert len(manifest["cells"]) == 4
    assert manifest["executor"]["total"] == 4
    assert manifest["executor"]["executed"] == 4
    assert manifest["executor"]["cache_corrupt"] == 0
    assert len(manifest["executor"]["jobs"]) == 4
    assert manifest["metrics"]["counters"]["scenario.runs"] == 4


def test_no_manifest_without_run_dir(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_RUN_DIR", raising=False)
    from repro.obs.manifest import write_manifest
    assert write_manifest({"kind": "x"}) is None


def test_fuzz_report_embeds_deterministic_manifest():
    from repro.fuzz.campaign import run_campaign
    report = run_campaign(budget=2, seed=3, jobs=1, shrink=False,
                          check_determinism=False)
    replay = run_campaign(budget=2, seed=3, jobs=1, shrink=False,
                          check_determinism=False)
    assert report == replay
    assert report["format"] == 3
    assert report["manifest"]["schema"] == MANIFEST_SCHEMA


# ---------------------------------------------------------------------------
# Chrome trace export
# ---------------------------------------------------------------------------
def test_event_trace_recorder_records_every_dispatch(tmp_path):
    loop = EventLoop()
    fired = []
    for i in range(5):
        loop.schedule(0.1 * (i + 1), fired.append, i)
    recorder = EventTraceRecorder(loop)
    loop.run(until=1.0)
    assert len(recorder.records) == 5
    assert fired == [0, 1, 2, 3, 4]
    sim_times = [r[0] for r in recorder.records]
    assert sim_times == sorted(sim_times)
    path = recorder.write_chrome(tmp_path / "trace.json")
    payload = json.loads(path.read_text())
    events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert len(events) == 5
    for event in events:
        assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid"}
        assert event["dur"] > 0


def test_traced_run_is_bit_identical_to_untraced():
    untraced = _run_fig_cell()
    from repro.experiments.runner import make_scheme
    # Tracing the same cell through the hook must not change results.
    spec = make_scheme("abc", buffer_packets=100, seed=0)
    from repro.simulator.scenario import Scenario
    scenario = Scenario()
    link = scenario.add_rate_link(12e6, qdisc=spec.make_qdisc(100),
                                  name="bottleneck")
    flow = scenario.add_flow(spec.make_sender(), [link], rtt=0.05,
                             label=spec.name)
    recorder = EventTraceRecorder(scenario.env)
    result = scenario.run(2.0)
    recorder.detach()
    traced_scenario = untraced.extra["scenario"]
    assert scenario.env.events_processed == traced_scenario.env.events_processed
    assert (result.flow_throughput_bps(flow)
            == untraced.throughput_bps)
    assert len(recorder.records) == scenario.env.events_processed


def test_recorder_detach_and_cap():
    loop = EventLoop()
    for i in range(10):
        loop.schedule(0.1 * (i + 1), lambda: None)
    recorder = EventTraceRecorder(loop, max_events=4)
    loop.run(until=0.65)
    assert len(recorder.records) == 4
    assert recorder.dropped == 2
    recorder.detach()
    loop.run(until=2.0)
    assert len(recorder.records) == 4  # nothing recorded after detach
    assert recorder.dropped == 2


def test_sweep_trace_events_one_row_per_worker(tmp_path):
    records = [
        {"label": "a", "pid": 100, "start_unix": 10.0, "wall_seconds": 0.5,
         "queue_wait_seconds": 0.0},
        {"label": "b", "pid": 200, "start_unix": 10.1, "wall_seconds": 0.4,
         "queue_wait_seconds": 0.1},
        {"label": "c", "pid": 100, "start_unix": 10.6, "wall_seconds": 0.3,
         "queue_wait_seconds": 0.0},
    ]
    events = sweep_trace_events(records)
    bars = [e for e in events if e["ph"] == "X"]
    names = [e for e in events if e["ph"] == "M"]
    assert len(bars) == 3
    assert {b["tid"] for b in bars} == {1, 2}
    assert bars[0]["ts"] == 0.0  # re-based to earliest start
    assert len(names) == 2
    path = write_chrome_trace(tmp_path / "w.json", events)
    assert json.loads(path.read_text())["traceEvents"]
    assert sweep_trace_events([]) == []


# ---------------------------------------------------------------------------
# CLI tools
# ---------------------------------------------------------------------------
def _run_tool(script, *args, env_extra=None):
    import os
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / script), *args],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=120)


def test_export_trace_tool_scenario_mode(tmp_path):
    out = tmp_path / "sim.json"
    proc = _run_tool("export_trace.py", "--scheme", "abc",
                     "--duration", "1", "--out", str(out))
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(out.read_text())
    assert payload["traceEvents"]
    assert any(e["ph"] == "X" for e in payload["traceEvents"])


def test_export_trace_tool_manifest_mode(tmp_path, monkeypatch):
    run_dir = tmp_path / "runs"
    monkeypatch.setenv("REPRO_RUN_DIR", str(run_dir))
    executor = SweepExecutor(jobs=1)
    SweepSpec(schemes=["abc"], traces={"12mbps": 12e6},
              duration=1.0).run_cells(executor)
    (manifest,) = run_dir.glob("sweep-*.json")
    out = tmp_path / "workers.json"
    proc = _run_tool("export_trace.py", "--manifest", str(manifest),
                     "--out", str(out))
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(out.read_text())
    assert any(e["ph"] == "X" for e in payload["traceEvents"])


def test_profile_tool_json_output(tmp_path):
    out = tmp_path / "profile.json"
    proc = _run_tool("profile_hotpath.py", "--scheme", "abc",
                     "--duration", "1", "--out", str(out))
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(out.read_text())
    assert payload["kind"] == "profile"
    assert payload["rows"]
    row = payload["rows"][0]
    assert set(row) >= {"function", "file", "line", "tottime", "cumtime"}


def test_profile_tool_bare_out_lands_in_run_dir(tmp_path):
    run_dir = tmp_path / "runs"
    proc = _run_tool("profile_hotpath.py", "--scheme", "abc",
                     "--duration", "1", "--out", "profile.json",
                     env_extra={"REPRO_RUN_DIR": str(run_dir)})
    assert proc.returncode == 0, proc.stderr
    assert (run_dir / "profile.json").exists()
