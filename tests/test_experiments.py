"""Tests for the experiment harness modules (reduced-size runs)."""

import math

import pytest

from repro.experiments.runner import (make_scheme, normalized_table,
                                      run_cellular_sweep, sweep_averages)
from repro.experiments.timeseries import fig17_square_wave, summarize_timeseries
from repro.experiments.fairness import fig3_fairness
from repro.experiments.wifi_eval import fig4_inter_ack, fig5_rate_prediction, fig10_wifi
from repro.experiments.coexistence import (fig6_nonabc_bottleneck,
                                           fig12_offered_load_sweep,
                                           fig13_app_limited)
from repro.experiments.pareto import fig8_pareto
from repro.cellular.synthetic import synthetic_trace_set


# ------------------------------------------------------------ runner
def test_make_scheme_known_and_unknown():
    spec = make_scheme("cubic+codel")
    assert spec.name == "cubic+codel"
    assert spec.make_sender().name == "cubic"
    with pytest.raises(KeyError):
        make_scheme("not-a-scheme")


def test_make_scheme_abc_uses_abc_router():
    spec = make_scheme("abc")
    assert spec.make_sender().uses_abc
    assert type(spec.make_qdisc(100)).__name__ == "ABCRouterQdisc"


def test_sweep_and_normalized_table(short_trace):
    traces = {"t1": short_trace}
    sweep = run_cellular_sweep(["abc", "cubic"], traces, duration=5.0)
    rows = sweep_averages(sweep)
    assert {row["scheme"] for row in rows} == {"abc", "cubic"}
    table = normalized_table(rows, reference="abc")
    abc_row = next(r for r in table if r["scheme"] == "abc")
    assert abc_row["norm_throughput"] == pytest.approx(1.0)
    assert abc_row["norm_delay_p95"] == pytest.approx(1.0)
    cubic_row = next(r for r in table if r["scheme"] == "cubic")
    assert cubic_row["norm_delay_p95"] > 1.0


def test_normalized_table_requires_reference():
    with pytest.raises(KeyError):
        normalized_table([{"scheme": "cubic", "utilization": 1, "delay_p95_ms": 1}])


# ------------------------------------------------------------ timeseries
def test_fig17_square_wave_shapes():
    series = fig17_square_wave(schemes=("abc", "rcp"), duration=5.0)
    assert set(series) == {"abc", "rcp"}
    rows = summarize_timeseries(series)
    abc_row = next(r for r in rows if r["scheme"] == "abc")
    rcp_row = next(r for r in rows if r["scheme"] == "rcp")
    assert abc_row["utilization"] > rcp_row["utilization"]
    assert len(series["abc"].times) == len(series["abc"].throughput_bps)


# ------------------------------------------------------------ fairness
def test_fig3_additive_increase_restores_fairness():
    without = fig3_fairness(additive_increase=False, num_flows=3, stagger=8.0)
    with_ai = fig3_fairness(additive_increase=True, num_flows=3, stagger=8.0)
    assert with_ai.steady_state_jain > 0.9
    assert with_ai.steady_state_jain > without.steady_state_jain
    assert len(with_ai.per_flow_mbps) == 3


# ------------------------------------------------------------ WiFi
def test_fig4_slope_matches_frame_time():
    samples = fig4_inter_ack(mcs_index=5, duration=10.0)
    assert samples.batch_sizes.size > 10
    assert samples.fitted_slope_ms_per_frame == pytest.approx(
        samples.expected_slope_ms_per_frame, rel=0.3)


def test_fig5_prediction_accurate_at_moderate_load():
    points = fig5_rate_prediction(mcs_indices=(5,), load_fractions=(0.5, 0.8),
                                  duration=8.0)
    assert all(p.relative_error < 0.08 for p in points)
    # The capped estimate never exceeds twice the offered load (plus noise).
    for p in points:
        assert p.capped_prediction_mbps <= 2.2 * p.offered_load_mbps


def test_fig10_wifi_abc_on_pareto_frontier():
    rows = fig10_wifi(num_users=1, duration=12.0,
                      abc_delay_thresholds=(0.06,),
                      baselines=("cubic+codel", "cubic"))
    by_name = {r.scheme: r for r in rows}
    abc = by_name["abc_dt60"]
    codel = by_name["cubic+codel"]
    cubic = by_name["cubic"]
    assert abc.throughput_mbps > codel.throughput_mbps
    assert abc.delay_p95_ms < cubic.delay_p95_ms


# ------------------------------------------------------------ coexistence
def test_fig6_abc_tracks_bottleneck_shifts():
    trace = fig6_nonabc_bottleneck(duration=30.0)
    assert trace.tracking_error < 0.25
    # The cubic window stays within its cap whenever the wireless link is the
    # bottleneck (w_cubic finite, bounded well below the buffer size).
    assert trace.w_cubic.max() < 2000
    assert trace.queuing_delay_ms.max() < 1000


def test_fig12_maxmin_fairer_than_zombie():
    loads = (0.25,)
    maxmin = fig12_offered_load_sweep(loads=loads, strategy="maxmin",
                                      duration=25.0)
    zombie = fig12_offered_load_sweep(loads=loads, strategy="zombie",
                                      duration=25.0)
    assert abs(maxmin[0.25].throughput_gap) < abs(zombie[0.25].throughput_gap)
    # ABC keeps low queuing delay even while Cubic builds a large queue.
    assert maxmin[0.25].abc_queuing_p95_ms < maxmin[0.25].cubic_queuing_p95_ms


def test_fig13_app_limited_flows_do_not_hurt_utilization():
    result = fig13_app_limited(num_app_limited=10, duration=12.0)
    assert result.utilization > 0.6
    assert result.queuing_p95_ms < 300.0
    assert result.app_limited_aggregate_mbps == pytest.approx(1.0, rel=0.3)
    assert result.backlogged_throughput_mbps > result.app_limited_aggregate_mbps


# ------------------------------------ seed axis on the in-process figures
def test_fig6_single_seed_is_bit_identical_to_cell():
    from repro.experiments.coexistence import fig6_cell
    routed = fig6_nonabc_bottleneck(duration=12.0)
    direct = fig6_cell(duration=12.0, wired_mbps=12.0, rtt=0.1,
                       sample_interval=0.25, cross_traffic=False,
                       cross_schedule=None, seed=0)
    assert routed.n_seeds == 1
    assert routed.tracking_error == direct.tracking_error
    assert (routed.throughput_mbps == direct.throughput_mbps).all()
    assert (routed.w_abc == direct.w_abc).all()


def test_fig6_multi_seed_returns_mean_curves():
    single = fig6_nonabc_bottleneck(duration=10.0)
    multi = fig6_nonabc_bottleneck(duration=10.0, seeds=[1, 2])
    assert multi.n_seeds == 2
    assert "tracking_error" in multi.seed_stats
    # The Fig. 6 topology is deterministic, so the across-seed mean equals
    # the single-seed curve exactly.
    assert multi.tracking_error == pytest.approx(single.tracking_error)
    assert multi.throughput_mbps == pytest.approx(single.throughput_mbps)


def test_fig7_multi_seed_returns_seed_result_set():
    from repro.analysis.stats import SeedResultSet
    from repro.experiments.coexistence import fig7_coexistence_timeseries
    single = fig7_coexistence_timeseries(duration=20.0, stagger=5.0)
    multi = fig7_coexistence_timeseries(duration=20.0, stagger=5.0,
                                        seeds=[1, 2])
    assert isinstance(multi, SeedResultSet)
    assert multi.agg("throughput_gap").n == 2
    # No short flows, so the seed axis leaves the simulation unchanged.
    assert multi.throughput_gap == pytest.approx(single.throughput_gap)


def test_fig13_multi_seed_aggregates_distinct_traces():
    from repro.analysis.stats import SeedResultSet
    from repro.experiments.coexistence import fig13_cell
    multi = fig13_app_limited(num_app_limited=5, duration=8.0, seeds=[1, 2])
    assert isinstance(multi, SeedResultSet)
    per_seed = [fig13_cell(num_app_limited=5, aggregate_app_rate_mbps=1.0,
                           duration=8.0, rtt=0.1, seed=s) for s in (1, 2)]
    expected = (per_seed[0].utilization + per_seed[1].utilization) / 2
    assert multi.utilization == pytest.approx(expected)
    # Different seeds regenerate the synthetic trace, so the per-seed
    # observations genuinely differ.
    assert per_seed[0].utilization != per_seed[1].utilization


def test_fig13_single_seed_matches_legacy():
    from repro.experiments.coexistence import AppLimitedResult
    result = fig13_app_limited(num_app_limited=5, duration=8.0)
    assert isinstance(result, AppLimitedResult)


# ------------------------------------------------------------ pareto
def test_fig8_abc_outside_prior_frontier():
    panels = fig8_pareto(schemes=("abc", "cubic", "cubic+codel", "bbr", "vegas"),
                         duration=12.0)
    assert set(panels) == {"downlink", "uplink", "uplink+downlink"}
    downlink = panels["downlink"]
    assert len(downlink.points) == 5
    assert downlink.abc_outside_frontier()
    assert not math.isnan(downlink.points[0].delay_p95_ms)
