"""Tests for the WiFi MAC model, MCS schedules and the §4.1 rate estimator."""

import numpy as np
import pytest

from repro.simulator.engine import EventLoop
from repro.simulator.packet import MTU, Packet
from repro.simulator.qdisc import FifoQdisc
from repro.wifi import (AlternatingMCSSchedule, BatchObservation,
                        BrownianMCSSchedule, FixedMCSSchedule, MCS_RATES_BPS,
                        WiFiLink, WiFiMacConfig, WiFiRateEstimator, mcs_rate_bps)


class Collector:
    def __init__(self):
        self.packets = []

    def receive(self, packet):
        self.packets.append(packet)


# ------------------------------------------------------------ MCS schedules
def test_mcs_table_is_monotone():
    assert list(MCS_RATES_BPS) == sorted(MCS_RATES_BPS)
    assert mcs_rate_bps(7) == 65e6
    with pytest.raises(ValueError):
        mcs_rate_bps(8)


def test_fixed_schedule():
    sched = FixedMCSSchedule(4)
    assert sched.index_at(0.0) == 4
    assert sched.rate_at(100.0) == MCS_RATES_BPS[4]


def test_alternating_schedule_period():
    sched = AlternatingMCSSchedule(low_index=1, high_index=7, period=2.0)
    assert sched.index_at(0.5) == 7
    assert sched.index_at(2.5) == 1
    assert sched.index_at(4.5) == 7
    with pytest.raises(ValueError):
        AlternatingMCSSchedule(period=0.0)


def test_brownian_schedule_bounded_and_deterministic():
    sched = BrownianMCSSchedule(min_index=3, max_index=7, period=1.0, seed=4)
    indices = [sched.index_at(t) for t in np.arange(0, 50, 1.0)]
    assert all(3 <= i <= 7 for i in indices)
    again = BrownianMCSSchedule(min_index=3, max_index=7, period=1.0, seed=4)
    assert indices == [again.index_at(t) for t in np.arange(0, 50, 1.0)]
    steps = {abs(a - b) for a, b in zip(indices, indices[1:])}
    assert steps <= {0, 1}


# ------------------------------------------------------------ MAC model
def test_mac_config_validation():
    with pytest.raises(ValueError):
        WiFiMacConfig(max_batch_frames=0)
    with pytest.raises(ValueError):
        WiFiMacConfig(overhead_min=0.01, overhead_max=0.001)


def test_wifi_link_delivers_all_packets_in_batches():
    env = EventLoop()
    sink = Collector()
    link = WiFiLink(env, mcs=FixedMCSSchedule(7), qdisc=FifoQdisc(500), dst=sink)
    for i in range(100):
        link.send(Packet(flow_id=0, seq=i))
    env.run(until=1.0)
    assert len(sink.packets) == 100
    assert link.batches_sent >= 100 / link.config.max_batch_frames


def test_wifi_batch_size_capped_at_max():
    env = EventLoop()
    link = WiFiLink(env, mcs=FixedMCSSchedule(7),
                    config=WiFiMacConfig(max_batch_frames=8),
                    qdisc=FifoQdisc(500), dst=Collector())
    for i in range(50):
        link.send(Packet(flow_id=0, seq=i))
    env.run(until=1.0)
    assert max(obs.batch_frames for obs in link.batch_log) <= 8


def test_wifi_inter_ack_time_grows_with_batch_size():
    """Fig. 4: inter-ACK time is linear in batch size with slope S/R."""
    env = EventLoop()
    config = WiFiMacConfig(seed=1)
    link = WiFiLink(env, mcs=FixedMCSSchedule(5), config=config,
                    qdisc=FifoQdisc(2000), dst=Collector())

    # Alternate between bursts of different sizes to sample several b values.
    def offer(burst):
        for i in range(burst):
            link.send(Packet(flow_id=0, seq=i))

    t = 0.0
    for burst in (2, 8, 16, 32, 2, 8, 16, 32, 4, 24):
        env.schedule_at(t, offer, burst)
        t += 0.05
    env.run(until=t + 0.1)

    sizes = np.array([o.batch_frames for o in link.batch_log])
    times = np.array([o.inter_ack_time for o in link.batch_log])
    assert np.ptp(sizes) > 10
    slope = np.polyfit(sizes, times, 1)[0]
    expected = MTU * 8 / mcs_rate_bps(5)
    assert slope == pytest.approx(expected, rel=0.2)


def test_wifi_true_capacity_below_phy_rate():
    env = EventLoop()
    link = WiFiLink(env, mcs=FixedMCSSchedule(7), qdisc=FifoQdisc())
    assert link.true_capacity_bps(0.0) < mcs_rate_bps(7)
    assert link.true_capacity_bps(0.0) > 0.5 * mcs_rate_bps(7)


def test_wifi_offered_bits_integrates_capacity():
    env = EventLoop()
    link = WiFiLink(env, mcs=FixedMCSSchedule(7), qdisc=FifoQdisc())
    bits = link.offered_bits(0.0, 2.0)
    assert bits == pytest.approx(2.0 * link.true_capacity_bps(0.0), rel=0.05)


def test_wifi_capacity_prefers_estimator_when_attached():
    env = EventLoop()
    estimator = WiFiRateEstimator()
    link = WiFiLink(env, mcs=FixedMCSSchedule(7), qdisc=FifoQdisc(),
                    estimator=estimator)
    # Before any observation the estimator reports 0, so fall back to truth.
    assert link.capacity_bps(0.0) == pytest.approx(link.true_capacity_bps(0.0))


# ------------------------------------------------------------ rate estimator
def obs(batch, tia, bitrate=52e6, t=0.0, frame_bits=MTU * 8.0):
    return BatchObservation(time=t, batch_frames=batch, frame_bits=frame_bits,
                            inter_ack_time=tia, bitrate_bps=bitrate)


def test_estimator_full_batch_recovers_capacity():
    est = WiFiRateEstimator(max_batch_frames=32)
    # A full batch: TIA = 32*S/R + h with h = 1 ms.
    tia = 32 * MTU * 8 / 52e6 + 0.001
    est.observe_batch(obs(32, tia))
    expected = 32 * MTU * 8 / tia
    assert est.estimate_bps(0.0, apply_cap=False) == pytest.approx(expected)


def test_estimator_extrapolates_partial_batches():
    """Eq. 8: a partial batch predicts the same capacity as a full one."""
    est_full = WiFiRateEstimator(max_batch_frames=32)
    est_partial = WiFiRateEstimator(max_batch_frames=32)
    h = 0.0015
    full_tia = 32 * MTU * 8 / 52e6 + h
    partial_tia = 4 * MTU * 8 / 52e6 + h
    est_full.observe_batch(obs(32, full_tia))
    est_partial.observe_batch(obs(4, partial_tia))
    assert est_partial.estimate_bps(0.0, apply_cap=False) == pytest.approx(
        est_full.estimate_bps(0.0, apply_cap=False), rel=1e-6)


def test_estimator_cap_limits_to_double_observed_rate():
    est = WiFiRateEstimator(max_batch_frames=32, window=1.0)
    h = 0.001
    # A tiny batch every 100 ms: observed throughput is low.
    for i in range(10):
        tia = 1 * MTU * 8 / 52e6 + h
        est.observe_batch(obs(1, tia, t=i * 0.1))
    capped = est.estimate_bps(1.0, apply_cap=True)
    uncapped = est.estimate_bps(1.0, apply_cap=False)
    assert capped <= 2.0 * est.observed_dequeue_rate(1.0) + 1e-6
    assert capped < uncapped


def test_estimator_smooths_over_window():
    est = WiFiRateEstimator(max_batch_frames=32, window=0.04)
    est.observe_batch(obs(32, 0.008, t=0.0))
    est.observe_batch(obs(32, 0.012, t=0.01))
    smoothed = est.estimate_bps(0.01, apply_cap=False)
    lo = 32 * MTU * 8 / 0.012
    hi = 32 * MTU * 8 / 0.008
    assert lo < smoothed < hi


def test_estimator_old_samples_expire():
    est = WiFiRateEstimator(window=0.04)
    est.observe_batch(obs(32, 0.008, t=0.0))
    assert est.estimate_bps(1.0, apply_cap=False) == 0.0


def test_estimator_rejects_bad_observations():
    est = WiFiRateEstimator()
    with pytest.raises(ValueError):
        est.observe_batch(obs(0, 0.01))
    with pytest.raises(ValueError):
        est.observe_batch(obs(4, -1.0))


def test_estimator_accuracy_within_five_percent_end_to_end():
    """Fig. 5's headline claim, exercised through the full MAC model."""
    from repro.cc import make_cc
    from repro.simulator.scenario import Scenario
    from repro.simulator.traffic import RateLimitedSource

    scenario = Scenario()
    estimator = WiFiRateEstimator(max_batch_frames=32)
    link = WiFiLink(scenario.env, mcs=FixedMCSSchedule(5),
                    config=WiFiMacConfig(seed=2), qdisc=FifoQdisc(2000),
                    estimator=estimator)
    scenario.add_custom_link(link, name="wifi")
    true_capacity = link.true_capacity_bps(0.0)
    scenario.add_flow(make_cc("cubic"), [link], rtt=0.02,
                      source=RateLimitedSource(0.6 * true_capacity))
    scenario.run(10.0)
    predicted = estimator.estimate_bps(10.0, apply_cap=False)
    assert predicted == pytest.approx(true_capacity, rel=0.05)
