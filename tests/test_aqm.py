"""Tests for the AQM qdiscs (DropTail, CoDel, PIE, RED)."""

import pytest

from repro.aqm import CoDelQdisc, DropTailQdisc, PIEQdisc, REDQdisc
from repro.cc.cubic import Cubic
from repro.simulator.packet import ECN, Packet
from tests.conftest import run_single_flow


def mk(seq, ecn=ECN.NOT_ECT):
    return Packet(flow_id=0, seq=seq, size=1500, ecn=ecn)


# ------------------------------------------------------------ CoDel unit
def test_codel_parameter_validation():
    with pytest.raises(ValueError):
        CoDelQdisc(target=0.0)
    with pytest.raises(ValueError):
        CoDelQdisc(interval=-1.0)


def test_codel_no_drops_below_target():
    q = CoDelQdisc(target=0.005, interval=0.1)
    now = 0.0
    for i in range(50):
        q.enqueue(mk(i), now)
        pkt = q.dequeue(now + 0.001)  # 1 ms sojourn, below 5 ms target
        assert pkt is not None
        now += 0.002
    assert q.dropped_packets == 0


def test_codel_drops_when_sojourn_persistently_high():
    q = CoDelQdisc(target=0.005, interval=0.05)
    # Fill a standing queue and drain it slowly so sojourn stays high.
    for i in range(200):
        q.enqueue(mk(i), i * 0.0001)
    now = 0.5
    delivered = 0
    for _ in range(200):
        pkt = q.dequeue(now)
        if pkt is None:
            break
        delivered += 1
        now += 0.01
    assert q.dropped_packets > 0
    assert delivered < 200


def test_codel_ecn_marks_instead_of_dropping():
    q = CoDelQdisc(target=0.005, interval=0.05, ecn=True)
    for i in range(200):
        q.enqueue(mk(i, ecn=ECN.ACCEL), i * 0.0001)
    now = 0.5
    marked = 0
    for _ in range(200):
        pkt = q.dequeue(now)
        if pkt is None:
            break
        if pkt.ecn == ECN.CE:
            marked += 1
        now += 0.01
    assert marked > 0
    assert q.dropped_packets == 0


def test_codel_tail_drop_when_buffer_full():
    q = CoDelQdisc(buffer_packets=2)
    assert q.enqueue(mk(0), 0.0)
    assert q.enqueue(mk(1), 0.0)
    assert not q.enqueue(mk(2), 0.0)


# ------------------------------------------------------------ PIE unit
def test_pie_parameter_validation():
    with pytest.raises(ValueError):
        PIEQdisc(target=0.0)
    with pytest.raises(ValueError):
        PIEQdisc(t_update=0.0)


def test_pie_probability_rises_with_standing_queue():
    q = PIEQdisc(target=0.015, t_update=0.015)
    now = 0.0
    # Build a large standing queue drained at 1/10th the arrival rate.
    for i in range(600):
        q.enqueue(mk(i), now)
        if i % 10 == 0:
            q.dequeue(now)
        now += 0.001
    assert q.drop_prob > 0.0
    assert q.dropped_packets > 0


def test_pie_no_drops_when_queue_short():
    q = PIEQdisc()
    now = 0.0
    for i in range(100):
        q.enqueue(mk(i), now)
        q.dequeue(now + 0.0005)
        now += 0.001
    assert q.dropped_packets == 0


# ------------------------------------------------------------ RED unit
def test_red_validation():
    with pytest.raises(ValueError):
        REDQdisc(min_th=10, max_th=5)
    with pytest.raises(ValueError):
        REDQdisc(max_p=0.0)


def test_red_drops_probabilistically_above_min_threshold():
    q = REDQdisc(buffer_packets=200, min_th=5, max_th=20, max_p=0.5, weight=0.5)
    accepted = 0
    for i in range(200):
        if q.enqueue(mk(i), 0.0):
            accepted += 1
    assert q.dropped_packets > 0
    assert accepted < 200


def test_red_marks_ecn_capable_packets():
    q = REDQdisc(buffer_packets=200, min_th=2, max_th=10, max_p=1.0,
                 weight=0.9, ecn=True)
    marked = 0
    for i in range(100):
        pkt = mk(i, ecn=ECN.ACCEL)
        if q.enqueue(pkt, 0.0) and pkt.ecn == ECN.CE:
            marked += 1
    assert marked > 0
    assert q.dropped_packets == 0


def test_red_empty_queue_no_marking():
    q = REDQdisc(min_th=5, max_th=20)
    assert q.enqueue(mk(0), 0.0)
    assert q.dequeue(0.0).seq == 0
    assert q.dropped_packets == 0


# ------------------------------------------------------------ edge paths
def test_pie_tail_drops_when_buffer_full():
    q = PIEQdisc(buffer_packets=3)
    for i in range(3):
        assert q.enqueue(mk(i), 0.0)
    dropped_before = q.dropped_packets
    assert not q.enqueue(mk(3), 0.0)
    assert q.dropped_packets == dropped_before + 1
    assert q.backlog_packets == 3


def test_pie_marks_ecn_capable_at_low_drop_prob():
    q = PIEQdisc(buffer_packets=50, ecn=True, seed=4)
    for i in range(10):
        q.enqueue(mk(i), 0.0)
    # A standing queue past the burst allowance with a small drop
    # probability: ECN-capable packets are marked instead of dropped
    # (RFC 8033 switches to dropping above p = 0.1).
    q._burst_allowance = 0.0
    q._avg_dq_rate_bps = 8e6  # 10 x 1500 B backlog -> 15 ms > target/2
    q.drop_prob = 0.05
    marked = 0
    dropped_before = q.dropped_packets
    for i in range(10, 400):
        before = q.marked_packets
        assert q.enqueue(mk(i, ecn=ECN.BRAKE), 0.0)
        marked += q.marked_packets - before
        q.dequeue(0.0)  # keep the standing queue at ten packets
    assert marked > 0
    # ECN-capable traffic below the cliff is marked, never dropped.
    assert q.dropped_packets == dropped_before


def test_pie_dequeue_empty_returns_none():
    q = PIEQdisc(buffer_packets=10)
    assert q.dequeue(0.0) is None


def test_pie_delay_estimate_fallbacks():
    q = PIEQdisc(buffer_packets=50)
    # No departures yet and no link attached: no rate to divide by.
    q.enqueue(mk(0), 0.0)
    assert q._estimate_delay() == 0.0

    class _StubEnv:
        now = 0.0

    class _StubLink:
        env = _StubEnv()

        def capacity_bps(self, now):
            return 12e6

    q.attach(_StubLink())
    # Little's law against the link capacity until the departure-rate EWMA
    # has a sample: 1500 bytes at 12 Mbit/s = 1 ms.
    assert q._estimate_delay() == pytest.approx(1500 * 8.0 / 12e6)


def test_red_tail_drops_when_buffer_full():
    q = REDQdisc(min_th=5, max_th=20, buffer_packets=4)
    for i in range(4):
        assert q.enqueue(mk(i), 0.0)
    assert not q.enqueue(mk(4), 0.0)
    assert q.dropped_packets == 1
    assert q.backlog_packets == 4


def test_codel_dequeue_empty_resets_dropping_state():
    q = CoDelQdisc(target=0.001, interval=0.01)
    assert q.dequeue(0.0) is None
    q._dropping = True
    assert q.dequeue(1.0) is None
    assert q._dropping is False


# ------------------------------------------------------------ integration
def test_cubic_over_droptail_builds_bufferbloat(short_trace):
    result, link, flow = run_single_flow(Cubic(), DropTailQdisc(250), short_trace)
    assert result.link_utilization(link) > 0.8
    assert flow.stats.delay_percentile(95, kind="queuing") > 0.2  # > 200 ms


def test_codel_cuts_cubic_delay(short_trace):
    bloat_result, _, bloat_flow = run_single_flow(Cubic(), DropTailQdisc(250),
                                                  short_trace)
    codel_result, _, codel_flow = run_single_flow(Cubic(), CoDelQdisc(250),
                                                  short_trace)
    bloat_delay = bloat_flow.stats.mean_delay(kind="queuing")
    codel_delay = codel_flow.stats.mean_delay(kind="queuing")
    assert codel_delay < bloat_delay / 2.0


def test_pie_cuts_cubic_delay(short_trace):
    bloat_result, _, bloat_flow = run_single_flow(Cubic(), DropTailQdisc(250),
                                                  short_trace)
    pie_result, _, pie_flow = run_single_flow(Cubic(), PIEQdisc(250), short_trace)
    assert (pie_flow.stats.mean_delay(kind="queuing")
            < bloat_flow.stats.mean_delay(kind="queuing") / 2.0)
