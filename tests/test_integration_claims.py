"""Integration tests for the paper's headline qualitative claims.

Each test runs the packet-level simulator end to end (short durations, fixed
seeds) and asserts the *shape* of a result the paper reports: who wins, by
roughly what factor, and which trade-off each scheme lands on.  Absolute
numbers differ from the paper (synthetic traces, simulated substrate) and are
recorded in EXPERIMENTS.md.
"""

import pytest

from repro.cc import make_cc
from repro.aqm import CoDelQdisc, DropTailQdisc
from repro.core.params import ABCParams
from repro.core.router import ABCRouterQdisc
from repro.experiments.runner import run_single_bottleneck
from tests.conftest import run_single_flow

DURATION = 10.0


@pytest.fixture(scope="module")
def abc_result(bursty_trace):
    return run_single_bottleneck("abc", bursty_trace, duration=DURATION)


@pytest.fixture(scope="module")
def cubic_result(bursty_trace):
    return run_single_bottleneck("cubic", bursty_trace, duration=DURATION)


@pytest.fixture(scope="module")
def codel_result(bursty_trace):
    return run_single_bottleneck("cubic+codel", bursty_trace, duration=DURATION)


# ------------------------------------------------------------ §2 motivation
def test_cubic_bufferbloat_on_variable_link(cubic_result):
    """Fig. 1a: Cubic fills the deep buffer — high utilisation, huge delays."""
    assert cubic_result.utilization > 0.85
    assert cubic_result.queuing_p95_ms > 500.0


def test_codel_removes_bloat_but_underutilizes(codel_result, cubic_result):
    """Fig. 1c: Cubic+CoDel cuts delay by an order of magnitude but leaves
    the link underutilised after capacity increases."""
    assert codel_result.queuing_p95_ms < cubic_result.queuing_p95_ms / 3.0
    assert codel_result.utilization < cubic_result.utilization


def test_abc_high_utilization_and_low_delay(abc_result, cubic_result, codel_result):
    """Fig. 1d: ABC gets close to Cubic's utilisation at CoDel-like delays."""
    assert abc_result.utilization > 0.95 * codel_result.utilization
    assert abc_result.queuing_p95_ms < cubic_result.queuing_p95_ms / 3.0
    assert abc_result.queuing_p95_ms < 250.0


def test_abc_beats_cubic_codel_tradeoff(abc_result, codel_result):
    """§1: ABC achieves higher throughput than Cubic+Codel for similar delay."""
    assert abc_result.utilization > codel_result.utilization
    assert abc_result.queuing_p95_ms < 2.0 * codel_result.queuing_p95_ms


# ------------------------------------------------------------ §6.3 baselines
def test_bbr_incurs_higher_delay_than_abc(bursty_trace, abc_result):
    bbr = run_single_bottleneck("bbr", bursty_trace, duration=DURATION)
    assert bbr.queuing_p95_ms > 1.5 * abc_result.queuing_p95_ms


def test_sprout_is_conservative(bursty_trace, abc_result):
    """ABC achieves substantially higher utilisation than Sprout (§6.3)."""
    sprout = run_single_bottleneck("sprout", bursty_trace, duration=DURATION)
    assert sprout.utilization < abc_result.utilization
    assert abc_result.utilization / max(sprout.utilization, 1e-6) > 1.2


def test_vegas_underutilizes_relative_to_abc(bursty_trace, abc_result):
    vegas = run_single_bottleneck("vegas", bursty_trace, duration=DURATION)
    assert vegas.utilization < abc_result.utilization


def test_xcp_similar_throughput_but_higher_delay(bursty_trace, abc_result):
    """§6.3: XCP reaches ABC-like utilisation but ~2× the p95 delay."""
    xcp = run_single_bottleneck("xcp", bursty_trace, duration=DURATION)
    assert xcp.utilization > 0.75 * abc_result.utilization
    assert xcp.queuing_p95_ms > 1.3 * abc_result.queuing_p95_ms


def test_xcpw_improves_on_xcp_delay(bursty_trace):
    xcp = run_single_bottleneck("xcp", bursty_trace, duration=DURATION)
    xcpw = run_single_bottleneck("xcpw", bursty_trace, duration=DURATION)
    assert xcpw.queuing_p95_ms < xcp.queuing_p95_ms


def test_abc_beats_rcp_utilization(bursty_trace, abc_result):
    """Appendix D: ABC achieves ~20 % more utilisation than RCP."""
    rcp = run_single_bottleneck("rcp", bursty_trace, duration=DURATION)
    assert abc_result.utilization > 1.1 * rcp.utilization


def test_abc_beats_vcp_utilization(bursty_trace, abc_result):
    vcp = run_single_bottleneck("vcp", bursty_trace, duration=DURATION)
    assert abc_result.utilization > 1.1 * vcp.utilization


# ------------------------------------------------------------ feedback ablation
def test_dequeue_feedback_halves_delay_vs_enqueue(bursty_trace):
    """Fig. 2: enqueue-rate feedback roughly doubles p95 queuing delay."""
    dequeue = run_single_bottleneck("abc", bursty_trace, duration=DURATION)
    enqueue = run_single_bottleneck("abc-enqueue", bursty_trace, duration=DURATION)
    assert enqueue.queuing_p95_ms > 1.4 * dequeue.queuing_p95_ms


# ------------------------------------------------------------ PK-ABC (§6.6)
def test_pk_abc_reduces_delay_at_same_utilization(bursty_trace):
    abc = run_single_bottleneck("abc", bursty_trace, duration=DURATION)
    pk = run_single_bottleneck("pk-abc", bursty_trace, duration=DURATION)
    assert pk.queuing_p95_ms < abc.queuing_p95_ms
    assert pk.utilization > 0.9 * abc.utilization


# ------------------------------------------------------------ multi-bottleneck
def test_two_abc_bottlenecks_track_the_slower_one(short_trace, bursty_trace):
    """§3.1.2: with two ABC routers the minimum accelerate fraction wins, so
    the flow tracks the tighter link without queue blow-up at either.

    With two independently varying links neither link alone can be fully
    utilised (the instantaneous path capacity is the min of the two), so the
    check is that whichever link is the effective bottleneck is reasonably
    utilised and queues stay bounded at both.
    """
    result = run_single_bottleneck("abc", short_trace, duration=DURATION,
                                   extra_links=[bursty_trace])
    assert max(result.extra["per_link_utilization"]) > 0.4
    assert result.queuing_p95_ms < 400.0
    assert result.throughput_bps > 2e6


# ------------------------------------------------------------ ABC on constant links
def test_abc_utilization_approaches_eta_on_constant_link():
    params = ABCParams()
    result, link, flow = run_single_flow(make_cc("abc", params=params),
                                         ABCRouterQdisc(params=params),
                                         24e6, duration=10.0)
    util = result.link_utilization(link, t0=2.0)
    assert util == pytest.approx(params.eta, abs=0.05)
    assert flow.stats.delay_percentile(95, kind="queuing") < 0.05


def test_abc_delay_threshold_trades_delay_for_throughput(bursty_trace):
    """Fig. 10: larger dt -> more throughput and more delay."""
    low = run_single_bottleneck("abc", bursty_trace, duration=DURATION,
                                abc_params=ABCParams(delay_threshold=0.02))
    high = run_single_bottleneck("abc", bursty_trace, duration=DURATION,
                                 abc_params=ABCParams(delay_threshold=0.1))
    assert high.utilization >= low.utilization
    assert high.queuing_p95_ms >= low.queuing_p95_ms
