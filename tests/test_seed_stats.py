"""Tests for the multi-seed statistical sweep layer.

Three load-bearing properties:

* single-seed sweeps are bit-for-bit identical to the legacy output,
* the confidence-interval math matches hand-computed values,
* a reused (persistent) pool returns identical results across repeated
  ``run()`` calls.
"""

from __future__ import annotations

import math
import pickle

import pytest

from repro.analysis.stats import (SeedAggregate, SeedResultSet,
                                  aggregate_cells, aggregate_metric_dicts,
                                  aggregate_values, result_metrics,
                                  t_critical_95)
from repro.cellular.synthetic import SyntheticTraceConfig, synthetic_trace
from repro.experiments.pareto import fig9_sweep
from repro.experiments.runner import run_cellular_sweep, sweep_averages
from repro.runtime import (SweepExecutor, SweepSpec, TraceRef,
                           register_trace, resolve_link_spec, resolve_seeds)


def _tiny_traces():
    config = SyntheticTraceConfig(mean_rate_bps=10e6, min_rate_bps=2e6,
                                  max_rate_bps=20e6, volatility=0.2,
                                  outage_rate_per_s=0.0, name="stats-test")
    return {
        "t1": synthetic_trace(config, duration=3.0, seed=5),
        "t2": synthetic_trace(config, duration=3.0, seed=6),
    }


def _metrics(result) -> tuple:
    return (result.scheme, result.trace, result.throughput_bps,
            result.utilization, result.delay_p95_ms, result.delay_mean_ms,
            result.queuing_p95_ms, result.queuing_mean_ms, result.drops)


# ------------------------------------------------------------------ CI math
def test_aggregate_values_hand_computed():
    """n=3 sample [1, 2, 3]: mean 2, stdev 1, CI half-width t.975(2)/sqrt(3)."""
    agg = aggregate_values([1.0, 2.0, 3.0])
    assert agg.n == 3
    assert agg.mean == 2.0
    assert agg.stdev == 1.0
    assert agg.min == 1.0 and agg.max == 3.0
    expected_hw = 4.303 * 1.0 / math.sqrt(3)
    assert agg.ci95 == pytest.approx(expected_hw, abs=1e-12)
    assert agg.ci_lo == pytest.approx(2.0 - expected_hw)
    assert agg.ci_hi == pytest.approx(2.0 + expected_hw)


def test_aggregate_values_two_observations():
    """n=2 sample [10, 14]: mean 12, stdev 2*sqrt(2), t.975(1) = 12.706."""
    agg = aggregate_values([10.0, 14.0])
    assert agg.mean == 12.0
    assert agg.stdev == pytest.approx(math.sqrt(8.0))
    assert agg.ci95 == pytest.approx(12.706 * math.sqrt(8.0) / math.sqrt(2))


def test_single_observation_is_exact():
    agg = aggregate_values([0.123456789])
    assert agg.n == 1
    assert agg.mean == 0.123456789       # bit-for-bit, not approximately
    assert agg.stdev == 0.0
    assert agg.ci95 == 0.0
    assert agg.min == agg.max == agg.mean


def test_t_critical_table():
    assert t_critical_95(1) == 12.706
    assert t_critical_95(30) == 2.042
    assert t_critical_95(31) == 1.96     # normal approximation beyond table
    with pytest.raises(ValueError):
        t_critical_95(0)


def test_aggregate_values_rejects_empty():
    with pytest.raises(ValueError):
        aggregate_values([])


def test_aggregate_metric_dicts_rejects_key_mismatch():
    with pytest.raises(ValueError, match="disagree on keys"):
        aggregate_metric_dicts([{"a": 1.0}, {"b": 2.0}])


def test_seed_aggregate_format():
    agg = SeedAggregate(n=3, mean=1.5, stdev=0.1, ci95=0.25, min=1.4, max=1.6)
    assert f"{agg:.2f}" == "1.50 ± 0.25"


# --------------------------------------------------------- SeedResultSet
def test_seed_result_set_forwards_means_and_labels():
    traces = _tiny_traces()
    multi = run_cellular_sweep(["abc"], traces, duration=3.0,
                               seeds=[0, 1, 2])
    res = multi["abc"]["t1"]
    assert isinstance(res, SeedResultSet)
    assert res.seeds == (0, 1, 2)
    assert len(res) == 3
    per_seed_utils = [r.utilization for r in res.per_seed]
    assert res.utilization == pytest.approx(sum(per_seed_utils) / 3)
    assert res.agg("utilization").n == 3
    assert res.scheme == "abc"           # forwarded from first seed's result
    with pytest.raises(AttributeError):
        res.not_a_metric
    pickle.loads(pickle.dumps(res))      # survives cache/pool boundaries


def test_result_metrics_skips_non_numeric():
    traces = _tiny_traces()
    single = run_cellular_sweep(["abc"], traces, duration=3.0)
    metrics = result_metrics(single["abc"]["t1"])
    assert "utilization" in metrics and "drops" in metrics
    assert "scheme" not in metrics and "extra" not in metrics


def test_aggregate_cells_groups_by_scheme_and_trace():
    traces = _tiny_traces()
    spec = SweepSpec(schemes=["abc"], traces=traces, seeds=(0, 1),
                     duration=3.0)
    table = aggregate_cells(spec.run_cells(SweepExecutor(jobs=1)))
    assert set(table) == {"abc"}
    assert set(table["abc"]) == {"t1", "t2"}
    assert table["abc"]["t1"]["utilization"].n == 2


# --------------------------------------------------- single-seed == legacy
def test_single_seed_sweep_is_bit_identical_to_legacy():
    traces = _tiny_traces()
    legacy = run_cellular_sweep(["abc", "cubic+pie"], traces, duration=3.0)
    single = run_cellular_sweep(["abc", "cubic+pie"], traces, duration=3.0,
                                seeds=[0])
    for scheme in ("abc", "cubic+pie"):
        for trace in ("t1", "t2"):
            assert _metrics(single[scheme][trace]) == _metrics(legacy[scheme][trace])


def test_fig9_single_seed_matches_legacy():
    """seeds=[s] ≡ seed=s bit-for-bit — including for cubic+pie, whose PIE
    qdisc consumes the per-cell seed (the single-seed path must keep the
    legacy cell seed 0 and only move the trace seed)."""
    legacy = fig9_sweep(schemes=["abc", "cubic+pie"], duration=3.0, seed=1,
                        trace_names=["Verizon-LTE-1"])
    single = fig9_sweep(schemes=["abc", "cubic+pie"], duration=3.0,
                        seeds=[1], trace_names=["Verizon-LTE-1"])
    for scheme in ("abc", "cubic+pie"):
        assert (_metrics(single[scheme]["Verizon-LTE-1"])
                == _metrics(legacy[scheme]["Verizon-LTE-1"]))


def test_sweep_averages_single_seed_rows_keep_legacy_shape():
    traces = _tiny_traces()
    rows = sweep_averages(run_cellular_sweep(["abc"], traces, duration=3.0))
    assert list(rows[0]) == ["scheme", "utilization", "delay_p95_ms",
                             "delay_mean_ms", "queuing_p95_ms",
                             "throughput_bps"]


def test_sweep_averages_multi_seed_adds_ci_columns():
    traces = _tiny_traces()
    multi = run_cellular_sweep(["abc"], traces, duration=3.0, seeds=[0, 1, 2])
    row = sweep_averages(multi)[0]
    assert row["n_seeds"] == 3
    for metric in ("utilization", "delay_p95_ms", "throughput_bps"):
        assert f"{metric}_ci95" in row
        assert f"{metric}_stdev" in row
    # Cross-trace average of across-seed means equals the reported mean.
    res = multi["abc"]
    expected = (res["t1"].utilization + res["t2"].utilization) / 2
    assert row["utilization"] == pytest.approx(expected)


# ------------------------------------------------------------ REPRO_SEEDS
def test_resolve_seeds_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_SEEDS", raising=False)
    assert resolve_seeds() is None
    assert resolve_seeds(3) == (3,)
    assert resolve_seeds([1, 2]) == (1, 2)
    monkeypatch.setenv("REPRO_SEEDS", "4,5,6")
    assert resolve_seeds() == (4, 5, 6)
    assert resolve_seeds([9]) == (9,)    # argument beats the environment
    monkeypatch.setenv("REPRO_SEEDS", "7 8")
    assert resolve_seeds() == (7, 8)
    monkeypatch.setenv("REPRO_SEEDS", "banana")
    with pytest.raises(ValueError, match="REPRO_SEEDS"):
        resolve_seeds()
    with pytest.raises(ValueError):
        resolve_seeds([])


def test_repro_seeds_env_routes_run_cellular_sweep(monkeypatch):
    traces = {"t1": _tiny_traces()["t1"]}
    monkeypatch.setenv("REPRO_SEEDS", "0,1")
    multi = run_cellular_sweep(["abc"], traces, duration=3.0)
    assert isinstance(multi["abc"]["t1"], SeedResultSet)
    assert multi["abc"]["t1"].seeds == (0, 1)


# ------------------------------------------------- pool reuse / trace store
def test_persistent_pool_identical_results_across_runs():
    """A context-managed executor reuses its pool and stays deterministic."""
    traces = _tiny_traces()
    baseline = run_cellular_sweep(["abc", "cubic"], traces, duration=3.0,
                                  executor=SweepExecutor(jobs=1))
    with SweepExecutor(jobs=2) as executor:
        first = run_cellular_sweep(["abc", "cubic"], traces, duration=3.0,
                                   executor=executor)
        second = run_cellular_sweep(["abc", "cubic"], traces, duration=3.0,
                                    executor=executor)
        assert executor.last_stats.pool_reused
        third = run_cellular_sweep(["abc", "cubic"], traces, duration=3.0,
                                   executor=executor)
    for scheme in ("abc", "cubic"):
        for trace in ("t1", "t2"):
            expected = _metrics(baseline[scheme][trace])
            assert _metrics(first[scheme][trace]) == expected
            assert _metrics(second[scheme][trace]) == expected
            assert _metrics(third[scheme][trace]) == expected
    assert executor._pool is None        # context exit closed the pool


def test_persistent_pool_refreshes_on_new_traces():
    """Registering new traces after pool start restarts it transparently."""
    config = SyntheticTraceConfig(mean_rate_bps=10e6, min_rate_bps=2e6,
                                  max_rate_bps=20e6, volatility=0.2,
                                  outage_rate_per_s=0.0, name="fresh")
    with SweepExecutor(jobs=2) as executor:
        first = run_cellular_sweep(
            ["abc", "cubic"], {"a": synthetic_trace(config, 3.0, seed=21)},
            duration=3.0, executor=executor)
        second = run_cellular_sweep(
            ["abc", "cubic"], {"b": synthetic_trace(config, 3.0, seed=22)},
            duration=3.0, executor=executor)
        assert not executor.last_stats.pool_reused   # store moved on
    assert set(first["abc"]) == {"a"}
    assert set(second["abc"]) == {"b"}


def test_trace_ref_round_trip_and_fingerprint():
    trace = _tiny_traces()["t1"]
    ref = register_trace(trace)
    assert isinstance(ref, TraceRef)
    # The store dedupes by content, so resolution returns a trace with the
    # same opportunities (possibly an earlier-registered identical instance).
    assert (resolve_link_spec(ref).opportunity_times
            == trace.opportunity_times)
    assert resolve_link_spec(12e6) == 12e6           # non-refs pass through
    # Same content -> same ref; the fingerprint is content-addressed.
    again = register_trace(_tiny_traces()["t1"])
    assert again == ref
    other = register_trace(_tiny_traces()["t2"])
    assert other.key != ref.key
