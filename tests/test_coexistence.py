"""Unit tests for the two-queue coexistence machinery (§5.2)."""

import pytest

from repro.core.coexistence import (DualQueueABCQdisc, MaxMinWeightController,
                                    ZombieListWeightController)
from repro.simulator.packet import ECN, Packet


class FakeLink:
    def __init__(self, rate_bps):
        self.rate = rate_bps
        self.env = type("E", (), {"now": 0.0})()

    def capacity_bps(self, now):
        return self.rate


def abc_pkt(seq, flow=1):
    return Packet(flow_id=flow, seq=seq, ecn=ECN.ACCEL, abc_capable=True)


def legacy_pkt(seq, flow=2):
    return Packet(flow_id=flow, seq=seq)


# ------------------------------------------------------------ classification
def test_packets_classified_by_abc_capability():
    q = DualQueueABCQdisc()
    q.attach(FakeLink(10e6))
    q.enqueue(abc_pkt(0), 0.0)
    q.enqueue(legacy_pkt(0), 0.0)
    assert q.abc_queue.backlog_packets == 1
    assert q.nonabc_queue.backlog_packets == 1
    assert q.backlog_packets == 2


def test_dual_queue_dequeue_updates_backlog():
    q = DualQueueABCQdisc()
    q.attach(FakeLink(10e6))
    q.enqueue(abc_pkt(0), 0.0)
    q.enqueue(legacy_pkt(0), 0.0)
    assert q.dequeue(0.0) is not None
    assert q.dequeue(0.0) is not None
    assert q.dequeue(0.0) is None
    assert q.backlog_packets == 0


def test_dual_queue_work_conserving_when_one_queue_empty():
    q = DualQueueABCQdisc(initial_weight=0.9)
    q.attach(FakeLink(10e6))
    for i in range(5):
        q.enqueue(legacy_pkt(i), 0.0)
    served = [q.dequeue(0.0) for _ in range(5)]
    assert all(p is not None for p in served)


def test_dual_queue_serves_in_weight_proportion_when_backlogged():
    q = DualQueueABCQdisc(initial_weight=0.75,
                          controller=MaxMinWeightController(interval=1e9))
    q.attach(FakeLink(10e6))
    for i in range(400):
        q.enqueue(abc_pkt(i), 0.0)
        q.enqueue(legacy_pkt(i), 0.0)
    abc_served = 0
    for _ in range(200):
        pkt = q.dequeue(0.0)
        if pkt.abc_capable:
            abc_served += 1
    assert abc_served == pytest.approx(150, abs=10)  # ≈ 75 % of 200


def test_dual_queue_abc_capacity_scaled_by_weight():
    q = DualQueueABCQdisc(initial_weight=0.25)
    q.attach(FakeLink(16e6))
    assert q._abc_capacity(0.0) == pytest.approx(4e6)


def test_dual_queue_marks_abc_packets_only():
    q = DualQueueABCQdisc(initial_weight=0.5,
                          controller=MaxMinWeightController(interval=1e9))
    q.attach(FakeLink(2e6))
    now = 0.0
    for i in range(300):
        q.enqueue(abc_pkt(i), now)
        q.enqueue(legacy_pkt(i), now)
    seen_brake = False
    for _ in range(600):
        pkt = q.dequeue(now)
        if pkt is None:
            break
        if pkt.abc_capable:
            assert pkt.ecn in (ECN.ACCEL, ECN.BRAKE)
            seen_brake = seen_brake or pkt.ecn == ECN.BRAKE
        else:
            assert pkt.ecn == ECN.NOT_ECT
        now += 0.001
    assert seen_brake


def test_dual_queue_weight_validation():
    with pytest.raises(ValueError):
        DualQueueABCQdisc(initial_weight=0.0)
    with pytest.raises(ValueError):
        DualQueueABCQdisc(initial_weight=1.0)


def test_dual_queue_queuing_delay_helpers():
    q = DualQueueABCQdisc(initial_weight=0.5)
    q.attach(FakeLink(12e6))
    for i in range(10):
        q.enqueue(abc_pkt(i), 0.0)
    assert q.abc_queuing_delay(0.0) > 0.0
    assert q.nonabc_queuing_delay(0.0) == 0.0


# ------------------------------------------------------------ max-min weights
def test_maxmin_controller_balanced_long_flows():
    ctrl = MaxMinWeightController(interval=1.0)
    # Two backlogged flows per queue with equal rates.
    for t in range(10):
        now = t * 0.1
        for flow in (1, 2):
            ctrl.record_departure("abc", flow, 12_000, now)
        for flow in (3, 4):
            ctrl.record_departure("nonabc", flow, 12_000, now)
    weight = ctrl.compute_weight(1.5, capacity_bps=10e6)
    assert weight == pytest.approx(0.5, abs=0.05)


def test_maxmin_controller_short_flows_do_not_inflate_their_queue():
    """§5.2: demand-limited short flows must not pull capacity toward their
    queue the way RCP's flow-count equalisation does."""
    ctrl = MaxMinWeightController(interval=1.0, top_k=2)
    for t in range(10):
        now = t * 0.1
        # One long ABC flow using ~4.8 Mbit/s.
        ctrl.record_departure("abc", 1, 60_000, now)
        # One long non-ABC flow using ~4.8 Mbit/s plus 20 tiny short flows.
        ctrl.record_departure("nonabc", 2, 60_000, now)
        for sf in range(20):
            ctrl.record_departure("nonabc", 100 + sf, 500, now)
    weight = ctrl.compute_weight(1.5, capacity_bps=10e6)
    # The ABC long flow should keep roughly half of the long-flow capacity:
    # its queue weight must not collapse because the other queue has many
    # (demand-limited) flows.
    assert weight > 0.4


def test_maxmin_controller_weight_bounded():
    ctrl = MaxMinWeightController(interval=0.5, minimum_weight=0.05)
    for t in range(10):
        ctrl.record_departure("abc", 1, 100_000, t * 0.1)
    weight = ctrl.compute_weight(2.0, capacity_bps=10e6)
    assert 0.05 <= weight <= 0.95


def test_maxmin_controller_holds_weight_between_intervals():
    ctrl = MaxMinWeightController(interval=10.0)
    ctrl.record_departure("abc", 1, 1000, 0.0)
    assert ctrl.compute_weight(1.0, 10e6) == ctrl.last_weight


def test_maxmin_controller_validation():
    with pytest.raises(ValueError):
        MaxMinWeightController(top_k=0)
    with pytest.raises(ValueError):
        MaxMinWeightController(interval=0.0)
    with pytest.raises(ValueError):
        MaxMinWeightController(demand_headroom=-0.1)


# ------------------------------------------------------------ zombie weights
def test_zombie_controller_weights_proportional_to_flow_counts():
    ctrl = ZombieListWeightController(interval=1.0, seed=5)
    for t in range(4000):
        now = t * 0.001
        ctrl.record_departure("abc", t % 2, 1500, now)          # 2 flows
        ctrl.record_departure("nonabc", 100 + (t % 8), 1500, now)  # 8 flows
    weight = ctrl.compute_weight(0.0, 10e6)          # first call sets baseline
    weight = ctrl.compute_weight(5.0, 10e6)
    # The non-ABC queue holds more flows, so RCP-style weighting favours it.
    assert weight < 0.45


def test_zombie_controller_validation():
    with pytest.raises(ValueError):
        ZombieListWeightController(interval=0.0)
