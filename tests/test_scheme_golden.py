"""Golden regression tests pinning :func:`make_scheme` wiring.

The sweep executor refactor routes every figure sweep through generic jobs,
so a silent change to how a scheme label maps to (sender class, qdisc class,
buffer size) would corrupt every downstream figure without any test noticing.
This table pins the construction of all 14 paper schemes; update it only for
an *intentional* wiring change.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import SCHEME_NAMES, make_scheme

#: scheme label -> (sender class name, qdisc class name)
GOLDEN_WIRING = {
    "abc": ("ABCWindowControl", "ABCRouterQdisc"),
    "xcp": ("XCPSender", "XCPRouterQdisc"),
    "xcpw": ("XCPSender", "XCPRouterQdisc"),
    "cubic+codel": ("Cubic", "CoDelQdisc"),
    "cubic+pie": ("Cubic", "PIEQdisc"),
    "copa": ("Copa", "DropTailQdisc"),
    "sprout": ("Sprout", "DropTailQdisc"),
    "vegas": ("Vegas", "DropTailQdisc"),
    "verus": ("Verus", "DropTailQdisc"),
    "bbr": ("BBR", "DropTailQdisc"),
    "pcc": ("PCCVivace", "DropTailQdisc"),
    "cubic": ("Cubic", "DropTailQdisc"),
    "rcp": ("RCPSender", "RCPRouterQdisc"),
    "vcp": ("VCPSender", "VCPRouterQdisc"),
}


def test_golden_table_covers_all_scheme_names():
    assert set(GOLDEN_WIRING) == set(SCHEME_NAMES)
    assert len(SCHEME_NAMES) == 14


@pytest.mark.parametrize("name", SCHEME_NAMES)
def test_scheme_wiring_matches_golden(name):
    expected_sender, expected_qdisc = GOLDEN_WIRING[name]
    spec = make_scheme(name)
    assert spec.name == name
    assert type(spec.make_sender()).__name__ == expected_sender
    assert type(spec.make_qdisc(250)).__name__ == expected_qdisc


@pytest.mark.parametrize("name", SCHEME_NAMES)
def test_scheme_buffer_size_is_plumbed(name):
    spec = make_scheme(name, buffer_packets=137)
    assert spec.make_qdisc(137).buffer_packets == 137
    # The default argument baked into make_qdisc follows buffer_packets too.
    assert spec.make_qdisc().buffer_packets == 137


def test_xcpw_is_the_wireless_xcp_variant():
    assert make_scheme("xcpw").make_qdisc(250).wireless is True
    assert make_scheme("xcp").make_qdisc(250).wireless is False


def test_sender_factories_build_fresh_instances():
    spec = make_scheme("cubic")
    assert spec.make_sender() is not spec.make_sender()
    assert spec.make_qdisc(250) is not spec.make_qdisc(250)
