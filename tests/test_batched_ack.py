"""Differential equivalence layer for the batched ACK fast path.

``REPRO_BATCH_ACKS=1`` replaces the per-ACK event machinery (handle-based
RTO re-arming, hop bounce events, per-ACK send loops) with flattened
straight-line code, a lazy deadline timer, inline delivery and time-shifted
receiver processing.  The documented contract is **bit-identical results**
— every throughput, delay, drop and timestamp a simulation reports — while
the event *trace* (heap sequence numbers, no-op timer fires, callback
names) may differ; ``tests/test_engine_golden_trace.py`` pins the classic
trace, and this module pins the equivalence:

* every scheme in the golden wiring table, end-to-end over a cellular trace;
* an outage-heavy trace driving retransmissions and RTO expiry;
* the golden-trace scenario itself (ABC + Cubic sharing one bottleneck);
* metro cells (trace-driven and square-wave, churn on, mixed schemes);
* the drop-in :class:`BatchedRateEstimator` against the deque original.

Every comparison is exact equality on full per-packet float lists — no
tolerances anywhere.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.cc import make_cc
from repro.cellular.synthetic import lte_showcase_trace
from repro.core.params import ABCParams
from repro.core.router import ABCRouterQdisc
from repro.experiments.runner import run_single_bottleneck
from repro.metro.cell import metro_cell
from repro.simulator import fastpath
from repro.simulator.estimators import (BatchedRateEstimator,
                                        WindowedRateEstimator)
from repro.simulator.scenario import Scenario

from test_scheme_golden import GOLDEN_WIRING


def flow_summary(flow) -> dict:
    """Everything a flow reports, including full per-packet float lists."""
    stats = flow.stats
    sender = flow.sender
    return {
        "bytes_received": stats.bytes_received,
        "recv_times": list(stats.recv_times),
        "sent_times": list(stats.sent_times),
        "sizes": list(stats.sizes),
        "queuing_delays": list(stats.queuing_delays),
        "first_recv_time": stats.first_recv_time,
        "last_recv_time": stats.last_recv_time,
        "packets_sent": sender.packets_sent,
        "retransmissions": sender.retransmissions,
        "timeouts": sender.timeouts,
        "acks_received": sender.acks_received,
        "bytes_acked": sender.bytes_acked,
        "completion_time": sender.completion_time,
    }


def scenario_summary(scenario, links) -> dict:
    return {
        "flows": [flow_summary(flow) for flow in scenario.flows],
        "drops": [link.dropped_packets for link in links],
        "delivered": [link.delivered_packets for link in links],
        "final_now": scenario.env.now,
    }


def both_modes(build_and_run) -> tuple:
    """Run a zero-argument scenario callable classically and batched."""
    with fastpath.override(False):
        classic = build_and_run()
    with fastpath.override(True):
        batched = build_and_run()
    return classic, batched


# ---------------------------------------------------------------------------
# Every paper scheme, end to end
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("scheme", sorted(GOLDEN_WIRING))
def test_scheme_runs_bit_identical(scheme):
    def run():
        result = run_single_bottleneck(
            scheme, lte_showcase_trace(duration=2.5, seed=7),
            rtt=0.08, duration=2.5, buffer_packets=150)
        # ``extra`` holds live simulation objects (the Flow handle), whose
        # identities differ run to run; the flow's full per-packet record is
        # compared through flow_summary instead.
        summary = {key: value
                   for key, value in dataclasses.asdict(result).items()
                   if key != "extra"}
        flow = result.extra.get("flow")
        if flow is not None:
            summary["flow"] = flow_summary(flow)
        return summary

    classic, batched = both_modes(run)
    assert classic == batched


# ---------------------------------------------------------------------------
# Outage-heavy trace: retransmission + RTO expiry paths
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("scheme", ["abc", "cubic", "bbr"])
def test_outage_trace_bit_identical(scheme):
    # A hand-built opportunity schedule with a 1.2 s outage: ACK clocking
    # stalls, the RTO fires, and recovery retransmits — the exact paths where
    # the lazy deadline timer and the classic handle machinery differ most.
    times = ([i * 0.004 for i in range(200)]            # 0.0 - 0.8 s
             + [2.0 + i * 0.004 for i in range(500)])   # 2.0 - 4.0 s

    def run():
        scenario = Scenario()
        link = scenario.add_cellular_link(list(times), name="outage-cell")
        scenario.add_flow(make_cc(scheme), [link], rtt=0.06, label=scheme)
        scenario.run(4.0)
        return scenario_summary(scenario, [link])

    classic, batched = both_modes(run)
    assert classic == batched
    assert classic["flows"][0]["timeouts"] >= 1, (
        "outage scenario no longer triggers an RTO; the differential lost "
        "its retransmission coverage")


# ---------------------------------------------------------------------------
# The golden-trace scenario (ABC + Cubic sharing an ABC bottleneck)
# ---------------------------------------------------------------------------
def test_golden_trace_scenario_bit_identical():
    from test_engine_golden_trace import DURATION, TRACE_SEED

    def run():
        trace = lte_showcase_trace(duration=DURATION, seed=TRACE_SEED)
        params = ABCParams()
        scenario = Scenario()
        link = scenario.add_cellular_link(
            trace, qdisc=ABCRouterQdisc(params=params, buffer_packets=100),
            name="cell")
        scenario.add_flow(make_cc("abc", params=params), [link], rtt=0.08,
                          label="abc")
        scenario.add_flow(make_cc("cubic"), [link], rtt=0.08, label="cubic")
        scenario.run(DURATION)
        return scenario_summary(scenario, [link])

    classic, batched = both_modes(run)
    assert classic == batched


# ---------------------------------------------------------------------------
# Metro cells: churn, mixed schemes, both cellular capacity models
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("link_spec,label", [
    (("square", 10e6, 24e6, 0.5), "square"),
    (30e6, "rate"),
], ids=["square-wave", "fixed-rate"])
def test_metro_cell_bit_identical(link_spec, label):
    def run():
        return metro_cell(mix="abc:0.6,cubic:0.3,bbr:0.1",
                          cell=f"diff-{label}", link_spec=link_spec, seed=3,
                          duration=4.0, arrival_rate=2.0)

    classic, batched = both_modes(run)
    assert classic == batched
    assert classic["offered_flows"] > 2


def test_metro_cell_trace_driven_bit_identical():
    trace = lte_showcase_trace(duration=4.0, seed=5)

    def run():
        return metro_cell(mix="abc:0.5,cubic:0.2,bbr:0.1,pcc:0.1,sprout:0.1",
                          cell="diff-trace", link_spec=trace, seed=1,
                          duration=4.0, arrival_rate=2.0)

    classic, batched = both_modes(run)
    assert classic == batched


# ---------------------------------------------------------------------------
# BatchedRateEstimator is a drop-in for WindowedRateEstimator
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_batched_rate_estimator_matches_deque(seed):
    rng = random.Random(f"batched-estimator-{seed}")
    deque_est = WindowedRateEstimator(window=0.04)
    flat_est = BatchedRateEstimator(window=0.04)
    now = 0.0
    for _ in range(5000):
        now += rng.expovariate(2000.0)
        size = rng.randrange(40, 1600)
        deque_est.add(now, size)
        flat_est.add(now, size)
        if rng.random() < 0.3:
            at = now + rng.random() * 0.01
            assert deque_est.rate_bps(at) == flat_est.rate_bps(at)
    assert deque_est.rate_bps(now) == flat_est.rate_bps(now)


def test_batched_rate_estimator_trims_consumed_prefix():
    est = BatchedRateEstimator(window=0.001)
    for i in range(3 * BatchedRateEstimator._TRIM_THRESHOLD):
        est.add(i * 0.01, 100)
        est.rate_bps(i * 0.01)
    assert len(est._times) <= 2 * BatchedRateEstimator._TRIM_THRESHOLD
