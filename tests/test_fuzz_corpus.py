"""Replay every committed fuzz-corpus entry as a deterministic regression.

Each JSON file under ``tests/data/fuzz_corpus/`` is a minimized scenario the
fuzzer (or a developer pinning a near-miss margin) committed.  Replaying it
must reproduce exactly what the entry expects:

* failing entries — the recorded invariant names trip again (a fixed bug
  flips the expectation, which is the visible, reviewable event);
* clean entries — no invariant trips *and* the run summary matches the
  pinned one bit-for-bit, so they double as determinism regressions: any
  unintentional behavior change in the simulator shows up here first.

To add an entry: run ``python tools/fuzz_scenarios.py --corpus-dir
tests/data/fuzz_corpus`` (failures are auto-minimized and serialized), or
build one by hand with :func:`repro.fuzz.shrink.corpus_entry`; see
``docs/ARCHITECTURE.md`` § Fuzzing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fuzz.campaign import evaluate_scenario
from repro.fuzz.generator import FuzzScenario
from repro.fuzz.shrink import load_corpus_entry

CORPUS_DIR = Path(__file__).parent / "data" / "fuzz_corpus"
ENTRIES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_seeded():
    """The corpus ships with at least two committed scenarios."""
    assert len(ENTRIES) >= 2


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_replays_deterministically(path):
    entry = load_corpus_entry(path)
    scenario = FuzzScenario.from_jsonable(entry["scenario"])
    scenario.validate()
    verdict = evaluate_scenario(scenario, check_determinism=True)
    tripped = sorted({name for name, _ in verdict["violations"]})

    expect = entry["expect"]
    if "violations" in expect:
        assert tripped == expect["violations"], (
            f"{path.name}: expected invariants {expect['violations']} to "
            f"trip, got {tripped} — if a bug was fixed intentionally, "
            f"update or retire this entry")
    else:
        assert tripped == [], (
            f"{path.name}: clean entry now trips {tripped}: "
            f"{verdict['violations']}")
        assert verdict["summary"] == expect["summary"], (
            f"{path.name}: run summary drifted from the pinned one — the "
            f"simulator's behavior changed; if intentional, regenerate the "
            f"entry (and bump CODE_VERSION_SALT)")
