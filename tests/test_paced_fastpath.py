"""Differential equivalence for the fused paced-sender fast path.

``REPRO_BATCH_ACKS=1`` historically left pacing-scheme senders (BBR,
PCC-Vivace) on the classic tick machinery; the fused loop now inlines the
whole send decision — window check, retransmission-queue flush, source
draw, packet construction, forward-hop resolution, RTO re-arm — into one
``_pace_tick_fused`` callback, and *halts* the tick chain once a finite
flow completes instead of polling a dead flow forever.

The contract is the batched-ACK one: **bit-identical results** (every
per-packet timestamp, delay, drop count and completion time), verified
here over cellular traces, AQM bottlenecks, random loss, multi-flow
coexistence and finite (churn-style) flows.
"""

from __future__ import annotations

import pytest

from repro.aqm import CoDelQdisc, PIEQdisc
from repro.cc import make_cc
from repro.cellular.synthetic import lte_showcase_trace
from repro.simulator import fastpath
from repro.simulator.scenario import Scenario
from repro.simulator.traffic import FixedSizeSource

from test_batched_ack import both_modes, flow_summary, scenario_summary

PACED_SCHEMES = ("bbr", "pcc")


# ---------------------------------------------------------------- traces
@pytest.mark.parametrize("scheme", PACED_SCHEMES)
def test_paced_scheme_on_trace_bit_identical(scheme):
    def run():
        scenario = Scenario()
        link = scenario.add_cellular_link(
            lte_showcase_trace(duration=3.0, seed=9), name="cell")
        scenario.add_flow(make_cc(scheme), [link], rtt=0.08, label=scheme)
        scenario.run(3.0)
        return scenario_summary(scenario, [link])

    classic, batched = both_modes(run)
    assert classic == batched
    assert classic["flows"][0]["packets_sent"] > 50


# ---------------------------------------------------------------- AQMs
@pytest.mark.parametrize("scheme", PACED_SCHEMES)
@pytest.mark.parametrize("qdisc_factory", [
    lambda: CoDelQdisc(buffer_packets=60),
    lambda: PIEQdisc(buffer_packets=60),
], ids=["codel", "pie"])
def test_paced_scheme_under_aqm_bit_identical(scheme, qdisc_factory):
    def run():
        scenario = Scenario()
        link = scenario.add_rate_link(8e6, qdisc=qdisc_factory(), name="aqm")
        scenario.add_flow(make_cc(scheme), [link], rtt=0.06, label=scheme)
        scenario.run(3.0)
        return scenario_summary(scenario, [link])

    classic, batched = both_modes(run)
    assert classic == batched


# ---------------------------------------------------------------- loss
@pytest.mark.parametrize("scheme", PACED_SCHEMES)
def test_paced_scheme_with_random_loss_bit_identical(scheme):
    def run():
        scenario = Scenario()
        link = scenario.add_rate_link(10e6, loss_rate=0.02, loss_seed=4,
                                      name="lossy")
        scenario.add_flow(make_cc(scheme), [link], rtt=0.05, label=scheme)
        scenario.run(3.0)
        return scenario_summary(scenario, [link])

    classic, batched = both_modes(run)
    assert classic == batched
    assert classic["flows"][0]["retransmissions"] > 0, (
        "the lossy run stopped retransmitting; the differential lost its "
        "retransmission-queue coverage")


# ----------------------------------------------------- mixed coexistence
def test_paced_and_window_schemes_share_bottleneck_bit_identical():
    """BBR + PCC + Cubic on one queue: fused paced senders interleave with
    the window-based fast path on the same demux and qdisc."""
    def run():
        scenario = Scenario()
        link = scenario.add_cellular_link(
            lte_showcase_trace(duration=3.0, seed=13), name="shared")
        for scheme in ("bbr", "pcc", "cubic"):
            scenario.add_flow(make_cc(scheme), [link], rtt=0.08, label=scheme)
        scenario.run(3.0)
        return scenario_summary(scenario, [link])

    classic, batched = both_modes(run)
    assert classic == batched


# ------------------------------------------------------ finite flows/halt
def _churn_scenario():
    scenario = Scenario()
    link = scenario.add_rate_link(12e6, name="bottleneck")
    for i, size in enumerate((40_000, 200_000, 1_000_000)):
        scenario.add_flow(make_cc("bbr"), [link], rtt=0.05,
                          start_time=0.1 * i,
                          source=FixedSizeSource(size),
                          label=f"churn-{i}")
    scenario.add_flow(make_cc("pcc"), [link], rtt=0.05,
                      source=FixedSizeSource(300_000), label="churn-pcc")
    scenario.run(6.0)
    return scenario, link


def test_finite_paced_flows_bit_identical_and_complete():
    def run():
        scenario, link = _churn_scenario()
        return scenario_summary(scenario, [link])

    classic, batched = both_modes(run)
    assert classic == batched
    completions = [f["completion_time"] for f in classic["flows"]]
    assert all(t is not None for t in completions), (
        "every finite flow was expected to finish within the horizon")


def test_fused_tick_halts_after_completion():
    """The fused loop must stop re-posting pace ticks once a finite flow
    completes — that is the perf win — and count the halt."""
    with fastpath.override(True):
        scenario, _link = _churn_scenario()
    for flow in scenario.flows:
        sender = flow.sender
        assert sender.pace_ticks > 0
        assert sender.pace_halts == 1
        assert sender.completion_time is not None
    # No pace tick fires after a halt: without one, a completed flow would
    # keep idle-polling at IDLE_PACING_POLL for the rest of the horizon.
    # The 40 kB flow finishes in well under a second, so its tick count
    # must come nowhere near a full horizon of polling.
    from repro.simulator.endpoints import IDLE_PACING_POLL
    small = scenario.flows[0].sender
    assert small.pace_ticks < 0.5 * (6.0 / IDLE_PACING_POLL)


def test_classic_senders_expose_no_pace_counters():
    with fastpath.override(False):
        scenario, _link = _churn_scenario()
    sender = scenario.flows[0].sender
    assert getattr(sender, "pace_ticks", 0) == 0
    assert getattr(sender, "pace_halts", 0) == 0
