"""Tests for cellular traces and the synthetic generators."""

import numpy as np
import pytest

from repro.cellular import (CellularTrace, SyntheticTraceConfig,
                            lte_showcase_trace, synthetic_trace,
                            synthetic_trace_set)
from repro.cellular.synthetic import TRACE_LIBRARY, rate_series, uplink_downlink_pair
from repro.simulator.packet import MTU


# ------------------------------------------------------------ CellularTrace
def test_trace_basic_properties():
    trace = CellularTrace([0.0, 0.001, 0.002, 0.003], name="t")
    assert len(trace) == 4
    assert trace.duration == pytest.approx(0.003)
    assert trace.mean_rate_bps() == pytest.approx(4 * MTU * 8 / 0.003)


def test_trace_requires_opportunities():
    with pytest.raises(ValueError):
        CellularTrace([])
    with pytest.raises(ValueError):
        CellularTrace([-1.0, 0.0])


def test_trace_rate_in_window():
    trace = CellularTrace([i * 0.001 for i in range(1000)])
    assert trace.rate_in_window(0.0, 0.5) == pytest.approx(12e6, rel=0.01)
    assert trace.rate_in_window(0.5, 0.5) == 0.0


def test_trace_rate_timeseries_shape():
    trace = CellularTrace([i * 0.01 for i in range(100)])
    times, rates = trace.rate_timeseries(bin_size=0.1)
    assert len(times) == len(rates)
    assert np.all(rates >= 0)


def test_trace_bits_between_counts_opportunities():
    trace = CellularTrace([0.0, 0.1, 0.2, 0.3, 0.9])
    per_opp = trace.bytes_per_opportunity * 8.0
    assert trace.bits_between(0.0, 1.0) == pytest.approx(5 * per_opp)
    # Half-open window: an opportunity exactly at t1 is excluded, one at t0
    # is included, matching the searchsorted cumulative-count convention.
    assert trace.bits_between(0.1, 0.3) == pytest.approx(2 * per_opp)
    assert trace.bits_between(0.5, 0.5) == 0.0
    assert trace.bits_between(1.0, 0.0) == 0.0


def test_trace_bits_between_consistent_with_rate_in_window():
    trace = CellularTrace([i * 0.003 for i in range(500)])
    for t0, t1 in [(0.0, 0.5), (0.25, 1.0), (0.1, 0.11)]:
        assert trace.bits_between(t0, t1) == pytest.approx(
            trace.rate_in_window(t0, t1) * (t1 - t0))


def test_trace_scaled_changes_rate():
    trace = CellularTrace([i * 0.001 for i in range(100)])
    double = trace.scaled(2.0)
    assert double.mean_rate_bps() == pytest.approx(2 * trace.mean_rate_bps(), rel=0.05)
    with pytest.raises(ValueError):
        trace.scaled(0.0)


def test_trace_truncated():
    trace = CellularTrace([i * 0.1 for i in range(100)])
    cut = trace.truncated(1.0)
    assert cut.duration <= 1.0
    with pytest.raises(ValueError):
        CellularTrace([5.0]).truncated(1.0)


def test_trace_mahimahi_round_trip(tmp_path):
    trace = CellularTrace([0.001, 0.002, 0.002, 0.01], name="rt")
    path = tmp_path / "trace.mahi"
    trace.to_mahimahi_file(path)
    loaded = CellularTrace.from_mahimahi_file(path)
    assert len(loaded) == len(trace)
    assert loaded.duration == pytest.approx(trace.duration, abs=1e-3)


def test_trace_from_rate_series():
    trace = CellularTrace.from_rate_series([0.0, 1.0], [12e6, 6e6])
    assert trace.rate_in_window(0.0, 1.0) == pytest.approx(12e6, rel=0.02)
    assert trace.rate_in_window(1.0, 2.0) == pytest.approx(6e6, rel=0.02)
    with pytest.raises(ValueError):
        CellularTrace.from_rate_series([0.0], [1e6, 2e6])
    with pytest.raises(ValueError):
        CellularTrace.from_rate_series([], [])


# ------------------------------------------------------------ synthetic traces
def test_synthetic_config_validation():
    with pytest.raises(ValueError):
        SyntheticTraceConfig(min_rate_bps=10e6, max_rate_bps=5e6)
    with pytest.raises(ValueError):
        SyntheticTraceConfig(mean_rate_bps=50e6, max_rate_bps=30e6)
    with pytest.raises(ValueError):
        SyntheticTraceConfig(update_interval=0.0)


def test_rate_series_within_bounds():
    config = SyntheticTraceConfig(mean_rate_bps=10e6, min_rate_bps=1e6,
                                  max_rate_bps=20e6, outage_rate_per_s=0.0)
    _, rates = rate_series(config, duration=20.0, seed=1)
    assert np.all(rates >= 1e6 - 1e-6)
    assert np.all(rates <= 20e6 + 1e-6)


def test_rate_series_outages_produce_zero_rate():
    config = SyntheticTraceConfig(outage_rate_per_s=2.0, outage_duration_s=0.5)
    _, rates = rate_series(config, duration=30.0, seed=3)
    assert np.any(rates == 0.0)


def test_synthetic_trace_reproducible_with_seed():
    config = TRACE_LIBRARY["Verizon-LTE-1"]
    a = synthetic_trace(config, 5.0, seed=9)
    b = synthetic_trace(config, 5.0, seed=9)
    assert list(a.opportunity_times) == list(b.opportunity_times)


def test_synthetic_trace_differs_across_seeds():
    config = TRACE_LIBRARY["Verizon-LTE-1"]
    a = synthetic_trace(config, 5.0, seed=1)
    b = synthetic_trace(config, 5.0, seed=2)
    assert list(a.opportunity_times) != list(b.opportunity_times)


def test_synthetic_trace_mean_rate_near_config():
    config = SyntheticTraceConfig(mean_rate_bps=10e6, min_rate_bps=2e6,
                                  max_rate_bps=25e6, outage_rate_per_s=0.0,
                                  volatility=0.1)
    trace = synthetic_trace(config, 30.0, seed=5)
    assert trace.mean_rate_bps() == pytest.approx(10e6, rel=0.5)


def test_synthetic_trace_has_large_dynamic_range():
    """§2: capacity can double and halve within a second."""
    trace = lte_showcase_trace(duration=30.0, seed=7)
    _, rates = trace.rate_timeseries(bin_size=0.5)
    positive = rates[rates > 0]
    assert positive.max() / max(positive.min(), 1e5) > 4.0


def test_trace_set_has_eight_operators():
    traces = synthetic_trace_set(duration=5.0, seed=1)
    assert len(traces) == 8
    assert all(len(t) > 100 for t in traces.values())


def test_trace_set_subset_selection():
    traces = synthetic_trace_set(duration=5.0, names=["ATT-LTE-1"])
    assert list(traces) == ["ATT-LTE-1"]


def test_uplink_downlink_pair():
    up, down = uplink_downlink_pair(duration=5.0, seed=2)
    assert up.name != down.name
    assert down.mean_rate_bps() > up.mean_rate_bps()
