"""Tests for capacity models and the rate/opportunity link implementations."""

import pytest

from repro.simulator.engine import EventLoop
from repro.simulator.link import (ConstantRate, OpportunityLink, RateLink,
                                  SquareWaveRate, SteppedRate)
from repro.simulator.packet import MTU, Packet
from repro.simulator.qdisc import FifoQdisc


class Collector:
    def __init__(self):
        self.packets = []

    def receive(self, packet):
        self.packets.append(packet)


# ------------------------------------------------------------ capacity models
def test_constant_rate_model():
    model = ConstantRate(8e6)
    assert model.rate_at(0.0) == 8e6
    assert model.bits_between(0.0, 2.0) == pytest.approx(16e6)


def test_constant_rate_rejects_non_positive():
    with pytest.raises(ValueError):
        ConstantRate(0.0)


def test_stepped_rate_lookup():
    model = SteppedRate([(0.0, 1e6), (5.0, 2e6), (10.0, 4e6)])
    assert model.rate_at(0.0) == 1e6
    assert model.rate_at(4.999) == 1e6
    assert model.rate_at(5.0) == 2e6
    assert model.rate_at(20.0) == 4e6


def test_stepped_rate_bits_between_spans_steps():
    model = SteppedRate([(0.0, 1e6), (1.0, 3e6)])
    assert model.bits_between(0.0, 2.0) == pytest.approx(4e6)
    assert model.bits_between(2.0, 2.0) == 0.0


def test_stepped_rate_validation():
    with pytest.raises(ValueError):
        SteppedRate([])
    with pytest.raises(ValueError):
        SteppedRate([(1.0, 1e6), (0.5, 2e6)])
    with pytest.raises(ValueError):
        SteppedRate([(0.0, -1.0)])


def test_square_wave_alternates():
    model = SquareWaveRate(12e6, 24e6, half_period=0.5)
    assert model.rate_at(0.25) == 24e6
    assert model.rate_at(0.75) == 12e6
    assert model.rate_at(1.25) == 24e6


# ------------------------------------- closed forms vs generic integration
def _generic_bits_between(model, t0, t1, step=0.0001):
    """The CapacityModel base-class integrator, at a finer step so it can
    serve as the numerical reference for the closed forms."""
    if t1 <= t0:
        return 0.0
    total = 0.0
    t = t0
    while t < t1:
        dt = min(step, t1 - t)
        total += model.rate_at(t) * dt
        t += dt
    return total


@pytest.mark.parametrize("t0,t1", [
    (0.0, 0.3), (0.0, 0.5), (0.0, 1.0), (0.2, 0.4), (0.3, 1.7),
    (0.5, 2.5), (1.25, 7.75), (0.0, 10.0), (3.0, 3.0),
])
def test_square_wave_closed_form_matches_integration(t0, t1):
    for start_low in (False, True):
        model = SquareWaveRate(12e6, 24e6, half_period=0.5,
                               start_low=start_low)
        assert model.bits_between(t0, t1) == pytest.approx(
            _generic_bits_between(model, t0, t1), rel=1e-3)


def test_square_wave_closed_form_is_additive():
    model = SquareWaveRate(5e6, 20e6, half_period=0.4)
    whole = model.bits_between(0.0, 6.0)
    split = sum(model.bits_between(i * 0.3, (i + 1) * 0.3) for i in range(20))
    assert split == pytest.approx(whole, rel=1e-12)


@pytest.mark.parametrize("t0,t1", [
    (0.0, 12.0), (0.5, 4.5), (4.9, 5.1), (6.0, 25.0), (11.0, 30.0),
])
def test_stepped_rate_bits_between_matches_integration(t0, t1):
    model = SteppedRate([(0.0, 1e6), (5.0, 2e6), (10.0, 4e6)])
    assert model.bits_between(t0, t1) == pytest.approx(
        _generic_bits_between(model, t0, t1), rel=1e-3)


def test_square_wave_start_low():
    model = SquareWaveRate(12e6, 24e6, half_period=0.5, start_low=True)
    assert model.rate_at(0.0) == 12e6


# ------------------------------------------------------------ rate link
def test_rate_link_transmission_time():
    env = EventLoop()
    sink = Collector()
    link = RateLink(env, ConstantRate(12e6), qdisc=FifoQdisc(), dst=sink)
    link.send(Packet(flow_id=0, seq=0, size=1500))
    env.run()
    # 1500 B at 12 Mbit/s = 1 ms
    assert env.now == pytest.approx(0.001)
    assert len(sink.packets) == 1


def test_rate_link_serialises_back_to_back_packets():
    env = EventLoop()
    sink = Collector()
    link = RateLink(env, ConstantRate(12e6), qdisc=FifoQdisc(), dst=sink)
    for i in range(3):
        link.send(Packet(flow_id=0, seq=i, size=1500))
    env.run()
    assert env.now == pytest.approx(0.003)
    assert [p.seq for p in sink.packets] == [0, 1, 2]


def test_rate_link_propagation_delay():
    env = EventLoop()
    sink = Collector()
    link = RateLink(env, ConstantRate(12e6), qdisc=FifoQdisc(), dst=sink,
                    prop_delay=0.05)
    link.send(Packet(flow_id=0, seq=0, size=1500))
    env.run()
    assert env.now == pytest.approx(0.051)


def test_rate_link_drop_counted():
    env = EventLoop()
    link = RateLink(env, ConstantRate(1e6), qdisc=FifoQdisc(buffer_packets=1),
                    dst=Collector())
    for i in range(5):
        link.send(Packet(flow_id=0, seq=i))
    # One in service slot has been dequeued; one queued; the rest dropped.
    assert link.dropped_packets >= 2


def test_rate_link_capacity_and_offered_bits():
    env = EventLoop()
    link = RateLink(env, ConstantRate(5e6), qdisc=FifoQdisc())
    assert link.capacity_bps(3.0) == 5e6
    assert link.offered_bits(0.0, 2.0) == pytest.approx(10e6)


# ------------------------------------------------------------ opportunity link
def test_opportunity_link_delivers_on_schedule():
    env = EventLoop()
    sink = Collector()
    times = [0.01, 0.02, 0.03, 0.04]
    link = OpportunityLink(env, times, qdisc=FifoQdisc(), dst=sink)
    for i in range(2):
        link.send(Packet(flow_id=0, seq=i, size=MTU))
    link.start()
    env.run(until=0.025)
    assert len(sink.packets) == 2
    assert env.now == pytest.approx(0.025)


def test_opportunity_link_wasted_opportunities_when_idle():
    env = EventLoop()
    sink = Collector()
    link = OpportunityLink(env, [0.01, 0.02], qdisc=FifoQdisc(), dst=sink)
    link.start()
    env.run(until=0.05)
    assert sink.packets == []


def test_opportunity_link_small_packets_share_an_opportunity():
    env = EventLoop()
    sink = Collector()
    link = OpportunityLink(env, [0.01], qdisc=FifoQdisc(), dst=sink)
    for i in range(3):
        link.send(Packet(flow_id=0, seq=i, size=400))
    link.start()
    env.run(until=0.015)
    assert len(sink.packets) == 3  # 3 x 400 B fit in one 1500 B opportunity


def test_opportunity_link_trace_wraps_around():
    env = EventLoop()
    sink = Collector()
    link = OpportunityLink(env, [0.5, 1.0], qdisc=FifoQdisc(buffer_packets=10), dst=sink)
    for i in range(4):
        link.send(Packet(flow_id=0, seq=i))
    link.start()
    env.run(until=2.1)
    # Opportunities at 0.5, 1.0, then wrap: 1.5, 2.0.
    assert len(sink.packets) == 4


def test_opportunity_link_capacity_window():
    env = EventLoop()
    times = [i * 0.001 for i in range(1000)]  # 1500 B every 1 ms = 12 Mbit/s
    link = OpportunityLink(env, times, qdisc=FifoQdisc())
    assert link.capacity_in_window(0.0, 0.5) == pytest.approx(12e6, rel=0.01)
    assert link.future_capacity_bps(0.1, 0.1) == pytest.approx(12e6, rel=0.05)
    assert link.offered_bits(0.0, 1.0) == pytest.approx(12e6, rel=0.01)


def test_opportunity_link_requires_opportunities():
    with pytest.raises(ValueError):
        OpportunityLink(EventLoop(), [], qdisc=FifoQdisc())
