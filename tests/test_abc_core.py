"""Unit tests for the ABC protocol core: params, marking, router, sender."""

import math

import pytest

from repro.core.marking import ProbabilisticMarker, TokenBucketMarker
from repro.core.params import ABCParams, CELLULAR_DEFAULTS, WIFI_DEFAULTS
from repro.core.router import ABCRouterQdisc
from repro.core.sender import ABCWindowControl
from repro.simulator.packet import ECN, MTU, AckFeedback, Packet


def ack(now, accel=True, rtt=0.1, bytes_acked=MTU, ece=False, in_flight=10):
    return AckFeedback(now=now, rtt=rtt, bytes_acked=bytes_acked, accel=accel,
                       ece=ece, packets_in_flight=in_flight)


# ------------------------------------------------------------ params
def test_default_params_match_paper_evaluation():
    assert CELLULAR_DEFAULTS.eta == pytest.approx(0.98)
    assert CELLULAR_DEFAULTS.delta == pytest.approx(0.133)


def test_params_validation():
    with pytest.raises(ValueError):
        ABCParams(eta=0.0)
    with pytest.raises(ValueError):
        ABCParams(eta=1.5)
    with pytest.raises(ValueError):
        ABCParams(delta=0.0)
    with pytest.raises(ValueError):
        ABCParams(delay_threshold=-0.1)
    with pytest.raises(ValueError):
        ABCParams(token_limit=0.5)
    with pytest.raises(ValueError):
        ABCParams(window_cap_factor=0.5)


def test_params_stability_helper():
    assert CELLULAR_DEFAULTS.is_stable_for_rtt(0.1)        # 0.133 > 0.0667
    assert not CELLULAR_DEFAULTS.is_stable_for_rtt(0.3)    # 0.133 < 0.2


def test_params_with_overrides():
    p = CELLULAR_DEFAULTS.with_overrides(delay_threshold=0.05)
    assert p.delay_threshold == 0.05
    assert p.eta == CELLULAR_DEFAULTS.eta
    assert WIFI_DEFAULTS.delay_threshold > CELLULAR_DEFAULTS.delay_threshold


# ------------------------------------------------------------ marking
def test_token_bucket_never_exceeds_fraction():
    marker = TokenBucketMarker()
    fraction = 0.37
    marks = sum(marker.mark(fraction) for _ in range(10_000))
    assert marks / 10_000 <= fraction + 1e-9


def test_token_bucket_achieves_fraction_asymptotically():
    marker = TokenBucketMarker()
    fraction = 0.5
    marks = sum(marker.mark(fraction) for _ in range(10_000))
    assert marks / 10_000 == pytest.approx(fraction, abs=0.01)


def test_token_bucket_all_accelerate_at_fraction_one():
    marker = TokenBucketMarker()
    assert all(marker.mark(1.0) for _ in range(100))


def test_token_bucket_all_brake_at_fraction_zero():
    marker = TokenBucketMarker()
    assert not any(marker.mark(0.0) for _ in range(100))


def test_token_bucket_token_capped():
    marker = TokenBucketMarker(token_limit=2.0)
    for _ in range(50):
        marker.mark(1.0)
    assert marker.token <= 2.0


def test_token_bucket_tracks_counts_and_reset():
    marker = TokenBucketMarker()
    for _ in range(10):
        marker.mark(0.5)
    assert marker.accel_count + marker.brake_count == 10
    assert 0.0 < marker.accel_fraction < 1.0
    marker.reset()
    assert marker.accel_count == 0 and marker.token == 0.0


def test_token_bucket_validation():
    with pytest.raises(ValueError):
        TokenBucketMarker(token_limit=0.5)


def test_probabilistic_marker_approximates_fraction():
    marker = ProbabilisticMarker(seed=1)
    marks = sum(marker.mark(0.3) for _ in range(20_000))
    assert marks / 20_000 == pytest.approx(0.3, abs=0.02)


def test_token_bucket_less_bursty_than_probabilistic():
    from repro.experiments.feedback import marking_burstiness
    stats = marking_burstiness(fraction=0.4, packets=4000)
    assert stats["token_gap_variance"] < stats["probabilistic_gap_variance"]
    assert stats["token_fraction"] <= 0.4 + 1e-9


# ------------------------------------------------------------ router control law
def make_router(capacity_bps=10e6, **kwargs) -> ABCRouterQdisc:
    return ABCRouterQdisc(capacity_fn=lambda now: capacity_bps, **kwargs)


def test_target_rate_is_eta_mu_when_queue_empty():
    router = make_router(capacity_bps=10e6)
    assert router.target_rate(0.0) == pytest.approx(0.98 * 10e6)


def test_target_rate_reduced_by_queue_above_threshold():
    params = ABCParams(eta=0.98, delta=0.133, delay_threshold=0.02)
    router = ABCRouterQdisc(params=params, capacity_fn=lambda now: 10e6)
    # Build a standing queue of 100 packets -> x(t) = 100*12000/10e6 = 120 ms.
    for i in range(100):
        router.enqueue(Packet(flow_id=0, seq=i), 0.0)
    expected_x = 100 * MTU * 8 / 10e6
    expected = 0.98 * 10e6 - 10e6 / 0.133 * (expected_x - 0.02)
    assert router.target_rate(0.0) == pytest.approx(expected, rel=1e-6)


def test_target_rate_never_negative():
    router = make_router(capacity_bps=10e6)
    for i in range(10_000):
        if not router.enqueue(Packet(flow_id=0, seq=i), 0.0):
            break
    assert router.target_rate(0.0) >= 0.0


def test_target_rate_ignores_delay_below_threshold():
    params = ABCParams(delay_threshold=0.1)
    router = ABCRouterQdisc(params=params, capacity_fn=lambda now: 10e6)
    for i in range(50):  # 60 ms of queue < 100 ms threshold
        router.enqueue(Packet(flow_id=0, seq=i), 0.0)
    assert router.target_rate(0.0) == pytest.approx(0.98 * 10e6)


def test_accel_fraction_is_half_target_over_dequeue_rate():
    router = make_router(capacity_bps=10e6)
    # Prime the dequeue-rate estimator at ~10 Mbit/s.
    now = 0.0
    for i in range(100):
        router.enqueue(Packet(flow_id=0, seq=i), now)
        router.dequeue(now)
        now += MTU * 8 / 10e6
    fraction = router.accel_fraction(now)
    assert fraction == pytest.approx(0.5 * 0.98, rel=0.1)


def test_accel_fraction_one_when_no_dequeue_history():
    router = make_router()
    assert router.accel_fraction(0.0) == 1.0


def test_accel_fraction_clamped_to_one():
    router = make_router(capacity_bps=100e6)
    now = 0.0
    for i in range(20):  # dequeue rate far below capacity
        router.enqueue(Packet(flow_id=0, seq=i), now)
        router.dequeue(now)
        now += 0.01
    assert router.accel_fraction(now) == 1.0


def test_router_marks_only_accelerate_packets():
    router = make_router(capacity_bps=1e6)
    now = 0.0
    # Saturate so that the fraction is below 1 and brakes appear.
    for i in range(200):
        router.enqueue(Packet(flow_id=0, seq=i, ecn=ECN.ACCEL), now)
    outcomes = set()
    for _ in range(200):
        pkt = router.dequeue(now)
        outcomes.add(pkt.ecn)
        now += 0.001
    assert ECN.BRAKE in outcomes
    assert outcomes <= {ECN.ACCEL, ECN.BRAKE}


def test_router_leaves_non_abc_packets_untouched():
    router = make_router(capacity_bps=1e6)
    now = 0.0
    for i in range(100):
        router.enqueue(Packet(flow_id=0, seq=i, ecn=ECN.NOT_ECT), now)
    for _ in range(100):
        pkt = router.dequeue(now)
        assert pkt.ecn == ECN.NOT_ECT
        now += 0.001


def test_router_never_upgrades_brake_to_accelerate():
    router = make_router(capacity_bps=100e6)  # high capacity -> f = 1
    router.enqueue(Packet(flow_id=0, seq=0, ecn=ECN.BRAKE), 0.0)
    assert router.dequeue(0.0).ecn == ECN.BRAKE


def test_router_drops_when_buffer_full():
    router = ABCRouterQdisc(buffer_packets=10, capacity_fn=lambda now: 1e6)
    for i in range(20):
        router.enqueue(Packet(flow_id=0, seq=i), 0.0)
    assert router.dropped_packets == 10


def test_router_capacity_share_scales_target():
    router = make_router(capacity_bps=10e6)
    router.set_capacity_share(0.5)
    assert router.target_rate(0.0) == pytest.approx(0.98 * 5e6)
    with pytest.raises(ValueError):
        router.set_capacity_share(0.0)


def test_router_feedback_basis_validation():
    with pytest.raises(ValueError):
        ABCRouterQdisc(feedback_basis="hybrid")
    with pytest.raises(ValueError):
        ABCRouterQdisc(delay_mode="weird")


def test_router_sojourn_delay_mode():
    router = ABCRouterQdisc(capacity_fn=lambda now: 10e6, delay_mode="sojourn")
    router.enqueue(Packet(flow_id=0, seq=0), 0.0)
    assert router.queuing_delay_estimate(0.5, 10e6) == pytest.approx(0.5)


# ------------------------------------------------------------ sender window law
def test_sender_accelerate_adds_one_plus_ai():
    cc = ABCWindowControl(initial_cwnd=10.0, dual_window=False)
    cc.on_ack(ack(0.0, accel=True, in_flight=20))
    assert cc.w_abc == pytest.approx(11.0 + 1.0 / 10.0)


def test_sender_brake_subtracts_one_minus_ai():
    cc = ABCWindowControl(initial_cwnd=10.0, dual_window=False)
    cc.on_ack(ack(0.0, accel=False, in_flight=20))
    assert cc.w_abc == pytest.approx(9.0 + 1.0 / 10.0)


def test_sender_without_ai_is_pure_mimd():
    params = ABCParams(additive_increase=False)
    cc = ABCWindowControl(params=params, initial_cwnd=10.0, dual_window=False)
    cc.on_ack(ack(0.0, accel=True, in_flight=20))
    assert cc.w_abc == pytest.approx(11.0)


def test_sender_all_accelerates_double_window_in_one_rtt():
    cc = ABCWindowControl(params=ABCParams(additive_increase=False),
                          initial_cwnd=10.0, dual_window=False)
    for i in range(10):
        cc.on_ack(ack(i * 0.01, accel=True, in_flight=40))
    assert cc.w_abc == pytest.approx(20.0)


def test_sender_all_brakes_empty_window_in_one_rtt():
    cc = ABCWindowControl(params=ABCParams(additive_increase=False),
                          initial_cwnd=10.0, dual_window=False)
    for i in range(10):
        cc.on_ack(ack(i * 0.01, accel=False, in_flight=40))
    assert cc.w_abc == cc.min_cwnd()


def test_sender_window_never_below_min():
    cc = ABCWindowControl(initial_cwnd=2.0, dual_window=False)
    for i in range(50):
        cc.on_ack(ack(i * 0.01, accel=False, in_flight=10))
    assert cc.w_abc >= cc.min_cwnd()


def test_sender_effective_window_is_min_of_both():
    cc = ABCWindowControl(initial_cwnd=10.0, dual_window=True)
    cc.w_abc = 50.0
    cc.cubic._cwnd = 20.0
    assert cc.cwnd() == 20.0
    cc.cubic._cwnd = 80.0
    assert cc.cwnd() == 50.0


def test_sender_windows_capped_at_twice_in_flight():
    cc = ABCWindowControl(initial_cwnd=10.0)
    cc.w_abc = 500.0
    cc.cubic._cwnd = 400.0
    cc.on_ack(ack(0.0, accel=True, in_flight=20))
    assert cc.w_abc <= 2 * 21
    assert cc.w_nonabc <= 2 * 21


def test_sender_loss_only_affects_cubic_window():
    cc = ABCWindowControl(initial_cwnd=10.0)
    cc.w_abc = 40.0
    cc.cubic._cwnd = 40.0
    cc.cubic.ssthresh = 1.0
    cc.on_loss(1.0)
    assert cc.w_abc == 40.0
    assert cc.w_nonabc < 40.0


def test_sender_without_dual_window_has_infinite_nonabc():
    cc = ABCWindowControl(dual_window=False)
    assert math.isinf(cc.w_nonabc)
    cc.on_loss(1.0)  # must not raise


def test_sender_ece_reduces_cubic_window():
    cc = ABCWindowControl(initial_cwnd=10.0)
    cc.cubic._cwnd = 40.0
    cc.cubic.ssthresh = 1.0
    cc.on_ack(ack(1.0, accel=True, ece=True, in_flight=30))
    assert cc.w_nonabc < 40.0


def test_sender_timeout_halves_abc_window():
    cc = ABCWindowControl(initial_cwnd=10.0, dual_window=False)
    cc.w_abc = 30.0
    cc.on_timeout(1.0)
    assert cc.w_abc == pytest.approx(15.0)


def test_sender_tracks_accel_fraction():
    cc = ABCWindowControl(dual_window=False)
    cc.on_ack(ack(0.0, accel=True))
    cc.on_ack(ack(0.01, accel=False))
    assert cc.observed_accel_fraction == pytest.approx(0.5)


def test_sender_uses_abc_flag():
    assert ABCWindowControl().uses_abc


def test_steady_state_window_matches_fairness_argument():
    """§3.1.3: in steady state 2f + 1/w = 1, so w = 1/(1 - 2f)."""
    cc = ABCWindowControl(initial_cwnd=5.0, dual_window=False)
    f = 0.45
    marker = TokenBucketMarker()
    now = 0.0
    for _ in range(8000):
        cc.on_ack(ack(now, accel=marker.mark(f), in_flight=1000))
        now += 0.001
    expected = 1.0 / (1.0 - 2.0 * f)
    assert cc.w_abc == pytest.approx(expected, rel=0.2)
