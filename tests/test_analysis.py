"""Tests for the analysis utilities: metrics, fairness, top-K, max-min, zombie."""

import pytest

from repro.analysis import (SpaceSaving, ZombieList, jain_fairness_index,
                            max_min_allocation)
from repro.analysis.fairness import relative_std, throughput_ratio
from repro.analysis.maxmin import queue_weights_from_allocation
from repro.analysis.metrics import (is_outside_frontier, mean,
                                    normalize_to_reference, pareto_frontier,
                                    percentile, utilization)


# ------------------------------------------------------------ metrics
def test_utilization_basic_and_clipped():
    assert utilization(5e6, 10e6) == pytest.approx(0.5)
    assert utilization(11e6, 10e6) == 1.0
    assert utilization(1.0, 0.0) == 0.0


def test_percentile_and_mean():
    values = [1, 2, 3, 4, 5]
    assert percentile(values, 50) == 3
    assert mean(values) == 3
    assert percentile([], 95) == 0.0
    assert mean([]) == 0.0


def test_normalize_to_reference():
    norm = normalize_to_reference({"abc": 2.0, "cubic": 1.0}, "abc")
    assert norm["abc"] == 1.0
    assert norm["cubic"] == 0.5
    with pytest.raises(KeyError):
        normalize_to_reference({"cubic": 1.0}, "abc")
    with pytest.raises(ValueError):
        normalize_to_reference({"abc": 0.0}, "abc")


def test_pareto_frontier_excludes_dominated_points():
    points = [("a", 100.0, 0.9), ("b", 200.0, 0.8), ("c", 150.0, 0.95),
              ("d", 90.0, 0.5)]
    frontier = pareto_frontier(points)
    names = {name for name, _, _ in frontier}
    assert "b" not in names          # dominated by c (lower delay, more tput)
    assert "a" in names and "c" in names


def test_is_outside_frontier():
    frontier = [(100.0, 0.7), (200.0, 0.9)]
    assert is_outside_frontier((100.0, 0.95), frontier)     # dominates
    assert not is_outside_frontier((150.0, 0.65), frontier)  # dominated by (100, 0.7)
    assert not is_outside_frontier((250.0, 0.85), frontier)  # dominated by (200, 0.9)


# ------------------------------------------------------------ fairness
def test_jain_index_equal_allocations():
    assert jain_fairness_index([5, 5, 5, 5]) == pytest.approx(1.0)


def test_jain_index_single_hog():
    n = 10
    index = jain_fairness_index([1.0] + [0.0] * (n - 1))
    assert index == pytest.approx(1.0 / n)


def test_jain_index_validation():
    with pytest.raises(ValueError):
        jain_fairness_index([])
    with pytest.raises(ValueError):
        jain_fairness_index([1.0, -2.0])


def test_throughput_ratio_and_relative_std():
    assert throughput_ratio([2.0, 2.0], [1.0, 3.0]) == pytest.approx(1.0)
    assert relative_std([5.0, 5.0]) == 0.0
    assert relative_std([0.0, 10.0]) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        throughput_ratio([], [1.0])


# ------------------------------------------------------------ Space-Saving
def test_space_saving_exact_when_under_capacity():
    ss = SpaceSaving(capacity=10)
    for key, count in [("a", 5), ("b", 3), ("c", 2)]:
        for _ in range(count):
            ss.update(key)
    assert ss.estimate("a") == 5
    assert ss.top(2) == [("a", 5), ("b", 3)]
    assert ss.error_bound("a") == 0


def test_space_saving_bounded_size_and_heavy_hitters():
    ss = SpaceSaving(capacity=5)
    # 3 heavy keys plus 50 one-hit wonders.
    for _ in range(100):
        ss.update("hot-1", 10)
    for _ in range(80):
        ss.update("hot-2", 10)
    for _ in range(60):
        ss.update("hot-3", 10)
    for i in range(50):
        ss.update(f"cold-{i}", 1)
    assert len(ss) <= 5
    top = [key for key, _ in ss.top(3)]
    assert set(top) == {"hot-1", "hot-2", "hot-3"}


def test_space_saving_overestimates_bounded_by_error():
    ss = SpaceSaving(capacity=2)
    ss.update("a", 10)
    ss.update("b", 10)
    ss.update("c", 1)  # evicts the minimum and inherits its count
    assert ss.estimate("c") == 11
    assert ss.error_bound("c") == 10


def test_space_saving_validation_and_reset():
    with pytest.raises(ValueError):
        SpaceSaving(capacity=0)
    ss = SpaceSaving(capacity=2)
    with pytest.raises(ValueError):
        ss.update("a", -1)
    ss.update("a", 5)
    ss.reset()
    assert ss.total == 0 and len(ss) == 0


# ------------------------------------------------------------ max-min
def test_max_min_unconstrained_demands_fully_served():
    alloc = max_min_allocation({"a": 2.0, "b": 3.0}, capacity=10.0)
    assert alloc["a"] == pytest.approx(2.0)
    assert alloc["b"] == pytest.approx(3.0)


def test_max_min_equal_split_when_all_backlogged():
    alloc = max_min_allocation({"a": 100.0, "b": 100.0, "c": 100.0}, capacity=9.0)
    assert all(v == pytest.approx(3.0) for v in alloc.values())


def test_max_min_demand_limited_flow_gets_demand_others_share_rest():
    alloc = max_min_allocation({"small": 1.0, "big1": 100.0, "big2": 100.0},
                               capacity=11.0)
    assert alloc["small"] == pytest.approx(1.0)
    assert alloc["big1"] == pytest.approx(5.0)
    assert alloc["big2"] == pytest.approx(5.0)


def test_max_min_total_never_exceeds_capacity():
    alloc = max_min_allocation({"a": 5.0, "b": 7.0, "c": 11.0}, capacity=10.0)
    assert sum(alloc.values()) <= 10.0 + 1e-9


def test_max_min_zero_capacity_and_validation():
    assert all(v == 0.0 for v in max_min_allocation({"a": 5.0}, 0.0).values())
    with pytest.raises(ValueError):
        max_min_allocation({"a": 1.0}, -1.0)


def test_queue_weights_from_allocation():
    allocation = {("abc", 1): 6.0, ("abc", 2): 6.0, ("nonabc", 3): 12.0}
    queue_of = {key: key[0] for key in allocation}
    weights = queue_weights_from_allocation(allocation, queue_of)
    assert weights["abc"] == pytest.approx(0.5)
    assert weights["nonabc"] == pytest.approx(0.5)
    assert sum(weights.values()) == pytest.approx(1.0)


def test_queue_weights_floor_prevents_starvation():
    allocation = {("abc", 1): 0.1, ("nonabc", 2): 100.0}
    queue_of = {key: key[0] for key in allocation}
    weights = queue_weights_from_allocation(allocation, queue_of,
                                            minimum_weight=0.05)
    assert weights["abc"] >= 0.047  # floor then renormalised


# ------------------------------------------------------------ Zombie list
def test_zombie_list_counts_single_flow():
    z = ZombieList(size=16, alpha=0.1, seed=1)
    for _ in range(500):
        z.observe("flow-0")
    assert z.estimated_flow_count() == pytest.approx(1.0, abs=0.3)


def test_zombie_list_counts_many_flows():
    z = ZombieList(size=64, alpha=0.05, seed=2)
    for i in range(4000):
        z.observe(f"flow-{i % 20}")
    assert 10 <= z.estimated_flow_count() <= 40


def test_zombie_list_more_flows_bigger_estimate():
    def estimate(n_flows):
        z = ZombieList(size=64, alpha=0.05, seed=3)
        for i in range(4000):
            z.observe(f"flow-{i % n_flows}")
        return z.estimated_flow_count()

    assert estimate(16) > estimate(2)


def test_zombie_list_estimate_before_any_hits():
    # Until the EWMA has seen a hit, the estimate falls back to the zombie
    # count itself (and never below one flow).
    z = ZombieList(size=8, alpha=0.1, seed=5)
    assert z.estimated_flow_count() == 1.0
    for i in range(4):
        z.observe(f"flow-{i}")  # all distinct: every comparison misses
    assert z._hit_probability <= 1e-6
    assert z.estimated_flow_count() == float(len(z._zombies))


def test_space_saving_rejects_negative_amount():
    ss = SpaceSaving(capacity=4)
    with pytest.raises(ValueError, match="non-negative"):
        ss.update("k", -1.0)


def test_zombie_list_validation_and_reset():
    with pytest.raises(ValueError):
        ZombieList(size=0)
    with pytest.raises(ValueError):
        ZombieList(alpha=0.0)
    z = ZombieList()
    z.observe("a")
    z.reset()
    assert z.packets_seen == 0
