"""Unit tests for the discrete-event engine."""

import math

import pytest

from repro.simulator.engine import EventLoop


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.schedule(2.0, fired.append, "late")
    loop.schedule(1.0, fired.append, "early")
    loop.schedule(1.5, fired.append, "middle")
    loop.run()
    assert fired == ["early", "middle", "late"]


def test_same_time_events_fire_in_insertion_order():
    loop = EventLoop()
    fired = []
    for label in "abcde":
        loop.schedule(1.0, fired.append, label)
    loop.run()
    assert fired == list("abcde")


def test_now_advances_to_event_time():
    loop = EventLoop()
    times = []
    loop.schedule(0.5, lambda: times.append(loop.now))
    loop.schedule(2.5, lambda: times.append(loop.now))
    loop.run()
    assert times == [0.5, 2.5]
    assert loop.now == 2.5


def test_run_until_advances_clock_even_without_events():
    loop = EventLoop()
    loop.run(until=3.0)
    assert loop.now == 3.0


def test_run_until_does_not_execute_later_events():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, fired.append, "in")
    loop.schedule(5.0, fired.append, "out")
    loop.run(until=2.0)
    assert fired == ["in"]
    assert loop.now == 2.0
    assert loop.pending == 1


def test_cancelled_event_does_not_fire():
    loop = EventLoop()
    fired = []
    handle = loop.schedule(1.0, fired.append, "cancelled")
    loop.schedule(2.0, fired.append, "kept")
    handle.cancel()
    loop.run()
    assert fired == ["kept"]
    assert handle.cancelled


def test_cancel_is_idempotent():
    loop = EventLoop()
    handle = loop.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    loop.run()
    assert loop.events_processed == 0


def test_negative_delay_clamped_to_now():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, lambda: loop.schedule(-5.0, fired.append, loop.now))
    loop.run()
    assert fired == [1.0]


def test_schedule_at_in_the_past_clamps_to_now():
    loop = EventLoop()
    fired = []

    def later():
        loop.schedule_at(0.1, fired.append, loop.now)

    loop.schedule(1.0, later)
    loop.run()
    assert fired == [1.0]


def test_nan_delay_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        loop.schedule(math.nan, lambda: None)
    with pytest.raises(ValueError):
        loop.schedule_at(math.nan, lambda: None)


def test_events_processed_counter():
    loop = EventLoop()
    for _ in range(5):
        loop.schedule(1.0, lambda: None)
    loop.run()
    assert loop.events_processed == 5


def test_max_events_limit():
    loop = EventLoop()
    for i in range(10):
        loop.schedule(float(i), lambda: None)
    loop.run(max_events=3)
    assert loop.events_processed == 3


def test_step_executes_single_event():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, fired.append, 1)
    loop.schedule(2.0, fired.append, 2)
    assert loop.step() is True
    assert fired == [1]
    assert loop.step() is True
    assert loop.step() is False


def test_events_scheduled_during_run_are_executed():
    loop = EventLoop()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            loop.schedule(1.0, chain, depth + 1)

    loop.schedule(0.0, chain, 0)
    loop.run()
    assert fired == [0, 1, 2, 3]
    assert loop.now == 3.0


def test_clear_drops_pending_events():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, fired.append, "x")
    loop.clear()
    loop.run()
    assert fired == []


def test_callback_args_are_passed():
    loop = EventLoop()
    received = []
    loop.schedule(0.5, lambda a, b: received.append((a, b)), 1, "two")
    loop.run()
    assert received == [(1, "two")]


# ------------------------------------------------------------ lazy deletion
def test_pending_counts_live_events_only():
    loop = EventLoop()
    handles = [loop.schedule(1.0, lambda: None) for _ in range(10)]
    assert loop.pending == 10
    for handle in handles[:4]:
        handle.cancel()
    assert loop.pending == 6
    assert loop.cancelled_pending == 4


def test_heap_compaction_bounds_memory_under_cancel_churn():
    loop = EventLoop()
    loop.schedule(1e9, lambda: None)  # one live far-future event
    # The RTO pattern: arm a timer, cancel it, arm the next one.  Without
    # compaction all 10 000 dead entries would linger until popped.
    for i in range(10_000):
        loop.schedule(1e6 + i, lambda: None).cancel()
    assert loop.compactions > 0
    assert len(loop._heap) < 1_000
    assert loop.pending == 1
    assert loop.cancelled_pending < 1_000


def test_compaction_preserves_firing_order():
    loop = EventLoop()
    fired = []
    expected = []
    for i in range(300):
        handle = loop.schedule(1.0 + 0.001 * i, fired.append, i)
        if i % 2:
            handle.cancel()
        else:
            expected.append(i)
    # Force compaction with extra cancelled churn, then check ordering.
    for _ in range(500):
        loop.schedule(50.0, lambda: None).cancel()
    assert loop.compactions >= 1
    loop.run()
    assert fired == expected


def test_cancel_after_fire_does_not_corrupt_pending():
    loop = EventLoop()
    handle = loop.schedule(0.5, lambda: None)
    loop.schedule(1.0, lambda: None)
    loop.run(until=0.7)
    handle.cancel()  # the event already fired; accounting must not change
    assert handle.cancelled
    assert loop.pending == 1
    assert loop.cancelled_pending == 0


def test_cancel_after_clear_does_not_corrupt_pending():
    loop = EventLoop()
    handle = loop.schedule(1.0, lambda: None)
    loop.clear()
    handle.cancel()
    assert loop.pending == 0
    assert loop.cancelled_pending == 0


def test_cancelled_events_popped_during_run_update_accounting():
    loop = EventLoop()
    fired = []
    handles = [loop.schedule(0.1 * (i + 1), fired.append, i) for i in range(5)]
    handles[1].cancel()
    handles[3].cancel()
    loop.run()
    assert fired == [0, 2, 4]
    assert loop.pending == 0
    assert loop.cancelled_pending == 0
