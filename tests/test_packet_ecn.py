"""Tests for packets, ECN codepoints and the §5.1.2 re-purposing rules."""

import pytest

from repro.core import ecn
from repro.simulator.packet import (ACK_SIZE, MTU, Ack, ECN, Packet,
                                    apply_brake, apply_ce, is_ack)


# ---------------------------------------------------------------- codepoints
def test_ecn_codepoint_values_match_bit_layout():
    assert ECN.NOT_ECT == 0b00
    assert ECN.ACCEL == 0b01
    assert ECN.BRAKE == 0b10
    assert ECN.CE == 0b11


def test_accel_and_brake_are_legacy_ecn_capable():
    assert ECN.ACCEL.is_ecn_capable
    assert ECN.BRAKE.is_ecn_capable
    assert not ECN.NOT_ECT.is_ecn_capable
    assert not ECN.CE.is_ecn_capable


def test_apply_brake_only_downgrades_accelerate():
    assert apply_brake(ECN.ACCEL) == ECN.BRAKE
    assert apply_brake(ECN.BRAKE) == ECN.BRAKE
    assert apply_brake(ECN.CE) == ECN.CE
    assert apply_brake(ECN.NOT_ECT) == ECN.NOT_ECT


def test_apply_ce_marks_only_ecn_capable_packets():
    assert apply_ce(ECN.ACCEL) == ECN.CE
    assert apply_ce(ECN.BRAKE) == ECN.CE
    assert apply_ce(ECN.NOT_ECT) == ECN.NOT_ECT
    assert apply_ce(ECN.CE) == ECN.CE


# ---------------------------------------------------------------- packets
def test_packet_defaults():
    pkt = Packet(flow_id=1, seq=0)
    assert pkt.size == MTU
    assert pkt.ecn == ECN.NOT_ECT
    assert not pkt.is_retransmission
    assert pkt.total_queuing_delay == 0.0


def test_packet_uids_are_unique():
    a = Packet(flow_id=1, seq=0)
    b = Packet(flow_id=1, seq=0)
    assert a.uid != b.uid


def test_queuing_delay_property():
    pkt = Packet(flow_id=1, seq=0)
    pkt.enqueue_time = 1.0
    pkt.dequeue_time = 1.25
    assert pkt.queuing_delay == pytest.approx(0.25)
    pkt.dequeue_time = 0.5  # never negative
    assert pkt.queuing_delay == 0.0


def test_ack_defaults_and_detection():
    ack = Ack(flow_id=3, seq=7)
    assert ack.size == ACK_SIZE
    assert ack.accel is True
    assert is_ack(ack)
    assert not is_ack(Packet(flow_id=3, seq=7))


# ---------------------------------------------------------------- §5.1.2 tables
def test_abc_reinterpretation_table():
    assert ecn.ABC_INTERPRETATION[ECN.ACCEL] == "Accelerate"
    assert ecn.ABC_INTERPRETATION[ECN.BRAKE] == "Brake"
    assert ecn.CLASSIC_INTERPRETATION[ECN.ACCEL].startswith("ECN-Capable")


def test_receiver_echo_accelerate():
    echo = ecn.receiver_echo(ECN.ACCEL)
    assert echo.accel and not echo.ece


def test_receiver_echo_brake():
    echo = ecn.receiver_echo(ECN.BRAKE)
    assert not echo.accel and not echo.ece


def test_receiver_echo_ce_sets_ece():
    echo = ecn.receiver_echo(ECN.CE)
    assert not echo.accel and echo.ece


def test_sender_codepoint_selection():
    assert ecn.sender_codepoint(abc_enabled=True) == ECN.ACCEL
    assert ecn.sender_codepoint(abc_enabled=False, ecn_enabled=True) == ECN.BRAKE
    assert ecn.sender_codepoint(abc_enabled=False, ecn_enabled=False) == ECN.NOT_ECT


def test_legacy_router_sees_abc_packets_as_ecn_capable():
    assert ecn.is_legacy_ecn_capable(ecn.sender_codepoint(True))


def test_proxied_deployment_round_trip():
    # Sender marks accelerate, router may flip to CE for brake, receiver
    # echoes CE via ECE; absence of CE is read as accelerate.
    sent = ecn.proxied_sender_codepoint()
    assert ecn.proxied_receiver_accel(sent)
    braked = ecn.proxied_brake(sent)
    assert braked == ECN.CE
    assert not ecn.proxied_receiver_accel(braked)
    assert ecn.proxied_brake(ECN.NOT_ECT) == ECN.NOT_ECT
