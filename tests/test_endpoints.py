"""Tests for the generic sender/receiver transport machinery."""

import pytest

from repro.cc.base import AIMD
from repro.cc.cubic import Cubic
from repro.simulator.endpoints import DelayHop, Receiver, Sender, Sink
from repro.simulator.engine import EventLoop
from repro.simulator.link import ConstantRate, RateLink
from repro.simulator.packet import Ack, ECN, Packet
from repro.simulator.qdisc import FifoQdisc
from repro.simulator.scenario import Scenario
from repro.simulator.traffic import FixedSizeSource, RateLimitedSource
from repro.core.sender import ABCWindowControl


def build_loop(cc, rate_bps=10e6, buffer_packets=100, rtt=0.1,
               source=None, duration=5.0):
    """Minimal sender → link → receiver → sender loop without Scenario."""
    env = EventLoop()
    sender = Sender(env, flow_id=0, cc=cc, source=source)
    receiver = Receiver(env)
    link = RateLink(env, ConstantRate(rate_bps),
                    qdisc=FifoQdisc(buffer_packets=buffer_packets), dst=receiver)
    fwd = DelayHop(env, rtt / 2.0, dst=link)
    back = DelayHop(env, rtt / 2.0, dst=sender)
    sender.connect(fwd)
    receiver.connect(back)
    sender.start()
    env.run(until=duration)
    return env, sender, receiver, link


# ------------------------------------------------------------ basics
def test_sender_is_window_limited():
    env, sender, receiver, _ = build_loop(AIMD(initial_cwnd=2.0, ssthresh=2.0),
                                          duration=0.05)
    # Only the initial window can be in flight before the first ACK (~RTT).
    assert sender.packets_sent == 2


def test_ack_clocking_sustains_flow():
    env, sender, receiver, _ = build_loop(AIMD(initial_cwnd=4.0, ssthresh=4.0),
                                          duration=2.0)
    assert receiver.packets_received > 20
    assert sender.acks_received > 20


def test_rtt_estimate_close_to_configured():
    env, sender, _, _ = build_loop(AIMD(initial_cwnd=2.0, ssthresh=2.0),
                                   rtt=0.08, duration=2.0)
    # Propagation 80 ms plus ~1.2 ms serialisation.
    assert sender.rtt.minimum() == pytest.approx(0.0812, abs=0.01)


def test_slow_start_grows_window():
    cc = AIMD(initial_cwnd=2.0)
    build_loop(cc, duration=1.0)
    assert cc.cwnd() > 10


def test_delivery_records_collected_per_flow():
    env, sender, receiver, _ = build_loop(AIMD(initial_cwnd=2.0), duration=1.0)
    stats = receiver.stats_for(0)
    assert stats.bytes_received == sum(r.size for r in stats.records)
    assert stats.records[0].one_way_delay > 0.0


def test_fixed_size_flow_completes():
    source = FixedSizeSource(total_bytes=15_000)
    env, sender, receiver, _ = build_loop(AIMD(initial_cwnd=4.0), source=source,
                                          duration=3.0)
    assert sender.completion_time is not None
    assert receiver.stats_for(0).bytes_received == 15_000


def test_application_limited_flow_paces_with_data_arrival():
    source = RateLimitedSource(rate_bps=1e6)
    env, sender, receiver, _ = build_loop(Cubic(), source=source, duration=3.0)
    achieved = receiver.stats_for(0).throughput_bps(0.5, 3.0)
    assert achieved == pytest.approx(1e6, rel=0.3)


# ------------------------------------------------------------ loss handling
def test_losses_detected_and_retransmitted():
    # Tiny buffer forces drops during slow start.
    env, sender, receiver, link = build_loop(Cubic(initial_cwnd=10.0),
                                             rate_bps=2e6, buffer_packets=5,
                                             duration=4.0)
    assert link.dropped_packets > 0
    assert sender.loss_events > 0
    assert sender.retransmissions > 0
    # All data eventually reaches the receiver in spite of the drops.
    assert receiver.packets_received > 100


def test_loss_events_bounded_by_once_per_window():
    env, sender, _, link = build_loop(Cubic(initial_cwnd=10.0), rate_bps=2e6,
                                      buffer_packets=5, duration=4.0)
    # Far fewer congestion events than individual drops.
    assert sender.loss_events < link.dropped_packets


def test_rto_fires_when_path_goes_dead():
    env = EventLoop()
    cc = AIMD(initial_cwnd=4.0)
    sender = Sender(env, flow_id=0, cc=cc)
    sender.connect(Sink())  # packets vanish; no ACKs ever return
    sender.start()
    env.run(until=5.0)
    assert sender.timeouts >= 1
    assert cc.cwnd() == cc.min_cwnd()


def test_rto_backoff_doubles():
    env = EventLoop()
    sender = Sender(env, flow_id=0, cc=AIMD(initial_cwnd=2.0))
    sender.connect(Sink())
    sender.start()
    env.run(until=10.0)
    assert sender.timeouts >= 2
    assert sender._rto_backoff > 1.0


def test_stale_ack_ignored():
    env = EventLoop()
    sender = Sender(env, flow_id=0, cc=AIMD(initial_cwnd=2.0))
    sender.connect(Sink())
    sender.start()
    env.run(until=0.01)
    before = sender.bytes_acked
    sender.receive(Ack(flow_id=0, seq=999))
    assert sender.bytes_acked == before


# ------------------------------------------------------------ receiver echo
def test_receiver_echoes_accelerate_bit():
    env = EventLoop()
    received = []

    class Capture:
        def receive(self, packet):
            received.append(packet)
        send = receive

    receiver = Receiver(env, egress=Capture())
    receiver.receive(Packet(flow_id=1, seq=0, ecn=ECN.ACCEL, sent_time=0.0))
    receiver.receive(Packet(flow_id=1, seq=1, ecn=ECN.BRAKE, sent_time=0.0))
    receiver.receive(Packet(flow_id=1, seq=2, ecn=ECN.CE, sent_time=0.0))
    env.run()
    assert [a.accel for a in received] == [True, False, False]
    assert [a.ece for a in received] == [False, False, True]


def test_receiver_echoes_scheme_meta():
    env = EventLoop()
    captured = []

    class Capture:
        def receive(self, packet):
            captured.append(packet)
        send = receive

    receiver = Receiver(env, egress=Capture())
    receiver.receive(Packet(flow_id=1, seq=0, meta={"xcp_feedback_bytes": 123.0}))
    env.run()
    assert captured[0].meta["xcp_feedback_bytes"] == 123.0


def test_receiver_tracks_cumulative_ack():
    env = EventLoop()
    receiver = Receiver(env, egress=Sink())
    for seq in (0, 1, 2):
        receiver.receive(Packet(flow_id=5, seq=seq))
    assert receiver._next_expected[5] == 3


# ------------------------------------------------------------ ABC marking path
def test_abc_sender_marks_packets_accelerate():
    scenario = Scenario()
    link = scenario.add_rate_link(10e6, qdisc=FifoQdisc(), name="l")
    flow = scenario.add_flow(ABCWindowControl(), [link], rtt=0.05)
    scenario.run(0.2)
    # Without an ABC router on the path every delivered packet keeps its
    # accelerate mark, so every ACK reports accel=True.
    assert flow.cc.brake_acks == 0
    assert flow.cc.accel_acks > 0


def test_delay_hop_validation():
    with pytest.raises(ValueError):
        DelayHop(EventLoop(), delay=-1.0)


def test_sink_counts_traffic():
    sink = Sink()
    sink.receive(Packet(flow_id=0, seq=0, size=100))
    sink.receive(Ack(flow_id=0, seq=0))
    assert sink.packets == 2
    assert sink.bytes > 0
