"""Unit tests for the scenario-fuzzing subsystem, one section per layer.

The generator must be deterministic and always-valid; each invariant checker
must stay quiet on a healthy run and fire when the corresponding accounting
is (artificially) broken; the shrinker must minimize against a pure
predicate; and a small campaign must be reproducible end-to-end.
"""

from __future__ import annotations

import json

import pytest

from repro.fuzz.campaign import evaluate_scenario, fuzz_cell, run_campaign
from repro.fuzz.generator import (CHURN_CCS, CROSS_TRAFFIC_SCHEMES, NATIVE,
                                  FlowSpec, FuzzScenario, LinkSpec,
                                  ScenarioGen, SmallMetroGen, build_scenario)
from repro.fuzz.invariants import (CheckContext, CwndProbe, FAIRNESS_FLOOR,
                                   Violation, check_fairness,
                                   check_link_throughput, check_non_negative,
                                   check_packet_conservation,
                                   check_queuing_delay, fairness_applies,
                                   run_invariants, scenario_summary)
from repro.fuzz.shrink import (corpus_entry, load_corpus_entry,
                               save_corpus_entry, shrink_scenario)
from repro.runtime import SweepExecutor


def _tiny_scenario(scheme: str = "cubic", n_flows: int = 1,
                   duration: float = 1.5, **link_kwargs) -> FuzzScenario:
    link = LinkSpec(kind="constant", params={"rate_bps": 5e6},
                    buffer_packets=50, **link_kwargs)
    flows = [FlowSpec(cc=NATIVE, rtt=0.05, start_time=0.0)
             for _ in range(n_flows)]
    return FuzzScenario(scenario_id=0, scheme=scheme, duration=duration,
                        links=[link], flows=flows, sim_seed=7)


def _run(fuzz: FuzzScenario) -> CheckContext:
    built = build_scenario(fuzz)
    probe = CwndProbe(built)
    result = built.scenario.run(fuzz.duration)
    return CheckContext(fuzz=fuzz, built=built, result=result,
                        cwnd_samples=probe.samples)


# ================================================================ generator
def test_generator_is_deterministic():
    a = ScenarioGen(seed=3)
    b = ScenarioGen(seed=3)
    for i in range(20):
        assert a.sample(i).to_jsonable() == b.sample(i).to_jsonable()
    # Different seeds diverge (overwhelmingly likely over 20 samples).
    c = ScenarioGen(seed=4)
    assert any(a.sample(i).to_jsonable() != c.sample(i).to_jsonable()
               for i in range(20))


def test_generator_samples_are_valid_and_varied():
    gen = ScenarioGen(seed=11)
    scenarios = gen.sample_many(60)
    kinds, schemes, flow_counts = set(), set(), set()
    for fuzz in scenarios:
        fuzz.validate()  # raises on an invalid sample
        kinds.add(fuzz.links[0].kind)
        schemes.add(fuzz.scheme)
        flow_counts.add(len(fuzz.flows))
        for flow in fuzz.flows:
            if flow.cc != NATIVE:
                assert fuzz.scheme in CROSS_TRAFFIC_SCHEMES
    assert kinds == {"constant", "square", "cellular"}
    assert len(schemes) >= 5
    assert flow_counts == {1, 2, 3}


def test_scenario_json_round_trip():
    fuzz = ScenarioGen(seed=2).sample(5)
    encoded = json.dumps(fuzz.to_jsonable(), sort_keys=True)
    restored = FuzzScenario.from_jsonable(json.loads(encoded))
    assert restored == fuzz
    assert restored.signature() == fuzz.signature()


def test_scenario_validation_rejects_bad_inputs():
    with pytest.raises(ValueError, match="at least one flow"):
        FuzzScenario(scenario_id=0, scheme="cubic", duration=1.0,
                     links=[LinkSpec(kind="constant",
                                     params={"rate_bps": 1e6})],
                     flows=[]).validate()
    with pytest.raises(ValueError, match="cross-traffic"):
        FuzzScenario(scenario_id=0, scheme="xcp", duration=1.0,
                     links=[LinkSpec(kind="constant",
                                     params={"rate_bps": 1e6})],
                     flows=[FlowSpec(cc="cubic")]).validate()
    with pytest.raises(ValueError, match="starts after"):
        _tiny = _tiny_scenario()
        _tiny.flows[0].start_time = 99.0
        _tiny.validate()
    with pytest.raises(ValueError, match="bottleneck"):
        FuzzScenario(scenario_id=0, scheme="cubic", duration=1.0,
                     links=[LinkSpec(kind="constant",
                                     params={"rate_bps": 1e6}, role="wired")],
                     flows=[FlowSpec()]).validate()


def test_signature_groups_structurally_similar_scenarios():
    a = _tiny_scenario()
    b = _tiny_scenario()
    b.links[0].params["rate_bps"] = 9e6  # numeric difference only
    b.flows[0].rtt = 0.11
    assert a.signature() == b.signature()
    c = _tiny_scenario(n_flows=2)
    assert a.signature() != c.signature()


# ================================================================ small metro
def test_finite_flow_departs_after_its_transfer():
    fuzz = _tiny_scenario(duration=2.0)
    fuzz.flows[0].size_bytes = 60_000
    ctx = _run(fuzz)
    flow = ctx.built.flows[0]
    assert flow.sender.completion_time is not None
    assert flow.stats.bytes_received == 60_000
    # A departed flow stops transmitting: everything sent was needed for the
    # transfer (plus retransmissions).
    assert flow.sender.packets_sent <= (60_000 // 1000 + 1
                                        + flow.sender.retransmissions + 2)
    assert run_invariants(ctx) == []


def test_flow_spec_rejects_non_positive_size():
    with pytest.raises(ValueError, match="size_bytes"):
        FlowSpec(cc=NATIVE, rtt=0.05, size_bytes=0).validate()


def test_small_metro_city_deterministic_and_valid():
    first = SmallMetroGen(seed=5).sample_city(0)
    second = SmallMetroGen(seed=5).sample_city(0)
    assert ([cell.to_jsonable() for cell in first]
            == [cell.to_jsonable() for cell in second])
    assert 10 <= len(first) <= 20
    churn = [flow for cell in first for flow in cell.flows
             if flow.size_bytes is not None]
    assert churn, "a metro city must have churn on"
    assert {flow.cc for flow in churn} <= {NATIVE} | set(CHURN_CCS)
    for cell in first:
        cell.validate()  # raises on an invalid cell
        assert cell.scheme == "abc"
        assert any(flow.size_bytes is None for flow in cell.flows)
    # JSON round-trip covers the new size_bytes field.
    encoded = json.dumps([cell.to_jsonable() for cell in first])
    assert [FuzzScenario.from_jsonable(data) for data in json.loads(encoded)] \
        == first


def test_small_metro_cells_satisfy_invariant_net():
    city = SmallMetroGen(seed=3, min_cells=10, max_cells=12).sample_city(1)
    # Full-city sweeps belong to the fuzz campaign; tier-1 checks a slice of
    # cells end to end, enough to cover both link kinds and churn departure.
    departed = 0
    for cell in city[:4]:
        ctx = _run(cell)
        violations = run_invariants(ctx)
        assert violations == [], (cell.scenario_id,
                                  [v.message for v in violations])
        for spec, flow in zip(cell.flows, ctx.built.flows):
            if (spec.size_bytes is not None
                    and flow.sender.completion_time is not None):
                departed += 1
                assert flow.stats.bytes_received == spec.size_bytes
    assert departed > 0, "no churn flow completed in the sampled slice"


# ================================================================ invariants
def test_healthy_run_has_no_violations():
    ctx = _run(_tiny_scenario())
    assert run_invariants(ctx) == []


def test_random_loss_run_has_no_violations():
    fuzz = _tiny_scenario(loss_rate=0.02, loss_seed=9)
    ctx = _run(fuzz)
    assert run_invariants(ctx) == []
    bottleneck = ctx.built.scenario.links[0]
    assert bottleneck.random_loss_packets > 0  # the loss model did engage


def test_conservation_checker_fires_on_broken_counter():
    ctx = _run(_tiny_scenario())
    ctx.built.scenario.links[0].arrived_packets += 1
    names = [v.invariant for v in check_packet_conservation(ctx)]
    assert names == ["packet-conservation"]


def test_non_negative_checker_fires_on_negative_backlog_and_cwnd():
    ctx = _run(_tiny_scenario())
    ctx.built.scenario.links[0].qdisc.backlog_packets = -1
    flow_id = ctx.built.flows[0].flow_id
    ctx.cwnd_samples[flow_id].append(-5.0)
    names = {v.invariant for v in check_non_negative(ctx)}
    assert names == {"non-negative"}
    assert len(check_non_negative(ctx)) >= 2


def test_throughput_checker_fires_on_impossible_delivery():
    ctx = _run(_tiny_scenario())
    monitor = ctx.result.link_monitor(ctx.built.scenario.links[0])
    # Forge a gigabyte departing at the end of the run.
    monitor.departure_times.append(ctx.fuzz.duration)
    monitor.departure_bytes.append(10**9)
    names = [v.invariant for v in check_link_throughput(ctx)]
    assert names == ["link-throughput"]


def test_queuing_delay_checker_fires_on_impossible_delay():
    ctx = _run(_tiny_scenario())
    ctx.built.flows[0].stats.queuing_delays.append(999.0)
    names = [v.invariant for v in check_queuing_delay(ctx)]
    assert names == ["queuing-delay-bound"]


def test_fairness_gate_and_checker():
    symmetric = _tiny_scenario(scheme="abc", n_flows=2, duration=2.0)
    assert fairness_applies(symmetric)
    # Gate closes on: cross traffic, unequal RTTs, late joiners, random loss.
    cross = _tiny_scenario(scheme="abc", n_flows=2)
    cross.flows[1].cc = "cubic"
    assert not fairness_applies(cross)
    unequal = _tiny_scenario(scheme="abc", n_flows=2)
    unequal.flows[1].rtt = 0.19
    assert not fairness_applies(unequal)
    # Any staggered join is excluded: a flow arriving against an established
    # competitor converges over tens of RTTs, which short runs don't grant.
    late = _tiny_scenario(scheme="abc", n_flows=2)
    late.flows[1].start_time = 0.2
    assert not fairness_applies(late)
    lossy = _tiny_scenario(scheme="abc", n_flows=2, loss_rate=0.01)
    assert not fairness_applies(lossy)

    ctx = _run(symmetric)
    assert check_fairness(ctx) == []
    # Starve one flow's recorded deliveries: Jain index of (x, 0) is 0.5.
    starved = ctx.built.flows[1].stats
    starved.recv_times.clear()
    starved.sizes.clear()
    assert 0.5 < FAIRNESS_FLOOR
    names = [v.invariant for v in check_fairness(ctx)]
    assert names == ["fairness"]


def test_summary_is_reproducible_and_plain_data():
    fuzz = _tiny_scenario(scheme="abc", n_flows=2)
    first = scenario_summary(_run(fuzz).built)
    second = scenario_summary(_run(fuzz).built)
    assert first == second
    json.dumps(first)  # plain data only — serializable as-is


# ================================================================ shrinker
def _pure_predicate(fuzz: FuzzScenario) -> bool:
    """Fails while the scenario still has >= 2 flows (no simulation)."""
    return len(fuzz.flows) >= 2


def test_shrinker_minimizes_against_pure_predicate():
    fuzz = ScenarioGen(seed=8).sample(0)
    fuzz.flows = [FlowSpec(cc=NATIVE, rtt=0.123456, start_time=1.0)
                  for _ in range(3)]
    fuzz.links.append(LinkSpec(kind="constant", params={"rate_bps": 50e6},
                               buffer_packets=500, role="wired"))
    minimized = shrink_scenario(fuzz, _pure_predicate)
    minimized.validate()
    assert len(minimized.flows) == 2          # smallest count still failing
    assert len(minimized.links) == 1          # backhaul hop dropped
    assert minimized.duration == 1.0          # halved to the floor
    assert all(link.loss_rate == 0.0 for link in minimized.links)
    assert all(flow.start_time == 0.0 for flow in minimized.flows)
    assert all(round(flow.rtt, 2) == flow.rtt for flow in minimized.flows)


def test_shrinker_requires_failing_input_and_respects_budget():
    fuzz = _tiny_scenario(n_flows=1)
    with pytest.raises(ValueError, match="failing scenario"):
        shrink_scenario(fuzz, _pure_predicate)

    calls = []

    def counting(candidate: FuzzScenario) -> bool:
        calls.append(1)
        return len(candidate.flows) >= 2

    shrink_scenario(_tiny_scenario(n_flows=3), counting, max_attempts=4)
    assert len(calls) <= 4


def test_corpus_entry_round_trip(tmp_path):
    fuzz = _tiny_scenario()
    failing = corpus_entry(fuzz, ["packet-conservation", "non-negative"],
                           description="synthetic")
    path = tmp_path / "entry.json"
    save_corpus_entry(failing, path)
    loaded = load_corpus_entry(path)
    assert loaded == failing
    assert loaded["expect"]["violations"] == ["non-negative",
                                              "packet-conservation"]

    clean = corpus_entry(fuzz, [], summary={"links": {}, "flows": {}})
    assert clean["expect"]["clean"] is True

    bad = dict(loaded, format=99)
    (tmp_path / "bad.json").write_text(json.dumps(bad))
    with pytest.raises(ValueError, match="unsupported corpus format"):
        load_corpus_entry(tmp_path / "bad.json")


# ================================================================ campaign
def test_fuzz_cell_verdict_shape_and_determinism_check():
    fuzz = _tiny_scenario()
    verdict = fuzz_cell(fuzz.to_jsonable(), check_determinism=True)
    assert verdict["scenario_id"] == fuzz.scenario_id
    assert verdict["signature"] == fuzz.signature()
    assert verdict["violations"] == []
    assert verdict["summary"]["flows"]["0"]["packets_sent"] > 0
    json.dumps(verdict)  # picklable AND json-able


def test_small_campaign_is_reproducible_and_clean():
    first = run_campaign(budget=6, seed=6, check_determinism=False)
    second = run_campaign(budget=6, seed=6, check_determinism=False)
    assert first == second
    assert first["clean"] and first["scenarios_run"] == 6
    assert first["violating_scenarios"] == 0
    assert "determinism" in first["invariants"]


def test_campaign_routes_through_executor_cache(tmp_path):
    executor = SweepExecutor(jobs=1, cache_dir=tmp_path)
    report = run_campaign(budget=3, seed=1, executor=executor,
                          check_determinism=False)
    assert executor.last_stats.executed == 3
    replay = run_campaign(budget=3, seed=1, executor=executor,
                          check_determinism=False)
    assert executor.last_stats.cache_hits == 3
    assert executor.last_stats.executed == 0
    assert replay == report
