"""Documentation health: intra-repo links resolve, README maps every figure.

The same link check runs as a CI job (``docs`` in ``.github/workflows/ci.yml``)
via ``tools/check_links.py``; running it here too means a doc that drifts from
the tree fails the tier-1 gate locally as well.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_links import check_file, iter_markdown_files  # noqa: E402


def test_markdown_links_resolve():
    errors = []
    files = list(iter_markdown_files(REPO_ROOT))
    assert (REPO_ROOT / "README.md") in files
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md") in files
    for path in files:
        errors += check_file(path, REPO_ROOT)
    assert not errors, "broken intra-repo links:\n" + "\n".join(errors)


def test_readme_maps_every_figure_benchmark():
    """Every Fig. 1–18 + Table 1 bench harness appears in the README table."""
    readme = (REPO_ROOT / "README.md").read_text()
    bench_files = sorted(
        p.name for p in (REPO_ROOT / "benchmarks").glob("bench_fig*.py"))
    bench_files.append("bench_table1_summary.py")
    missing = [name for name in bench_files if name not in readme]
    assert not missing, f"README figure table misses: {missing}"


def test_readme_documents_the_knobs():
    readme = (REPO_ROOT / "README.md").read_text()
    for knob in ("REPRO_JOBS", "REPRO_CACHE_DIR", "REPRO_SEEDS"):
        assert knob in readme


def test_architecture_names_every_package():
    arch = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
    packages = sorted(p.name for p in (REPO_ROOT / "src" / "repro").iterdir()
                      if p.is_dir() and not p.name.startswith("__"))
    missing = [f"{name}/" for name in packages if f"{name}/" not in arch]
    assert not missing, f"ARCHITECTURE.md misses packages: {missing}"
