"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cellular.synthetic import SyntheticTraceConfig, synthetic_trace
from repro.cellular.trace import CellularTrace
from repro.simulator.engine import EventLoop


@pytest.fixture
def env() -> EventLoop:
    return EventLoop()


@pytest.fixture(scope="session")
def short_trace() -> CellularTrace:
    """A 10-second mildly varying trace used by fast integration tests."""
    config = SyntheticTraceConfig(mean_rate_bps=10e6, min_rate_bps=2e6,
                                  max_rate_bps=20e6, volatility=0.2,
                                  outage_rate_per_s=0.0, name="test-trace")
    return synthetic_trace(config, duration=10.0, seed=42)


@pytest.fixture(scope="session")
def bursty_trace() -> CellularTrace:
    """A strongly varying 10-second trace (with outages)."""
    config = SyntheticTraceConfig(mean_rate_bps=8e6, min_rate_bps=0.5e6,
                                  max_rate_bps=20e6, volatility=0.35,
                                  outage_rate_per_s=0.1, outage_duration_s=0.3,
                                  name="bursty-test-trace")
    return synthetic_trace(config, duration=10.0, seed=7)


def run_single_flow(cc, qdisc, link_spec, duration=8.0, rtt=0.1, source=None):
    """Helper shared by integration tests: one flow over one bottleneck."""
    from repro.simulator.scenario import Scenario

    scenario = Scenario()
    if isinstance(link_spec, CellularTrace):
        link = scenario.add_cellular_link(link_spec, qdisc=qdisc, name="bottleneck")
    elif isinstance(link_spec, (int, float)):
        link = scenario.add_rate_link(float(link_spec), qdisc=qdisc, name="bottleneck")
    else:
        link = scenario.add_rate_link(link_spec, qdisc=qdisc, name="bottleneck")
    flow = scenario.add_flow(cc, [link], rtt=rtt, source=source)
    result = scenario.run(duration)
    return result, link, flow
