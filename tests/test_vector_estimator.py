"""VectorRateEstimator is bit-for-bit a BatchedRateEstimator (and hence a
WindowedRateEstimator).

The vectorised estimator folds its Python-list sample tail into flat numpy
arrays with a prefix-sum every ``_FOLD`` appends, expires whole prefixes
with a ``searchsorted`` instead of a scalar walk, and keeps the router's
inline append sites unchanged.  Exact equality everywhere: window sums are
integer byte counts (int64 prefix sums are exact) and the span arithmetic
is the scalar expression verbatim, so there are **no tolerances** in this
file.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cellular.estimators import VectorRateEstimator
from repro.simulator.estimators import (BatchedRateEstimator,
                                        WindowedRateEstimator)


def _trio(window):
    return (WindowedRateEstimator(window=window),
            BatchedRateEstimator(window=window),
            VectorRateEstimator(window=window))


# ------------------------------------------------------------- randomized
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("window", [0.04, 0.5])
def test_vector_matches_deque_and_batched(seed, window):
    rng = random.Random(f"vector-estimator-{seed}-{window}")
    deque_est, flat_est, vec_est = _trio(window)
    now = 0.0
    for _ in range(6000):
        now += rng.expovariate(2000.0)
        size = rng.randrange(40, 1600)
        for est in (deque_est, flat_est, vec_est):
            est.add(now, size)
        if rng.random() < 0.3:
            at = now + rng.random() * 0.01
            rate = deque_est.rate_bps(at)
            assert flat_est.rate_bps(at) == rate
            assert vec_est.rate_bps(at) == rate
    assert vec_est.rate_bps(now) == deque_est.rate_bps(now)
    assert vec_est.folds > 0, (
        "6000 appends never triggered a fold; the vectorised path went "
        "untested")


def test_vector_matches_at_ack_burst_cadence():
    """The router's real cadence: bursts of same-timestamp ACK-clocked
    samples, rate read once per measurement interval."""
    rng = random.Random("burst-cadence")
    deque_est, _flat, vec_est = _trio(0.05)
    now = 0.0
    for _ in range(400):
        now += rng.expovariate(200.0)
        for _ in range(rng.randrange(1, 12)):        # one dequeue burst
            deque_est.add(now, 1500)
            vec_est.add(now, 1500)
        if rng.random() < 0.5:                        # interval boundary
            assert vec_est.rate_bps(now) == deque_est.rate_bps(now)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=50.0),
                          st.integers(min_value=1, max_value=100_000)),
                min_size=1, max_size=300),
       st.floats(min_value=1e-3, max_value=5.0))
def test_vector_matches_on_arbitrary_histories(samples, window):
    deque_est, _flat, vec_est = _trio(window)
    last = 0.0
    for t, size in sorted(samples):
        deque_est.add(t, size)
        vec_est.add(t, size)
        last = t
    for at in (last, last + window / 2, last + 2 * window):
        assert vec_est.rate_bps(at) == deque_est.rate_bps(at)


# ------------------------------------------------------------- fold edges
def test_fold_boundary_expiry_is_exact():
    """Expiry cutting through the folded region, exactly at a folded sample
    time, and past the end of the folded region all agree with the scalar
    walk."""
    fold = VectorRateEstimator._FOLD
    deque_est, _flat, vec_est = _trio(1.0)
    for i in range(3 * fold):                         # three folds' worth
        t = i * 0.01
        deque_est.add(t, 100 + i)
        vec_est.add(t, 100 + i)
        vec_est.rate_bps(t)                           # fold opportunities
    assert vec_est.folds >= 2
    for at in (3 * fold * 0.01, 1.0 + 0.01 * fold,    # cut mid-folded
               1.0 + 0.01 * fold + 0.005,             # cut between samples
               100.0):                                # everything expired
        assert vec_est.rate_bps(at) == deque_est.rate_bps(at)


def test_fully_expired_window_matches():
    deque_est, _flat, vec_est = _trio(0.1)
    for i in range(2 * VectorRateEstimator._FOLD):
        deque_est.add(i * 0.001, 500)
        vec_est.add(i * 0.001, 500)
    vec_est.rate_bps(0.3)                             # forces the fold path
    assert vec_est.rate_bps(10.0) == deque_est.rate_bps(10.0)
    assert vec_est.rate_bps(10.0) == 0.0


def test_unread_estimator_never_folds():
    """Folding happens inside rate_bps, so an estimator that is only ever
    appended to (the enqueue-side estimator in dequeue-basis runs) keeps the
    plain-list memory behaviour."""
    vec = VectorRateEstimator(window=0.05)
    for i in range(20 * VectorRateEstimator._FOLD):
        vec.add(i * 0.001, 1500)
    assert vec.folds == 0


def test_reset_clears_folded_state():
    deque_est, _flat, vec_est = _trio(0.5)
    for i in range(2 * VectorRateEstimator._FOLD):
        vec_est.add(i * 0.01, 777)
    vec_est.rate_bps(1.0)
    vec_est.reset()
    deque_est.reset()
    assert vec_est.rate_bps(2.0) == deque_est.rate_bps(2.0) == 0.0
    for est in (deque_est, vec_est):
        est.add(5.0, 1000)
    assert vec_est.rate_bps(5.1) == deque_est.rate_bps(5.1)
