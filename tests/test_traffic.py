"""Tests for traffic sources."""

import math

import pytest

from repro.simulator.traffic import (BackloggedSource, FixedSizeSource,
                                     OnOffSource, RateLimitedSource)


def test_backlogged_source_always_has_data():
    src = BackloggedSource()
    assert math.isinf(src.bytes_available(0.0))
    src.consume(10_000, 0.0)
    assert math.isinf(src.bytes_available(100.0))
    assert not src.finished(1e9)


def test_fixed_size_source_depletes():
    src = FixedSizeSource(total_bytes=3000)
    assert src.bytes_available(0.0) == 3000
    src.consume(1500, 0.0)
    assert src.bytes_available(0.0) == 1500
    assert not src.finished(0.0)
    src.consume(1500, 0.0)
    assert src.finished(0.0)
    assert src.bytes_available(0.0) == 0


def test_fixed_size_source_validation():
    with pytest.raises(ValueError):
        FixedSizeSource(0)


def test_rate_limited_source_accrues_credit():
    src = RateLimitedSource(rate_bps=8e3)  # 1000 B/s
    assert src.bytes_available(0.0) == 0.0
    assert src.bytes_available(1.0) == pytest.approx(1000.0)
    src.consume(600, 1.0)
    assert src.bytes_available(1.0) == pytest.approx(400.0)


def test_rate_limited_source_burst_cap():
    src = RateLimitedSource(rate_bps=8e6, burst_bytes=5000)
    assert src.bytes_available(100.0) == 5000


def test_rate_limited_source_next_data_time():
    src = RateLimitedSource(rate_bps=8e3)
    nxt = src.next_data_time(0.0)
    assert nxt is not None and nxt > 0.0
    assert src.next_data_time(10.0) == 10.0  # already has credit


def test_rate_limited_source_validation():
    with pytest.raises(ValueError):
        RateLimitedSource(rate_bps=0)


def test_onoff_source_schedule():
    src = OnOffSource([(1.0, 2.0), (3.0, 4.0)])
    assert src.bytes_available(0.5) == 0.0
    assert math.isinf(src.bytes_available(1.5))
    assert src.bytes_available(2.5) == 0.0
    assert math.isinf(src.bytes_available(3.5))
    assert src.finished(5.0)
    assert not src.finished(3.5)


def test_onoff_source_next_data_time():
    src = OnOffSource([(1.0, 2.0)])
    assert src.next_data_time(0.0) == 1.0
    assert src.next_data_time(1.5) == 1.5
    assert src.next_data_time(3.0) is None


def test_onoff_source_validation():
    with pytest.raises(ValueError):
        OnOffSource([(2.0, 1.0)])
