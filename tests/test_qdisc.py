"""Tests for the qdisc base class and the FIFO/drop-tail queue."""

import pytest

from repro.aqm import DropTailQdisc
from repro.simulator.packet import Packet
from repro.simulator.qdisc import FifoQdisc, Qdisc


def mk(seq, size=1500, flow=0):
    return Packet(flow_id=flow, seq=seq, size=size)


def test_buffer_must_be_positive():
    with pytest.raises(ValueError):
        FifoQdisc(buffer_packets=0)


def test_fifo_order_preserved():
    q = FifoQdisc(buffer_packets=10)
    for i in range(5):
        assert q.enqueue(mk(i), now=float(i))
    seqs = [q.dequeue(10.0).seq for _ in range(5)]
    assert seqs == [0, 1, 2, 3, 4]


def test_backlog_accounting():
    q = FifoQdisc(buffer_packets=10)
    q.enqueue(mk(0, size=1000), 0.0)
    q.enqueue(mk(1, size=500), 0.0)
    assert q.backlog_packets == 2
    assert q.backlog_bytes == 1500
    assert len(q) == 2
    q.dequeue(1.0)
    assert q.backlog_packets == 1
    assert q.backlog_bytes == 500


def test_droptail_drops_when_full():
    q = DropTailQdisc(buffer_packets=3)
    assert all(q.enqueue(mk(i), 0.0) for i in range(3))
    assert not q.enqueue(mk(3), 0.0)
    assert q.dropped_packets == 1
    assert q.backlog_packets == 3


def test_dequeue_empty_returns_none():
    q = FifoQdisc()
    assert q.dequeue(0.0) is None
    assert q.is_empty


def test_peek_does_not_remove():
    q = FifoQdisc()
    q.enqueue(mk(7), 0.0)
    assert q.peek().seq == 7
    assert q.backlog_packets == 1


def test_sojourn_time_of_head_packet():
    q = FifoQdisc()
    assert q.sojourn_time(5.0) == 0.0
    q.enqueue(mk(0), 1.0)
    assert q.sojourn_time(1.5) == pytest.approx(0.5)


def test_queuing_delay_uses_capacity():
    q = FifoQdisc()
    q.enqueue(mk(0, size=1500), 0.0)
    q.enqueue(mk(1, size=1500), 0.0)
    # 3000 bytes at 1 Mbit/s -> 24 ms
    assert q.queuing_delay(0.0, 1e6) == pytest.approx(0.024)
    assert q.queuing_delay(0.0, 0.0) == 0.0


def test_dequeue_accumulates_total_queuing_delay():
    q = FifoQdisc()
    q.enqueue(mk(0), 1.0)
    pkt = q.dequeue(1.4)
    assert pkt.total_queuing_delay == pytest.approx(0.4)


def test_total_queuing_delay_accumulates_across_hops():
    q1, q2 = FifoQdisc(), FifoQdisc()
    pkt = mk(0)
    q1.enqueue(pkt, 0.0)
    pkt = q1.dequeue(0.3)
    q2.enqueue(pkt, 1.0)
    pkt = q2.dequeue(1.2)
    assert pkt.total_queuing_delay == pytest.approx(0.5)


def test_base_class_requires_overrides():
    q = Qdisc()
    with pytest.raises(NotImplementedError):
        q.enqueue(mk(0), 0.0)
    with pytest.raises(NotImplementedError):
        q.dequeue(0.0)
