"""Tests for the scenario builder and the monitors."""

import numpy as np
import pytest

from repro.cc import make_cc
from repro.cc.cubic import Cubic
from repro.aqm import DropTailQdisc
from repro.core.router import ABCRouterQdisc
from repro.core.sender import ABCWindowControl
from repro.simulator.monitor import FlowStats, LinkMonitor
from repro.simulator.packet import Packet
from repro.simulator.scenario import Scenario
from repro.simulator.traffic import FixedSizeSource


# ------------------------------------------------------------ FlowStats
def mk_record(stats, recv, sent, size=1500, queuing=0.0):
    pkt = Packet(flow_id=stats.flow_id, seq=0, size=size, sent_time=sent)
    pkt.total_queuing_delay = queuing
    stats.record(pkt, recv)


def test_flow_stats_throughput():
    stats = FlowStats(flow_id=0)
    for i in range(10):
        mk_record(stats, recv=i * 0.1, sent=i * 0.1 - 0.05)
    # 15000 bytes over 1 s window
    assert stats.throughput_bps(0.0, 1.0) == pytest.approx(15_000 * 8)


def test_flow_stats_delay_percentiles():
    stats = FlowStats(flow_id=0)
    for i in range(100):
        mk_record(stats, recv=i * 0.01 + 0.05, sent=i * 0.01, queuing=0.02)
    assert stats.delay_percentile(95) == pytest.approx(0.05, abs=1e-6)
    assert stats.mean_delay(kind="queuing") == pytest.approx(0.02)
    with pytest.raises(ValueError):
        stats.delays(kind="bogus")


def test_flow_stats_empty():
    stats = FlowStats(flow_id=0)
    assert stats.throughput_bps(0, 1) == 0.0
    assert stats.delay_percentile(95) == 0.0
    assert stats.mean_delay() == 0.0
    t, v = stats.throughput_timeseries()
    assert t.size == 0 and v.size == 0


def test_flow_stats_timeseries_bins():
    stats = FlowStats(flow_id=0)
    for i in range(20):
        mk_record(stats, recv=i * 0.1, sent=i * 0.1, queuing=0.01 * (i % 2))
    times, tput = stats.throughput_timeseries(bin_size=0.5, t1=2.0)
    assert len(times) == 4
    assert np.all(tput >= 0)
    qt, qd = stats.queuing_delay_timeseries(bin_size=0.5)
    assert len(qt) == len(qd)


# ------------------------------------------------------------ LinkMonitor
def test_link_monitor_counters():
    mon = LinkMonitor("l")
    for i in range(10):
        mon.record_departure(i * 0.1, Packet(flow_id=0, seq=i, size=1000))
    mon.record_drop(0.5, Packet(flow_id=0, seq=99))
    mon.record_opportunity(0.2, 1500)
    assert mon.delivered_bytes(0.0, 1.0) == 10_000
    assert mon.delivered_bytes(0.0, 0.35) == 4000
    assert mon.throughput_bps(0.0, 1.0) == pytest.approx(80_000)
    assert mon.drops() == 1
    assert mon.opportunity_bytes == 1500
    times, series = mon.throughput_timeseries(bin_size=0.5)
    assert len(times) == 2


# ------------------------------------------------------------ Scenario wiring
def test_scenario_runs_single_flow(short_trace):
    sc = Scenario()
    link = sc.add_cellular_link(short_trace, qdisc=DropTailQdisc(250), name="cell")
    flow = sc.add_flow(Cubic(), [link], rtt=0.1)
    res = sc.run(5.0)
    assert res.flow_throughput_bps(flow) > 1e6
    assert 0.0 < res.link_utilization(link) <= 1.0
    assert res.flow_delay_p95_ms(flow) > 50.0  # at least the propagation delay


def test_scenario_validation():
    sc = Scenario()
    link = sc.add_rate_link(1e6, name="l")
    with pytest.raises(ValueError):
        sc.add_flow(Cubic(), [], rtt=0.1)
    with pytest.raises(ValueError):
        sc.add_flow(Cubic(), [link], rtt=-1.0)
    with pytest.raises(ValueError):
        sc.run(0.0)


def test_scenario_flows_get_distinct_ids():
    sc = Scenario()
    link = sc.add_rate_link(10e6, name="l")
    f1 = sc.add_flow(Cubic(), [link], rtt=0.1)
    f2 = sc.add_flow(Cubic(), [link], rtt=0.1)
    assert f1.flow_id != f2.flow_id


def test_scenario_multi_hop_path():
    sc = Scenario()
    l1 = sc.add_rate_link(10e6, qdisc=DropTailQdisc(100), name="hop1")
    l2 = sc.add_rate_link(5e6, qdisc=DropTailQdisc(100), name="hop2")
    flow = sc.add_flow(Cubic(), [l1, l2], rtt=0.1)
    res = sc.run(5.0)
    # The second hop is the bottleneck and should be nearly saturated.
    assert res.link_utilization(l2, t0=1.0) > 0.8
    assert res.link_utilization(l1, t0=1.0) < 0.7
    assert res.flow_throughput_bps(flow) < 6e6


def test_scenario_rtt_respected():
    sc = Scenario()
    link = sc.add_rate_link(50e6, name="fast")
    flow = sc.add_flow(Cubic(initial_cwnd=2.0), [link], rtt=0.2)
    sc.run(2.0)
    assert flow.sender.rtt.minimum() == pytest.approx(0.2, abs=0.01)


def test_scenario_two_flows_share_link():
    sc = Scenario()
    link = sc.add_rate_link(10e6, qdisc=DropTailQdisc(250), name="l")
    f1 = sc.add_flow(Cubic(), [link], rtt=0.1)
    f2 = sc.add_flow(Cubic(), [link], rtt=0.1, start_time=1.0)
    res = sc.run(10.0)
    total = res.flow_throughput_bps(f1, 2.0) + res.flow_throughput_bps(f2, 2.0)
    assert total == pytest.approx(10e6, rel=0.15)


def test_scenario_summary_keys(short_trace):
    sc = Scenario()
    link = sc.add_cellular_link(short_trace, qdisc=ABCRouterQdisc(), name="cell")
    sc.add_flow(ABCWindowControl(), [link], rtt=0.1)
    res = sc.run(4.0)
    summary = res.summary(link)
    assert set(summary) == {"throughput_bps", "utilization", "delay_p95_ms",
                            "delay_mean_ms", "queuing_p95_ms", "drops"}


def test_scenario_short_flow_completes():
    sc = Scenario()
    link = sc.add_rate_link(10e6, name="l")
    flow = sc.add_flow(Cubic(), [link], rtt=0.05,
                       source=FixedSizeSource(30_000))
    sc.run(3.0)
    assert flow.sender.completion_time is not None
    assert flow.stats.bytes_received == 30_000


def test_scenario_registry_schemes_run(short_trace):
    """Every registered sender scheme must at least move data end to end."""
    from repro.cc import available_schemes
    for name in available_schemes():
        sc = Scenario()
        link = sc.add_cellular_link(short_trace, qdisc=DropTailQdisc(250),
                                    name="cell")
        flow = sc.add_flow(make_cc(name), [link], rtt=0.1)
        res = sc.run(3.0)
        assert res.flow_throughput_bps(flow) > 1e5, name
