"""Tests for the measurement utilities (rate windows, EWMA, min/max, RTT)."""

import math

import pytest

from repro.simulator.estimators import (EWMA, RTTEstimator, WindowedMinMax,
                                        WindowedRateEstimator)


# ------------------------------------------------------------ rate estimator
def test_rate_estimator_constant_stream():
    est = WindowedRateEstimator(window=1.0)
    for i in range(10):
        est.add(i * 0.1, 1250)  # 1250 B every 100 ms = 100 kbit/s
    assert est.rate_bps(0.9) == pytest.approx(1e5, rel=0.15)


def test_rate_estimator_expires_old_samples():
    est = WindowedRateEstimator(window=0.5)
    est.add(0.0, 10_000)
    est.add(5.0, 1000)
    # The 0.0 sample is far outside the window at t=5.
    assert est.rate_bps(5.0) == pytest.approx(1000 * 8 / 0.5, rel=0.01)


def test_rate_estimator_empty_is_zero():
    est = WindowedRateEstimator(window=0.1)
    assert est.rate_bps(10.0) == 0.0


def test_rate_estimator_reset():
    est = WindowedRateEstimator(window=1.0)
    est.add(0.0, 1000)
    est.reset()
    assert est.rate_bps(0.5) == 0.0


def test_rate_estimator_rejects_bad_window():
    with pytest.raises(ValueError):
        WindowedRateEstimator(window=0.0)


def test_rate_estimator_single_burst_not_infinite():
    est = WindowedRateEstimator(window=0.1)
    est.add(1.0, 1500)
    assert math.isfinite(est.rate_bps(1.0))


# ------------------------------------------------------------ EWMA
def test_ewma_initialises_with_first_sample():
    e = EWMA(alpha=0.5)
    assert e.value is None
    assert e.update(10.0) == 10.0


def test_ewma_moves_toward_samples():
    e = EWMA(alpha=0.5, initial=0.0)
    e.update(10.0)
    assert e.value == pytest.approx(5.0)
    e.update(10.0)
    assert e.value == pytest.approx(7.5)


def test_ewma_get_default():
    assert EWMA(alpha=0.2).get(default=3.0) == 3.0


def test_ewma_alpha_validation():
    with pytest.raises(ValueError):
        EWMA(alpha=0.0)
    with pytest.raises(ValueError):
        EWMA(alpha=1.5)


# ------------------------------------------------------------ min/max window
def test_windowed_max_tracks_maximum():
    w = WindowedMinMax(window=10.0, mode="max")
    w.update(0.0, 5.0)
    w.update(1.0, 3.0)
    w.update(2.0, 8.0)
    assert w.get() == 8.0


def test_windowed_max_expires():
    w = WindowedMinMax(window=1.0, mode="max")
    w.update(0.0, 100.0)
    w.update(2.0, 5.0)
    assert w.query(2.0) == 5.0


def test_windowed_min_tracks_minimum():
    w = WindowedMinMax(window=10.0, mode="min")
    for t, v in [(0, 0.3), (1, 0.1), (2, 0.2)]:
        w.update(float(t), v)
    assert w.get() == pytest.approx(0.1)


def test_windowed_minmax_default_when_empty():
    w = WindowedMinMax(window=1.0, mode="min")
    assert w.get(default=42.0) == 42.0


def test_windowed_minmax_validation():
    with pytest.raises(ValueError):
        WindowedMinMax(window=1.0, mode="median")
    with pytest.raises(ValueError):
        WindowedMinMax(window=0.0, mode="max")


# ------------------------------------------------------------ RTT estimator
def test_rtt_estimator_first_sample_sets_srtt():
    rtt = RTTEstimator()
    rtt.update(0.2)
    assert rtt.srtt == pytest.approx(0.2)
    assert rtt.rttvar == pytest.approx(0.1)


def test_rtt_estimator_tracks_min():
    rtt = RTTEstimator()
    for sample in (0.3, 0.1, 0.2):
        rtt.update(sample)
    assert rtt.minimum() == pytest.approx(0.1)


def test_rtt_estimator_rto_has_floor():
    rtt = RTTEstimator(min_rto=0.2)
    rtt.update(0.01)
    assert rtt.rto >= 0.2


def test_rtt_estimator_rto_before_samples():
    assert RTTEstimator().rto == pytest.approx(1.0)


def test_rtt_estimator_ignores_non_positive_samples():
    rtt = RTTEstimator()
    rtt.update(-1.0)
    assert rtt.srtt is None


def test_rtt_estimator_smoothed_default():
    assert RTTEstimator().smoothed(default=0.25) == 0.25
