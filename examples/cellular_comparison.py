#!/usr/bin/env python3
"""Cellular evaluation: compare many schemes across synthetic operator traces.

This is a scaled-down version of the paper's Fig. 9 sweep: every scheme runs
as a single backlogged flow over each trace in a small synthetic trace set,
and the script prints per-scheme averages (utilisation, 95th-percentile and
mean per-packet delay) plus the §1-style table normalised to ABC.

Run with::

    python examples/cellular_comparison.py [duration_seconds]
"""

import sys

from repro.cellular.synthetic import synthetic_trace_set
from repro.experiments.runner import (normalized_table, run_cellular_sweep,
                                      sweep_averages)

SCHEMES = ("abc", "xcpw", "cubic+codel", "copa", "sprout", "vegas", "verus",
           "bbr", "pcc", "cubic")


def main():
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 20.0
    traces = synthetic_trace_set(duration=duration, seed=1,
                                 names=["Verizon-LTE-1", "TMobile-LTE-1",
                                        "ATT-LTE-1"])
    print(f"Running {len(SCHEMES)} schemes over {len(traces)} traces "
          f"({duration:.0f} s each)...\n")
    sweep = run_cellular_sweep(SCHEMES, traces, duration=duration)

    rows = sweep_averages(sweep)
    rows.sort(key=lambda r: -r["utilization"])
    print(f"{'scheme':>14s} {'utilization':>12s} {'p95 delay (ms)':>15s} "
          f"{'mean delay (ms)':>16s}")
    for row in rows:
        print(f"{row['scheme']:>14s} {row['utilization']:>12.3f} "
              f"{row['delay_p95_ms']:>15.1f} {row['delay_mean_ms']:>16.1f}")

    print("\nNormalised to ABC (cf. the summary table in §1):")
    for row in normalized_table(rows, reference="abc"):
        print(f"{row['scheme']:>14s}  norm. throughput {row['norm_throughput']:5.2f}  "
              f"norm. p95 delay {row['norm_delay_p95']:5.2f}")


if __name__ == "__main__":
    main()
