#!/usr/bin/env python3
"""WiFi example: ABC at an 802.11n access point with link-rate estimation.

Demonstrates the two WiFi-specific pieces of the paper:

1. the §4.1 link-rate estimator — its accuracy is printed against the MAC
   model's ground-truth capacity for a non-backlogged sender;
2. ABC running at the AP with the estimator supplying µ(t), while the MCS
   index alternates between 1 and 7 every two seconds (the Fig. 10 setup),
   compared against Cubic+CoDel on the same link.

Run with::

    python examples/wifi_access_point.py
"""

from repro import Scenario
from repro.aqm import CoDelQdisc
from repro.cc import Cubic
from repro.core import ABCRouterQdisc, ABCWindowControl
from repro.core.params import WIFI_DEFAULTS
from repro.simulator.qdisc import FifoQdisc
from repro.simulator.traffic import RateLimitedSource
from repro.wifi import (AlternatingMCSSchedule, FixedMCSSchedule, WiFiLink,
                        WiFiMacConfig, WiFiRateEstimator)

DURATION = 30.0
RTT = 0.04


def estimator_accuracy_demo():
    print("=== §4.1 link-rate estimation (non-backlogged sender) ===")
    for mcs in (3, 5, 7):
        scenario = Scenario()
        estimator = WiFiRateEstimator(max_batch_frames=32)
        link = WiFiLink(scenario.env, mcs=FixedMCSSchedule(mcs),
                        config=WiFiMacConfig(), qdisc=FifoQdisc(2000),
                        estimator=estimator)
        scenario.add_custom_link(link, name=f"wifi-mcs{mcs}")
        true_capacity = link.true_capacity_bps(0.0)
        scenario.add_flow(Cubic(), [link], rtt=RTT,
                          source=RateLimitedSource(0.6 * true_capacity))
        scenario.run(10.0)
        predicted = estimator.estimate_bps(10.0, apply_cap=False)
        error = abs(predicted - true_capacity) / true_capacity * 100
        print(f"  MCS {mcs}: true {true_capacity / 1e6:5.1f} Mbit/s, "
              f"estimated {predicted / 1e6:5.1f} Mbit/s ({error:.1f}% error)")


def run_ap(scheme):
    scenario = Scenario()
    schedule = AlternatingMCSSchedule(low_index=1, high_index=7, period=2.0)
    if scheme == "abc":
        estimator = WiFiRateEstimator(window=WIFI_DEFAULTS.measurement_window)
        qdisc = ABCRouterQdisc(params=WIFI_DEFAULTS, buffer_packets=500,
                               capacity_fn=estimator.capacity_fn())
        sender = ABCWindowControl(params=WIFI_DEFAULTS)
        link = WiFiLink(scenario.env, mcs=schedule, qdisc=qdisc,
                        estimator=estimator)
    else:
        link = WiFiLink(scenario.env, mcs=schedule, qdisc=CoDelQdisc(500))
        sender = Cubic()
    scenario.add_custom_link(link, name="wifi")
    flow = scenario.add_flow(sender, [link], rtt=RTT)
    result = scenario.run(DURATION)
    return result, link, flow


def main():
    estimator_accuracy_demo()
    print("\n=== ABC vs Cubic+CoDel on an alternating-MCS WiFi link ===")
    for scheme in ("abc", "cubic+codel"):
        result, link, flow = run_ap(scheme)
        print(f"  {scheme:12s} throughput {result.flow_throughput_bps(flow) / 1e6:5.1f} Mbit/s  "
              f"p95 queuing {result.flow_delay_p95_ms(flow, kind='queuing'):6.1f} ms  "
              f"utilization {result.link_utilization(link):4.2f}")


if __name__ == "__main__":
    main()
