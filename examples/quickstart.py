#!/usr/bin/env python3
"""Quickstart: one ABC flow over a synthetic LTE link, compared with Cubic.

Run with::

    python examples/quickstart.py

It builds the smallest interesting scenario — a single backlogged flow over a
trace-driven cellular bottleneck with a 100 ms round-trip time and a 250-packet
buffer (the paper's §6.2 setup) — once with ABC (sender + router qdisc) and
once with Cubic over a plain drop-tail buffer, then prints the utilisation and
delay each achieves.
"""

from repro import Scenario
from repro.aqm import DropTailQdisc
from repro.cc import Cubic
from repro.cellular import lte_showcase_trace
from repro.core import ABCParams, ABCRouterQdisc, ABCWindowControl

DURATION = 30.0
RTT = 0.1
BUFFER_PACKETS = 250


def run_abc(trace):
    params = ABCParams()  # eta = 0.98, delta = 133 ms, dt = 20 ms
    scenario = Scenario()
    link = scenario.add_cellular_link(
        trace, qdisc=ABCRouterQdisc(params=params, buffer_packets=BUFFER_PACKETS),
        name="lte")
    flow = scenario.add_flow(ABCWindowControl(params=params), [link], rtt=RTT)
    result = scenario.run(DURATION)
    return result, link, flow


def run_cubic(trace):
    scenario = Scenario()
    link = scenario.add_cellular_link(
        trace, qdisc=DropTailQdisc(buffer_packets=BUFFER_PACKETS), name="lte")
    flow = scenario.add_flow(Cubic(), [link], rtt=RTT)
    result = scenario.run(DURATION)
    return result, link, flow


def describe(name, result, link, flow):
    print(f"{name:12s}  utilization {result.link_utilization(link):5.2f}   "
          f"p95 per-packet delay {result.flow_delay_p95_ms(flow):7.1f} ms   "
          f"p95 queuing delay {result.flow_delay_p95_ms(flow, kind='queuing'):7.1f} ms")


def main():
    trace = lte_showcase_trace(duration=DURATION)
    print(f"Link: {trace.name}, mean capacity "
          f"{trace.mean_rate_bps() / 1e6:.1f} Mbit/s over {trace.duration:.0f} s\n")
    describe("ABC", *run_abc(trace))
    describe("Cubic", *run_cubic(trace))
    print("\nABC should match Cubic's ballpark throughput at a small fraction "
          "of its queuing delay (compare Fig. 1a and Fig. 1d in the paper).")


if __name__ == "__main__":
    main()
