#!/usr/bin/env python3
"""Coexistence demo: ABC sharing paths and bottlenecks with legacy traffic.

Part 1 (§5.1 / Fig. 6): an ABC flow crosses an ABC wireless hop *and* a
non-ABC 12 Mbit/s wired hop.  The dual-window sender tracks whichever link is
the bottleneck; the script reports how closely the flow follows the ideal
rate.

Part 2 (§5.2 / Fig. 7): two ABC flows and two Cubic flows share an ABC
bottleneck through the two-queue scheduler with max-min weights; the script
reports per-group throughput and queuing delay — the difference between the
group means should stay small while ABC keeps its queue short.

Run with::

    python examples/coexistence_demo.py
"""

from repro.experiments.coexistence import (fig6_nonabc_bottleneck,
                                           fig7_coexistence_timeseries)


def main():
    print("=== Part 1: ABC across an ABC wireless hop + non-ABC wired hop ===")
    trace = fig6_nonabc_bottleneck(duration=60.0)
    print(f"  mean relative tracking error vs ideal rate: {trace.tracking_error:.2%}")
    print(f"  peak queuing delay: {trace.queuing_delay_ms.max():.0f} ms")
    print(f"  peak w_abc: {trace.w_abc.max():.0f} packets, "
          f"peak w_cubic: {trace.w_cubic.max():.0f} packets")

    print("\n=== Part 2: ABC and Cubic flows sharing an ABC bottleneck ===")
    result = fig7_coexistence_timeseries(duration=120.0, stagger=30.0)
    print(f"  ABC flows:   {['%.1f' % t for t in result.abc_throughputs_mbps]} Mbit/s, "
          f"p95 queuing {result.abc_queuing_p95_ms:.0f} ms")
    print(f"  Cubic flows: {['%.1f' % t for t in result.cubic_throughputs_mbps]} Mbit/s, "
          f"p95 queuing {result.cubic_queuing_p95_ms:.0f} ms")
    print(f"  relative throughput gap (Cubic vs ABC): {result.throughput_gap:+.1%}")


if __name__ == "__main__":
    main()
