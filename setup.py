"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` on old setuptools/pip combinations
falls back to ``setup.py develop``, which this file enables.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
