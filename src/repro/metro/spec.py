"""Metro sweep specification: a city of cells on the runtime executor.

:class:`MetroSpec` reuses the :class:`~repro.runtime.spec.SweepSpec` grid
machinery — deterministic expansion order, duplicate-cell detection, trace
registration with the shared store, the seed axis and the result cache — and
swaps in the metro vocabulary:

* the *scheme* axis holds weighted mixes (``"abc:0.6,cubic:0.3,bbr:0.1"``)
  instead of single scheme labels;
* the *trace* axis holds one entry per cell (its name is the cell name);
* each grid coordinate runs :func:`repro.metro.cell.metro_cell` instead of
  the single-bottleneck experiment runner.

:func:`metro_pack` builds the standard city: ``n_cells`` cells whose
capacity traces cycle through the synthetic cellular trace library with a
distinct trace seed per cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Sequence

from repro.metro.cell import metro_cell
from repro.metro.workload import parse_mix
from repro.runtime.executor import SweepJob
from repro.runtime.spec import SweepSpec

#: The default city-wide scheme mix (dominantly ABC, with loss-based and
#: model-based coexistence traffic).
DEFAULT_MIX = "abc:0.6,cubic:0.3,bbr:0.1"


@dataclass
class MetroSpec(SweepSpec):
    """Axes of a mix × cell (× seed × overrides) metro sweep.

    ``schemes`` holds weighted mix labels (see
    :func:`repro.metro.workload.parse_mix`); ``traces`` maps cell names to
    link specs (a :class:`~repro.cellular.trace.CellularTrace` or a rate in
    bps).  The workload knobs (``base_flows``, ``arrival_rate``, the
    bounded-Pareto size law) apply to every cell and can be varied per grid
    entry through ``param_grid``.
    """

    rtt: float = 0.05
    duration: float = 8.0
    base_flows: int = 2
    arrival_rate: float = 2.0
    flow_size_min: int = 20_000
    flow_size_max: int = 2_000_000
    flow_size_alpha: float = 1.2

    def _validate_schemes(self) -> None:
        from repro.cc import available_schemes

        if not self.schemes:
            raise ValueError("metro sweep needs at least one scheme mix")
        known = set(available_schemes())
        for label in self.schemes:
            for name, _ in parse_mix(label):
                if name not in known:
                    raise ValueError(
                        f"unknown scheme {name!r} in mix {label!r}; known "
                        f"sender-side schemes: {sorted(known)}")

    def _make_job(self, scheme: str, trace_name: str, link_spec: Any,
                  seed: int, overrides: Mapping[str, Any]) -> SweepJob:
        kwargs = dict(
            mix=str(scheme).lower(), cell=trace_name, link_spec=link_spec,
            seed=seed, rtt=self.rtt, duration=self.duration,
            buffer_packets=self.buffer_packets, base_flows=self.base_flows,
            arrival_rate=self.arrival_rate,
            flow_size_min=self.flow_size_min,
            flow_size_max=self.flow_size_max,
            flow_size_alpha=self.flow_size_alpha, warmup=self.warmup)
        kwargs.update(overrides)
        return SweepJob(func=metro_cell, kwargs=kwargs,
                        label=f"{scheme}/{trace_name}/seed{seed}")


def metro_pack(n_cells: int, duration: float = 8.0, trace_seed: int = 1,
               seeds: Sequence[int] = (0,),
               mixes: Sequence[str] = (DEFAULT_MIX,),
               square_fraction: float = 0.5,
               **spec_kwargs) -> MetroSpec:
    """The standard metro city: ``n_cells`` cellular cells of two classes.

    The paper models cellular capacity two ways — Mahimahi-style delivery
    traces (Figs. 2/15) and a square-wave time-varying rate (Fig. 17) — and
    a city contains both kinds of cell.  ``square_fraction`` of the cells
    (interleaved evenly, deterministic per index) are square-wave sectors
    whose low/high rates and half-period are drawn from the cell's own
    stream; the rest are trace-driven, cycling through the synthetic trace
    library (:data:`repro.cellular.synthetic.TRACE_LIBRARY`) with a distinct
    trace seed per cell.  No two cells see the same capacity process but the
    whole city is reproducible from ``trace_seed``.  Extra keyword arguments
    pass through to :class:`MetroSpec` (e.g. ``arrival_rate=4.0``,
    ``seeds=range(5)``).
    """
    from repro.cellular.synthetic import TRACE_LIBRARY, synthetic_trace
    from repro.metro.workload import stream

    if n_cells <= 0:
        raise ValueError("n_cells must be positive")
    if not 0.0 <= square_fraction <= 1.0:
        raise ValueError("square_fraction must be in [0, 1]")
    library = sorted(TRACE_LIBRARY)
    traces: Dict[str, Any] = {}
    square_count = 0
    for index in range(n_cells):
        name = f"cell-{index:03d}"
        # Even interleaving: cell i is a square-wave sector iff admitting it
        # keeps the running square share at or below square_fraction.
        if square_count + 1 <= (index + 1) * square_fraction:
            rng = stream("square", name, trace_seed)
            low = rng.uniform(8e6, 16e6)
            high = low * rng.uniform(1.5, 2.5)
            half_period = rng.uniform(0.3, 0.7)
            traces[name] = ("square", low, high, half_period)
            square_count += 1
        else:
            config = TRACE_LIBRARY[library[index % len(library)]]
            traces[name] = synthetic_trace(config, duration,
                                           seed=trace_seed * 10_007 + index,
                                           name=name)
    return MetroSpec(schemes=list(mixes), traces=traces, seeds=seeds,
                     duration=duration, **spec_kwargs)
