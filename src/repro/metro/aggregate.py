"""City-wide roll-ups over per-cell metro results.

A metro sweep produces one plain-dict result per (mix, cell, seed) — see
:func:`repro.metro.cell.metro_cell`.  This module turns a list of those into
city aggregates:

* per-cell utilisation (and its mean/min/max),
* p99 queuing delay merged across cells from fixed-log-bin histograms
  (cells cannot ship every per-packet delay through the cache, so each ships
  a histogram over the shared :data:`QUEUING_BIN_EDGES_MS` grid; merging is
  an elementwise sum and the percentile is read off the merged CDF),
* Jain's fairness index over every flow in the city (and over the
  long-lived base flows alone, which is the paper-style fairness number —
  churned mice finish early by design and would dominate the all-flows
  index),
* flow-completion-time percentiles over every finished churn flow.

Everything is pure arithmetic over picklable inputs, so aggregates are
bit-identical regardless of how the cells were executed (serial, pooled, or
replayed from the result cache).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np

#: Shared log-spaced queuing-delay grid: 8 bins per decade from 10^-2 ms to
#: 10^5 ms (57 edges → 58 counts including the underflow and overflow bins).
#: Every cell histograms onto this exact grid so merging is a plain sum.
QUEUING_BIN_EDGES_MS = tuple(10.0 ** (k / 8.0) for k in range(-16, 41))


def queuing_histogram(delays_s: Sequence[float]) -> List[int]:
    """Histogram per-packet queuing delays (seconds) onto the shared grid."""
    edges = np.asarray(QUEUING_BIN_EDGES_MS)
    if len(delays_s) == 0:
        return [0] * (len(edges) + 1)
    delays_ms = np.asarray(delays_s, dtype=float) * 1e3
    indices = np.searchsorted(edges, delays_ms, side="right")
    counts = np.bincount(indices, minlength=len(edges) + 1)
    return [int(c) for c in counts]


def merged_percentile_ms(histograms: Sequence[Sequence[int]],
                         pct: float = 99.0) -> float:
    """Percentile of the merged queuing-delay distribution, in ms.

    Returns the upper edge of the bin where the merged CDF crosses ``pct`` —
    a conservative (upward-rounded) estimate whose error is bounded by the
    bin width (≤ 33 % with 8 bins/decade).  The underflow bin resolves to the
    lowest edge and the overflow bin to the highest.
    """
    if not 0.0 < pct <= 100.0:
        raise ValueError("pct must be in (0, 100]")
    if not histograms:
        return 0.0
    merged = np.sum(np.asarray(histograms, dtype=np.int64), axis=0)
    total = int(merged.sum())
    if total == 0:
        return 0.0
    cumulative = np.cumsum(merged)
    target = pct / 100.0 * total
    index = int(np.searchsorted(cumulative, target))
    edges = QUEUING_BIN_EDGES_MS
    return float(edges[min(index, len(edges) - 1)])


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n·Σx²)`` (1.0 = perfectly fair)."""
    x = np.asarray(list(values), dtype=float)
    if x.size == 0:
        return 0.0
    denominator = x.size * float(np.dot(x, x))
    if denominator == 0.0:
        return 0.0
    return float(x.sum()) ** 2 / denominator


def _percentiles(values: Sequence[float],
                 pcts: Sequence[float] = (50.0, 95.0, 99.0)) -> Dict[str, float]:
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {f"p{pct:g}": 0.0 for pct in pcts}
    return {f"p{pct:g}": float(np.percentile(arr, pct)) for pct in pcts}


def aggregate_city(cell_results: Sequence[Mapping]) -> Dict[str, object]:
    """Roll a list of per-cell result dicts up into city-wide aggregates.

    A salvaged metro sweep (executor ``failure_policy="salvage"``) may hand
    this :class:`~repro.runtime.faults.JobFailure` sentinels in failed cells'
    slots; they are excluded from every aggregate and surfaced as
    ``failed_cells`` so the roll-up degrades gracefully — 199 good cells
    beat zero — without silently pretending the city was complete.
    """
    from repro.runtime.faults import is_failure

    cell_results = list(cell_results)
    failed_cells = sum(1 for r in cell_results if is_failure(r))
    if failed_cells:
        cell_results = [r for r in cell_results if not is_failure(r)]
    if not cell_results:
        raise ValueError("aggregate_city needs at least one cell result"
                         + (f" ({failed_cells} failed cell(s) excluded)"
                            if failed_cells else ""))
    utilization = {r["cell"]: r["utilization"] for r in cell_results}
    util_values = np.asarray(list(utilization.values()), dtype=float)
    base_tputs: List[float] = []
    all_tputs: List[float] = []
    fcts: List[float] = []
    offered = completed = drops = 0
    for r in cell_results:
        base_tputs.extend(r["base_throughputs_bps"])
        all_tputs.extend(r["base_throughputs_bps"])
        all_tputs.extend(r["churn_throughputs_bps"])
        fcts.extend(r["fct_s"])
        offered += r["offered_flows"]
        completed += r["completed_flows"]
        drops += r["drops"]
    aggregates: Dict[str, object] = {
        "cells": len(cell_results),
        "per_cell_utilization": utilization,
        "utilization_mean": float(util_values.mean()),
        "utilization_min": float(util_values.min()),
        "utilization_max": float(util_values.max()),
        "queuing_p99_ms": merged_percentile_ms(
            [r["queuing_hist"] for r in cell_results], 99.0),
        "queuing_p50_ms": merged_percentile_ms(
            [r["queuing_hist"] for r in cell_results], 50.0),
        "jain_base_flows": jain_index(base_tputs),
        "jain_all_flows": jain_index(all_tputs),
        "fct_s": _percentiles(fcts),
        "offered_flows": offered,
        "completed_flows": completed,
        "drops": drops,
    }
    if failed_cells:
        # Only present on salvaged sweeps, so complete runs keep their
        # golden-pinned layout byte for byte.
        aggregates["failed_cells"] = failed_cells
    return aggregates
