"""Metro-scale scenario pack: a city of cellular cells under flow churn.

The paper evaluates ABC one bottleneck at a time; this package composes
hundreds of such bottlenecks — each an independent cellular cell with a mix
of long-lived and churning flows — into one *metro* sweep, routed through the
:mod:`repro.runtime` executor so the seed axis, the worker pool and the
on-disk result cache all apply unchanged.

Layout
------
:mod:`repro.metro.workload`
    Deterministic Poisson arrival times, bounded-Pareto flow sizes and
    weighted scheme-mix assignment (one independent RNG stream per
    (cell, seed, purpose) key).
:mod:`repro.metro.cell`
    ``metro_cell`` — the module-level job function simulating one cell
    (picklable kwargs in, plain-dict metrics out).
:mod:`repro.metro.spec`
    :class:`~repro.metro.spec.MetroSpec` (a :class:`~repro.runtime.spec.SweepSpec`
    whose scheme axis holds weighted mixes) and the
    :func:`~repro.metro.spec.metro_pack` city builder.
:mod:`repro.metro.aggregate`
    City-wide roll-ups: per-cell utilisation, histogram-merged p99 queuing
    delay, Jain fairness over every flow in the city, FCT percentiles.
"""

from repro.metro.aggregate import aggregate_city, jain_index
from repro.metro.cell import metro_cell
from repro.metro.spec import MetroSpec, metro_pack
from repro.metro.workload import (bounded_pareto_sizes, parse_mix,
                                  poisson_arrivals, scheme_assignment)

__all__ = [
    "MetroSpec",
    "metro_pack",
    "metro_cell",
    "parse_mix",
    "aggregate_city",
    "jain_index",
    "poisson_arrivals",
    "bounded_pareto_sizes",
    "scheme_assignment",
]
