"""The per-cell metro job: one cellular bottleneck under mixed-flow churn.

:func:`metro_cell` is a module-level function with picklable kwargs and a
plain-dict return value, so it can serve as a
:class:`~repro.runtime.executor.SweepJob` target: multiprocessing workers
import it by name, and the content-addressed
:class:`~repro.runtime.cache.ResultCache` keys on its kwargs.  Note that the
``REPRO_BATCH_ACKS`` knob deliberately does *not* enter the cache key — the
batched ACK fast path is bit-identical by contract (enforced by
``tests/test_batched_ack.py``), so classic and batched runs may share cache
entries.

Each cell simulates one bottleneck (a trace-driven cellular link or a fixed
rate) carrying

* ``base_flows`` long-lived backlogged flows started at t=0, and
* a churning population of short flows — Poisson arrivals, bounded-Pareto
  sizes — that start mid-run and depart when their transfer completes,

with every flow's scheme drawn from the weighted mix label (e.g.
``"abc:0.6,cubic:0.3,bbr:0.1"``).  All randomness comes from the
deterministic per-(cell, seed) streams in :mod:`repro.metro.workload`.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.metro.aggregate import queuing_histogram
from repro.metro.workload import (bounded_pareto_sizes, parse_mix,
                                  poisson_arrivals, scheme_assignment)


def _make_cell_cc(scheme: str, params):
    """Instantiate one flow's congestion control for a shared-ABC-router cell."""
    from repro.cc import make_cc

    if scheme == "abc":
        return make_cc("abc", params=params)
    return make_cc(scheme)


def metro_cell(mix: str, cell: str, link_spec: Any, seed: int,
               rtt: float = 0.05, duration: float = 8.0,
               buffer_packets: int = 250, base_flows: int = 2,
               arrival_rate: float = 2.0, flow_size_min: int = 20_000,
               flow_size_max: int = 2_000_000, flow_size_alpha: float = 1.2,
               warmup: float = 0.0) -> Dict[str, Any]:
    """Simulate one metro cell; returns picklable per-cell metrics.

    ``link_spec`` is a :class:`~repro.cellular.trace.CellularTrace`, a
    :class:`~repro.runtime.trace_store.TraceRef` into the shared trace store,
    a rate in bits per second, or a picklable square-wave tuple
    ``("square", low_bps, high_bps, half_period_s)`` (the paper's Fig. 17
    cell model).  The bottleneck always runs the ABC router qdisc (non-ABC
    flows simply never receive accelerate marks, matching the paper's
    coexistence setup).
    """
    from repro.cellular.trace import CellularTrace
    from repro.core.params import ABCParams
    from repro.core.router import ABCRouterQdisc
    from repro.runtime.trace_store import resolve_link_spec
    from repro.simulator.link import SquareWaveRate
    from repro.simulator.scenario import Scenario
    from repro.simulator.traffic import FixedSizeSource

    link_spec = resolve_link_spec(link_spec)
    arrivals = poisson_arrivals(arrival_rate, duration, cell, seed)
    # Arrivals in the final RTT cannot complete a handshake-free transfer of
    # even one segment round-trip; keep them anyway (they contribute load),
    # but only pre-run arrivals exist at all.
    sizes = bounded_pareto_sizes(len(arrivals), cell, seed,
                                 min_bytes=flow_size_min,
                                 max_bytes=flow_size_max,
                                 alpha=flow_size_alpha)
    schemes = scheme_assignment(base_flows + len(arrivals), parse_mix(mix),
                                cell, seed)

    params = ABCParams()
    scenario = Scenario()
    qdisc = ABCRouterQdisc(params=params, buffer_packets=buffer_packets)
    if isinstance(link_spec, (int, float)):
        link = scenario.add_rate_link(float(link_spec), qdisc=qdisc,
                                      name=cell)
    elif isinstance(link_spec, tuple) and link_spec[:1] == ("square",):
        low, high, half_period = link_spec[1:]
        link = scenario.add_rate_link(
            SquareWaveRate(float(low), float(high), float(half_period)),
            qdisc=qdisc, name=cell)
    elif isinstance(link_spec, CellularTrace):
        link = scenario.add_cellular_link(link_spec, qdisc=qdisc, name=cell)
    else:
        link = scenario.add_cellular_link(list(link_spec), qdisc=qdisc,
                                          name=cell)

    base = []
    for index in range(base_flows):
        cc = _make_cell_cc(schemes[index], params)
        base.append(scenario.add_flow(cc, [link], rtt=rtt,
                                      label=f"base-{index}"))
    churn = []
    for index, (start, size) in enumerate(zip(arrivals, sizes)):
        cc = _make_cell_cc(schemes[base_flows + index], params)
        churn.append((start, scenario.add_flow(
            cc, [link], rtt=rtt, start_time=start,
            source=FixedSizeSource(size), label=f"churn-{index}")))

    result = scenario.run(duration)

    horizon = duration - warmup
    base_tputs = [flow.stats.bytes_received * 8.0 / horizon for flow in base]
    churn_tputs = [flow.stats.bytes_received * 8.0 / horizon
                   for _, flow in churn]
    fcts = []
    completed = 0
    for start, flow in churn:
        done = flow.sender.completion_time
        if done is not None:
            completed += 1
            fcts.append(done - start)
    queuing = np.concatenate(
        [np.asarray(flow.stats.queuing_delays, dtype=float)
         for flow in scenario.flows]) if scenario.flows else np.array([])
    return {
        "cell": cell,
        "mix": mix,
        "seed": seed,
        "utilization": result.link_utilization(link, t0=warmup),
        "throughput_bps": result.aggregate_throughput_bps(t0=warmup),
        "queuing_p99_ms": (float(np.percentile(queuing, 99.0)) * 1e3
                           if queuing.size else 0.0),
        "queuing_hist": queuing_histogram(queuing),
        "base_throughputs_bps": base_tputs,
        "churn_throughputs_bps": churn_tputs,
        "fct_s": fcts,
        "offered_flows": base_flows + len(churn),
        "completed_flows": completed,
        "drops": link.dropped_packets,
        "schemes": schemes,
    }
