"""Deterministic workload generators for the metro scenario pack.

Every generator draws from its own :class:`random.Random` stream seeded by a
string key (``"metro-<purpose>:<cell>:<seed>"``), so

* the same (cell, seed) always produces the same arrivals/sizes/schemes —
  across processes, across serial/parallel execution and across cache
  replays (the :mod:`repro.runtime` determinism contract);
* different cells (and different purposes within a cell) are statistically
  independent without any cross-stream bookkeeping.

The flow-size law is a bounded Pareto — the canonical heavy-tailed "mice and
elephants" model for flow sizes — sampled by inverting its CDF:

    F(x) = (1 - (xm/x)^a) / (1 - (xm/xM)^a),   xm <= x <= xM

so ``x = xm / (1 - U * (1 - (xm/xM)^a))^(1/a)`` maps uniform ``U`` onto the
truncated tail exactly (no rejection loop, deterministic draw count).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple


def parse_mix(label: str) -> List[Tuple[str, float]]:
    """Parse a weighted scheme-mix label like ``"abc:0.6,cubic:0.3,bbr:0.1"``.

    A bare scheme name (no ``:weight``) gets weight 1.0, so every plain
    scheme label is also a valid single-scheme mix.  Weights must be positive;
    normalisation happens at sampling time.
    """
    mix: List[Tuple[str, float]] = []
    for part in str(label).split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight_text = part.partition(":")
        name = name.strip().lower()
        if not name:
            raise ValueError(f"empty scheme name in mix label {label!r}")
        weight = 1.0
        if weight_text.strip():
            try:
                weight = float(weight_text)
            except ValueError as exc:
                raise ValueError(
                    f"bad weight {weight_text!r} in mix label {label!r}"
                ) from exc
        if weight <= 0.0:
            raise ValueError(f"weight for {name!r} must be positive in mix "
                             f"label {label!r}")
        mix.append((name, weight))
    if not mix:
        raise ValueError(f"mix label {label!r} names no schemes")
    return mix


def stream(purpose: str, cell: str, seed: int) -> random.Random:
    """An independent, reproducible RNG stream for one (purpose, cell, seed)."""
    return random.Random(f"metro-{purpose}:{cell}:{seed}")


def poisson_arrivals(rate_per_s: float, duration: float, cell: str,
                     seed: int) -> List[float]:
    """Poisson-process arrival times in ``(0, duration)``, ascending.

    ``rate_per_s`` is the mean flow-arrival rate λ; inter-arrival gaps are
    i.i.d. ``Exp(λ)``.  A non-positive rate means no churn.
    """
    if rate_per_s <= 0.0 or duration <= 0.0:
        return []
    rng = stream("arrivals", cell, seed)
    times: List[float] = []
    t = rng.expovariate(rate_per_s)
    while t < duration:
        times.append(t)
        t += rng.expovariate(rate_per_s)
    return times


def bounded_pareto_sizes(n: int, cell: str, seed: int,
                         min_bytes: int = 20_000,
                         max_bytes: int = 2_000_000,
                         alpha: float = 1.2) -> List[int]:
    """``n`` heavy-tailed flow sizes from a bounded Pareto(α, xm, xM)."""
    if n <= 0:
        return []
    if not 0 < min_bytes <= max_bytes:
        raise ValueError("need 0 < min_bytes <= max_bytes")
    if alpha <= 0.0:
        raise ValueError("alpha must be positive")
    rng = stream("sizes", cell, seed)
    ratio_a = (min_bytes / max_bytes) ** alpha
    inv_a = 1.0 / alpha
    sizes: List[int] = []
    for _ in range(n):
        u = rng.random()
        x = min_bytes / (1.0 - u * (1.0 - ratio_a)) ** inv_a
        # Clamp guards the u→1 float edge; int() keeps sizes picklable and
        # byte-exact across platforms.
        sizes.append(min(int(x), max_bytes))
    return sizes


def scheme_assignment(n: int, mix: Sequence[Tuple[str, float]], cell: str,
                      seed: int) -> List[str]:
    """Assign ``n`` flows to schemes by weighted draw from ``mix``.

    ``mix`` is a sequence of ``(scheme, weight)`` pairs (weights need not be
    normalised).  Draws are independent per flow, from the cell's own stream.
    """
    if n <= 0:
        return []
    if not mix:
        raise ValueError("mix must not be empty")
    total = float(sum(w for _, w in mix))
    if total <= 0.0:
        raise ValueError("mix weights must sum to a positive value")
    rng = stream("schemes", cell, seed)
    names: List[str] = []
    for _ in range(n):
        u = rng.random() * total
        acc = 0.0
        chosen = mix[-1][0]
        for name, weight in mix:
            acc += weight
            if u < acc:
                chosen = name
                break
        names.append(chosen)
    return names
