"""CoDel (Controlled Delay) active queue management.

Implementation of the CoDel dequeue-time algorithm from Nichols & Jacobson,
"Controlling Queue Delay" (ACM Queue 2012) and RFC 8289.  Packets whose
sojourn time has exceeded ``target`` for at least ``interval`` are dropped (or
ECN-marked when ``ecn=True``) at a rate that increases with the square root of
the number of drops, which is the control law that gives CoDel its name.

The paper pairs CoDel with Cubic ("Cubic+Codel"): it removes bufferbloat but
cannot signal rate increases, which is exactly the behaviour Fig. 1c shows and
ABC improves on.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.simulator.packet import Packet, apply_ce
from repro.simulator.qdisc import Qdisc


class CoDelQdisc(Qdisc):
    """CoDel AQM over a FIFO queue."""

    name = "codel"

    def __init__(self, buffer_packets: int = 250, target: float = 0.005,
                 interval: float = 0.1, ecn: bool = False):
        super().__init__(buffer_packets=buffer_packets)
        if target <= 0 or interval <= 0:
            raise ValueError("target and interval must be positive")
        self.target = target
        self.interval = interval
        self.ecn = ecn

        self._first_above_time = 0.0
        self._drop_next = 0.0
        self._drop_count = 0
        self._last_drop_count = 0
        self._dropping = False

    # ------------------------------------------------------------ enqueue
    def enqueue(self, packet: Packet, now: float) -> bool:
        if self.backlog_packets >= self.buffer_packets:
            self.dropped_packets += 1
            return False
        self._push(packet, now)
        return True

    # ------------------------------------------------------------ dequeue
    def _should_flag(self, packet: Packet, now: float) -> bool:
        """CoDel's ``dodeque`` check: has sojourn stayed above target?"""
        sojourn = now - packet.enqueue_time
        if sojourn < self.target or self.backlog_bytes <= 2 * packet.size:
            self._first_above_time = 0.0
            return False
        if self._first_above_time == 0.0:
            self._first_above_time = now + self.interval
            return False
        return now >= self._first_above_time

    def _control_law(self, t: float) -> float:
        return t + self.interval / math.sqrt(max(self._drop_count, 1))

    def _handle(self, packet: Packet, now: float) -> Optional[Packet]:
        """Drop or ECN-mark a packet selected by the control law."""
        if self.ecn and packet.ecn.is_ecn_capable:
            packet.ecn = apply_ce(packet.ecn)
            self.marked_packets += 1
            return packet
        self.dropped_packets += 1
        return None

    def dequeue(self, now: float) -> Optional[Packet]:
        packet = self._pop(now)
        if packet is None:
            self._dropping = False
            return None

        flag = self._should_flag(packet, now)
        if self._dropping:
            if not flag:
                self._dropping = False
            else:
                while self._dropping and now >= self._drop_next:
                    handled = self._handle(packet, now)
                    self._drop_count += 1
                    if handled is not None:
                        # ECN mark: deliver the marked packet, stay in state.
                        self._drop_next = self._control_law(self._drop_next)
                        return handled
                    packet = self._pop(now)
                    if packet is None:
                        self._dropping = False
                        return None
                    if not self._should_flag(packet, now):
                        self._dropping = False
                    else:
                        self._drop_next = self._control_law(self._drop_next)
        elif flag and (now - self._drop_next < self.interval
                       or now - self._first_above_time >= self.interval):
            handled = self._handle(packet, now)
            self._dropping = True
            delta = self._drop_count - self._last_drop_count
            self._drop_count = 1
            if delta > 1 and now - self._drop_next < 16 * self.interval:
                self._drop_count = delta
            self._drop_next = self._control_law(now)
            self._last_drop_count = self._drop_count
            if handled is not None:
                return handled
            packet = self._pop(now)
            if packet is None:
                self._dropping = False
                return None
        return packet
