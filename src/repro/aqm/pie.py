"""PIE (Proportional Integral controller Enhanced) AQM, RFC 8033.

PIE drops (or ECN-marks) packets probabilistically at enqueue time.  The drop
probability is updated every ``t_update`` seconds by a proportional-integral
controller driven by the estimated queuing delay:

    p += alpha * (delay - target) + beta * (delay - delay_old)

with the RFC's auto-scaling of ``alpha``/``beta`` when ``p`` is small and its
burst-allowance logic.  The paper evaluates "Cubic+PIE" as an AQM baseline.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.simulator.packet import Packet, apply_ce
from repro.simulator.qdisc import Qdisc


class PIEQdisc(Qdisc):
    """PIE AQM over a FIFO queue."""

    name = "pie"

    def __init__(self, buffer_packets: int = 250, target: float = 0.015,
                 t_update: float = 0.015, alpha: float = 0.125,
                 beta: float = 1.25, max_burst: float = 0.15,
                 ecn: bool = False, seed: int = 0):
        super().__init__(buffer_packets=buffer_packets)
        if target <= 0 or t_update <= 0:
            raise ValueError("target and t_update must be positive")
        self.target = target
        self.t_update = t_update
        self.alpha = alpha
        self.beta = beta
        self.max_burst = max_burst
        self.ecn = ecn
        self._rng = random.Random(seed)

        self.drop_prob = 0.0
        self._qdelay_old = 0.0
        self._burst_allowance = max_burst
        self._last_update: Optional[float] = None
        self._avg_dq_rate_bps = 0.0
        self._dq_start: Optional[float] = None
        self._dq_bytes = 0

    # ------------------------------------------------------------ update
    def _estimate_delay(self) -> float:
        """Little's-law queue-delay estimate from the departure-rate EWMA."""
        if self._avg_dq_rate_bps > 0:
            return self.backlog_bytes * 8.0 / self._avg_dq_rate_bps
        if self.link is not None:
            rate = self.link.capacity_bps(self.now)
            if rate > 0:
                return self.backlog_bytes * 8.0 / rate
        return 0.0

    def _maybe_update(self, now: float) -> None:
        if self._last_update is None:
            self._last_update = now
            return
        while now - self._last_update >= self.t_update:
            self._last_update += self.t_update
            self._update_probability()

    def _update_probability(self) -> None:
        qdelay = self._estimate_delay()
        p = (self.alpha * (qdelay - self.target)
             + self.beta * (qdelay - self._qdelay_old))
        # RFC 8033 auto-tuning: scale the adjustment down when drop_prob is
        # small so the controller does not overshoot.
        if self.drop_prob < 0.000001:
            p /= 2048
        elif self.drop_prob < 0.00001:
            p /= 512
        elif self.drop_prob < 0.0001:
            p /= 128
        elif self.drop_prob < 0.001:
            p /= 32
        elif self.drop_prob < 0.01:
            p /= 8
        elif self.drop_prob < 0.1:
            p /= 2
        self.drop_prob = min(max(self.drop_prob + p, 0.0), 1.0)
        if qdelay < self.target / 2 and self._qdelay_old < self.target / 2:
            self.drop_prob *= 0.98
        self._qdelay_old = qdelay
        if self._burst_allowance > 0:
            self._burst_allowance = max(self._burst_allowance - self.t_update, 0.0)

    # ------------------------------------------------------------ enqueue
    def _should_mark(self, now: float) -> bool:
        if self._burst_allowance > 0:
            return False
        qdelay = self._estimate_delay()
        if qdelay < self.target / 2 and self.drop_prob < 0.2:
            return False
        if self.backlog_packets <= 2:
            return False
        return self._rng.random() < self.drop_prob

    def enqueue(self, packet: Packet, now: float) -> bool:
        self._maybe_update(now)
        if self.backlog_packets >= self.buffer_packets:
            self.dropped_packets += 1
            return False
        if self._should_mark(now):
            if self.ecn and packet.ecn.is_ecn_capable and self.drop_prob < 0.1:
                packet.ecn = apply_ce(packet.ecn)
                self.marked_packets += 1
            else:
                self.dropped_packets += 1
                return False
        self._push(packet, now)
        return True

    # ------------------------------------------------------------ dequeue
    def dequeue(self, now: float) -> Optional[Packet]:
        self._maybe_update(now)
        packet = self._pop(now)
        if packet is None:
            return None
        # Departure-rate estimation (simplified from RFC 8033 §5.3): EWMA of
        # the instantaneous drain rate measured over dequeue bursts.
        if self._dq_start is None:
            self._dq_start = now
            self._dq_bytes = packet.size
        else:
            self._dq_bytes += packet.size
            span = now - self._dq_start
            if span >= 0.01 and self._dq_bytes > 0:
                rate = self._dq_bytes * 8.0 / span
                if self._avg_dq_rate_bps == 0.0:
                    self._avg_dq_rate_bps = rate
                else:
                    self._avg_dq_rate_bps = 0.9 * self._avg_dq_rate_bps + 0.1 * rate
                self._dq_start = now
                self._dq_bytes = 0
        return packet
