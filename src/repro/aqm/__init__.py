"""Active queue management baselines.

The paper compares ABC against Cubic running over CoDel and PIE qdiscs
(§6.2/§6.3).  DropTail is the plain deep buffer that produces Cubic's
bufferbloat in Fig. 1a; RED is included for completeness as the classic ECN
marker referenced in §2.
"""

from repro.aqm.codel import CoDelQdisc
from repro.aqm.droptail import DropTailQdisc
from repro.aqm.pie import PIEQdisc
from repro.aqm.red import REDQdisc

__all__ = ["DropTailQdisc", "CoDelQdisc", "PIEQdisc", "REDQdisc"]
