"""Drop-tail FIFO queue.

This is simply :class:`~repro.simulator.qdisc.FifoQdisc` under the name the
experiments use.  The paper's default cellular buffer is 250 MTU-sized
packets (§6.2).
"""

from __future__ import annotations

from repro.simulator.qdisc import FifoQdisc


class DropTailQdisc(FifoQdisc):
    """A deep drop-tail buffer (the bufferbloat baseline)."""

    name = "droptail"
