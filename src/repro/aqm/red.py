"""RED (Random Early Detection) AQM, Floyd & Jacobson 1993.

RED keeps an EWMA of the queue length and drops/marks arriving packets with a
probability that rises linearly between ``min_th`` and ``max_th``.  The paper
cites RED as the classic AQM that can signal congestion early but — like all
AQMs — cannot signal rate *increases* (§2).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.simulator.packet import Packet, apply_ce
from repro.simulator.qdisc import Qdisc


class REDQdisc(Qdisc):
    """Random Early Detection over a FIFO queue."""

    name = "red"

    def __init__(self, buffer_packets: int = 250, min_th: int = 20,
                 max_th: int = 80, max_p: float = 0.1, weight: float = 0.002,
                 ecn: bool = False, seed: int = 0):
        super().__init__(buffer_packets=buffer_packets)
        if not 0 < min_th < max_th:
            raise ValueError("need 0 < min_th < max_th")
        if not 0 < max_p <= 1:
            raise ValueError("max_p must be in (0, 1]")
        self.min_th = min_th
        self.max_th = max_th
        self.max_p = max_p
        self.weight = weight
        self.ecn = ecn
        self._rng = random.Random(seed)
        self.avg_queue = 0.0
        self._count_since_mark = -1

    def _update_average(self) -> None:
        self.avg_queue = ((1.0 - self.weight) * self.avg_queue
                          + self.weight * self.backlog_packets)

    def _mark_probability(self) -> float:
        if self.avg_queue < self.min_th:
            return 0.0
        if self.avg_queue >= self.max_th:
            return 1.0
        base = self.max_p * (self.avg_queue - self.min_th) / (self.max_th - self.min_th)
        if self._count_since_mark >= 0:
            denom = max(1.0 - self._count_since_mark * base, 1e-6)
            return min(base / denom, 1.0)
        return base

    def enqueue(self, packet: Packet, now: float) -> bool:
        self._update_average()
        if self.backlog_packets >= self.buffer_packets:
            self.dropped_packets += 1
            return False
        prob = self._mark_probability()
        if prob > 0:
            self._count_since_mark += 1
            if prob >= 1.0 or self._rng.random() < prob:
                self._count_since_mark = -1
                if self.ecn and packet.ecn.is_ecn_capable:
                    packet.ecn = apply_ce(packet.ecn)
                    self.marked_packets += 1
                else:
                    self.dropped_packets += 1
                    return False
        self._push(packet, now)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        return self._pop(now)
