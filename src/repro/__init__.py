"""Reproduction of *ABC: A Simple Explicit Congestion Controller for Wireless Networks*.

The package is organised as follows:

``repro.simulator``
    Packet-level discrete-event network simulator (event loop, links, queues,
    endpoints, traffic sources, monitors).  This plays the role of the paper's
    Mahimahi emulation plus the Linux networking stack.
``repro.core``
    The paper's contribution: the ABC sender, the ABC router, the ECN
    re-purposing, coexistence machinery and the fluid-model stability analysis.
``repro.aqm``
    Active queue management baselines (DropTail, CoDel, PIE, RED).
``repro.cc``
    End-to-end congestion-control baselines (Cubic, NewReno, Vegas, BBR, Copa,
    PCC-Vivace, Sprout, Verus).
``repro.explicit``
    Explicit-feedback baselines (XCP, XCPw, RCP, VCP).
``repro.wifi``
    802.11n MAC model and the ABC WiFi link-rate estimator.
``repro.cellular``
    Mahimahi-style cellular traces and synthetic trace generators.
``repro.analysis``
    Metrics, fairness indices, Space-Saving top-K, max-min allocation.
``repro.experiments``
    One module per paper figure/table, plus a shared experiment runner.
"""

__version__ = "1.0.0"

from repro.simulator.engine import EventLoop
from repro.simulator.packet import ECN, Packet
from repro.simulator.scenario import Scenario

__all__ = ["EventLoop", "Packet", "ECN", "Scenario", "__version__"]
