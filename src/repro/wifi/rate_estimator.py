"""ABC's WiFi link-rate estimator (§4.1, Eqs. 5–8).

The estimator runs at the access point.  For every transmitted A-MPDU batch it
observes the batch size ``b`` (frames), the frame size ``S`` (bits), the
transmission bitrate ``R`` and the block-ACK inter-arrival time ``TIA(b, t)``.
Because the inter-ACK time decomposes into a size-proportional part and a
size-independent overhead ``h(t)``,

    TIA(b, t) = b·S/R + h(t),

the inter-ACK time of a hypothetical *full* batch of ``M`` frames can be
extrapolated from a partial batch:

    T̂IA(M, t) = TIA(b, t) + (M − b)·S/R,                        (Eq. 8)

giving the link-capacity estimate

    µ̂(t) = M·S / T̂IA(M, t).                                     (Eq. 6)

Samples are smoothed with a moving average over a sliding window ``T`` (40 ms
in the paper) and the prediction is capped at twice the currently observed
dequeue rate, because ABC cannot ask senders for more than a rate doubling per
RTT anyway.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.simulator.estimators import WindowedRateEstimator


@dataclass
class BatchObservation:
    """One A-MPDU transmission as seen by the qdisc (§6.1)."""

    time: float
    batch_frames: int
    frame_bits: float
    inter_ack_time: float
    bitrate_bps: float


class WiFiRateEstimator:
    """Implements the estimator of Eqs. (5)–(8)."""

    def __init__(self, max_batch_frames: int = 32, window: float = 0.04,
                 cap_factor: float = 2.0):
        if max_batch_frames <= 0:
            raise ValueError("max_batch_frames must be positive")
        if window <= 0:
            raise ValueError("window must be positive")
        self.max_batch_frames = max_batch_frames
        self.window = window
        self.cap_factor = cap_factor
        self._samples: Deque[tuple[float, float]] = deque()
        self._dequeue_rate = WindowedRateEstimator(window=window)
        self.last_raw_estimate = 0.0
        self.observations = 0

    # ------------------------------------------------------------ inputs
    def observe_batch(self, obs: BatchObservation) -> float:
        """Process one block-ACK and return the raw µ̂ sample (bps)."""
        if obs.batch_frames <= 0 or obs.inter_ack_time <= 0 or obs.bitrate_bps <= 0:
            raise ValueError("batch observation fields must be positive")
        self.observations += 1
        m = self.max_batch_frames
        b = min(obs.batch_frames, m)
        # Eq. 8: extrapolate the inter-ACK time to a full batch.
        tia_full = obs.inter_ack_time + (m - b) * obs.frame_bits / obs.bitrate_bps
        # Eq. 6: full-batch capacity estimate.
        mu_hat = m * obs.frame_bits / tia_full
        self.last_raw_estimate = mu_hat
        self._samples.append((obs.time, mu_hat))
        self._expire(obs.time)
        # Track the actually delivered bits for the rate-doubling cap.
        self._dequeue_rate.add(obs.time, int(b * obs.frame_bits / 8))
        return mu_hat

    def observed_dequeue_rate(self, now: float) -> float:
        """Rate actually delivered over the sliding window (bps)."""
        return self._dequeue_rate.rate_bps(now)

    # ------------------------------------------------------------ outputs
    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        while self._samples and self._samples[0][0] < cutoff:
            self._samples.popleft()

    def estimate_bps(self, now: float, apply_cap: bool = True) -> float:
        """Smoothed (and optionally capped) link-capacity estimate µ̂(t)."""
        self._expire(now)
        if not self._samples:
            return 0.0
        average = sum(value for _, value in self._samples) / len(self._samples)
        if not apply_cap:
            return average
        observed = self.observed_dequeue_rate(now)
        if observed <= 0:
            return average
        return min(average, self.cap_factor * observed)

    def capacity_fn(self, apply_cap: bool = True):
        """A ``fn(now) -> bps`` callback suitable for the ABC router qdisc."""
        def _estimate(now: float) -> float:
            return self.estimate_bps(now, apply_cap=apply_cap)
        return _estimate
