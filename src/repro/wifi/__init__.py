"""802.11n WiFi MAC model and the ABC WiFi link-rate estimator (§4.1).

The paper's WiFi evaluation runs on a commodity 802.11n access point whose
driver exposes A-MPDU batch sizes, block-ACK receive times and per-batch
transmission bitrates.  This package provides:

* :mod:`repro.wifi.mcs` — the 802.11n MCS-index → PHY-bitrate table and the
  MCS schedules used in the experiments (alternating 1↔7 every 2 s, and the
  Brownian-motion schedule of Appendix B);
* :mod:`repro.wifi.mac` — a :class:`~repro.simulator.link.Link` subclass that
  transmits queued frames in A-MPDU batches, models per-batch overhead
  (contention, preamble, block-ACK) and reports the observables the estimator
  needs;
* :mod:`repro.wifi.rate_estimator` — the estimator of Eqs. (5)–(8): it infers
  the backlogged-link capacity from partial batches by extrapolating the
  inter-ACK time to a full batch.
"""

from repro.wifi.mac import WiFiLink, WiFiMacConfig
from repro.wifi.mcs import (AlternatingMCSSchedule, BrownianMCSSchedule,
                            FixedMCSSchedule, MCS_RATES_BPS, mcs_rate_bps)
from repro.wifi.rate_estimator import BatchObservation, WiFiRateEstimator

__all__ = [
    "MCS_RATES_BPS",
    "mcs_rate_bps",
    "FixedMCSSchedule",
    "AlternatingMCSSchedule",
    "BrownianMCSSchedule",
    "WiFiMacConfig",
    "WiFiLink",
    "BatchObservation",
    "WiFiRateEstimator",
]
