"""802.11n MCS indices, PHY bitrates and the MCS schedules used in §6.3.

The experiments vary the router's bitrate selection by forcing the MCS index
with ``iw``: alternating between 1 and 7 every two seconds for the main WiFi
experiment (Fig. 10), and following a Brownian-motion walk within [3, 7] for
the Appendix B variant (Fig. 14).
"""

from __future__ import annotations

import math
import random
from typing import Optional

#: 802.11n single-spatial-stream, 20 MHz, long guard interval PHY bitrates,
#: indexed by MCS index 0–7 (bits per second).
MCS_RATES_BPS = (
    6.5e6, 13.0e6, 19.5e6, 26.0e6, 39.0e6, 52.0e6, 58.5e6, 65.0e6,
)


def mcs_rate_bps(index: int) -> float:
    """PHY bitrate for an MCS index (0–7)."""
    if not 0 <= index < len(MCS_RATES_BPS):
        raise ValueError(f"MCS index must be in [0, {len(MCS_RATES_BPS) - 1}]")
    return MCS_RATES_BPS[index]


class MCSSchedule:
    """Maps simulated time to the MCS index in force at that time."""

    def index_at(self, t: float) -> int:
        raise NotImplementedError

    def rate_at(self, t: float) -> float:
        return mcs_rate_bps(self.index_at(t))


class FixedMCSSchedule(MCSSchedule):
    """A link that stays at one MCS index (used for Fig. 4/5's three links)."""

    def __init__(self, index: int):
        mcs_rate_bps(index)  # validate
        self.index = index

    def index_at(self, t: float) -> int:
        return self.index


class AlternatingMCSSchedule(MCSSchedule):
    """Alternate between two MCS indices on a fixed period (Fig. 10).

    The paper alternates between MCS 1 and MCS 7 every 2 seconds to mimic a
    user moving between poor and good signal conditions.
    """

    def __init__(self, low_index: int = 1, high_index: int = 7,
                 period: float = 2.0):
        mcs_rate_bps(low_index)
        mcs_rate_bps(high_index)
        if period <= 0:
            raise ValueError("period must be positive")
        self.low_index = low_index
        self.high_index = high_index
        self.period = period

    def index_at(self, t: float) -> int:
        phase = int(t / self.period) % 2
        return self.high_index if phase == 0 else self.low_index


class BrownianMCSSchedule(MCSSchedule):
    """MCS index following a bounded random walk (Appendix B, Fig. 14).

    The index changes every ``period`` seconds by ±1 (or stays), clipped to
    ``[min_index, max_index]``.  The walk is precomputed lazily and cached so
    repeated queries are cheap and deterministic for a given seed.
    """

    def __init__(self, min_index: int = 3, max_index: int = 7,
                 period: float = 2.0, seed: int = 0,
                 start_index: Optional[int] = None):
        mcs_rate_bps(min_index)
        mcs_rate_bps(max_index)
        if min_index > max_index:
            raise ValueError("min_index must be <= max_index")
        if period <= 0:
            raise ValueError("period must be positive")
        self.min_index = min_index
        self.max_index = max_index
        self.period = period
        self._rng = random.Random(seed)
        start = start_index if start_index is not None else (min_index + max_index) // 2
        self._walk = [min(max(start, min_index), max_index)]

    def _extend_to(self, steps: int) -> None:
        while len(self._walk) <= steps:
            move = self._rng.choice((-1, 0, 1))
            nxt = min(max(self._walk[-1] + move, self.min_index), self.max_index)
            self._walk.append(nxt)

    def index_at(self, t: float) -> int:
        step = max(int(math.floor(t / self.period)), 0)
        self._extend_to(step)
        return self._walk[step]
