"""802.11n MAC model: A-MPDU batching, block ACKs and per-batch overhead.

The model captures exactly the features of the WiFi MAC that the paper's link
rate estimator depends on (§4.1):

* frames are transmitted in A-MPDU batches of at most ``max_batch_frames``
  frames; a new batch starts only after the previous batch's block ACK;
* when the queue holds fewer than a full batch, a smaller batch is sent —
  which is why naive utilisation-based capacity estimates fail;
* every batch pays a size-independent overhead ``h(t)`` (channel contention,
  preamble, block-ACK reception) drawn from a configurable random range,
  which produces the vertical spread seen in Fig. 4;
* the PHY bitrate ``R`` follows an :class:`~repro.wifi.mcs.MCSSchedule`
  (fixed, alternating or Brownian).

The link exposes the observables the ABC qdisc reads from the driver (batch
size, block-ACK time, bitrate) and feeds them to an attached
:class:`~repro.wifi.rate_estimator.WiFiRateEstimator`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.simulator.engine import EventLoop
from repro.simulator.link import Link
from repro.simulator.packet import MTU, Packet
from repro.simulator.qdisc import Qdisc
from repro.wifi.mcs import FixedMCSSchedule, MCSSchedule
from repro.wifi.rate_estimator import BatchObservation, WiFiRateEstimator


@dataclass
class WiFiMacConfig:
    """Parameters of the 802.11n MAC model.

    ``overhead_min``/``overhead_max`` bound the per-batch overhead ``h(t)``;
    the defaults (0.8–2.5 ms) reproduce the spread of inter-ACK times shown in
    Fig. 4, where full batches of ~20 frames take 6–14 ms.
    """

    max_batch_frames: int = 32
    frame_size_bytes: int = MTU
    overhead_min: float = 0.0008
    overhead_max: float = 0.0025
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_batch_frames <= 0:
            raise ValueError("max_batch_frames must be positive")
        if self.frame_size_bytes <= 0:
            raise ValueError("frame_size_bytes must be positive")
        if not 0 <= self.overhead_min <= self.overhead_max:
            raise ValueError("need 0 <= overhead_min <= overhead_max")

    @property
    def mean_overhead(self) -> float:
        return (self.overhead_min + self.overhead_max) / 2.0


class WiFiLink(Link):
    """A WiFi hop that transmits queued packets in A-MPDU batches."""

    def __init__(self, env: EventLoop, mcs: Optional[MCSSchedule] = None,
                 config: Optional[WiFiMacConfig] = None,
                 qdisc: Optional[Qdisc] = None, prop_delay: float = 0.0,
                 name: str = "wifi", dst=None,
                 estimator: Optional[WiFiRateEstimator] = None):
        super().__init__(env, qdisc=qdisc, prop_delay=prop_delay, name=name, dst=dst)
        self.mcs = mcs if mcs is not None else FixedMCSSchedule(7)
        self.config = config if config is not None else WiFiMacConfig()
        self._rng = random.Random(self.config.seed)
        self.estimator = estimator
        self._transmitting = False
        self._last_ack_time: Optional[float] = None
        self.batches_sent = 0
        self.batch_log: list[BatchObservation] = []

    # ------------------------------------------------------------ batching
    def _on_enqueue(self, now: float) -> None:
        if not self._transmitting:
            self._start_batch()

    def _draw_overhead(self) -> float:
        lo, hi = self.config.overhead_min, self.config.overhead_max
        if hi <= lo:
            return lo
        return self._rng.uniform(lo, hi)

    def _start_batch(self) -> None:
        now = self.env.now
        if self.qdisc.is_empty:
            self._transmitting = False
            return
        self._transmitting = True
        batch: list[Packet] = []
        while len(batch) < self.config.max_batch_frames:
            packet = self.qdisc.dequeue(now)
            if packet is None:
                break
            batch.append(packet)
        if not batch:
            self._transmitting = False
            return
        bitrate = self.mcs.rate_at(now)
        frame_bits = self.config.frame_size_bytes * 8.0
        payload_bits = sum(p.size for p in batch) * 8.0
        tx_time = payload_bits / bitrate + self._draw_overhead()
        self.env.schedule(tx_time, self._finish_batch, batch, now, bitrate, tx_time)

    def _finish_batch(self, batch: list[Packet], start_time: float,
                      bitrate: float, tx_time: float) -> None:
        now = self.env.now
        self.batches_sent += 1
        # Block-ACK inter-arrival time: time since the previous block ACK if
        # the radio stayed busy, otherwise the duration of this batch alone.
        if self._last_ack_time is not None and self._last_ack_time >= start_time:
            inter_ack = now - self._last_ack_time
        else:
            inter_ack = tx_time
        self._last_ack_time = now

        frame_bits = self.config.frame_size_bytes * 8.0
        observation = BatchObservation(
            time=now,
            batch_frames=len(batch),
            frame_bits=frame_bits,
            inter_ack_time=inter_ack,
            bitrate_bps=bitrate,
        )
        self.batch_log.append(observation)
        if self.estimator is not None:
            self.estimator.observe_batch(observation)

        for packet in batch:
            self._deliver(packet)
        self._start_batch()

    # ------------------------------------------------------------ capacity
    def true_capacity_bps(self, now: float) -> float:
        """Backlogged-link capacity given the current MCS and mean overhead.

        This is the ground truth the estimator is evaluated against in Fig. 5:
        a full batch of M frames takes ``M·S/R + E[h]`` seconds.
        """
        bitrate = self.mcs.rate_at(now)
        m = self.config.max_batch_frames
        frame_bits = self.config.frame_size_bytes * 8.0
        batch_time = m * frame_bits / bitrate + self.config.mean_overhead
        return m * frame_bits / batch_time

    def capacity_bps(self, now: float) -> float:
        """Capacity exposed to router qdiscs.

        If a rate estimator is attached (the deployment the paper describes),
        its estimate is used; otherwise fall back to the ground truth.
        """
        if self.estimator is not None:
            estimate = self.estimator.estimate_bps(now)
            if estimate > 0:
                return estimate
        return self.true_capacity_bps(now)

    def offered_bits(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0
        # Integrate the true capacity with a step smaller than the MCS period.
        step = 0.05
        total = 0.0
        t = t0
        while t < t1:
            dt = min(step, t1 - t)
            total += self.true_capacity_bps(t) * dt
            t += dt
        return total
