"""Discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Every other
component in the simulator (links, senders, AQMs, monitors) schedules callbacks
on a shared :class:`EventLoop` instance and reads the current simulated time
from :attr:`EventLoop.now`.

Design notes
------------
* Events scheduled for the same timestamp fire in insertion order; this keeps
  runs deterministic, which the test-suite and the benchmark harness rely on.
* Heap entries are plain ``[time, seq, callback, args]`` lists, so heap
  ordering is a C-level list comparison that never goes past ``seq`` (which is
  unique) — no Python-level ``__lt__`` on the hot path.  The engine-dispatch
  rate is tracked by ``benchmarks/bench_engine_hotpath.py``.
* Cancelling an event is O(1): the entry's callback slot is cleared and the
  entry is skipped when popped.  When cancelled entries pile up (per-ACK RTO
  re-arming cancels one event per ACK) the heap is compacted in place, so the
  queue's memory footprint tracks the number of *live* events.
* :meth:`EventLoop.schedule` and :meth:`EventLoop.schedule_at` both construct
  heap entries directly (no delegation — it costs a Python call per event on
  the hottest path in the repo).  Instrumentation that needs to observe every
  event (the golden determinism trace in
  ``tests/test_engine_golden_trace.py``) overrides *both* methods.
* Simulated time is a float in **seconds**.  All other modules follow the same
  convention (rates are in bits per second, sizes in bytes).
"""

from __future__ import annotations

from bisect import insort
from heapq import heapify, heappop, heappush
from itertools import count
from time import perf_counter_ns
from typing import Any, Callable, Optional

from repro.simulator import sched

#: Sentinel stored in an entry's callback slot once the event has fired (or
#: the queue was cleared), distinguishing "already ran" from "cancelled"
#: (``None``) so late ``cancel()`` calls cannot corrupt the live-event count.
_FIRED: Any = object()

#: Compact the heap once more than this many cancelled entries linger *and*
#: they outnumber the live ones (see :meth:`EventLoop._maybe_compact`).
_COMPACT_MIN_CANCELLED = 64


class EventHandle:
    """Opaque handle returned by :meth:`EventLoop.schedule`.

    The only supported operation is :meth:`cancel`; everything else is an
    implementation detail of the engine.
    """

    __slots__ = ("_entry", "_loop")

    def __init__(self, entry: list, loop: "EventLoop"):
        self._entry = entry
        self._loop = loop

    @property
    def time(self) -> float:
        """Absolute simulated time at which the event will fire."""
        return self._entry[0]

    @property
    def cancelled(self) -> bool:
        return self._entry[2] is None

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        entry = self._entry
        callback = entry[2]
        if callback is None:
            return
        entry[2] = None
        if callback is not _FIRED:
            # The entry is still in the heap: account for it so ``pending``
            # stays accurate and compaction can reclaim the slot.
            loop = self._loop
            loop._cancelled += 1
            loop._total_cancels += 1
            loop._maybe_compact()


class DeadlineTimer:
    """A lazily re-armed one-shot timer for deadline-style timeouts (RTO).

    The classic pattern — cancel the pending event and push a new one every
    time the deadline moves — costs a heap push plus a lazy-cancelled entry
    per move, which on an ACK-clocked sender means one per ACK.  This timer
    stores the deadline in a plain attribute instead: moving the deadline
    *later* is free, and the pending heap event simply re-schedules itself
    at the current deadline when it fires early.  Only moving the deadline
    *earlier* than the pending event (a shrinking RTO after an idle period)
    touches the heap.

    ``expire()`` is invoked exactly when simulated time reaches the deadline,
    at the same instant the classic cancel-and-repush pattern would have
    fired.  The early no-op firings mutate no simulation state, so results
    are unchanged; only the raw event sequence differs (see
    ``repro.simulator.fastpath``).
    """

    __slots__ = ("_loop", "_expire", "deadline", "_handle")

    def __init__(self, loop: "EventLoop", expire: Callable[[], None]):
        self._loop = loop
        self._expire = expire
        self.deadline: Optional[float] = None
        self._handle: Optional[EventHandle] = None

    def set(self, deadline: float) -> None:
        """Move the expiry to absolute time ``deadline``."""
        self.deadline = deadline
        handle = self._handle
        if handle is None:
            self._handle = self._loop.schedule_at(deadline, self._fire)
        elif handle._entry[0] > deadline:
            handle.cancel()
            self._handle = self._loop.schedule_at(deadline, self._fire)

    def clear(self) -> None:
        """Disarm without touching the heap (the stale event no-ops)."""
        self.deadline = None

    def _fire(self) -> None:
        self._handle = None
        deadline = self.deadline
        if deadline is None:
            return
        loop = self._loop
        if loop._now < deadline:
            self._handle = loop.schedule_at(deadline, self._fire)
            return
        self.deadline = None
        self._expire()


class EventLoop:
    """A deterministic discrete-event scheduler.

    Example
    -------
    >>> loop = EventLoop()
    >>> fired = []
    >>> _ = loop.schedule(1.5, fired.append, "a")
    >>> _ = loop.schedule(0.5, fired.append, "b")
    >>> loop.run(until=2.0)
    >>> fired
    ['b', 'a']
    >>> loop.now
    2.0
    """

    def __new__(cls, *args: Any, **kwargs: Any) -> "EventLoop":
        # Backend dispatch happens at construction time (mirroring how the
        # batched-ACK knob is read once per Sender): ``EventLoop()`` yields a
        # TimerWheelLoop when REPRO_SCHED=wheel.  Explicit subclasses (and
        # TimerWheelLoop itself) construct exactly what was asked for.
        if cls is EventLoop and sched.wheel_enabled():
            return super().__new__(TimerWheelLoop)
        return super().__new__(cls)

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[list] = []
        self._next_seq = count().__next__
        self._limit = float("inf")
        self._running = False
        self._events_processed = 0
        self._cancelled = 0
        self._total_cancels = 0
        self._compactions = 0
        self._trace_hook: Optional[Callable[[float, Callable, int], None]] = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (useful for profiling tests)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of *live* (non-cancelled) events currently scheduled."""
        return len(self._heap) - self._cancelled

    @property
    def cancelled_pending(self) -> int:
        """Cancelled entries still occupying heap slots (lazy deletion)."""
        return self._cancelled

    @property
    def cancels(self) -> int:
        """Cumulative in-heap cancellations over the loop's whole lifetime.

        Unlike :attr:`cancelled_pending` this never decreases — compaction
        and popping reclaim heap slots but leave this count alone — so the
        telemetry harvest can report total cancel traffic.
        """
        return self._total_cancels

    @property
    def compactions(self) -> int:
        """Times the heap has been compacted (introspection for tests)."""
        return self._compactions

    @property
    def rotations(self) -> int:
        """Timer-wheel rotations (always 0 on the heap backend)."""
        return 0

    @property
    def overflow_spills(self) -> int:
        """Events spilled past the wheel horizon (0 on the heap backend)."""
        return 0

    # ----------------------------------------------------------------- trace
    def set_trace_hook(
            self, hook: Optional[Callable[[float, Callable, int], None]]
    ) -> None:
        """Install (or with ``None`` remove) a per-event dispatch observer.

        While a hook is installed, :meth:`run` executes a separate traced
        loop that calls ``hook(sim_time, callback, wall_ns)`` after every
        dispatched event, where ``wall_ns`` is the callback's wall-clock cost
        from :func:`time.perf_counter_ns`.  The hook observes only — the
        event sequence and all simulation state are identical to an untraced
        run.  With no hook installed (the default) the hot loop is untouched
        and pays nothing; :class:`repro.obs.trace.EventTraceRecorder` is the
        standard consumer.
        """
        self._trace_hook = hook

    # -------------------------------------------------------------- schedule
    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Negative delays are clamped to zero (fire "immediately", i.e. at the
        current time but after any events already queued for it).
        """
        if delay != delay:  # faster spelling of math.isnan(delay)
            raise ValueError("event delay must not be NaN")
        now = self._now
        entry = [now + delay if delay > 0.0 else now,
                 self._next_seq(), callback, args]
        heappush(self._heap, entry)
        return EventHandle(entry, self)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time != time:
            raise ValueError("event time must not be NaN")
        if time < self._now:
            time = self._now
        entry = [time, self._next_seq(), callback, args]
        heappush(self._heap, entry)
        return EventHandle(entry, self)

    def post(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """:meth:`schedule` without constructing an :class:`EventHandle`.

        Identical heap entry (same time, same sequence number), so the event
        order is exactly what :meth:`schedule` would produce — the only
        difference is that the event cannot be cancelled.  Used by the
        fire-and-forget hot paths (packet forwarding, link transmissions),
        where the handle allocation is pure overhead.
        """
        if delay != delay:
            raise ValueError("event delay must not be NaN")
        now = self._now
        heappush(self._heap, [now + delay if delay > 0.0 else now,
                              self._next_seq(), callback, args])

    def post_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """:meth:`schedule_at` without constructing an :class:`EventHandle`."""
        if time != time:
            raise ValueError("event time must not be NaN")
        if time < self._now:
            time = self._now
        heappush(self._heap, [time, self._next_seq(), callback, args])

    # ---------------------------------------------------------- compaction
    def _maybe_compact(self) -> None:
        """Rebuild the heap without cancelled entries once they dominate.

        Lazy deletion alone lets a cancel-heavy workload (one RTO re-arm per
        ACK) grow the heap without bound; compacting when cancelled entries
        outnumber live ones keeps memory O(live events) at amortised O(1)
        cost per cancellation.  Compaction preserves the (time, seq) order of
        the surviving entries, so it is invisible to the event sequence.
        """
        cancelled = self._cancelled
        if (cancelled > _COMPACT_MIN_CANCELLED
                and cancelled * 2 > len(self._heap)):
            self._heap = [entry for entry in self._heap
                          if entry[2] is not None]
            heapify(self._heap)
            self._cancelled = 0
            self._compactions += 1

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue empties, ``until`` is reached, or
        ``max_events`` have been processed.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier; this makes utilisation
        calculations over a fixed horizon straightforward.
        """
        if self._trace_hook is not None:
            return self._run_traced(until, max_events)
        self._running = True
        heap = self._heap
        limit = float("inf") if until is None else until
        # Published so fast-path components that execute work synchronously
        # (instead of via a heap entry) can honour the same cut-off the run
        # loop applies: an event strictly beyond ``until`` never fires.
        self._limit = limit
        processed = 0
        executed = 0
        try:
            while heap:
                entry = heap[0]
                time = entry[0]
                if time > limit:
                    break
                heappop(heap)
                callback = entry[2]
                if callback is None:
                    self._cancelled -= 1
                    continue
                entry[2] = _FIRED
                if time > self._now:
                    self._now = time
                callback(*entry[3])
                if heap is not self._heap:
                    # A cancel inside the callback compacted the heap (the
                    # list was replaced); re-bind before the next pop.
                    heap = self._heap
                executed += 1
                if max_events is not None:
                    processed += 1
                    if processed >= max_events:
                        break
        finally:
            self._running = False
            self._events_processed += executed
        if until is not None and until > self._now:
            self._now = until

    def _run_traced(self, until: Optional[float] = None,
                    max_events: Optional[int] = None) -> None:
        """:meth:`run` with the trace hook active.

        A verbatim copy of the :meth:`run` loop plus the per-event hook call
        and wall-clock timing.  Duplicating the loop (instead of branching on
        the hook inside it) keeps the untraced hot path — the one every
        benchmark and sweep runs — completely free of tracing overhead.
        """
        self._running = True
        heap = self._heap
        limit = float("inf") if until is None else until
        self._limit = limit
        hook = self._trace_hook
        processed = 0
        executed = 0
        try:
            while heap:
                entry = heap[0]
                time = entry[0]
                if time > limit:
                    break
                heappop(heap)
                callback = entry[2]
                if callback is None:
                    self._cancelled -= 1
                    continue
                entry[2] = _FIRED
                if time > self._now:
                    self._now = time
                t0 = perf_counter_ns()
                callback(*entry[3])
                hook(time, callback, perf_counter_ns() - t0)
                if heap is not self._heap:
                    heap = self._heap
                executed += 1
                if max_events is not None:
                    processed += 1
                    if processed >= max_events:
                        break
        finally:
            self._running = False
            self._events_processed += executed
        if until is not None and until > self._now:
            self._now = until

    def step(self) -> bool:
        """Execute a single (non-cancelled) event.  Returns ``False`` when the
        queue is empty."""
        heap = self._heap
        while heap:
            entry = heappop(heap)
            callback = entry[2]
            if callback is None:
                self._cancelled -= 1
                continue
            entry[2] = _FIRED
            time = entry[0]
            if time > self._now:
                self._now = time
            callback(*entry[3])
            self._events_processed += 1
            return True
        return False

    def clear(self) -> None:
        """Drop all pending events (the clock is left untouched)."""
        # Mark surviving entries as retired so a late cancel() on one of
        # their handles cannot skew the cancelled-entry accounting.
        for entry in self._heap:
            if entry[2] is not None:
                entry[2] = _FIRED
        self._heap.clear()
        self._cancelled = 0


class TimerWheelLoop(EventLoop):
    """Calendar-queue (timer-wheel) scheduler backend (``REPRO_SCHED=wheel``).

    Near-future events land in fixed-width time buckets — one ``list.append``
    per schedule instead of an O(log n) heap sift — and each bucket is sorted
    once when the wheel's cursor reaches it, so the dispatch order is exactly
    the heap backend's (time, seq) order.  Events beyond the wheel horizon
    spill into a heap-ordered overflow (reusing ``_heap``, so the lazy-cancel
    accounting and the compaction introspection keep their meaning) and are
    drained into buckets when the wheel rotates into their range.

    The slot width is a power of two (2^-9 s ≈ 1.95 ms), which makes
    ``time * inv_width`` an *exact* float scaling: the slot index is an exact
    floor and the time-based horizon comparisons agree exactly with the
    slot-based ones, so bucket placement can never disagree with dispatch
    order.  Events whose slot the cursor has already entered (the clock sits
    inside the slot being dispatched) are clamped into the cursor's bucket,
    where the per-bucket sort restores (time, seq) order; such an event's
    time is always >= ``now``, so it still fires in global order.
    """

    #: Bucket width in seconds — a power of two so slot arithmetic is exact.
    SLOT_WIDTH = 2.0 ** -9
    #: Number of wheel slots; horizon = SLOT_WIDTH * NUM_SLOTS = 8 s.
    NUM_SLOTS = 4096

    def __init__(self) -> None:
        super().__init__()
        n = self.NUM_SLOTS
        self._width = self.SLOT_WIDTH
        self._inv_width = 1.0 / self.SLOT_WIDTH
        self._mask = n - 1
        self._buckets: list[list] = [[] for _ in range(n)]
        self._count = 0            # entries currently held in buckets
        self._cursor = 0           # absolute slot the wheel is positioned at
        self._horizon = n          # absolute slot where overflow begins
        self._horizon_time = n * self.SLOT_WIDTH
        self._active: Optional[list] = None  # bucket mid-dispatch, if any
        self._compact_floor = 0
        self._rotations = 0
        self._overflow_spills = 0

    # ------------------------------------------------------------ properties
    @property
    def pending(self) -> int:
        return self._count + len(self._heap) - self._cancelled

    @property
    def rotations(self) -> int:
        """Times the wheel advanced its horizon by a full rotation."""
        return self._rotations

    @property
    def overflow_spills(self) -> int:
        """Events scheduled beyond the horizon (pushed to the overflow)."""
        return self._overflow_spills

    # -------------------------------------------------------------- schedule
    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        if delay != delay:
            raise ValueError("event delay must not be NaN")
        now = self._now
        time = now + delay if delay > 0.0 else now
        entry = [time, self._next_seq(), callback, args]
        if time < self._horizon_time:
            slot = int(time * self._inv_width)
            cursor = self._cursor
            if slot > cursor:
                self._buckets[slot & self._mask].append(entry)
            else:
                bucket = self._buckets[cursor & self._mask]
                if bucket is self._active:
                    insort(bucket, entry)
                else:
                    bucket.append(entry)
            self._count += 1
        else:
            heappush(self._heap, entry)
            self._overflow_spills += 1
        return EventHandle(entry, self)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        if time != time:
            raise ValueError("event time must not be NaN")
        if time < self._now:
            time = self._now
        entry = [time, self._next_seq(), callback, args]
        if time < self._horizon_time:
            slot = int(time * self._inv_width)
            cursor = self._cursor
            if slot > cursor:
                self._buckets[slot & self._mask].append(entry)
            else:
                bucket = self._buckets[cursor & self._mask]
                if bucket is self._active:
                    insort(bucket, entry)
                else:
                    bucket.append(entry)
            self._count += 1
        else:
            heappush(self._heap, entry)
            self._overflow_spills += 1
        return EventHandle(entry, self)

    def post(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        if delay != delay:
            raise ValueError("event delay must not be NaN")
        now = self._now
        time = now + delay if delay > 0.0 else now
        entry = [time, self._next_seq(), callback, args]
        if time < self._horizon_time:
            slot = int(time * self._inv_width)
            cursor = self._cursor
            if slot > cursor:
                self._buckets[slot & self._mask].append(entry)
            else:
                bucket = self._buckets[cursor & self._mask]
                if bucket is self._active:
                    insort(bucket, entry)
                else:
                    bucket.append(entry)
            self._count += 1
        else:
            heappush(self._heap, entry)
            self._overflow_spills += 1

    def post_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        if time != time:
            raise ValueError("event time must not be NaN")
        if time < self._now:
            time = self._now
        entry = [time, self._next_seq(), callback, args]
        if time < self._horizon_time:
            slot = int(time * self._inv_width)
            cursor = self._cursor
            if slot > cursor:
                self._buckets[slot & self._mask].append(entry)
            else:
                bucket = self._buckets[cursor & self._mask]
                if bucket is self._active:
                    insort(bucket, entry)
                else:
                    bucket.append(entry)
            self._count += 1
        else:
            heappush(self._heap, entry)
            self._overflow_spills += 1

    # ---------------------------------------------------------- compaction
    def _maybe_compact(self) -> None:
        """Sweep cancelled entries out of the overflow heap only.

        Cancelled entries inside the wheel need no sweep: the cursor passes
        every bucket within one horizon (8 s of simulated time), and the
        dispatch loop drops dead entries as it trims each bucket, so their
        memory is bounded and short-lived.  Only the overflow heap — where a
        cancelled far-future timer could otherwise linger indefinitely — is
        filtered.  Sweeping the 4096 buckets here would turn cancel-heavy
        workloads (per-ACK RTO re-arming) into repeated O(NUM_SLOTS) scans.

        ``_compact_floor`` remembers the bucket-resident cancelled entries a
        sweep cannot touch, so they do not re-trigger a sweep on every
        subsequent cancel; it decays as the dispatch loop reclaims them.
        """
        cancelled = self._cancelled
        if cancelled < self._compact_floor:
            self._compact_floor = cancelled
        if (cancelled > self._compact_floor + _COMPACT_MIN_CANCELLED
                and cancelled * 2 > len(self._heap) + self._count):
            heap = [entry for entry in self._heap if entry[2] is not None]
            removed = len(self._heap) - len(heap)
            heapify(heap)
            self._heap = heap
            self._cancelled = cancelled - removed
            self._compact_floor = self._cancelled
            self._compactions += 1

    # ----------------------------------------------------------------- drain
    def _drain(self) -> None:
        """Move overflow entries that are now inside the horizon into their
        buckets (cancelled ones are dropped on the way)."""
        heap = self._heap
        if not heap:
            return
        horizon_time = self._horizon_time
        if heap[0][0] >= horizon_time:
            return
        buckets = self._buckets
        mask = self._mask
        inv_width = self._inv_width
        moved = 0
        while heap and heap[0][0] < horizon_time:
            entry = heappop(heap)
            if entry[2] is None:
                self._cancelled -= 1
                continue
            buckets[int(entry[0] * inv_width) & mask].append(entry)
            moved += 1
        self._count += moved

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        if self._trace_hook is not None:
            return self._run_traced(until, max_events)
        self._running = True
        limit = float("inf") if until is None else until
        self._limit = limit
        mask = self._mask
        n_slots = mask + 1
        width = self._width
        inv_width = self._inv_width
        buckets = self._buckets
        cursor = self._cursor
        horizon = self._horizon
        # Slots beyond this cannot hold an event at time <= limit, so the
        # cursor never advances past it (bounds empty-slot scanning and keeps
        # later schedules from clustering into one far-ahead bucket).
        now = self._now
        limit_slot = (1 << 62) if limit > 1e300 else int(limit * inv_width)
        remaining = -1 if max_events is None else (max_events if max_events > 0 else 1)
        executed = 0
        try:
            while True:
                if self._count == 0:
                    heap = self._heap
                    while heap and heap[0][2] is None:
                        heappop(heap)
                        self._cancelled -= 1
                    if not heap:
                        break
                    entry = heap[0]
                    t0 = entry[0]
                    if t0 > limit:
                        break
                    if t0 > 1e300:
                        # Astronomically far (or infinite) deadlines cannot
                        # be indexed as wheel slots; with the buckets empty,
                        # overflow pop order is the global (time, seq) order,
                        # so dispatch straight off the heap.
                        heappop(heap)
                        callback = entry[2]
                        entry[2] = _FIRED
                        if t0 > now:
                            now = t0
                            self._now = t0
                        callback(*entry[3])
                        executed += 1
                        if remaining > 0:
                            remaining -= 1
                            if remaining == 0:
                                break
                        continue
                    # Fast-forward: jump the wheel to the overflow head and
                    # refill the buckets from the overflow.
                    cursor = int(t0 * inv_width)
                    self._cursor = cursor
                    horizon = cursor + n_slots
                    self._horizon = horizon
                    self._horizon_time = horizon * width
                    self._rotations += 1
                    self._drain()
                    continue
                bucket = buckets[cursor & mask]
                if bucket:
                    # Publish the cursor before callbacks run: schedule()
                    # clamps already-entered slots against it.  Empty-slot
                    # scanning skips this write (nothing can observe it).
                    self._cursor = cursor
                    if len(bucket) > 1:
                        bucket.sort()
                    self._active = bucket
                    pos = 0
                    n_entries = len(bucket)
                    broke = False
                    while pos < n_entries:
                        entry = bucket[pos]
                        time = entry[0]
                        if time > limit:
                            broke = True
                            break
                        pos += 1
                        callback = entry[2]
                        if callback is None:
                            self._cancelled -= 1
                            continue
                        entry[2] = _FIRED
                        if time > now:
                            now = time
                            self._now = time
                        callback(*entry[3])
                        # A callback may insort into this bucket (same-slot
                        # schedule) or clear() it; re-read the length only
                        # after callbacks — nothing else can change it.
                        n_entries = len(bucket)
                        executed += 1
                        if remaining > 0:
                            remaining -= 1
                            if remaining == 0:
                                broke = True
                                break
                    self._active = None
                    if pos:
                        del bucket[:pos]
                        self._count -= pos
                        if self._count < 0:
                            # clear() ran inside a callback; every queue is
                            # already empty, so just resync the count.
                            self._count = 0
                    if broke:
                        break
                cursor += 1
                if cursor > limit_slot:
                    break
                if cursor == horizon:
                    self._rotations += 1
                    horizon = cursor + n_slots
                    self._horizon = horizon
                    self._horizon_time = horizon * width
                    self._drain()
        finally:
            self._cursor = cursor
            self._running = False
            self._events_processed += executed
        if until is not None and until > self._now:
            self._now = until

    def _run_traced(self, until: Optional[float] = None,
                    max_events: Optional[int] = None) -> None:
        """:meth:`run` with the trace hook active (verbatim copy plus the
        per-event hook call, exactly like the heap backend's traced loop)."""
        self._running = True
        limit = float("inf") if until is None else until
        self._limit = limit
        hook = self._trace_hook
        mask = self._mask
        n_slots = mask + 1
        width = self._width
        inv_width = self._inv_width
        buckets = self._buckets
        cursor = self._cursor
        horizon = self._horizon
        now = self._now
        limit_slot = (1 << 62) if limit > 1e300 else int(limit * inv_width)
        remaining = -1 if max_events is None else (max_events if max_events > 0 else 1)
        executed = 0
        try:
            while True:
                if self._count == 0:
                    heap = self._heap
                    while heap and heap[0][2] is None:
                        heappop(heap)
                        self._cancelled -= 1
                    if not heap:
                        break
                    entry = heap[0]
                    t0 = entry[0]
                    if t0 > limit:
                        break
                    if t0 > 1e300:
                        heappop(heap)
                        callback = entry[2]
                        entry[2] = _FIRED
                        if t0 > now:
                            now = t0
                            self._now = t0
                        w0 = perf_counter_ns()
                        callback(*entry[3])
                        hook(t0, callback, perf_counter_ns() - w0)
                        executed += 1
                        if remaining > 0:
                            remaining -= 1
                            if remaining == 0:
                                break
                        continue
                    cursor = int(t0 * inv_width)
                    self._cursor = cursor
                    horizon = cursor + n_slots
                    self._horizon = horizon
                    self._horizon_time = horizon * width
                    self._rotations += 1
                    self._drain()
                    continue
                bucket = buckets[cursor & mask]
                if bucket:
                    self._cursor = cursor
                    if len(bucket) > 1:
                        bucket.sort()
                    self._active = bucket
                    pos = 0
                    n_entries = len(bucket)
                    broke = False
                    while pos < n_entries:
                        entry = bucket[pos]
                        time = entry[0]
                        if time > limit:
                            broke = True
                            break
                        pos += 1
                        callback = entry[2]
                        if callback is None:
                            self._cancelled -= 1
                            continue
                        entry[2] = _FIRED
                        if time > now:
                            now = time
                            self._now = time
                        w0 = perf_counter_ns()
                        callback(*entry[3])
                        hook(time, callback, perf_counter_ns() - w0)
                        n_entries = len(bucket)
                        executed += 1
                        if remaining > 0:
                            remaining -= 1
                            if remaining == 0:
                                broke = True
                                break
                    self._active = None
                    if pos:
                        del bucket[:pos]
                        self._count -= pos
                        if self._count < 0:
                            self._count = 0
                    if broke:
                        break
                cursor += 1
                if cursor > limit_slot:
                    break
                if cursor == horizon:
                    self._rotations += 1
                    horizon = cursor + n_slots
                    self._horizon = horizon
                    self._horizon_time = horizon * width
                    self._drain()
        finally:
            self._cursor = cursor
            self._running = False
            self._events_processed += executed
        if until is not None and until > self._now:
            self._now = until

    def step(self) -> bool:
        """Execute a single (non-cancelled) event via the wheel run loop."""
        if self._count + len(self._heap) - self._cancelled == 0:
            return False
        before = self._events_processed
        self.run(max_events=1)
        return self._events_processed > before

    def clear(self) -> None:
        """Drop all pending events (the clock is left untouched)."""
        for bucket in self._buckets:
            if bucket:
                for entry in bucket:
                    if entry[2] is not None:
                        entry[2] = _FIRED
                bucket.clear()
        for entry in self._heap:
            if entry[2] is not None:
                entry[2] = _FIRED
        self._heap.clear()
        self._count = 0
        self._cancelled = 0
