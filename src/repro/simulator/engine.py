"""Discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Every other
component in the simulator (links, senders, AQMs, monitors) schedules callbacks
on a shared :class:`EventLoop` instance and reads the current simulated time
from :attr:`EventLoop.now`.

Design notes
------------
* Events scheduled for the same timestamp fire in insertion order; this keeps
  runs deterministic, which the test-suite and the benchmark harness rely on.
* Cancelling an event is O(1): the handle is flagged and skipped when popped.
* Simulated time is a float in **seconds**.  All other modules follow the same
  convention (rates are in bits per second, sizes in bytes).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class _Event:
    """Internal heap entry.  Ordered by (time, sequence number)."""

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Opaque handle returned by :meth:`EventLoop.schedule`.

    The only supported operation is :meth:`cancel`; everything else is an
    implementation detail of the engine.
    """

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    @property
    def time(self) -> float:
        """Absolute simulated time at which the event will fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self._event.cancelled = True


class EventLoop:
    """A deterministic discrete-event scheduler.

    Example
    -------
    >>> loop = EventLoop()
    >>> fired = []
    >>> _ = loop.schedule(1.5, fired.append, "a")
    >>> _ = loop.schedule(0.5, fired.append, "b")
    >>> loop.run(until=2.0)
    >>> fired
    ['b', 'a']
    >>> loop.now
    2.0
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[_Event] = []
        self._counter = itertools.count()
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (useful for profiling tests)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events currently scheduled (including cancelled ones)."""
        return len(self._heap)

    # -------------------------------------------------------------- schedule
    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Negative delays are clamped to zero (fire "immediately", i.e. at the
        current time but after any events already queued for it).
        """
        if math.isnan(delay):
            raise ValueError("event delay must not be NaN")
        return self.schedule_at(self._now + max(delay, 0.0), callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if math.isnan(time):
            raise ValueError("event time must not be NaN")
        if time < self._now:
            time = self._now
        event = _Event(time=time, seq=next(self._counter), callback=callback, args=args)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue empties, ``until`` is reached, or
        ``max_events`` have been processed.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier; this makes utilisation
        calculations over a fixed horizon straightforward.
        """
        self._running = True
        processed = 0
        try:
            while self._heap:
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = max(self._now, event.time)
                event.callback(*event.args)
                self._events_processed += 1
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and until > self._now:
            self._now = until

    def step(self) -> bool:
        """Execute a single (non-cancelled) event.  Returns ``False`` when the
        queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = max(self._now, event.time)
            event.callback(*event.args)
            self._events_processed += 1
            return True
        return False

    def clear(self) -> None:
        """Drop all pending events (the clock is left untouched)."""
        self._heap.clear()
