"""Queueing-discipline interface and the basic FIFO implementation.

A :class:`Qdisc` sits between a router and its outgoing link.  The link calls
:meth:`Qdisc.enqueue` when a packet arrives and :meth:`Qdisc.dequeue` whenever
it has a transmission opportunity.  AQMs (CoDel, PIE, RED), ABC and the
explicit-feedback baselines are all implemented as qdiscs, which mirrors the
paper's Linux implementation of ABC as a qdisc kernel module (§6.1).

Qdiscs that need to know the link's capacity (ABC, XCP, RCP, VCP) receive the
owning link through :meth:`Qdisc.attach`; they query
``link.capacity_bps(now)`` when computing feedback.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.simulator.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.simulator.link import Link


class Qdisc:
    """Base class for queueing disciplines.

    Subclasses must implement :meth:`enqueue` and :meth:`dequeue` and keep
    :attr:`backlog_bytes` / :attr:`backlog_packets` consistent; the helpers
    :meth:`_push` and :meth:`_pop` do the bookkeeping for simple FIFO-organised
    qdiscs.
    """

    def __init__(self, buffer_packets: int = 250):
        if buffer_packets <= 0:
            raise ValueError("buffer_packets must be positive")
        self.buffer_packets = buffer_packets
        self.backlog_bytes = 0
        self.backlog_packets = 0
        self.dropped_packets = 0
        self.marked_packets = 0
        self.link: Optional["Link"] = None
        self._queue: deque[Packet] = deque()

    # ------------------------------------------------------------ wiring
    def attach(self, link: "Link") -> None:
        """Called by the owning link once, before the simulation starts."""
        self.link = link

    @property
    def now(self) -> float:
        if self.link is None:
            return 0.0
        return self.link.env.now

    # ------------------------------------------------------------ interface
    def enqueue(self, packet: Packet, now: float) -> bool:
        """Admit ``packet`` at time ``now``.  Returns False if it was dropped."""
        raise NotImplementedError

    def dequeue(self, now: float) -> Optional[Packet]:
        """Return the next packet to transmit, or None if the queue is empty."""
        raise NotImplementedError

    # ------------------------------------------------------------ helpers
    def _push(self, packet: Packet, now: float) -> None:
        packet.enqueue_time = now
        self._queue.append(packet)
        self.backlog_bytes += packet.size
        self.backlog_packets += 1

    def _pop(self, now: float) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        packet.dequeue_time = now
        waited = now - packet.enqueue_time
        if waited > 0.0:
            packet.total_queuing_delay += waited
        self.backlog_bytes -= packet.size
        self.backlog_packets -= 1
        return packet

    def peek(self) -> Optional[Packet]:
        """Packet at the head of the queue (None when empty)."""
        return self._queue[0] if self._queue else None

    def __len__(self) -> int:
        return self.backlog_packets

    @property
    def is_empty(self) -> bool:
        return self.backlog_packets == 0

    def sojourn_time(self, now: float) -> float:
        """Time the head-of-line packet has spent queued (0 when empty)."""
        head = self.peek()
        if head is None:
            return 0.0
        return max(now - head.enqueue_time, 0.0)

    def queuing_delay(self, now: float, capacity_bps: float) -> float:
        """Standing-queue delay estimate ``q(t) / µ(t)`` used by Eq. (1)."""
        if capacity_bps <= 0:
            return 0.0
        return self.backlog_bytes * 8.0 / capacity_bps


class FifoQdisc(Qdisc):
    """Plain drop-tail FIFO queue (the paper's default non-AQM buffer)."""

    def enqueue(self, packet: Packet, now: float) -> bool:
        if self.backlog_packets >= self.buffer_packets:
            self.dropped_packets += 1
            return False
        self._push(packet, now)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        return self._pop(now)
