"""Transport endpoints: the generic sender, the receiver and plain delay hops.

The :class:`Sender` implements the mechanics every scheme shares — window
gating, ACK clocking, optional pacing, RTT sampling, loss detection (gap-based,
three-packet reordering threshold), retransmissions and RTO — and delegates all
policy to a :class:`~repro.cc.base.CongestionControl` object.  This mirrors the
paper's implementation strategy of pluggable TCP congestion control modules
(§6.1) and lets ABC, Cubic, BBR, XCP, ... share one code path.

The :class:`Receiver` acknowledges every data packet and echoes congestion
feedback: the classic ECN signal as the ECE flag and the ABC accelerate/brake
bit (the re-purposed NS bit of §5.1.2), plus any scheme-specific header fields
(XCP/RCP/VCP) carried in ``packet.meta``.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional

from repro.cc.base import CongestionControl
from repro.simulator import fastpath
from repro.simulator.engine import DeadlineTimer, EventHandle, EventLoop
from repro.simulator.estimators import RTTEstimator
from repro.simulator.monitor import FlowStats
from repro.simulator.packet import (ACK_SIZE, MTU, Ack, AckFeedback, ECN,
                                    Packet, _packet_ids, packet_pool)
from repro.simulator.traffic import (BackloggedSource, FixedSizeSource,
                                     TrafficSource)

#: A packet is declared lost when another packet *sent this much later* has
#: already been acknowledged (RACK-style time-based loss detection).  Using
#: transmission time rather than sequence numbers keeps retransmissions (which
#: reuse their original sequence number) from being re-flagged forever.
REORDER_WINDOW = 0.002

#: Pacing-based senders poll at this interval when their rate is still zero.
IDLE_PACING_POLL = 0.01


def _forward(hop, packet) -> None:
    """Hand ``packet`` to the next hop, whichever spelling it supports."""
    if hasattr(hop, "send"):
        hop.send(packet)
    else:
        hop.receive(packet)


@dataclass(slots=True)
class _SentInfo:
    seq: int
    size: int
    sent_time: float
    is_retransmission: bool


class DelayHop:
    """A pure propagation-delay segment (no queueing, no capacity limit)."""

    def __init__(self, env: EventLoop, delay: float, dst=None, name: str = "delay"):
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.env = env
        self.delay = delay
        self.dst = dst
        self.name = name

    def connect(self, dst) -> None:
        self.dst = dst

    def receive(self, packet) -> None:
        if self.dst is None:
            return
        self.env.schedule(self.delay, self.dst.receive, packet)

    # Links use .send(); keep both spellings so hops are interchangeable.
    send = receive


class Sender:
    """A window- and/or rate-based transport sender.

    Parameters
    ----------
    env:
        Shared event loop.
    flow_id:
        Unique flow identifier stamped on every packet.
    cc:
        The congestion-control policy object.
    egress:
        First hop of the forward path (anything with ``receive``/``send``).
    source:
        Traffic source; defaults to a backlogged flow.
    start_time:
        Simulated time at which the flow starts.
    mss:
        Maximum segment size in bytes.
    """

    def __init__(self, env: EventLoop, flow_id: int, cc: CongestionControl,
                 egress=None, source: Optional[TrafficSource] = None,
                 start_time: float = 0.0, mss: int = MTU,
                 name: Optional[str] = None):
        self.env = env
        self.flow_id = flow_id
        self.cc = cc
        self.egress = egress
        self.source = source if source is not None else BackloggedSource()
        self.start_time = start_time
        self.mss = mss
        self.name = name or f"flow-{flow_id}"

        self.rtt = RTTEstimator()
        self.next_seq = 0
        self.outstanding: Dict[int, _SentInfo] = {}
        self.retransmit_queue: deque[_SentInfo] = deque()
        self.highest_acked = -1
        self._recovery_end_seq = -1
        self._latest_acked_sent_time = -1.0

        self.bytes_sent = 0
        self.bytes_acked = 0
        self.packets_sent = 0
        self.retransmissions = 0
        self.loss_events = 0
        self.timeouts = 0
        self.acks_received = 0
        self.rto_rearms = 0
        self.completion_time: Optional[float] = None

        self._started = False
        self._rto_handle: Optional[EventHandle] = None
        self._wake_handle: Optional[EventHandle] = None
        self._pacing_active = False
        self._rto_backoff = 1.0

        # Batched ACK fast path (REPRO_BATCH_ACKS, see repro.simulator.
        # fastpath).  Instance attributes shadow the class methods so the
        # classic path pays nothing when the knob is off; pacing-based
        # schemes always keep the classic path (their per-tick pacing loop
        # is untouched by batching).
        self._fast = fastpath.enabled() and not cc.needs_pacing
        if self._fast:
            cc_type = type(cc)
            # A CC with the base no-op on_packet_sent cannot change its
            # window during a send burst, so the window is hoisted out of
            # the loop.  Every ACK-clocked scheme in the repo qualifies.
            self._static_window = (
                cc_type.on_packet_sent is CongestionControl.on_packet_sent)
            # CCs with the base packet_meta get a fresh empty dict stamped
            # inline (routers may write into packet.meta — XCP feedback —
            # so the dict must never be shared between packets).
            self._static_meta = (
                cc_type.packet_meta is CongestionControl.packet_meta)
            source_type = type(self.source)
            if source_type is BackloggedSource:
                self._source_kind = 0
            elif source_type is FixedSizeSource:
                self._source_kind = 1
            else:
                self._source_kind = 2
            self._fwd: Optional[tuple] = None
            self._rto_timer = DeadlineTimer(env, self._on_rto_expired)
            self.receive = self._receive_fast
            self._try_send = self._try_send_fast
            self._arm_rto = self._arm_rto_fast
        elif fastpath.enabled():
            # Pacing-based schemes (BBR, PCC-Vivace, RCP) get their own fused
            # send loop: the per-tick call chain (_pace_tick -> _can_send_new
            # _data -> _send_new_packet -> _transmit -> _forward) collapses
            # into straight-line code with identical arithmetic — at most one
            # packet per tick, so every packet keeps its classic sent_time —
            # and the tick chain *halts* once the flow completes instead of
            # polling forever.  They also keep the lazy RTO timer (per-ACK
            # re-arming becomes two float writes instead of a heap cancel +
            # push).  Both are result-identical: the timer fires the
            # idempotent classic ``_on_rto``, and a completed paced sender's
            # ticks are pure no-ops (see _pace_tick_fused).
            cc_type = type(cc)
            self._static_window = (
                cc_type.on_packet_sent is CongestionControl.on_packet_sent)
            self._static_meta = (
                cc_type.packet_meta is CongestionControl.packet_meta)
            source_type = type(self.source)
            if source_type is BackloggedSource:
                self._source_kind = 0
            elif source_type is FixedSizeSource:
                self._source_kind = 1
            else:
                self._source_kind = 2
            self._fwd = None
            self.pace_ticks = 0
            self.pace_halts = 0
            self._rto_timer = DeadlineTimer(env, self._on_rto)
            self._arm_rto = self._arm_rto_fast
            # Exotic sources keep the thin classic tick (their data protocol
            # cannot be collapsed into integer arithmetic).
            self._pace_tick = (self._pace_tick_fast if self._source_kind == 2
                               else self._pace_tick_fused)
            self.receive = self._receive_paced_fast

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Register the flow start with the event loop."""
        self.env.schedule_at(self.start_time, self._begin)

    def _begin(self) -> None:
        if self._started:
            return
        self._started = True
        if self.cc.needs_pacing:
            self._start_pacing()
        self._try_send()

    def connect(self, egress) -> None:
        self.egress = egress
        self._fwd = None  # re-resolve the fused forward hop (fast paths)

    # ------------------------------------------------------------ properties
    @property
    def in_flight(self) -> int:
        return len(self.outstanding)

    def _cwnd_packets(self) -> float:
        return max(self.cc.cwnd(), self.cc.min_cwnd())

    # ------------------------------------------------------------ sending
    def _can_send_new_data(self, now: float) -> bool:
        if self.in_flight + 1 > self._cwnd_packets():
            return False
        return self.source.bytes_available(now) >= 1.0

    def _next_payload_size(self, now: float) -> int:
        available = self.source.bytes_available(now)
        if math.isinf(available):
            return self.mss
        return int(min(self.mss, max(available, 0)))

    def _try_send(self) -> None:
        """Send as much as the window, the pacer and the application allow."""
        if not self._started:
            return
        now = self.env.now
        if self.cc.needs_pacing:
            # The pacing loop is the only thing allowed to emit new packets,
            # but retransmissions are sent immediately.
            self._flush_retransmissions(now)
            return
        sent_any = True
        while sent_any:
            sent_any = False
            if self.retransmit_queue and self.in_flight + 1 <= self._cwnd_packets():
                self._send_retransmission(now)
                sent_any = True
                continue
            if self._can_send_new_data(now):
                self._send_new_packet(now)
                sent_any = True
        self._maybe_schedule_data_wakeup(now)
        self._check_completion(now)

    def _flush_retransmissions(self, now: float) -> None:
        while self.retransmit_queue and self.in_flight + 1 <= self._cwnd_packets():
            self._send_retransmission(now)

    def _maybe_schedule_data_wakeup(self, now: float) -> None:
        """Application-limited flows: wake up when more data arrives."""
        if self.source.bytes_available(now) >= 1.0:
            return
        next_time = self.source.next_data_time(now)
        if next_time is None:
            return
        if self._wake_handle is not None and not self._wake_handle.cancelled:
            return
        delay = max(next_time - now, 1e-6)
        self._wake_handle = self.env.schedule(delay, self._data_wakeup)

    def _data_wakeup(self) -> None:
        self._wake_handle = None
        self._try_send()

    def _send_new_packet(self, now: float) -> None:
        size = self._next_payload_size(now)
        if size <= 0:
            return
        seq = self.next_seq
        self.next_seq += 1
        self.source.consume(size, now)
        self._transmit(seq, size, now, is_retransmission=False)

    def _send_retransmission(self, now: float) -> None:
        info = self.retransmit_queue.popleft()
        self.retransmissions += 1
        self._transmit(info.seq, info.size, now, is_retransmission=True)

    def _transmit(self, seq: int, size: int, now: float, is_retransmission: bool) -> None:
        abc_capable = self.cc.uses_abc
        packet = packet_pool.acquire_packet(
            flow_id=self.flow_id,
            seq=seq,
            size=size,
            ecn=ECN.ACCEL if abc_capable else ECN.NOT_ECT,
            sent_time=now,
            is_retransmission=is_retransmission,
            abc_capable=abc_capable,
            meta=self.cc.packet_meta(now),
        )
        self.outstanding[seq] = _SentInfo(seq=seq, size=size, sent_time=now,
                                          is_retransmission=is_retransmission)
        self.bytes_sent += size
        self.packets_sent += 1
        self.cc.on_packet_sent(now, seq, size, self.in_flight)
        if self.egress is not None:
            _forward(self.egress, packet)
        self._arm_rto(now)

    # ------------------------------------------------------------ pacing
    def _start_pacing(self) -> None:
        if self._pacing_active:
            return
        self._pacing_active = True
        self.env.schedule(0.0, self._pace_tick)

    def _pace_tick(self) -> None:
        now = self.env.now
        rate = self.cc.pacing_rate() or 0.0
        sent = False
        if rate > 0:
            if self.retransmit_queue and self.in_flight + 1 <= self._cwnd_packets():
                self._send_retransmission(now)
                sent = True
            elif self._can_send_new_data(now):
                self._send_new_packet(now)
                sent = True
        if rate > 0:
            interval = self.mss * 8.0 / rate
        else:
            interval = IDLE_PACING_POLL
        if not sent and rate > 0:
            # Window- or application-limited: poll again shortly so we react
            # quickly once the constraint clears.
            interval = min(interval, IDLE_PACING_POLL)
        self.env.schedule(interval, self._pace_tick)
        self._check_completion(now)

    # ------------------------------------------------------------ receiving
    def receive(self, packet) -> None:
        """Entry point for packets arriving from the reverse path (ACKs)."""
        if isinstance(packet, Ack):
            self._handle_ack(packet)

    def _handle_ack(self, ack: Ack) -> None:
        now = self.env.now
        self.acks_received += 1
        info = self.outstanding.pop(ack.seq, None)
        if info is None:
            # ACK for a packet we already retired (spurious retransmission or
            # a duplicate) — nothing to update.
            packet_pool.release_ack(ack)
            return
        rtt_sample = None
        if not info.is_retransmission:
            rtt_sample = now - info.sent_time
            self.rtt.update(rtt_sample)
            # Fresh feedback from the network: clear any RTO backoff.
            self._rto_backoff = 1.0
        self.bytes_acked += info.size
        if ack.seq > self.highest_acked:
            self.highest_acked = ack.seq
        if info.sent_time > self._latest_acked_sent_time:
            self._latest_acked_sent_time = info.sent_time

        self._detect_losses(now)

        feedback = AckFeedback(
            now=now,
            rtt=rtt_sample,
            bytes_acked=info.size,
            accel=ack.accel,
            ece=ack.ece,
            packets_in_flight=self.in_flight,
            is_retransmission=info.is_retransmission,
            sent_time=info.sent_time,
            meta=ack.meta,
        )
        packet_pool.release_ack(ack)
        self.cc.on_ack(feedback)

        if self.outstanding:
            self._arm_rto(now)
        elif self._rto_handle is not None:
            self._rto_handle.cancel()
            self._rto_handle = None
        self._try_send()

    def _detect_losses(self, now: float) -> None:
        """RACK-style loss detection: an outstanding packet is lost when some
        packet transmitted ``REORDER_WINDOW`` later has already been ACKed."""
        outstanding = self.outstanding
        if not outstanding:
            return
        threshold_time = self._latest_acked_sent_time - REORDER_WINDOW
        # ``outstanding`` is insertion-ordered by transmission time (packets
        # are only ever (re)inserted at their send time), so its first entry
        # carries the minimum sent_time: when even that packet is newer than
        # the threshold nothing can be lost, and the common no-loss ACK skips
        # the full scan — O(1) instead of O(window) per ACK.
        first_info = next(iter(outstanding.values()))
        if first_info.sent_time >= threshold_time:
            return
        lost = [seq for seq, info in outstanding.items()
                if info.sent_time < threshold_time]
        if not lost:
            return
        newest_lost = max(lost)
        for seq in lost:
            info = self.outstanding.pop(seq)
            self.retransmit_queue.append(info)
        if newest_lost > self._recovery_end_seq:
            self.loss_events += 1
            self._recovery_end_seq = self.next_seq
            self.cc.on_loss(now)

    # ------------------------------------------------------------ timers
    def _arm_rto(self, now: float) -> None:
        self.rto_rearms += 1
        if self._rto_handle is not None:
            self._rto_handle.cancel()
        self._rto_handle = self.env.schedule(self.rtt.rto * self._rto_backoff,
                                             self._on_rto)

    def _on_rto(self) -> None:
        now = self.env.now
        self._rto_handle = None
        if not self.outstanding:
            return
        self.timeouts += 1
        self._recovery_end_seq = self.next_seq
        for seq in sorted(self.outstanding):
            self.retransmit_queue.append(self.outstanding.pop(seq))
        self.cc.on_timeout(now)
        # Exponential backoff (Karn): successive timeouts without any fresh
        # ACK double the timer, which prevents spurious-RTO livelock behind
        # deep queues.
        self._rto_backoff = min(self._rto_backoff * 2.0, 64.0)
        self._arm_rto(now)
        self._try_send()

    # ------------------------------------------------------------ completion
    def _check_completion(self, now: float) -> None:
        if self.completion_time is not None:
            return
        if (self.source.finished(now) and not self.outstanding
                and not self.retransmit_queue):
            self.completion_time = now

    # ------------------------------------------------------------ fast path
    # Installed as instance attributes when REPRO_BATCH_ACKS is on (see
    # repro.simulator.fastpath).  Each method flattens the corresponding
    # classic call chain into straight-line code with identical arithmetic
    # and identical externally visible state; rare cases (retransmissions,
    # exotic sources, non-DelayHop egress) fall back to the classic methods.
    # Equivalence is pinned differentially by tests/test_batched_ack.py.

    def _receive_fast(self, ack) -> None:
        # _handle_ack with RTTEstimator.update, the RACK precheck, the
        # window read and the RTO re-arm inlined, then the send burst.
        if not isinstance(ack, Ack):
            return
        now = self.env._now
        self.acks_received += 1
        outstanding = self.outstanding
        info = outstanding.pop(ack.seq, None)
        if info is None:
            packet_pool.release_ack(ack)
            return
        rtt_sample = None
        info_sent_time = info.sent_time
        if not info.is_retransmission:
            rtt_sample = now - info_sent_time
            if rtt_sample > 0:
                rtt = self.rtt
                rtt.latest = rtt_sample
                if rtt_sample < rtt.min_rtt:
                    rtt.min_rtt = rtt_sample
                srtt = rtt.srtt
                if srtt is None or rtt.rttvar is None:
                    rtt.srtt = rtt_sample
                    rtt.rttvar = rtt_sample / 2.0
                else:
                    diff = srtt - rtt_sample
                    if diff < 0.0:
                        diff = -diff
                    rtt.rttvar = 0.75 * rtt.rttvar + 0.25 * diff
                    rtt.srtt = 0.875 * srtt + 0.125 * rtt_sample
            self._rto_backoff = 1.0
        info_size = info.size
        self.bytes_acked += info_size
        seq = ack.seq
        if seq > self.highest_acked:
            self.highest_acked = seq
        latest = self._latest_acked_sent_time
        if info_sent_time > latest:
            latest = info_sent_time
            self._latest_acked_sent_time = info_sent_time
        if outstanding:
            first_info = next(iter(outstanding.values()))
            if first_info.sent_time < latest - REORDER_WINDOW:
                self._detect_losses(now)
        # Positional AckFeedback construction (field order pinned by the
        # dataclass definition); kwargs are measurable at this call rate.
        feedback = AckFeedback(now, rtt_sample, info_size, ack.accel, ack.ece,
                               len(outstanding), info.is_retransmission,
                               info_sent_time, ack.meta)
        acks = packet_pool._acks
        if len(acks) < packet_pool.max_size:
            acks.append(ack)
        cwnd = self.cc.fast_ack(feedback)

        if self.retransmit_queue or self._source_kind == 2:
            # Recovery or an exotic source: the classic sender loop handles
            # every corner (it re-arms the RTO per transmission through the
            # shadowed _arm_rto, so the deadline below is a no-op refresh).
            Sender._try_send(self)
        else:
            self._burst_fast(now, cwnd)
        if outstanding:
            self._arm_rto_fast(now)
        else:
            self._rto_timer.deadline = None

    def _try_send_fast(self) -> None:
        # Shadows _try_send for begin/wakeup/timeout callers; the per-ACK
        # burst is issued directly by the ACK fast path (_receive_fast).
        if not self._started:
            return
        if self.retransmit_queue or self._source_kind == 2:
            Sender._try_send(self)
            return
        now = self.env._now
        cc = self.cc
        cwnd = cc.cwnd()
        floor = cc.min_cwnd()
        if floor > cwnd:
            cwnd = floor
        if self._burst_fast(now, cwnd):
            self._arm_rto_fast(now)

    def _resolve_forward(self) -> tuple:
        """Fuse the egress DelayHop: schedule its destination callback
        directly, skipping the per-packet dispatch and hop bounce.  The
        scheduled (time, callback) pairs are identical to the classic
        path's, so even the event sequence is unchanged by this fusion."""
        egress = self.egress
        if type(egress) is DelayHop and egress.dst is not None:
            fwd = (egress.delay, egress.dst.receive)
        else:
            fwd = (0.0, None)  # classic _forward fallback
        self._fwd = fwd
        return fwd

    def _burst_fast(self, now: float, cwnd: float) -> bool:
        """Send as much new data as the window and the source allow.

        Only called with an empty retransmit queue and a backlogged or
        fixed-size source, which makes the classic per-packet protocol
        (bytes_available/consume/next_data_time/finished) collapse into
        plain integer arithmetic.  Returns True when anything was sent.
        """
        outstanding = self.outstanding
        n = len(outstanding)
        fixed = self._source_kind == 1
        if fixed:
            source = self.source
            available = source.total_bytes - source.sent_bytes
            sendable = available >= 1 and n + 1 <= cwnd
        else:
            available = 0
            sendable = n + 1 <= cwnd
        sent_packets = 0
        if sendable:
            cc = self.cc
            mss = self.mss
            flow_id = self.flow_id
            abc_capable = cc.uses_abc
            ecn = ECN.ACCEL if abc_capable else ECN.NOT_ECT
            static_meta = self._static_meta
            static_window = self._static_window
            fwd = self._fwd
            if fwd is None:
                fwd = self._resolve_forward()
            fwd_delay, fwd_cb = fwd
            post = self.env.post
            acquire = packet_pool.acquire_packet
            next_seq = self.next_seq
            sent_bytes = 0
            while True:
                if fixed:
                    size = mss if available >= mss else available
                    source.sent_bytes += size
                    available -= size
                else:
                    size = mss
                meta = {} if static_meta else cc.packet_meta(now)
                packet = acquire(flow_id, next_seq, size, ecn, now, False,
                                 abc_capable, meta)
                outstanding[next_seq] = _SentInfo(next_seq, size, now, False)
                next_seq += 1
                n += 1
                sent_bytes += size
                sent_packets += 1
                if not static_window:
                    cc.on_packet_sent(now, next_seq - 1, size, n)
                if fwd_cb is not None:
                    post(fwd_delay, fwd_cb, packet)
                else:
                    egress = self.egress
                    if egress is not None:
                        _forward(egress, packet)
                if not static_window:
                    cwnd = cc.cwnd()
                    floor = cc.min_cwnd()
                    if floor > cwnd:
                        cwnd = floor
                if n + 1 > cwnd:
                    break
                if fixed and available < 1:
                    break
            self.next_seq = next_seq
            self.bytes_sent += sent_bytes
            self.packets_sent += sent_packets
        if (fixed and available < 1 and self.completion_time is None
                and not outstanding and not self.retransmit_queue):
            self.completion_time = now
        return sent_packets > 0

    def _arm_rto_fast(self, now: float) -> None:
        self.rto_rearms += 1
        # _arm_rto with the RTO property inlined and the cancel-and-repush
        # replaced by the lazy DeadlineTimer (same expiry instant, no heap
        # traffic while the deadline only moves forward).
        rtt = self.rtt
        srtt = rtt.srtt
        if srtt is None:
            rto = 1.0
        else:
            rto = srtt + 4.0 * rtt.rttvar
            min_rto = rtt.min_rto
            if rto < min_rto:
                rto = min_rto
            else:
                max_rto = rtt.max_rto
                if rto > max_rto:
                    rto = max_rto
        self._rto_timer.set(now + rto * self._rto_backoff)

    def _pace_tick_fast(self) -> None:
        # Classic ``_pace_tick`` with the clock read flattened and the next
        # tick posted handle-free (same heap entry ``schedule`` would build).
        now = self.env._now
        rate = self.cc.pacing_rate() or 0.0
        sent = False
        if rate > 0:
            if (self.retransmit_queue
                    and self.in_flight + 1 <= self._cwnd_packets()):
                self._send_retransmission(now)
                sent = True
            elif self._can_send_new_data(now):
                self._send_new_packet(now)
                sent = True
        if rate > 0:
            interval = self.mss * 8.0 / rate
        else:
            interval = IDLE_PACING_POLL
        if not sent and rate > 0:
            # Window- or application-limited: poll again shortly so we react
            # quickly once the constraint clears.
            interval = min(interval, IDLE_PACING_POLL)
        self.env.post(interval, self._pace_tick)
        self._check_completion(now)

    def _pace_tick_fused(self) -> None:
        # Classic ``_pace_tick`` with the whole send machinery inlined
        # (mirroring _burst_fast's integer arithmetic for backlogged and
        # fixed-size sources; at most one packet per tick, so every packet
        # keeps its classic sent_time and the cc sees the same call sequence)
        # and the tick chain *halted* once the flow completes.  Halting is
        # result-identical: a completed sender has a finished source, nothing
        # outstanding and an empty retransmit queue, and ``pacing_rate()`` is
        # a pure read, so every later classic tick is a no-op that only
        # schedules its successor.
        now = self.env._now
        self.pace_ticks += 1
        cc = self.cc
        rate = cc.pacing_rate() or 0.0
        sent = False
        if rate > 0:
            outstanding = self.outstanding
            n = len(outstanding)
            cwnd = cc.cwnd()
            floor = cc.min_cwnd()
            if floor > cwnd:
                cwnd = floor
            if self.retransmit_queue:
                if n + 1 <= cwnd:
                    self._send_retransmission(now)
                    sent = True
            elif n + 1 <= cwnd:
                mss = self.mss
                if self._source_kind == 1:
                    source = self.source
                    available = source.total_bytes - source.sent_bytes
                    size = mss if available >= mss else available
                    if size >= 1:
                        source.sent_bytes += size
                    else:
                        size = 0
                else:
                    size = mss
                if size > 0:
                    abc_capable = cc.uses_abc
                    meta = {} if self._static_meta else cc.packet_meta(now)
                    seq = self.next_seq
                    self.next_seq = seq + 1
                    packet = packet_pool.acquire_packet(
                        self.flow_id, seq, size,
                        ECN.ACCEL if abc_capable else ECN.NOT_ECT,
                        now, False, abc_capable, meta)
                    outstanding[seq] = _SentInfo(seq, size, now, False)
                    self.bytes_sent += size
                    self.packets_sent += 1
                    if not self._static_window:
                        cc.on_packet_sent(now, seq, size, n + 1)
                    fwd = self._fwd
                    if fwd is None:
                        fwd = self._resolve_forward()
                    fwd_cb = fwd[1]
                    if fwd_cb is not None:
                        self.env.post(fwd[0], fwd_cb, packet)
                    else:
                        egress = self.egress
                        if egress is not None:
                            _forward(egress, packet)
                    self._arm_rto_fast(now)
                    sent = True
        if rate > 0:
            interval = self.mss * 8.0 / rate
            if not sent and interval > IDLE_PACING_POLL:
                # Window- or application-limited: poll again shortly so we
                # react quickly once the constraint clears.
                interval = IDLE_PACING_POLL
        else:
            interval = IDLE_PACING_POLL
        if self.completion_time is not None:
            return
        if (self._source_kind == 1 and not self.outstanding
                and not self.retransmit_queue and self.source.finished(now)):
            # Same tick, same instant the classic _check_completion would
            # stamp — but the pacing loop stops here instead of idling on.
            self.completion_time = now
            self.pace_halts += 1
            return
        self.env.post(interval, self._pace_tick)

    def _receive_paced_fast(self, ack) -> None:
        # Classic ``_handle_ack`` for pacing-based schemes, with
        # RTTEstimator.update, the RACK precheck and the RTO bookkeeping
        # flattened — same statements in the same order (no send burst: the
        # pacing loop emits new packets, so this ends in the classic
        # ``_try_send``, which only flushes retransmissions).
        if not isinstance(ack, Ack):
            return
        now = self.env._now
        self.acks_received += 1
        outstanding = self.outstanding
        info = outstanding.pop(ack.seq, None)
        if info is None:
            packet_pool.release_ack(ack)
            return
        rtt_sample = None
        info_sent_time = info.sent_time
        if not info.is_retransmission:
            rtt_sample = now - info_sent_time
            if rtt_sample > 0:
                rtt = self.rtt
                rtt.latest = rtt_sample
                if rtt_sample < rtt.min_rtt:
                    rtt.min_rtt = rtt_sample
                srtt = rtt.srtt
                if srtt is None or rtt.rttvar is None:
                    rtt.srtt = rtt_sample
                    rtt.rttvar = rtt_sample / 2.0
                else:
                    diff = srtt - rtt_sample
                    if diff < 0.0:
                        diff = -diff
                    rtt.rttvar = 0.75 * rtt.rttvar + 0.25 * diff
                    rtt.srtt = 0.875 * srtt + 0.125 * rtt_sample
            self._rto_backoff = 1.0
        info_size = info.size
        self.bytes_acked += info_size
        seq = ack.seq
        if seq > self.highest_acked:
            self.highest_acked = seq
        latest = self._latest_acked_sent_time
        if info_sent_time > latest:
            latest = info_sent_time
            self._latest_acked_sent_time = info_sent_time
        if outstanding:
            first_info = next(iter(outstanding.values()))
            if first_info.sent_time < latest - REORDER_WINDOW:
                self._detect_losses(now)
        feedback = AckFeedback(now, rtt_sample, info_size, ack.accel, ack.ece,
                               len(outstanding), info.is_retransmission,
                               info_sent_time, ack.meta)
        packet_pool.release_ack(ack)
        self.cc.on_ack(feedback)
        if outstanding:
            self._arm_rto_fast(now)
        else:
            self._rto_timer.deadline = None
        self._try_send()

    def _on_rto_expired(self) -> None:
        # _on_rto, reached through the DeadlineTimer at the same simulated
        # instant the classic timer would have fired.
        now = self.env._now
        if not self.outstanding:
            return
        self.timeouts += 1
        self._recovery_end_seq = self.next_seq
        outstanding = self.outstanding
        retransmit = self.retransmit_queue
        for seq in sorted(outstanding):
            retransmit.append(outstanding.pop(seq))
        self.cc.on_timeout(now)
        backoff = self._rto_backoff * 2.0
        self._rto_backoff = backoff if backoff <= 64.0 else 64.0
        self._arm_rto_fast(now)
        self._try_send_fast()


class Receiver:
    """Acknowledges data packets and echoes congestion feedback to senders."""

    #: Fast-path marker: a receiver is a per-flow leaf — its state is only
    #: ever touched by this flow's data packets, which all funnel through one
    #: demux in delivery order — so the demux may run it synchronously at
    #: delivery time with the *computed* arrival timestamp instead of posting
    #: an arrival event (see :meth:`_receive_fast_at`).  Every recorded time
    #: and the returned ACK's scheduled arrival are built from the same float
    #: expressions the event path would produce; only heap sequence numbers
    #: shift.
    deliver_shifted = True

    def __init__(self, env: EventLoop, egress=None, name: str = "receiver",
                 ack_size: int = ACK_SIZE):
        self.env = env
        self.egress = egress
        self.name = name
        self.ack_size = ack_size
        self.flow_stats: Dict[int, FlowStats] = {}
        self.packets_received = 0
        self._next_expected: Dict[int, int] = {}
        if fastpath.enabled():
            self._ack_fwd: Optional[tuple] = None
            self.receive = self._receive_fast

    def connect(self, egress) -> None:
        self.egress = egress
        self._ack_fwd = None

    def stats_for(self, flow_id: int) -> FlowStats:
        if flow_id not in self.flow_stats:
            self.flow_stats[flow_id] = FlowStats(flow_id)
        return self.flow_stats[flow_id]

    def receive(self, packet) -> None:
        if isinstance(packet, Ack):
            return
        now = self.env.now
        self.packets_received += 1
        flow_id = packet.flow_id
        self.stats_for(flow_id).record(packet, now)

        next_expected = self._next_expected
        expected = next_expected.get(flow_id, 0)
        if packet.seq >= expected:
            expected = packet.seq + 1
            next_expected[flow_id] = expected

        ecn = packet.ecn
        ack = packet_pool.acquire_ack(
            flow_id=flow_id,
            seq=packet.seq,
            size=self.ack_size,
            accel=(ecn == ECN.ACCEL),
            ece=(ecn == ECN.CE),
            data_sent_time=packet.sent_time,
            data_size=packet.size,
            ack_sent_time=now,
            cumulative_ack=next_expected[flow_id],
            sent_time=now,
            meta=dict(packet.meta),
        )
        # The data packet's life ends here: its fields are copied into the
        # flow stats and the ACK above, so the object can be recycled.
        packet_pool.release_packet(packet)
        if self.egress is not None:
            _forward(self.egress, ack)

    # ------------------------------------------------------------ fast path
    def _receive_fast(self, packet) -> None:
        self._receive_fast_at(packet, self.env._now)

    def _receive_fast_at(self, packet, now: float) -> None:
        # `receive` with FlowStats.record inlined and the return ACK hop
        # fused (the DelayHop bounce is replaced by scheduling its
        # destination callback directly — same time, same event order).
        # ``now`` is the packet's arrival time, which may lie ahead of the
        # simulation clock when the demux invokes this synchronously at
        # delivery time (see :attr:`deliver_shifted`).
        if isinstance(packet, Ack):
            return
        self.packets_received += 1
        flow_id = packet.flow_id
        stats = self.flow_stats.get(flow_id)
        if stats is None:
            stats = FlowStats(flow_id)
            self.flow_stats[flow_id] = stats
        size = packet.size
        stats.recv_times.append(now)
        stats.sent_times.append(packet.sent_time)
        stats.sizes.append(size)
        stats.queuing_delays.append(packet.total_queuing_delay)
        stats.bytes_received += size
        if stats.first_recv_time is None:
            stats.first_recv_time = now
        stats.last_recv_time = now

        next_expected = self._next_expected
        expected = next_expected.get(flow_id, 0)
        seq = packet.seq
        if seq >= expected:
            expected = seq + 1
            next_expected[flow_id] = expected

        ecn = packet.ecn
        pool = packet_pool._acks
        if pool:
            # PacketPool.acquire_ack inlined: same field resets in the same
            # order, same uid draw — only the call frame is saved.
            ack = pool.pop()
            packet_pool.reused += 1
            ack.flow_id = flow_id
            ack.seq = seq
            ack.size = self.ack_size
            ack.accel = ecn == ECN.ACCEL
            ack.ece = ecn == ECN.CE
            ack.data_sent_time = packet.sent_time
            ack.data_size = size
            ack.ack_sent_time = now
            ack.cumulative_ack = expected
            ack.ecn = ECN.NOT_ECT
            ack.meta = dict(packet.meta)
            ack.uid = next(_packet_ids)
            ack.sent_time = now
            ack.enqueue_time = 0.0
            ack.dequeue_time = 0.0
            ack.total_queuing_delay = 0.0
            ack.is_retransmission = False
            ack.abc_capable = False
            ack.hop_count = 0
        else:
            ack = packet_pool.acquire_ack(
                flow_id, seq, self.ack_size, ecn == ECN.ACCEL, ecn == ECN.CE,
                packet.sent_time, size, now, expected, now, dict(packet.meta))
        packets = packet_pool._packets
        if len(packets) < packet_pool.max_size:
            packets.append(packet)
        fwd = self._ack_fwd
        if fwd is None:
            egress = self.egress
            if type(egress) is DelayHop and egress.dst is not None:
                fwd = (egress.delay, egress.dst.receive)
            else:
                fwd = (0.0, None)
            self._ack_fwd = fwd
        cb = fwd[1]
        if cb is not None:
            # ``now + delay`` is the exact expression the classic path would
            # evaluate at the arrival event (where ``env._now == now``), so
            # the ACK lands at a bit-identical time even when this runs
            # early, at delivery time.
            self.env.post_at(now + fwd[0], cb, ack)
        elif self.egress is not None:
            _forward(self.egress, ack)


class Sink:
    """A node that silently absorbs whatever it receives (for cross traffic
    whose ACK path is irrelevant to the experiment)."""

    def __init__(self) -> None:
        self.packets = 0
        self.bytes = 0

    def receive(self, packet) -> None:
        self.packets += 1
        self.bytes += getattr(packet, "size", 0)

    send = receive
