"""Small measurement utilities shared by routers and congestion controllers.

The ABC router measures its dequeue rate ``cr(t)`` and link capacity ``µ(t)``
over a sliding time window of length ``T`` (§3.1.2); XCPw, RCP and VCP need
the same primitive for their input-rate measurements, and several end-to-end
schemes (BBR, Sprout, Verus) need windowed-max / EWMA filters.  They all live
here so the implementations stay consistent and well tested.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional, Tuple


class WindowedRateEstimator:
    """Rate estimate over a sliding time window.

    Samples are ``(timestamp, bytes)`` pairs; :meth:`rate_bps` returns the
    byte count observed in the trailing ``window`` seconds converted to bits
    per second.  When fewer than ``window`` seconds of history exist the
    elapsed time since the first sample is used instead, which avoids the
    start-up bias of dividing by the full window.
    """

    def __init__(self, window: float = 0.04):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._samples: Deque[Tuple[float, int]] = deque()
        self._bytes_in_window = 0
        self._first_sample_time: Optional[float] = None

    def add(self, now: float, size_bytes: int) -> None:
        """Record ``size_bytes`` observed at time ``now``."""
        if self._first_sample_time is None:
            self._first_sample_time = now
        self._samples.append((now, size_bytes))
        self._bytes_in_window += size_bytes
        self._expire(now)

    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        samples = self._samples
        while samples and samples[0][0] < cutoff:
            _, size = samples.popleft()
            self._bytes_in_window -= size

    def rate_bps(self, now: float) -> float:
        """Current rate estimate in bits per second (0.0 with no samples)."""
        self._expire(now)
        if not self._samples or self._first_sample_time is None:
            return 0.0
        span = min(self.window, max(now - self._first_sample_time, 0.0))
        if span <= 0.0:
            # A single instantaneous burst of samples: fall back to the full
            # window rather than reporting an infinite rate.
            span = self.window
        return self._bytes_in_window * 8.0 / span

    def reset(self) -> None:
        self._samples.clear()
        self._bytes_in_window = 0
        self._first_sample_time = None


class BatchedRateEstimator:
    """Flat-array drop-in for :class:`WindowedRateEstimator`.

    Samples append to parallel flat arrays with **no** per-add expiry work;
    expiry is deferred to :meth:`rate_bps`, which advances a start index over
    the (time-sorted) sample arrays and maintains exact integer byte totals.
    Because all byte accounting is integer arithmetic, the in-window byte
    count — and therefore the returned rate — is bit-identical to the deque
    implementation's for any interleaving of ``add``/``rate_bps`` calls
    (pinned by ``tests/test_batched_ack.py``).

    Used by the ABC router's fast path (``REPRO_BATCH_ACKS=1``), where the
    enqueue-side estimator is written once per packet but read rarely (only
    the Fig. 2 enqueue-basis ablation queries it): deferring expiry turns the
    per-packet cost into two list appends.
    """

    __slots__ = ("window", "_times", "_sizes", "_total", "_expired",
                 "_start", "_first_sample_time")

    #: Trim consumed prefixes once the start index passes this many entries,
    #: keeping memory proportional to the live window.
    _TRIM_THRESHOLD = 4096

    def __init__(self, window: float = 0.04):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._times: list[float] = []
        self._sizes: list[int] = []
        self._total = 0
        self._expired = 0
        self._start = 0
        self._first_sample_time: Optional[float] = None

    def add(self, now: float, size_bytes: int) -> None:
        """Record ``size_bytes`` observed at time ``now`` (O(1), no expiry)."""
        if self._first_sample_time is None:
            self._first_sample_time = now
        self._times.append(now)
        self._sizes.append(size_bytes)
        self._total += size_bytes

    def rate_bps(self, now: float) -> float:
        """Current rate estimate in bits per second (0.0 with no samples)."""
        times = self._times
        start = self._start
        n = len(times)
        cutoff = now - self.window
        if start < n and times[start] < cutoff:
            sizes = self._sizes
            expired = self._expired
            while start < n and times[start] < cutoff:
                expired += sizes[start]
                start += 1
            self._expired = expired
            if start > self._TRIM_THRESHOLD:
                del times[:start]
                del sizes[:start]
                n -= start
                start = 0
            self._start = start
        first = self._first_sample_time
        if start >= n or first is None:
            return 0.0
        # Branchy spelling of min(window, max(now - first, 0.0)) with the
        # zero-span fallback folded in — same result, no builtin calls.
        span = now - first
        window = self.window
        if span > window:
            span = window
        elif span <= 0.0:
            span = window
        return (self._total - self._expired) * 8.0 / span

    def reset(self) -> None:
        self._times.clear()
        self._sizes.clear()
        self._total = 0
        self._expired = 0
        self._start = 0
        self._first_sample_time = None


class EWMA:
    """Exponentially weighted moving average with optional initial value."""

    def __init__(self, alpha: float, initial: Optional[float] = None):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._value = initial

    def update(self, sample: float) -> float:
        if self._value is None:
            self._value = sample
        else:
            self._value = self.alpha * sample + (1.0 - self.alpha) * self._value
        return self._value

    @property
    def value(self) -> Optional[float]:
        return self._value

    def get(self, default: float = 0.0) -> float:
        return self._value if self._value is not None else default


class WindowedMinMax:
    """Windowed minimum or maximum (monotonic deque), used by BBR and Copa.

    ``mode`` is either ``"min"`` or ``"max"``; samples older than ``window``
    seconds are evicted lazily on every update/query.
    """

    def __init__(self, window: float, mode: str = "max"):
        if mode not in ("min", "max"):
            raise ValueError("mode must be 'min' or 'max'")
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.mode = mode
        self._samples: Deque[Tuple[float, float]] = deque()

    def _better(self, a: float, b: float) -> bool:
        return a >= b if self.mode == "max" else a <= b

    def update(self, now: float, value: float) -> float:
        samples = self._samples
        while samples and self._better(value, samples[-1][1]):
            samples.pop()
        samples.append((now, value))
        self._expire(now)
        return self.get()

    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        samples = self._samples
        while samples and samples[0][0] < cutoff:
            samples.popleft()

    def get(self, default: float = 0.0) -> float:
        if not self._samples:
            return default
        return self._samples[0][1]

    def query(self, now: float, default: float = 0.0) -> float:
        self._expire(now)
        return self.get(default)


class RTTEstimator:
    """Classic SRTT/RTTVAR estimator (RFC 6298) with an RTO clamp."""

    def __init__(self, min_rto: float = 0.2, max_rto: float = 60.0):
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.min_rtt = math.inf
        self.latest: Optional[float] = None
        self.min_rto = min_rto
        self.max_rto = max_rto

    def update(self, sample: float) -> None:
        if sample <= 0:
            return
        self.latest = sample
        self.min_rtt = min(self.min_rtt, sample)
        if self.srtt is None or self.rttvar is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample

    @property
    def rto(self) -> float:
        if self.srtt is None or self.rttvar is None:
            return 1.0
        rto = self.srtt + 4.0 * self.rttvar
        return min(max(rto, self.min_rto), self.max_rto)

    def smoothed(self, default: float = 0.1) -> float:
        return self.srtt if self.srtt is not None else default

    def minimum(self, default: float = 0.1) -> float:
        return self.min_rtt if math.isfinite(self.min_rtt) else default
