"""Measurement hooks: per-flow delivery statistics and per-link monitors.

The paper reports three families of metrics:

* **throughput / utilisation** — delivered bits divided by elapsed time, or by
  the capacity the link offered over the same interval (Figs. 8, 9, 16, 18);
* **per-packet delay** — the one-way delay of each delivered packet, from
  which mean and 95th-percentile values are computed (Figs. 8, 9, 15);
* **queuing delay** — the time packets spend in bottleneck queues, plotted as
  time series (Figs. 1, 2, 6, 7, 11, 13, 17).

:class:`FlowStats` captures the first two at the receiver;
:class:`LinkMonitor` captures link-side time series and the utilisation
denominator.

Hot-path note: both classes record one sample per delivered packet, so they
sit directly on the per-packet pipeline.  Samples are appended to flat
parallel lists (one float per field) rather than wrapped in per-sample
objects; the metric accessors bin and aggregate those lists with vectorised
numpy.  :class:`DeliveryRecord` remains as a lazily materialised view for
callers that want per-packet objects.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.simulator.packet import Packet


@dataclass(slots=True)
class DeliveryRecord:
    """One delivered data packet as observed by the receiver.

    Materialised on demand from :attr:`FlowStats.records`; the hot path
    stores the same fields in flat arrays instead.
    """

    recv_time: float
    sent_time: float
    size: int
    queuing_delay: float
    flow_id: int

    @property
    def one_way_delay(self) -> float:
        return max(self.recv_time - self.sent_time, 0.0)


def _bin_totals(times: Sequence[float], weights, t0: float, t1: float,
                bin_size: float, n_bins: int) -> np.ndarray:
    """Sum ``weights`` into ``n_bins`` fixed-width bins over ``[t0, t1]``.

    Mirrors the historical per-record loop exactly: samples outside
    ``[t0, t1]`` are skipped and the final bin is right-inclusive.
    """
    times = np.asarray(times, dtype=float)
    totals = np.zeros(n_bins)
    if times.size == 0:
        return totals
    keep = (times >= t0) & (times <= t1)
    idx = ((times[keep] - t0) / bin_size).astype(int)
    np.minimum(idx, n_bins - 1, out=idx)
    if weights is None:
        np.add.at(totals, idx, 1.0)
    else:
        np.add.at(totals, idx, np.asarray(weights, dtype=float)[keep])
    return totals


class FlowStats:
    """Per-flow delivery statistics collected at the receiver."""

    def __init__(self, flow_id: int):
        self.flow_id = flow_id
        self.recv_times: List[float] = []
        self.sent_times: List[float] = []
        self.sizes: List[int] = []
        self.queuing_delays: List[float] = []
        self.bytes_received = 0
        self.first_recv_time: Optional[float] = None
        self.last_recv_time: Optional[float] = None
        self.completion_time: Optional[float] = None

    def record(self, packet: Packet, now: float) -> None:
        self.recv_times.append(now)
        self.sent_times.append(packet.sent_time)
        self.sizes.append(packet.size)
        self.queuing_delays.append(packet.total_queuing_delay)
        self.bytes_received += packet.size
        if self.first_recv_time is None:
            self.first_recv_time = now
        self.last_recv_time = now

    # ------------------------------------------------------------ views
    def __len__(self) -> int:
        return len(self.recv_times)

    @property
    def records(self) -> List[DeliveryRecord]:
        """Per-packet view of the flat sample arrays (materialised lazily)."""
        return [DeliveryRecord(recv_time=r, sent_time=s, size=size,
                               queuing_delay=q, flow_id=self.flow_id)
                for r, s, size, q in zip(self.recv_times, self.sent_times,
                                         self.sizes, self.queuing_delays)]

    # ------------------------------------------------------------ metrics
    def throughput_bps(self, t0: float = 0.0, t1: Optional[float] = None) -> float:
        """Average goodput over ``[t0, t1]`` in bits per second."""
        if t1 is None:
            t1 = self.last_recv_time if self.last_recv_time is not None else t0
        if t1 <= t0:
            return 0.0
        # recv_times is nondecreasing (samples are appended at receive time),
        # so the window is a contiguous slice.
        lo = bisect.bisect_left(self.recv_times, t0)
        hi = bisect.bisect_right(self.recv_times, t1)
        total = sum(self.sizes[lo:hi])
        return total * 8.0 / (t1 - t0)

    def delays(self, kind: str = "one_way") -> np.ndarray:
        """Array of per-packet delays in seconds.

        ``kind`` is ``"one_way"`` (propagation + queuing, the paper's
        per-packet delay) or ``"queuing"`` (bottleneck queuing only).
        """
        if kind == "one_way":
            recv = np.asarray(self.recv_times, dtype=float)
            sent = np.asarray(self.sent_times, dtype=float)
            return np.maximum(recv - sent, 0.0)
        if kind == "queuing":
            return np.asarray(self.queuing_delays, dtype=float)
        raise ValueError(f"unknown delay kind: {kind!r}")

    def delay_percentile(self, pct: float, kind: str = "one_way") -> float:
        values = self.delays(kind)
        if values.size == 0:
            return 0.0
        return float(np.percentile(values, pct))

    def mean_delay(self, kind: str = "one_way") -> float:
        values = self.delays(kind)
        if values.size == 0:
            return 0.0
        return float(np.mean(values))

    def throughput_timeseries(self, bin_size: float = 0.5,
                              t0: float = 0.0,
                              t1: Optional[float] = None) -> tuple[np.ndarray, np.ndarray]:
        """Binned throughput time series ``(bin_centers, rates_bps)``."""
        if not self.recv_times:
            return np.array([]), np.array([])
        if t1 is None:
            t1 = self.recv_times[-1]
        n_bins = max(int(math.ceil((t1 - t0) / bin_size)), 1)
        edges = t0 + np.arange(n_bins + 1) * bin_size
        totals = _bin_totals(self.recv_times, self.sizes, t0, t1,
                             bin_size, n_bins)
        centers = (edges[:-1] + edges[1:]) / 2.0
        return centers, totals * 8.0 / bin_size

    def queuing_delay_timeseries(self, bin_size: float = 0.5) -> tuple[np.ndarray, np.ndarray]:
        """Binned mean queuing delay time series ``(bin_centers, delay_s)``."""
        if not self.recv_times:
            return np.array([]), np.array([])
        t_end = self.recv_times[-1]
        n_bins = max(int(math.ceil(t_end / bin_size)), 1)
        sums = _bin_totals(self.recv_times, self.queuing_delays, 0.0, t_end,
                           bin_size, n_bins)
        counts = _bin_totals(self.recv_times, None, 0.0, t_end,
                             bin_size, n_bins)
        centers = (np.arange(n_bins) + 0.5) * bin_size
        with np.errstate(invalid="ignore", divide="ignore"):
            means = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
        return centers, means


class LinkMonitor:
    """Records departures, drops, queue occupancy and offered capacity.

    Per-event callbacks are plain list appends; queue samples land in two
    parallel flat lists (``queue_sample_times`` / ``queue_sample_backlogs``)
    with ``queue_samples`` kept as a zipped compatibility view.
    """

    def __init__(self, name: str = "link", sample_interval: float = 0.05):
        self.name = name
        self.sample_interval = sample_interval
        self.departure_times: List[float] = []
        self.departure_bytes: List[int] = []
        self.drop_times: List[float] = []
        self.opportunity_times: List[float] = []
        self.opportunity_bytes = 0
        self.queue_sample_times: List[float] = []
        self.queue_sample_backlogs: List[int] = []

    # ------------------------------------------------------------ callbacks
    def record_departure(self, now: float, packet: Packet) -> None:
        self.departure_times.append(now)
        self.departure_bytes.append(packet.size)

    def record_drop(self, now: float, packet: Packet) -> None:
        self.drop_times.append(now)

    def record_opportunity(self, now: float, size_bytes: int) -> None:
        self.opportunity_times.append(now)
        self.opportunity_bytes += size_bytes

    def record_queue(self, now: float, backlog_packets: int) -> None:
        self.queue_sample_times.append(now)
        self.queue_sample_backlogs.append(backlog_packets)

    @property
    def queue_samples(self) -> List[tuple[float, int]]:
        """``(time, backlog_packets)`` pairs (compatibility view)."""
        return list(zip(self.queue_sample_times, self.queue_sample_backlogs))

    # ------------------------------------------------------------ metrics
    def delivered_bytes(self, t0: float = 0.0, t1: float = math.inf) -> int:
        lo = bisect.bisect_left(self.departure_times, t0)
        hi = bisect.bisect_right(self.departure_times, t1)
        return int(sum(self.departure_bytes[lo:hi]))

    def throughput_bps(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0
        return self.delivered_bytes(t0, t1) * 8.0 / (t1 - t0)

    def drops(self, t0: float = 0.0, t1: float = math.inf) -> int:
        lo = bisect.bisect_left(self.drop_times, t0)
        hi = bisect.bisect_right(self.drop_times, t1)
        return hi - lo

    def throughput_timeseries(self, bin_size: float = 0.5,
                              t1: Optional[float] = None) -> tuple[np.ndarray, np.ndarray]:
        if not self.departure_times:
            return np.array([]), np.array([])
        if t1 is None:
            t1 = self.departure_times[-1]
        n_bins = max(int(math.ceil(t1 / bin_size)), 1)
        totals = _bin_totals(self.departure_times, self.departure_bytes,
                             0.0, t1, bin_size, n_bins)
        centers = (np.arange(n_bins) + 0.5) * bin_size
        return centers, totals * 8.0 / bin_size


@dataclass
class SchemeResult:
    """Summary row produced by the experiment runner for one scheme."""

    scheme: str
    throughput_bps: float
    utilization: float
    delay_p95_ms: float
    delay_mean_ms: float
    queuing_p95_ms: float = 0.0
    extra: dict = field(default_factory=dict)

    def as_row(self) -> Sequence:
        return (self.scheme, self.throughput_bps, self.utilization,
                self.delay_p95_ms, self.delay_mean_ms)
