"""Measurement hooks: per-flow delivery statistics and per-link monitors.

The paper reports three families of metrics:

* **throughput / utilisation** — delivered bits divided by elapsed time, or by
  the capacity the link offered over the same interval (Figs. 8, 9, 16, 18);
* **per-packet delay** — the one-way delay of each delivered packet, from
  which mean and 95th-percentile values are computed (Figs. 8, 9, 15);
* **queuing delay** — the time packets spend in bottleneck queues, plotted as
  time series (Figs. 1, 2, 6, 7, 11, 13, 17).

:class:`FlowStats` captures the first two at the receiver;
:class:`LinkMonitor` captures link-side time series and the utilisation
denominator.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.simulator.packet import Packet


@dataclass
class DeliveryRecord:
    """One delivered data packet as observed by the receiver."""

    recv_time: float
    sent_time: float
    size: int
    queuing_delay: float
    flow_id: int

    @property
    def one_way_delay(self) -> float:
        return max(self.recv_time - self.sent_time, 0.0)


class FlowStats:
    """Per-flow delivery statistics collected at the receiver."""

    def __init__(self, flow_id: int):
        self.flow_id = flow_id
        self.records: List[DeliveryRecord] = []
        self.bytes_received = 0
        self.first_recv_time: Optional[float] = None
        self.last_recv_time: Optional[float] = None
        self.completion_time: Optional[float] = None

    def record(self, packet: Packet, now: float) -> None:
        rec = DeliveryRecord(
            recv_time=now,
            sent_time=packet.sent_time,
            size=packet.size,
            queuing_delay=packet.total_queuing_delay,
            flow_id=self.flow_id,
        )
        self.records.append(rec)
        self.bytes_received += packet.size
        if self.first_recv_time is None:
            self.first_recv_time = now
        self.last_recv_time = now

    # ------------------------------------------------------------ metrics
    def throughput_bps(self, t0: float = 0.0, t1: Optional[float] = None) -> float:
        """Average goodput over ``[t0, t1]`` in bits per second."""
        if t1 is None:
            t1 = self.last_recv_time if self.last_recv_time is not None else t0
        if t1 <= t0:
            return 0.0
        total = sum(r.size for r in self.records if t0 <= r.recv_time <= t1)
        return total * 8.0 / (t1 - t0)

    def delays(self, kind: str = "one_way") -> np.ndarray:
        """Array of per-packet delays in seconds.

        ``kind`` is ``"one_way"`` (propagation + queuing, the paper's
        per-packet delay) or ``"queuing"`` (bottleneck queuing only).
        """
        if kind == "one_way":
            return np.array([r.one_way_delay for r in self.records])
        if kind == "queuing":
            return np.array([r.queuing_delay for r in self.records])
        raise ValueError(f"unknown delay kind: {kind!r}")

    def delay_percentile(self, pct: float, kind: str = "one_way") -> float:
        values = self.delays(kind)
        if values.size == 0:
            return 0.0
        return float(np.percentile(values, pct))

    def mean_delay(self, kind: str = "one_way") -> float:
        values = self.delays(kind)
        if values.size == 0:
            return 0.0
        return float(np.mean(values))

    def throughput_timeseries(self, bin_size: float = 0.5,
                              t0: float = 0.0,
                              t1: Optional[float] = None) -> tuple[np.ndarray, np.ndarray]:
        """Binned throughput time series ``(bin_centers, rates_bps)``."""
        if not self.records:
            return np.array([]), np.array([])
        if t1 is None:
            t1 = self.records[-1].recv_time
        n_bins = max(int(math.ceil((t1 - t0) / bin_size)), 1)
        edges = t0 + np.arange(n_bins + 1) * bin_size
        totals = np.zeros(n_bins)
        for rec in self.records:
            if rec.recv_time < t0 or rec.recv_time > t1:
                continue
            idx = min(int((rec.recv_time - t0) / bin_size), n_bins - 1)
            totals[idx] += rec.size
        centers = (edges[:-1] + edges[1:]) / 2.0
        return centers, totals * 8.0 / bin_size

    def queuing_delay_timeseries(self, bin_size: float = 0.5) -> tuple[np.ndarray, np.ndarray]:
        """Binned mean queuing delay time series ``(bin_centers, delay_s)``."""
        if not self.records:
            return np.array([]), np.array([])
        t_end = self.records[-1].recv_time
        n_bins = max(int(math.ceil(t_end / bin_size)), 1)
        sums = np.zeros(n_bins)
        counts = np.zeros(n_bins)
        for rec in self.records:
            idx = min(int(rec.recv_time / bin_size), n_bins - 1)
            sums[idx] += rec.queuing_delay
            counts[idx] += 1
        centers = (np.arange(n_bins) + 0.5) * bin_size
        with np.errstate(invalid="ignore", divide="ignore"):
            means = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
        return centers, means


class LinkMonitor:
    """Records departures, drops, queue occupancy and offered capacity."""

    def __init__(self, name: str = "link", sample_interval: float = 0.05):
        self.name = name
        self.sample_interval = sample_interval
        self.departure_times: List[float] = []
        self.departure_bytes: List[int] = []
        self.drop_times: List[float] = []
        self.opportunity_times: List[float] = []
        self.opportunity_bytes = 0
        self.queue_samples: List[tuple[float, int]] = []

    # ------------------------------------------------------------ callbacks
    def record_departure(self, now: float, packet: Packet) -> None:
        self.departure_times.append(now)
        self.departure_bytes.append(packet.size)

    def record_drop(self, now: float, packet: Packet) -> None:
        self.drop_times.append(now)

    def record_opportunity(self, now: float, size_bytes: int) -> None:
        self.opportunity_times.append(now)
        self.opportunity_bytes += size_bytes

    def record_queue(self, now: float, backlog_packets: int) -> None:
        self.queue_samples.append((now, backlog_packets))

    # ------------------------------------------------------------ metrics
    def delivered_bytes(self, t0: float = 0.0, t1: float = math.inf) -> int:
        lo = bisect.bisect_left(self.departure_times, t0)
        hi = bisect.bisect_right(self.departure_times, t1)
        return int(sum(self.departure_bytes[lo:hi]))

    def throughput_bps(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0
        return self.delivered_bytes(t0, t1) * 8.0 / (t1 - t0)

    def drops(self, t0: float = 0.0, t1: float = math.inf) -> int:
        lo = bisect.bisect_left(self.drop_times, t0)
        hi = bisect.bisect_right(self.drop_times, t1)
        return hi - lo

    def throughput_timeseries(self, bin_size: float = 0.5,
                              t1: Optional[float] = None) -> tuple[np.ndarray, np.ndarray]:
        if not self.departure_times:
            return np.array([]), np.array([])
        if t1 is None:
            t1 = self.departure_times[-1]
        n_bins = max(int(math.ceil(t1 / bin_size)), 1)
        totals = np.zeros(n_bins)
        for t, size in zip(self.departure_times, self.departure_bytes):
            if t > t1:
                break
            idx = min(int(t / bin_size), n_bins - 1)
            totals[idx] += size
        centers = (np.arange(n_bins) + 0.5) * bin_size
        return centers, totals * 8.0 / bin_size


@dataclass
class SchemeResult:
    """Summary row produced by the experiment runner for one scheme."""

    scheme: str
    throughput_bps: float
    utilization: float
    delay_p95_ms: float
    delay_mean_ms: float
    queuing_p95_ms: float = 0.0
    extra: dict = field(default_factory=dict)

    def as_row(self) -> Sequence:
        return (self.scheme, self.throughput_bps, self.utilization,
                self.delay_p95_ms, self.delay_mean_ms)
