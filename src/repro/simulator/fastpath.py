"""The batched ACK-processing knob.

``REPRO_BATCH_ACKS=1`` switches the simulator onto a fused per-ACK fast path:
the sender's ACK bookkeeping, the congestion controller's window update, the
ABC router's estimator/marking pipeline and the per-hop forwarding are
collapsed into flat, call-free code over the same state (see
``docs/ARCHITECTURE.md`` § "Metro scale").

Contract
--------
The fast path produces **bit-identical simulation results** — run summaries,
per-flow statistics, link counters, window trajectories — for every scheme
(`tests/test_batched_ack.py` enforces this differentially).  It is *not*
event-trace identical: the lazily re-armed RTO timer fires occasional no-op
bookkeeping events that the classic path does not, so the golden per-event
trace in ``tests/test_engine_golden_trace.py`` is pinned to the classic path.

Components read the knob **at construction time** (``Scenario``, ``Sender``,
``Receiver``, ``ABCRouterQdisc``); use :func:`override` around scenario
construction *and* execution when toggling it programmatically.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

#: Environment variable that turns the batched ACK fast path on.
ENV_KNOB = "REPRO_BATCH_ACKS"

_TRUTHY = ("1", "true", "yes", "on")

#: Programmatic override; None defers to the environment.
_override: Optional[bool] = None


def enabled() -> bool:
    """True when the batched ACK fast path is active."""
    if _override is not None:
        return _override
    return os.environ.get(ENV_KNOB, "").strip().lower() in _TRUTHY


@contextmanager
def override(flag: Optional[bool]) -> Iterator[None]:
    """Force the knob on/off within a ``with`` block (None = no-op).

    Used by the differential tests and by job functions that carry the knob
    in their (picklable, cache-keyed) kwargs instead of the environment.
    """
    global _override
    if flag is None:
        yield
        return
    previous = _override
    _override = bool(flag)
    try:
        yield
    finally:
        _override = previous
