"""Link models: constant-rate, time-varying-rate and trace-driven links.

A link owns a qdisc, pulls packets from it when it has transmission capacity
and delivers them to the downstream node after a propagation delay.  Three
capacity models cover every experiment in the paper:

* :class:`ConstantRate` — wired links (e.g. the 12 Mbit/s drop-tail link in
  Fig. 11, the 24 Mbit/s fairness link in Fig. 3).
* :class:`SteppedRate` / :class:`SquareWaveRate` — step patterns used in
  Fig. 6 and Fig. 17.
* :class:`OpportunityLink` — Mahimahi-style trace-driven delivery
  opportunities for the cellular experiments (Figs. 1, 8, 9, 15, 16, 18).

The WiFi MAC link lives in :mod:`repro.wifi.mac`; it subclasses :class:`Link`
and adds A-MPDU batching and block ACKs.
"""

from __future__ import annotations

import bisect
import random
from typing import TYPE_CHECKING, Iterable, Optional, Protocol, Sequence

from repro.simulator import fastpath
from repro.simulator.engine import EventLoop
from repro.simulator.packet import MTU, Packet
from repro.simulator.qdisc import FifoQdisc, Qdisc

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.monitor import LinkMonitor


class Node(Protocol):
    """Anything that can receive packets from a link."""

    def receive(self, packet: Packet) -> None:  # pragma: no cover - protocol
        ...


# --------------------------------------------------------------------------
# Capacity models for rate-based links
# --------------------------------------------------------------------------
class CapacityModel:
    """Maps simulated time to an instantaneous link rate in bits per second."""

    def rate_at(self, t: float) -> float:
        raise NotImplementedError

    def bits_between(self, t0: float, t1: float) -> float:
        """Total bit-capacity offered by the link over ``[t0, t1]``.

        The default implementation integrates :meth:`rate_at` with a 1 ms
        step; subclasses with closed forms override it.
        """
        if t1 <= t0:
            return 0.0
        step = 0.001
        total = 0.0
        t = t0
        while t < t1:
            dt = min(step, t1 - t)
            total += self.rate_at(t) * dt
            t += dt
        return total


class ConstantRate(CapacityModel):
    """Fixed-rate link."""

    def __init__(self, rate_bps: float):
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        self.rate_bps = rate_bps

    def rate_at(self, t: float) -> float:
        return self.rate_bps

    def bits_between(self, t0: float, t1: float) -> float:
        return max(t1 - t0, 0.0) * self.rate_bps


class SteppedRate(CapacityModel):
    """Piecewise-constant rate defined by ``(start_time, rate_bps)`` steps.

    The rate before the first step is the first step's rate.  Steps must be
    sorted by time.
    """

    def __init__(self, steps: Sequence[tuple[float, float]]):
        if not steps:
            raise ValueError("steps must not be empty")
        times = [t for t, _ in steps]
        if any(t1 < t0 for t0, t1 in zip(times, times[1:])):
            raise ValueError("steps must be sorted by time")
        if any(rate <= 0 for _, rate in steps):
            raise ValueError("rates must be positive")
        self._times = list(times)
        self._rates = [r for _, r in steps]

    def rate_at(self, t: float) -> float:
        idx = bisect.bisect_right(self._times, t) - 1
        if idx < 0:
            idx = 0
        return self._rates[idx]

    def bits_between(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0
        # Interior step boundaries via bisect instead of a linear scan.
        lo = bisect.bisect_right(self._times, t0)
        hi = bisect.bisect_left(self._times, t1)
        total = 0.0
        boundaries = [t0, *self._times[lo:hi], t1]
        for a, b in zip(boundaries, boundaries[1:]):
            total += self.rate_at(a) * (b - a)
        return total


class SquareWaveRate(CapacityModel):
    """Rate alternating between ``low`` and ``high`` every ``half_period`` s.

    Fig. 17 uses 12 ↔ 24 Mbit/s with a 500 ms half-period; the wave starts at
    ``high`` unless ``start_low`` is set.
    """

    def __init__(self, low_bps: float, high_bps: float, half_period: float,
                 start_low: bool = False):
        if low_bps <= 0 or high_bps <= 0 or half_period <= 0:
            raise ValueError("rates and half_period must be positive")
        self.low_bps = low_bps
        self.high_bps = high_bps
        self.half_period = half_period
        self.start_low = start_low

    def rate_at(self, t: float) -> float:
        phase = int(t / self.half_period) % 2
        first, second = ((self.low_bps, self.high_bps) if self.start_low
                         else (self.high_bps, self.low_bps))
        return first if phase == 0 else second

    def bits_between(self, t0: float, t1: float) -> float:
        """Closed form: whole half-periods plus the two partial edges.

        Replaces the generic 1 ms numerical integration (15 000 ``rate_at``
        calls for a 15 s window) with exact O(1) arithmetic.
        """
        if t1 <= t0:
            return 0.0
        return self._bits_from_zero(t1) - self._bits_from_zero(t0)

    def _bits_from_zero(self, t: float) -> float:
        """Exact capacity integral over ``[0, t]``."""
        if t <= 0.0:
            return 0.0
        h = self.half_period
        first, second = ((self.low_bps, self.high_bps) if self.start_low
                         else (self.high_bps, self.low_bps))
        n_halves = int(t / h)
        pair_bits = (first + second) * h
        total = (n_halves // 2) * pair_bits + (n_halves % 2) * first * h
        remainder = t - n_halves * h
        if remainder > 0.0:
            total += remainder * (first if n_halves % 2 == 0 else second)
        return total


# --------------------------------------------------------------------------
# Link base class
# --------------------------------------------------------------------------
class Link:
    """Base class: owns a qdisc, delivers packets downstream.

    Subclasses decide *when* packets leave the queue; this class handles the
    shared plumbing (enqueueing, drop accounting, propagation delay, delivery
    and monitoring hooks).
    """

    def __init__(self, env: EventLoop, qdisc: Optional[Qdisc] = None,
                 prop_delay: float = 0.0, name: str = "link",
                 dst: Optional[Node] = None, loss_rate: float = 0.0,
                 loss_seed: int = 0):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.env = env
        self.qdisc = qdisc if qdisc is not None else FifoQdisc()
        self.qdisc.attach(self)
        self.prop_delay = prop_delay
        self.name = name
        self.dst = dst
        self.monitor: Optional["LinkMonitor"] = None
        self.delivered_bytes = 0
        self.delivered_packets = 0
        self.dropped_packets = 0
        #: Packets handed to :meth:`send` (the per-link conservation law's
        #: left-hand side: arrived == delivered + queue drops + random-loss
        #: drops + backlog + in-transmission).
        self.arrived_packets = 0
        #: Packets discarded by the random-loss process (disjoint from the
        #: qdisc's queue-overflow/AQM drop counter).
        self.random_loss_packets = 0
        self.loss_rate = loss_rate
        self._loss_rng = random.Random(loss_seed)
        # Hot-path scheduling: with the batched fast path on, transmissions
        # and deliveries post handle-free events (identical heap entries —
        # same times, same sequence numbers — minus the EventHandle
        # allocation, which these fire-and-forget events never use), and
        # ``send``/``receive`` collapse to one flattened entry point.
        self._fastpath = fastpath.enabled()
        if self._fastpath:
            self._post = env.post
            self._post_at = env.post_at
            self.send = self._send_fast
            self.receive = self._send_fast
        else:
            self._post = env.schedule
            self._post_at = env.schedule_at
        # Fast-path only: when the downstream node declares itself
        # ``deliver_inline``-safe (it only *posts* future events, never
        # mutates shared state — e.g. a FlowDemux) and there is no
        # propagation delay to model, delivery invokes it synchronously
        # instead of bouncing through a zero-delay event.  Arrival order at
        # every stateful object is unchanged; only heap sequence numbers
        # shift (same divergence class as the lazy RTO timer).
        self._rx_inline = None
        if dst is not None:
            self.connect(dst)

    # ------------------------------------------------------------ wiring
    def connect(self, dst: Node) -> None:
        self.dst = dst
        self._rx_inline = (
            dst.receive if (self._fastpath and self.prop_delay == 0.0
                            and getattr(dst, "deliver_inline", False))
            else None)

    def set_monitor(self, monitor: "LinkMonitor") -> None:
        self.monitor = monitor

    # ------------------------------------------------------------ data path
    def send(self, packet: Packet) -> None:
        """Called by the upstream node to hand a packet to this link."""
        now = self.env.now
        self.arrived_packets += 1
        packet.hop_count += 1
        if self.loss_rate > 0.0 and self._loss_rng.random() < self.loss_rate:
            # Independent random loss (lossy-wireless model): the packet
            # vanishes before it ever reaches the queue.
            self.random_loss_packets += 1
            if self.monitor is not None:
                self.monitor.record_drop(now, packet)
            return
        accepted = self.qdisc.enqueue(packet, now)
        if not accepted:
            self.dropped_packets += 1
            if self.monitor is not None:
                self.monitor.record_drop(now, packet)
            return
        self._on_enqueue(now)

    # Links can be chained directly (link.dst = another link); the downstream
    # link's ``receive`` is simply its ``send``.
    def receive(self, packet: Packet) -> None:
        self.send(packet)

    def _send_fast(self, packet: Packet) -> None:
        # ``send`` with the clock read flattened; shadows both spellings.
        now = self.env._now
        self.arrived_packets += 1
        packet.hop_count += 1
        if self.loss_rate > 0.0 and self._loss_rng.random() < self.loss_rate:
            self.random_loss_packets += 1
            if self.monitor is not None:
                self.monitor.record_drop(now, packet)
            return
        if self.qdisc.enqueue(packet, now):
            self._on_enqueue(now)
        else:
            self.dropped_packets += 1
            if self.monitor is not None:
                self.monitor.record_drop(now, packet)

    def _on_enqueue(self, now: float) -> None:
        """Hook: subclasses kick their transmission machinery here."""
        raise NotImplementedError

    def _deliver(self, packet: Packet) -> None:
        """Ship a dequeued packet to the downstream node after propagation."""
        now = self.env.now
        self.delivered_bytes += packet.size
        self.delivered_packets += 1
        if self.monitor is not None:
            self.monitor.record_departure(now, packet)
        dst = self.dst
        if dst is not None:
            self._post(self.prop_delay, dst.receive, packet)

    @property
    def packets_in_transmission(self) -> int:
        """Packets dequeued but not yet delivered downstream.

        Trace-driven links deliver synchronously inside the delivery
        opportunity, so the base count is 0; :class:`RateLink` overrides it
        (a transmission spans ``size*8/rate`` of simulated time).  Used by
        the fuzzing invariants' packet-conservation check.
        """
        return 0

    # ------------------------------------------------------------ capacity
    def capacity_bps(self, now: float) -> float:
        """Instantaneous link capacity µ(t) exposed to explicit routers.

        The cellular experiments in the paper assume the router knows the
        underlying link capacity (§6.2); trace-driven links therefore report
        the smoothed opportunity rate, and rate-based links report the model
        rate.
        """
        raise NotImplementedError

    def offered_bits(self, t0: float, t1: float) -> float:
        """Total bit-capacity the link offered over ``[t0, t1]``.

        Used as the utilisation denominator.
        """
        raise NotImplementedError


class RateLink(Link):
    """A link whose transmissions are paced by a :class:`CapacityModel`.

    The transmission time of a packet is ``size*8 / rate_at(start)``; for the
    step patterns in the paper (which change at most every 500 ms) this is an
    excellent approximation.
    """

    def __init__(self, env: EventLoop, capacity: CapacityModel,
                 qdisc: Optional[Qdisc] = None, prop_delay: float = 0.0,
                 name: str = "rate-link", dst: Optional[Node] = None,
                 loss_rate: float = 0.0, loss_seed: int = 0):
        super().__init__(env, qdisc=qdisc, prop_delay=prop_delay, name=name,
                         dst=dst, loss_rate=loss_rate, loss_seed=loss_seed)
        self.capacity = capacity
        self._busy = False
        if self._fastpath:
            self._finish_transmission = self._finish_transmission_fast

    @property
    def packets_in_transmission(self) -> int:
        return 1 if self._busy else 0

    def _on_enqueue(self, now: float) -> None:
        if not self._busy:
            self._start_transmission()

    def _start_transmission(self) -> None:
        now = self.env.now
        packet = self.qdisc.dequeue(now)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        rate = self.capacity.rate_at(now)
        tx_time = packet.size * 8.0 / rate
        self._post(tx_time, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        self._deliver(packet)
        self._start_transmission()

    def _finish_transmission_fast(self, packet: Packet) -> None:
        # _deliver + _start_transmission fused: same statements, same order,
        # minus the call frames and the monitor/clock indirections.
        env = self.env
        now = env._now
        size = packet.size
        self.delivered_bytes += size
        self.delivered_packets += 1
        monitor = self.monitor
        if monitor is not None:
            monitor.departure_times.append(now)
            monitor.departure_bytes.append(size)
        rx = self._rx_inline
        if rx is not None:
            rx(packet)
        else:
            dst = self.dst
            if dst is not None:
                env.post(self.prop_delay, dst.receive, packet)
        nxt = self.qdisc.dequeue(now)
        if nxt is None:
            self._busy = False
            return
        env.post(nxt.size * 8.0 / self.capacity.rate_at(now),
                 self._finish_transmission, nxt)

    def capacity_bps(self, now: float) -> float:
        return self.capacity.rate_at(now)

    def offered_bits(self, t0: float, t1: float) -> float:
        return self.capacity.bits_between(t0, t1)


class OpportunityLink(Link):
    """Mahimahi-style trace-driven link.

    The trace is a sequence of delivery-opportunity timestamps (seconds).
    Each opportunity can carry up to :data:`~repro.simulator.packet.MTU`
    bytes; opportunities that find the queue empty are wasted, exactly as in
    Mahimahi.  The trace is replayed cyclically when the simulation outlives
    it.
    """

    def __init__(self, env: EventLoop, opportunity_times: Iterable[float],
                 qdisc: Optional[Qdisc] = None, prop_delay: float = 0.0,
                 name: str = "cell-link", dst: Optional[Node] = None,
                 bytes_per_opportunity: int = MTU,
                 capacity_window: float = 0.1,
                 loss_rate: float = 0.0, loss_seed: int = 0):
        super().__init__(env, qdisc=qdisc, prop_delay=prop_delay, name=name,
                         dst=dst, loss_rate=loss_rate, loss_seed=loss_seed)
        times = sorted(float(t) for t in opportunity_times)
        if not times:
            raise ValueError("opportunity_times must not be empty")
        if times[0] < 0:
            raise ValueError("opportunity times must be non-negative")
        self._times = times
        self._trace_span = max(times[-1], 1e-3)
        self.bytes_per_opportunity = bytes_per_opportunity
        self.capacity_window = capacity_window
        self._next_index = 0
        self._cycle = 0
        self._started = False
        if self._fastpath:
            self._fire_opportunity = self._fire_opportunity_fast

    # ------------------------------------------------------------ trace math
    def _opportunity_time(self, index: int) -> float:
        """Absolute time of the index-th opportunity (cyclic replay)."""
        cycle, offset = divmod(index, len(self._times))
        return cycle * self._trace_span + self._times[offset]

    def _index_at(self, t: float) -> int:
        """Number of opportunities with timestamp strictly before ``t``."""
        if t <= 0:
            return 0
        span = self._trace_span
        if t < span:
            # Fast path for the first replay cycle (``divmod(t, span)`` is
            # exactly ``(0, t)`` here, so this is bit-identical).
            return bisect.bisect_left(self._times, t)
        cycle, within = divmod(t, span)
        return int(cycle) * len(self._times) + bisect.bisect_left(self._times, within)

    def start(self) -> None:
        """Begin replaying the trace.  Called by the scenario at time 0."""
        if self._started:
            return
        self._started = True
        self._schedule_next_opportunity()

    def _schedule_next_opportunity(self) -> None:
        when = self._opportunity_time(self._next_index)
        self._post_at(when, self._fire_opportunity, self._next_index)
        self._next_index += 1

    def _fire_opportunity(self, index: int) -> None:
        now = self.env.now
        budget = self.bytes_per_opportunity
        while budget > 0:
            head = self.qdisc.peek()
            if head is None or head.size > budget:
                break
            packet = self.qdisc.dequeue(now)
            if packet is None:
                break
            budget -= packet.size
            self._deliver(packet)
        if self.monitor is not None:
            self.monitor.record_opportunity(now, self.bytes_per_opportunity)
        self._schedule_next_opportunity()

    def _fire_opportunity_fast(self, index: int) -> None:
        # _fire_opportunity with peek, _deliver and the next-opportunity
        # scheduling flattened (same statements in the same order).
        env = self.env
        now = env._now
        budget = self.bytes_per_opportunity
        qdisc = self.qdisc
        peek = qdisc.peek
        monitor = self.monitor
        dequeue = qdisc.dequeue
        prop_delay = self.prop_delay
        rx = self._rx_inline
        dst = self.dst
        dst_receive = dst.receive if dst is not None else None
        post = env.post
        while budget > 0:
            head = peek()
            if head is None or head.size > budget:
                break
            packet = dequeue(now)
            if packet is None:
                break
            size = packet.size
            budget -= size
            self.delivered_bytes += size
            self.delivered_packets += 1
            if monitor is not None:
                monitor.departure_times.append(now)
                monitor.departure_bytes.append(size)
            if rx is not None:
                rx(packet)
            elif dst_receive is not None:
                post(prop_delay, dst_receive, packet)
        if monitor is not None:
            monitor.opportunity_times.append(now)
            monitor.opportunity_bytes += self.bytes_per_opportunity
        # _opportunity_time inlined (integer divmod, identical expression).
        next_index = self._next_index
        times = self._times
        cycle, offset = divmod(next_index, len(times))
        env.post_at(cycle * self._trace_span + times[offset],
                    self._fire_opportunity, next_index)
        self._next_index = next_index + 1

    def _on_enqueue(self, now: float) -> None:
        # Opportunities are clocked by the trace, not by arrivals.
        if not self._started:
            self.start()

    # ------------------------------------------------------------ capacity
    def capacity_bps(self, now: float) -> float:
        """Opportunity rate over the trailing ``capacity_window`` seconds."""
        return self.capacity_in_window(now - self.capacity_window, now)

    def capacity_in_window(self, t0: float, t1: float) -> float:
        """Average opportunity rate (bps) over ``[t0, t1]``."""
        t0 = max(t0, 0.0)
        if t1 <= t0:
            return 0.0
        count = self._index_at(t1) - self._index_at(t0)
        return count * self.bytes_per_opportunity * 8.0 / (t1 - t0)

    def max_drain_interval(self, packets: int) -> float:
        """Worst-case time for ``packets`` consecutive delivery opportunities.

        A FIFO queue bounded at ``B`` packets drains any admitted packet
        within ``B`` opportunities of its enqueue, so
        ``max_drain_interval(B)`` upper-bounds the per-packet queuing delay
        on this link.  Scans one full trace cycle (the replay is periodic,
        so every window of ``packets`` opportunities appears there).
        """
        if packets <= 0:
            raise ValueError("packets must be positive")
        worst = 0.0
        for i in range(len(self._times)):
            span = self._opportunity_time(i + packets) - self._opportunity_time(i)
            if span > worst:
                worst = span
        return worst

    def future_capacity_bps(self, now: float, horizon: float) -> float:
        """Capacity over ``[now, now+horizon]`` — used by PK-ABC (§6.6)."""
        return self.capacity_in_window(now, now + horizon)

    def offered_bits(self, t0: float, t1: float) -> float:
        count = self._index_at(t1) - self._index_at(t0)
        return count * self.bytes_per_opportunity * 8.0
