"""Packet-level discrete-event network simulator.

This subpackage is the substrate every experiment runs on.  It provides:

* :class:`~repro.simulator.engine.EventLoop` — the discrete-event scheduler.
* :class:`~repro.simulator.packet.Packet` — data and ACK packets with ECN bits.
* Queueing disciplines (:mod:`repro.simulator.qdisc`) that routers attach to
  their outgoing links.
* Link models (:mod:`repro.simulator.link`): constant rate, piecewise rate and
  trace-driven (Mahimahi-style) delivery opportunities.
* Endpoints (:mod:`repro.simulator.endpoints`): window- or rate-based senders,
  receivers that echo congestion feedback, and traffic sources.
* Monitors (:mod:`repro.simulator.monitor`) that record per-packet delay and
  per-interval throughput.
* A high-level :class:`~repro.simulator.scenario.Scenario` builder that wires
  all of the above into the topologies used in the paper's experiments.
"""

from repro.simulator.engine import EventLoop
from repro.simulator.link import Link, OpportunityLink, RateLink
from repro.simulator.monitor import FlowStats, LinkMonitor
from repro.simulator.packet import ECN, Packet
from repro.simulator.qdisc import FifoQdisc, Qdisc
from repro.simulator.scenario import Scenario, ScenarioResult

__all__ = [
    "EventLoop",
    "Packet",
    "ECN",
    "Qdisc",
    "FifoQdisc",
    "Link",
    "RateLink",
    "OpportunityLink",
    "LinkMonitor",
    "FlowStats",
    "Scenario",
    "ScenarioResult",
]
