"""Packets, ACKs and the ECN codepoints that ABC re-purposes.

The paper (§5.1.2) re-interprets the two IP ECN bits so that ABC feedback can
be carried without new header fields:

========  =======  ==============================
ECT bit   CE bit   ABC interpretation
========  =======  ==============================
0         0        Non-ECN-capable transport
0         1        **Accelerate**  (classic ECT(1))
1         0        **Brake**       (classic ECT(0))
1         1        ECN congestion experienced
========  =======  ==============================

ABC senders transmit every data packet marked *accelerate* (``01``).  ABC
routers may flip the codepoint to *brake* (``10``) but never the other way
around, which is what makes the minimum accelerate fraction along a
multi-bottleneck path win (§3.1.2, "Multiple bottlenecks").  Legacy
ECN-capable routers still see an ECN-capable transport and still use ``11`` to
signal congestion, so classic ECN marks remain distinguishable from ABC
feedback.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

#: Default maximum transmission unit, in bytes.  Mahimahi models delivery
#: opportunities in MTU-sized quanta, and the paper's buffer sizes are given
#: in "MTU-sized packets", so everything defaults to 1500 bytes.
MTU = 1500

#: Size of a bare ACK in bytes (TCP/IP headers only).
ACK_SIZE = 40

_packet_ids = itertools.count()


class ECN(enum.IntEnum):
    """The four ECN codepoints (``ECT`` bit first, then ``CE``)."""

    NOT_ECT = 0b00
    ACCEL = 0b01   # ECT(1) — ABC "accelerate"
    BRAKE = 0b10   # ECT(0) — ABC "brake"
    CE = 0b11      # congestion experienced

    @property
    def is_ecn_capable(self) -> bool:
        """True when a legacy ECN router would treat the packet as ECN-capable."""
        return self in (ECN.ACCEL, ECN.BRAKE)


def apply_brake(codepoint: ECN) -> ECN:
    """Downgrade a codepoint to *brake*, respecting the one-way rule.

    Routers may turn an accelerate into a brake but must never upgrade a brake
    (or touch CE / Not-ECT packets).
    """
    if codepoint == ECN.ACCEL:
        return ECN.BRAKE
    return codepoint


def apply_ce(codepoint: ECN) -> ECN:
    """Apply a classic ECN congestion mark (used by legacy AQM routers)."""
    if codepoint.is_ecn_capable:
        return ECN.CE
    return codepoint


@dataclass(slots=True)
class Packet:
    """A data packet travelling through the simulator.

    Attributes
    ----------
    flow_id:
        Identifier of the flow the packet belongs to.
    seq:
        Sequence number, in packets, assigned by the sender.
    size:
        Size in bytes (headers included).
    ecn:
        Current ECN codepoint.  ABC data packets start as :attr:`ECN.ACCEL`.
    sent_time:
        Simulated time at which the sender transmitted the packet.
    is_retransmission:
        True when this packet is a retransmission of an earlier sequence
        number (retransmissions are excluded from RTT sampling).
    abc_capable:
        True for packets whose sender speaks ABC; routers use this to steer
        packets into the ABC or non-ABC queue (§5.2).
    meta:
        Scheme-specific in-band fields.  XCP/RCP/VCP store their multi-bit
        congestion headers here (the paper's point is precisely that ABC does
        *not* need such fields).
    """

    flow_id: int
    seq: int
    size: int = MTU
    ecn: ECN = ECN.NOT_ECT
    sent_time: float = 0.0
    is_retransmission: bool = False
    abc_capable: bool = False
    enqueue_time: float = 0.0
    dequeue_time: float = 0.0
    total_queuing_delay: float = 0.0
    hop_count: int = 0
    meta: dict[str, Any] = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def queuing_delay(self) -> float:
        """Queuing delay experienced at the most recent bottleneck hop."""
        return max(self.dequeue_time - self.enqueue_time, 0.0)


@dataclass(slots=True)
class Ack:
    """An acknowledgement flowing back to the sender.

    The receiver echoes both the classic ECN congestion signal (``ece``) and
    the ABC accelerate/brake bit (``accel``), mirroring the paper's use of the
    ECE flag and the re-purposed NS bit (§5.1.2).
    """

    flow_id: int
    seq: int
    size: int = ACK_SIZE
    accel: bool = True
    ece: bool = False
    data_sent_time: float = 0.0
    data_size: int = MTU
    ack_sent_time: float = 0.0
    cumulative_ack: int = 0
    ecn: ECN = ECN.NOT_ECT
    meta: dict[str, Any] = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_packet_ids))

    # ACKs traverse (possibly trace-driven) reverse links, so they carry the
    # same bookkeeping fields as data packets.
    sent_time: float = 0.0
    enqueue_time: float = 0.0
    dequeue_time: float = 0.0
    total_queuing_delay: float = 0.0
    is_retransmission: bool = False
    abc_capable: bool = False
    hop_count: int = 0

    @property
    def is_ack(self) -> bool:
        return True


def is_ack(packet: object) -> bool:
    """True when ``packet`` is an :class:`Ack` (data packets lack ``is_ack``)."""
    return isinstance(packet, Ack)


class PacketPool:
    """Freelist recycling :class:`Packet` and :class:`Ack` objects.

    The per-packet pipeline allocates one ``Packet`` per transmission and one
    ``Ack`` per delivery; at hot-path event rates that allocation churn is
    measurable.  The sender acquires data packets here and the receiver
    releases them once their fields have been copied into the flow statistics
    (and vice versa for ACKs), so each object's lifetime ends at a single
    well-defined point and recycling cannot alias a live reference.

    Determinism: ``acquire_*`` resets *every* field to exactly what the
    corresponding constructor call would produce — including a fresh ``uid``
    and the caller-supplied ``meta`` dict (never a cleared old one, since
    in-band ``meta`` dicts may outlive their packet via
    :class:`AckFeedback`).  Pooling therefore changes which Python object
    carries the data, never the data itself.
    """

    __slots__ = ("max_size", "_packets", "_acks", "reused", "created")

    def __init__(self, max_size: int = 2048):
        self.max_size = max_size
        self._packets: list[Packet] = []
        self._acks: list[Ack] = []
        self.reused = 0
        self.created = 0

    # ------------------------------------------------------------ packets
    def acquire_packet(self, flow_id: int, seq: int, size: int, ecn: ECN,
                       sent_time: float, is_retransmission: bool,
                       abc_capable: bool, meta: dict) -> Packet:
        pool = self._packets
        if pool:
            packet = pool.pop()
            self.reused += 1
            packet.flow_id = flow_id
            packet.seq = seq
            packet.size = size
            packet.ecn = ecn
            packet.sent_time = sent_time
            packet.is_retransmission = is_retransmission
            packet.abc_capable = abc_capable
            packet.enqueue_time = 0.0
            packet.dequeue_time = 0.0
            packet.total_queuing_delay = 0.0
            packet.hop_count = 0
            packet.meta = meta
            packet.uid = next(_packet_ids)
            return packet
        self.created += 1
        return Packet(flow_id=flow_id, seq=seq, size=size, ecn=ecn,
                      sent_time=sent_time, is_retransmission=is_retransmission,
                      abc_capable=abc_capable, meta=meta)

    def release_packet(self, packet: Packet) -> None:
        if len(self._packets) < self.max_size:
            self._packets.append(packet)

    # ------------------------------------------------------------ acks
    def acquire_ack(self, flow_id: int, seq: int, size: int, accel: bool,
                    ece: bool, data_sent_time: float, data_size: int,
                    ack_sent_time: float, cumulative_ack: int,
                    sent_time: float, meta: dict) -> Ack:
        pool = self._acks
        if pool:
            ack = pool.pop()
            self.reused += 1
            ack.flow_id = flow_id
            ack.seq = seq
            ack.size = size
            ack.accel = accel
            ack.ece = ece
            ack.data_sent_time = data_sent_time
            ack.data_size = data_size
            ack.ack_sent_time = ack_sent_time
            ack.cumulative_ack = cumulative_ack
            ack.ecn = ECN.NOT_ECT
            ack.meta = meta
            ack.uid = next(_packet_ids)
            ack.sent_time = sent_time
            ack.enqueue_time = 0.0
            ack.dequeue_time = 0.0
            ack.total_queuing_delay = 0.0
            ack.is_retransmission = False
            ack.abc_capable = False
            ack.hop_count = 0
            return ack
        self.created += 1
        return Ack(flow_id=flow_id, seq=seq, size=size, accel=accel, ece=ece,
                   data_sent_time=data_sent_time, data_size=data_size,
                   ack_sent_time=ack_sent_time, cumulative_ack=cumulative_ack,
                   sent_time=sent_time, meta=meta)

    def release_ack(self, ack: Ack) -> None:
        if len(self._acks) < self.max_size:
            self._acks.append(ack)


#: Process-wide pool shared by all senders/receivers (worker processes each
#: get their own copy, so pooled sweeps stay independent).
packet_pool = PacketPool()


@dataclass(slots=True)
class AckFeedback:
    """Normalised view of an ACK handed to congestion-control algorithms.

    Congestion controllers never see raw :class:`Ack` objects; the sender
    converts them so that window- and rate-based algorithms share one
    interface.
    """

    now: float
    rtt: Optional[float]
    bytes_acked: int
    accel: bool
    ece: bool
    packets_in_flight: int
    is_retransmission: bool = False
    sent_time: float = 0.0
    meta: dict[str, Any] = field(default_factory=dict)
