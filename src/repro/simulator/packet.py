"""Packets, ACKs and the ECN codepoints that ABC re-purposes.

The paper (§5.1.2) re-interprets the two IP ECN bits so that ABC feedback can
be carried without new header fields:

========  =======  ==============================
ECT bit   CE bit   ABC interpretation
========  =======  ==============================
0         0        Non-ECN-capable transport
0         1        **Accelerate**  (classic ECT(1))
1         0        **Brake**       (classic ECT(0))
1         1        ECN congestion experienced
========  =======  ==============================

ABC senders transmit every data packet marked *accelerate* (``01``).  ABC
routers may flip the codepoint to *brake* (``10``) but never the other way
around, which is what makes the minimum accelerate fraction along a
multi-bottleneck path win (§3.1.2, "Multiple bottlenecks").  Legacy
ECN-capable routers still see an ECN-capable transport and still use ``11`` to
signal congestion, so classic ECN marks remain distinguishable from ABC
feedback.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

#: Default maximum transmission unit, in bytes.  Mahimahi models delivery
#: opportunities in MTU-sized quanta, and the paper's buffer sizes are given
#: in "MTU-sized packets", so everything defaults to 1500 bytes.
MTU = 1500

#: Size of a bare ACK in bytes (TCP/IP headers only).
ACK_SIZE = 40

_packet_ids = itertools.count()


class ECN(enum.IntEnum):
    """The four ECN codepoints (``ECT`` bit first, then ``CE``)."""

    NOT_ECT = 0b00
    ACCEL = 0b01   # ECT(1) — ABC "accelerate"
    BRAKE = 0b10   # ECT(0) — ABC "brake"
    CE = 0b11      # congestion experienced

    @property
    def is_ecn_capable(self) -> bool:
        """True when a legacy ECN router would treat the packet as ECN-capable."""
        return self in (ECN.ACCEL, ECN.BRAKE)


def apply_brake(codepoint: ECN) -> ECN:
    """Downgrade a codepoint to *brake*, respecting the one-way rule.

    Routers may turn an accelerate into a brake but must never upgrade a brake
    (or touch CE / Not-ECT packets).
    """
    if codepoint == ECN.ACCEL:
        return ECN.BRAKE
    return codepoint


def apply_ce(codepoint: ECN) -> ECN:
    """Apply a classic ECN congestion mark (used by legacy AQM routers)."""
    if codepoint.is_ecn_capable:
        return ECN.CE
    return codepoint


@dataclass
class Packet:
    """A data packet travelling through the simulator.

    Attributes
    ----------
    flow_id:
        Identifier of the flow the packet belongs to.
    seq:
        Sequence number, in packets, assigned by the sender.
    size:
        Size in bytes (headers included).
    ecn:
        Current ECN codepoint.  ABC data packets start as :attr:`ECN.ACCEL`.
    sent_time:
        Simulated time at which the sender transmitted the packet.
    is_retransmission:
        True when this packet is a retransmission of an earlier sequence
        number (retransmissions are excluded from RTT sampling).
    abc_capable:
        True for packets whose sender speaks ABC; routers use this to steer
        packets into the ABC or non-ABC queue (§5.2).
    meta:
        Scheme-specific in-band fields.  XCP/RCP/VCP store their multi-bit
        congestion headers here (the paper's point is precisely that ABC does
        *not* need such fields).
    """

    flow_id: int
    seq: int
    size: int = MTU
    ecn: ECN = ECN.NOT_ECT
    sent_time: float = 0.0
    is_retransmission: bool = False
    abc_capable: bool = False
    enqueue_time: float = 0.0
    dequeue_time: float = 0.0
    total_queuing_delay: float = 0.0
    hop_count: int = 0
    meta: dict[str, Any] = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def queuing_delay(self) -> float:
        """Queuing delay experienced at the most recent bottleneck hop."""
        return max(self.dequeue_time - self.enqueue_time, 0.0)


@dataclass
class Ack:
    """An acknowledgement flowing back to the sender.

    The receiver echoes both the classic ECN congestion signal (``ece``) and
    the ABC accelerate/brake bit (``accel``), mirroring the paper's use of the
    ECE flag and the re-purposed NS bit (§5.1.2).
    """

    flow_id: int
    seq: int
    size: int = ACK_SIZE
    accel: bool = True
    ece: bool = False
    data_sent_time: float = 0.0
    data_size: int = MTU
    ack_sent_time: float = 0.0
    cumulative_ack: int = 0
    ecn: ECN = ECN.NOT_ECT
    meta: dict[str, Any] = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_packet_ids))

    # ACKs traverse (possibly trace-driven) reverse links, so they carry the
    # same bookkeeping fields as data packets.
    sent_time: float = 0.0
    enqueue_time: float = 0.0
    dequeue_time: float = 0.0
    total_queuing_delay: float = 0.0
    is_retransmission: bool = False
    abc_capable: bool = False
    hop_count: int = 0

    @property
    def is_ack(self) -> bool:
        return True


def is_ack(packet: object) -> bool:
    """True when ``packet`` is an :class:`Ack` (data packets lack ``is_ack``)."""
    return isinstance(packet, Ack)


@dataclass
class AckFeedback:
    """Normalised view of an ACK handed to congestion-control algorithms.

    Congestion controllers never see raw :class:`Ack` objects; the sender
    converts them so that window- and rate-based algorithms share one
    interface.
    """

    now: float
    rtt: Optional[float]
    bytes_acked: int
    accel: bool
    ece: bool
    packets_in_flight: int
    is_retransmission: bool = False
    sent_time: float = 0.0
    meta: dict[str, Any] = field(default_factory=dict)
