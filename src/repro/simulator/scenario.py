"""High-level scenario builder: wire senders, links and receivers together.

Every experiment in the paper boils down to a handful of topologies: one or
more flows sharing one bottleneck link, a two-bottleneck path (cellular uplink
plus downlink, or wireless plus wired), and mixes of ABC and non-ABC flows on
the same bottleneck.  :class:`Scenario` builds those topologies from simple
ingredients and returns a :class:`ScenarioResult` exposing the metrics the
paper reports (utilisation, per-packet delay percentiles, queuing-delay time
series, per-flow throughput).

Propagation delay is modelled with per-flow :class:`DelayHop` segments: half
of the flow's minimum RTT is spread over the forward path (split evenly
between the segments before, between and after the bottleneck links) and half
is spent on the ACK return path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.cc.base import CongestionControl
from repro.cellular.trace import CellularTrace
from repro.obs import metrics as obs_metrics
from repro.simulator import fastpath
from repro.simulator.endpoints import DelayHop, Receiver, Sender
from repro.simulator.engine import EventLoop
from repro.simulator.link import (CapacityModel, ConstantRate, Link,
                                  OpportunityLink, RateLink)
from repro.simulator.monitor import FlowStats, LinkMonitor
from repro.simulator.packet import MTU
from repro.simulator.qdisc import FifoQdisc, Qdisc
from repro.simulator.traffic import TrafficSource


class FlowDemux:
    """Routes packets leaving a shared link to the flow's next hop.

    With the batched fast path on (``REPRO_BATCH_ACKS=1``, see
    :mod:`repro.simulator.fastpath`) and an event loop to schedule on, routes
    whose next hop is a :class:`DelayHop` are precompiled to
    ``(delay, destination_callback, shifted)`` triples so a routed packet
    costs one dict lookup and one ``post`` call instead of a hop bounce
    through the event loop.  When the destination declares itself
    ``deliver_shifted``-safe (a :class:`~repro.simulator.endpoints.Receiver`
    — a per-flow leaf whose state nothing else observes mid-run), the post
    is elided entirely: the destination runs synchronously with the computed
    arrival time ``now + delay``, unless that time lies beyond the run
    horizon (the classic path would leave such an arrival event unfired).
    Scheduled times and per-object arrival orders are identical to the
    classic path's; only heap sequence numbers shift.
    """

    #: A demux only *posts* future events when handed a packet — it never
    #: mutates queue or flow state — so a link may invoke it synchronously
    #: at delivery time instead of bouncing through a zero-delay event (the
    #: fast path's links check this marker; arrival order at every stateful
    #: object is unchanged, only heap sequence numbers shift).
    deliver_inline = True

    def __init__(self, name: str = "demux", env=None):
        self.name = name
        self.routes: Dict[int, object] = {}
        self.default_route: Optional[object] = None
        self._fast: Dict[int, tuple] = {}
        if env is not None and fastpath.enabled():
            self._env = env
            self.receive = self._receive_fast

    def set_route(self, flow_id: int, next_hop) -> None:
        self.routes[flow_id] = next_hop
        if type(next_hop) is DelayHop and next_hop.dst is not None:
            dst = next_hop.dst
            if getattr(dst, "deliver_shifted", False):
                self._fast[flow_id] = (next_hop.delay,
                                       dst._receive_fast_at, True)
            else:
                self._fast[flow_id] = (next_hop.delay, dst.receive, False)
        else:
            self._fast.pop(flow_id, None)

    def receive(self, packet) -> None:
        hop = self.routes.get(packet.flow_id, self.default_route)
        if hop is None:
            return
        if hasattr(hop, "send"):
            hop.send(packet)
        else:
            hop.receive(packet)

    def _receive_fast(self, packet) -> None:
        fast = self._fast.get(packet.flow_id)
        if fast is None:
            FlowDemux.receive(self, packet)
            return
        env = self._env
        if fast[2]:
            when = env._now + fast[0]
            if when <= env._limit:
                fast[1](packet, when)
            else:
                # The classic arrival event would sit in the heap beyond the
                # run horizon and never fire; park it there the same way.
                env.post(fast[0], fast[1], packet, when)
        else:
            env.post(fast[0], fast[1], packet)


@dataclass
class Flow:
    """Handle returned by :meth:`Scenario.add_flow`."""

    flow_id: int
    sender: Sender
    receiver: Receiver
    links: List[Link] = field(default_factory=list)
    label: str = ""

    @property
    def cc(self) -> CongestionControl:
        return self.sender.cc

    @property
    def stats(self) -> FlowStats:
        return self.receiver.stats_for(self.flow_id)


class Scenario:
    """Builds and runs one simulation scenario."""

    def __init__(self, queue_sample_interval: float = 0.05):
        self.env = EventLoop()
        self.links: List[Link] = []
        self.flows: List[Flow] = []
        self.monitors: Dict[str, LinkMonitor] = {}
        self._demux: Dict[int, FlowDemux] = {}
        self._next_flow_id = 0
        self.queue_sample_interval = queue_sample_interval
        self.duration: float = 0.0

    # ------------------------------------------------------------ links
    def _register_link(self, link: Link, name: str) -> Link:
        monitor = LinkMonitor(name=name)
        link.set_monitor(monitor)
        demux = FlowDemux(name=f"{name}-demux", env=self.env)
        link.connect(demux)
        self._demux[id(link)] = demux
        self.monitors[name] = monitor
        self.links.append(link)
        return link

    def add_cellular_link(self, trace: Union[CellularTrace, Sequence[float]],
                          qdisc: Optional[Qdisc] = None,
                          name: Optional[str] = None,
                          loss_rate: float = 0.0,
                          loss_seed: int = 0) -> OpportunityLink:
        """Add a Mahimahi-style trace-driven bottleneck link.

        ``loss_rate`` adds independent random packet loss (a lossy wireless
        hop) on top of the queue-overflow drops; ``loss_seed`` seeds its RNG
        so runs stay deterministic.
        """
        if isinstance(trace, CellularTrace):
            times = trace.opportunity_times
            link_name = name or trace.name
        else:
            times = list(trace)
            link_name = name or f"cell-{len(self.links)}"
        link = OpportunityLink(self.env, times, qdisc=qdisc, name=link_name,
                               loss_rate=loss_rate, loss_seed=loss_seed)
        return self._register_link(link, link_name)

    def add_rate_link(self, capacity: Union[float, CapacityModel],
                      qdisc: Optional[Qdisc] = None,
                      name: Optional[str] = None,
                      loss_rate: float = 0.0,
                      loss_seed: int = 0) -> RateLink:
        """Add a rate-based link (constant or time-varying capacity)."""
        model = ConstantRate(capacity) if isinstance(capacity, (int, float)) else capacity
        link_name = name or f"link-{len(self.links)}"
        link = RateLink(self.env, model, qdisc=qdisc, name=link_name,
                        loss_rate=loss_rate, loss_seed=loss_seed)
        return self._register_link(link, link_name)

    def add_custom_link(self, link: Link, name: Optional[str] = None) -> Link:
        """Register an externally constructed link (e.g. a WiFi MAC link)."""
        link_name = name or link.name
        return self._register_link(link, link_name)

    def demux_for(self, link: Link) -> FlowDemux:
        return self._demux[id(link)]

    # ------------------------------------------------------------ flows
    def add_flow(self, cc: CongestionControl, links: Sequence[Link],
                 rtt: float = 0.1, start_time: float = 0.0,
                 source: Optional[TrafficSource] = None,
                 label: str = "", mss: int = MTU) -> Flow:
        """Add a flow whose data path traverses ``links`` in order.

        ``rtt`` is the flow's minimum round-trip time: half is spread across
        the forward path, half is the ACK return path.
        """
        if not links:
            raise ValueError("a flow must traverse at least one link")
        if rtt < 0:
            raise ValueError("rtt must be non-negative")
        flow_id = self._next_flow_id
        self._next_flow_id += 1

        sender = Sender(self.env, flow_id, cc, source=source,
                        start_time=start_time, mss=mss,
                        name=label or f"flow-{flow_id}")
        receiver = Receiver(self.env, name=f"recv-{flow_id}")

        forward_delay = rtt / 2.0
        n_segments = len(links) + 1
        segment_delay = forward_delay / n_segments

        # Sender → first link.
        first_hop = DelayHop(self.env, segment_delay, dst=links[0],
                             name=f"fwd-{flow_id}-0")
        sender.connect(first_hop)
        # Link i → link i+1, final link → receiver.
        for index, link in enumerate(links):
            demux = self.demux_for(link)
            if index + 1 < len(links):
                next_dst = links[index + 1]
            else:
                next_dst = receiver
            hop = DelayHop(self.env, segment_delay, dst=next_dst,
                           name=f"fwd-{flow_id}-{index + 1}")
            demux.set_route(flow_id, hop)
        # Receiver → sender (ACK path).
        ack_hop = DelayHop(self.env, rtt / 2.0, dst=sender, name=f"ack-{flow_id}")
        receiver.connect(ack_hop)

        flow = Flow(flow_id=flow_id, sender=sender, receiver=receiver,
                    links=list(links), label=label or f"flow-{flow_id}")
        self.flows.append(flow)
        return flow

    # ------------------------------------------------------------ running
    def _sample_queues(self) -> None:
        now = self.env.now
        for link in self.links:
            if link.monitor is not None:
                link.monitor.record_queue(now, link.qdisc.backlog_packets)
        if now + self.queue_sample_interval <= self.duration:
            self.env.schedule(self.queue_sample_interval, self._sample_queues)

    def run(self, duration: float) -> "ScenarioResult":
        """Run the scenario for ``duration`` seconds and collect results."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.duration = duration
        for link in self.links:
            starter = getattr(link, "start", None)
            if starter is not None:
                starter()
        for flow in self.flows:
            flow.sender.start()
        if self.queue_sample_interval > 0:
            self.env.schedule(0.0, self._sample_queues)
        self.env.run(until=duration)
        if obs_metrics.enabled():
            obs_metrics.harvest_scenario(self)
        return ScenarioResult(self)


class ScenarioResult:
    """Metrics view over a finished :class:`Scenario`."""

    def __init__(self, scenario: Scenario):
        self.scenario = scenario
        self.duration = scenario.duration

    # ------------------------------------------------------------ flows
    def flow(self, index_or_flow: Union[int, Flow]) -> Flow:
        if isinstance(index_or_flow, Flow):
            return index_or_flow
        return self.scenario.flows[index_or_flow]

    def flow_stats(self, flow: Union[int, Flow]) -> FlowStats:
        return self.flow(flow).stats

    def flow_throughput_bps(self, flow: Union[int, Flow],
                            t0: float = 0.0, t1: Optional[float] = None) -> float:
        t1 = self.duration if t1 is None else t1
        return self.flow_stats(flow).throughput_bps(t0, t1)

    def flow_delay_p95_ms(self, flow: Union[int, Flow],
                          kind: str = "one_way") -> float:
        return self.flow_stats(flow).delay_percentile(95, kind=kind) * 1000.0

    def flow_delay_mean_ms(self, flow: Union[int, Flow],
                           kind: str = "one_way") -> float:
        return self.flow_stats(flow).mean_delay(kind=kind) * 1000.0

    def _aggregate_delays(self, kind: str = "one_way"):
        import numpy as np
        samples = [flow.stats.delays(kind) for flow in self.scenario.flows]
        samples = [s for s in samples if s.size]
        if not samples:
            return np.array([])
        return np.concatenate(samples)

    def aggregate_delay_percentile_ms(self, pct: float = 95.0,
                                      kind: str = "one_way") -> float:
        """Delay percentile over all packets of all flows."""
        import numpy as np
        values = self._aggregate_delays(kind)
        if values.size == 0:
            return 0.0
        return float(np.percentile(values, pct)) * 1000.0

    def aggregate_delay_mean_ms(self, kind: str = "one_way") -> float:
        """Mean per-packet delay over all packets of all flows."""
        import numpy as np
        values = self._aggregate_delays(kind)
        if values.size == 0:
            return 0.0
        return float(np.mean(values)) * 1000.0

    def aggregate_throughput_bps(self, t0: float = 0.0,
                                 t1: Optional[float] = None) -> float:
        t1 = self.duration if t1 is None else t1
        return sum(self.flow_throughput_bps(f, t0, t1) for f in self.scenario.flows)

    # ------------------------------------------------------------ links
    def link_monitor(self, link_or_name: Union[Link, str]) -> LinkMonitor:
        if isinstance(link_or_name, str):
            return self.scenario.monitors[link_or_name]
        return self.scenario.monitors[link_or_name.name]

    def link_utilization(self, link: Link, t0: float = 0.0,
                         t1: Optional[float] = None) -> float:
        t1 = self.duration if t1 is None else t1
        offered = link.offered_bits(t0, t1)
        if offered <= 0:
            return 0.0
        delivered = self.link_monitor(link).delivered_bytes(t0, t1) * 8.0
        return min(max(delivered / offered, 0.0), 1.0)

    def link_drops(self, link: Link) -> int:
        return self.link_monitor(link).drops()

    def summary(self, link: Optional[Link] = None,
                warmup: float = 0.0) -> Dict[str, float]:
        """Convenience summary used by the experiment runner."""
        link = link if link is not None else self.scenario.links[0]
        return {
            "throughput_bps": self.aggregate_throughput_bps(t0=warmup),
            "utilization": self.link_utilization(link, t0=warmup),
            "delay_p95_ms": self.aggregate_delay_percentile_ms(95),
            "delay_mean_ms": self.aggregate_delay_mean_ms(),
            "queuing_p95_ms": self.aggregate_delay_percentile_ms(95, kind="queuing"),
            "drops": float(self.link_drops(link)),
        }
