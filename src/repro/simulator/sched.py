"""The event-scheduler backend knob.

``REPRO_SCHED=wheel`` switches :class:`~repro.simulator.engine.EventLoop`
construction onto the calendar-queue/timer-wheel backend
(:class:`~repro.simulator.engine.TimerWheelLoop`): near-future events land in
fixed-width time buckets (one ``list.append`` per schedule, one sort per
bucket at dispatch) instead of a binary heap, with a sorted overflow spill
for events beyond the wheel horizon.  ``REPRO_SCHED=heap`` (or unset) keeps
the classic heap backend.

Contract
--------
The wheel is **bit-for-bit event-sequence identical** to the heap: events
fire at the same simulated times in the same order (equal-time events in
insertion order), so every simulation result — golden traces included — is
unchanged.  ``tests/test_engine_golden_trace.py`` pins this against the
committed golden event trace, and ``tests/test_metro_golden.py`` pins the
golden metro city under both backends.

Like the batched-ACK knob (:mod:`repro.simulator.fastpath`), the backend is
read **at construction time**: ``EventLoop()`` dispatches to the selected
backend in ``__new__``; already-constructed loops keep their backend.  Use
:func:`override` around scenario construction *and* execution when toggling
programmatically.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

#: Environment variable selecting the scheduler backend.
ENV_KNOB = "REPRO_SCHED"

#: Recognised backend names.
BACKENDS = ("heap", "wheel")

#: Programmatic override; None defers to the environment.
_override: Optional[str] = None


def backend() -> str:
    """The active backend name: ``"heap"`` (default) or ``"wheel"``."""
    if _override is not None:
        return _override
    value = os.environ.get(ENV_KNOB, "").strip().lower()
    if not value:
        return "heap"
    if value not in BACKENDS:
        raise ValueError(
            f"{ENV_KNOB} must be one of {BACKENDS}, got {value!r}")
    return value


def wheel_enabled() -> bool:
    """True when new :class:`EventLoop` instances use the timer wheel."""
    return backend() == "wheel"


@contextmanager
def override(name: Optional[str]) -> Iterator[None]:
    """Force the backend within a ``with`` block (None = no-op).

    Used by the differential tests and by job functions that carry the knob
    in their kwargs instead of the environment.
    """
    global _override
    if name is None:
        yield
        return
    if name not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {name!r}")
    previous = _override
    _override = name
    try:
        yield
    finally:
        _override = previous
