"""Traffic sources: what data a flow has available to send.

The paper uses three offered-load patterns:

* **backlogged** flows generated with iperf (always have data) — most
  experiments;
* **application-limited** flows that generate data at a fixed rate
  (Fig. 13, 200 flows at an aggregate 1 Mbit/s);
* **short flows** of a fixed size (10 KB) arriving as a Poisson process
  (Fig. 12).

Traffic sources are deliberately passive: the sender asks how many bytes are
available and consumes them, and may ask when more data will show up so it can
schedule a wake-up.
"""

from __future__ import annotations

import math
from typing import Optional


class TrafficSource:
    """Interface for traffic sources."""

    def bytes_available(self, now: float) -> float:
        """Bytes the application has ready to send at time ``now``."""
        raise NotImplementedError

    def consume(self, nbytes: int, now: float) -> None:
        """Mark ``nbytes`` as handed to the transport."""
        raise NotImplementedError

    def next_data_time(self, now: float) -> Optional[float]:
        """Absolute time at which more data will become available.

        ``None`` means "never" (either the source is unlimited or finished).
        """
        return None

    def finished(self, now: float) -> bool:
        """True when the application will never produce more data."""
        return False


class BackloggedSource(TrafficSource):
    """A flow that always has data to send (iperf-style)."""

    def bytes_available(self, now: float) -> float:
        return math.inf

    def consume(self, nbytes: int, now: float) -> None:
        pass


class FixedSizeSource(TrafficSource):
    """A flow carrying exactly ``total_bytes`` (the 10 KB short flows)."""

    def __init__(self, total_bytes: int):
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        self.total_bytes = total_bytes
        self.sent_bytes = 0

    def bytes_available(self, now: float) -> float:
        return max(self.total_bytes - self.sent_bytes, 0)

    def consume(self, nbytes: int, now: float) -> None:
        self.sent_bytes += nbytes

    def finished(self, now: float) -> bool:
        return self.sent_bytes >= self.total_bytes


class RateLimitedSource(TrafficSource):
    """Application-limited flow generating data at ``rate_bps``.

    Data accrues continuously into a byte bucket capped at ``burst_bytes``
    so an idle period cannot be followed by an unbounded burst.
    """

    def __init__(self, rate_bps: float, burst_bytes: int = 30_000,
                 start_time: float = 0.0):
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self._credit = 0.0
        self._last_update = start_time

    def _accrue(self, now: float) -> None:
        if now > self._last_update:
            self._credit += (now - self._last_update) * self.rate_bps / 8.0
            self._credit = min(self._credit, float(self.burst_bytes))
            self._last_update = now

    def bytes_available(self, now: float) -> float:
        self._accrue(now)
        return self._credit

    def consume(self, nbytes: int, now: float) -> None:
        self._accrue(now)
        self._credit = max(self._credit - nbytes, 0.0)

    def next_data_time(self, now: float) -> Optional[float]:
        self._accrue(now)
        if self._credit >= 1.0:
            return now
        deficit_bytes = 1500 - self._credit
        return now + deficit_bytes * 8.0 / self.rate_bps


class OnOffSource(TrafficSource):
    """Backlogged during "on" intervals, silent otherwise.

    Used for the on-off Cubic cross traffic in Fig. 11.  ``schedule`` is a
    list of ``(start, stop)`` intervals during which the source is active.
    """

    def __init__(self, schedule: list[tuple[float, float]]):
        for start, stop in schedule:
            if stop <= start:
                raise ValueError("on-intervals must have stop > start")
        self.schedule = sorted(schedule)

    def _active(self, now: float) -> bool:
        return any(start <= now < stop for start, stop in self.schedule)

    def bytes_available(self, now: float) -> float:
        return math.inf if self._active(now) else 0.0

    def consume(self, nbytes: int, now: float) -> None:
        pass

    def next_data_time(self, now: float) -> Optional[float]:
        if self._active(now):
            return now
        upcoming = [start for start, _ in self.schedule if start > now]
        return min(upcoming) if upcoming else None

    def finished(self, now: float) -> bool:
        return all(stop <= now for _, stop in self.schedule)
