"""RCP's Zombie-List flow-count estimator (Ott, Lakshman & Wong, SRED).

RCP estimates the number of active flows in a queue by maintaining a small
"zombie list" of recently seen flow identifiers: each arriving packet is
compared against a randomly chosen zombie; a match ("hit") suggests few flows,
a mismatch ("miss") suggests many.  The hit probability ``p`` estimated with
an EWMA gives a flow-count estimate of ``1/p``.

The paper uses this estimator as the baseline weight-assignment strategy that
ABC's max-min approach is compared against in Fig. 12: equalising *average*
rates via flow counts over-serves queues that contain many short
(demand-limited) flows.
"""

from __future__ import annotations

import random
from typing import Hashable, List


class ZombieList:
    """SRED-style flow-count estimation from packet arrivals."""

    def __init__(self, size: int = 64, alpha: float = 0.02, seed: int = 0):
        if size <= 0:
            raise ValueError("size must be positive")
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.size = size
        self.alpha = alpha
        self._rng = random.Random(seed)
        self._zombies: List[Hashable] = []
        self._hit_probability = 0.0
        self.packets_seen = 0

    def observe(self, flow_key: Hashable) -> None:
        """Record one packet arrival from ``flow_key``."""
        self.packets_seen += 1
        if not self._zombies:
            self._zombies.append(flow_key)
            return
        idx = self._rng.randrange(len(self._zombies))
        hit = self._zombies[idx] == flow_key
        self._hit_probability = ((1.0 - self.alpha) * self._hit_probability
                                 + self.alpha * (1.0 if hit else 0.0))
        if hit:
            return
        # On a miss, with some probability overwrite the chosen zombie (or
        # grow the list while it is not full) so the list tracks the current
        # flow population.
        if len(self._zombies) < self.size:
            self._zombies.append(flow_key)
        elif self._rng.random() < 0.25:
            self._zombies[idx] = flow_key

    def estimated_flow_count(self) -> float:
        """Estimated number of active flows (≥ 1)."""
        if self._hit_probability <= 1e-6:
            return float(max(len(self._zombies), 1))
        return max(1.0 / self._hit_probability, 1.0)

    def reset(self) -> None:
        self._zombies.clear()
        self._hit_probability = 0.0
        self.packets_seen = 0
