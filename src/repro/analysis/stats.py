"""Seed-axis statistics for multi-seed sweeps.

The paper's headline numbers (Fig. 9's bars, Table 1, the Pareto scatters)
are point estimates from a single simulation seed.  This module turns the
per-seed metric dictionaries produced by a multi-seed
:class:`~repro.runtime.spec.SweepSpec` grid into :class:`SeedAggregate`
summaries — mean, sample standard deviation, a 95 % confidence interval on
the mean, and the min/max envelope — so every reported metric can carry an
error bar.

The confidence interval uses the two-sided Student-t critical value for
``n - 1`` degrees of freedom (exact table up to 30 df, the asymptotic 1.96
beyond), i.e. ``half-width = t.975(n-1) · s / sqrt(n)``.  With a single seed
the half-width is 0 and the mean **is** the seed's value bit-for-bit, which
is what lets the multi-seed entry points collapse to the legacy single-seed
output.

Typical use::

    pairs = spec.run_cells(executor)          # seeds axis > 1
    table = aggregate_cells(pairs)            # scheme -> trace -> metric -> SeedAggregate
    table["abc"]["Verizon-LTE-1"]["utilization"].mean
    table["abc"]["Verizon-LTE-1"]["utilization"].ci95
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

__all__ = [
    "SeedAggregate",
    "SeedResultSet",
    "aggregate_cells",
    "aggregate_metric_dicts",
    "aggregate_results",
    "aggregate_values",
    "result_metrics",
    "split_by_seed",
    "t_critical_95",
]

#: Two-sided 95 % Student-t critical values, indexed by degrees of freedom
#: (1-based).  Beyond 30 df the normal approximation (1.96) is used.
_T_TABLE_95: Tuple[float, ...] = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)

_Z_95 = 1.96


def t_critical_95(df: int) -> float:
    """Two-sided 95 % Student-t critical value for ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    if df <= len(_T_TABLE_95):
        return _T_TABLE_95[df - 1]
    return _Z_95


@dataclass(frozen=True)
class SeedAggregate:
    """Summary statistics of one metric across seeds.

    ``ci95`` is the *half-width* of the two-sided 95 % confidence interval on
    the mean (Student-t); ``ci_lo``/``ci_hi`` give the interval bounds.  With
    ``n == 1`` the stdev and half-width are 0 and ``mean`` equals the single
    observation exactly.
    """

    n: int
    mean: float
    stdev: float
    ci95: float
    min: float
    max: float

    @property
    def ci_lo(self) -> float:
        return self.mean - self.ci95

    @property
    def ci_hi(self) -> float:
        return self.mean + self.ci95

    def __format__(self, spec: str) -> str:
        spec = spec or ".3f"
        return f"{self.mean:{spec}} ± {self.ci95:{spec}}"

    def __str__(self) -> str:  # pragma: no cover - repr nicety
        return format(self)


def aggregate_values(values: Sequence[float]) -> SeedAggregate:
    """Aggregate one metric's per-seed observations into a :class:`SeedAggregate`.

    A single observation aggregates to itself (mean is the value bit-for-bit,
    stdev and CI half-width are 0), so single-seed sweeps lose nothing by
    going through the aggregation path.
    """
    values = [float(v) for v in values]
    if not values:
        raise ValueError("aggregate_values needs at least one observation")
    n = len(values)
    if n == 1:
        value = values[0]
        return SeedAggregate(n=1, mean=value, stdev=0.0, ci95=0.0,
                             min=value, max=value)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    stdev = math.sqrt(variance)
    half_width = t_critical_95(n - 1) * stdev / math.sqrt(n)
    return SeedAggregate(n=n, mean=mean, stdev=stdev, ci95=half_width,
                         min=min(values), max=max(values))


def result_metrics(result: Any) -> Dict[str, float]:
    """Pull the numeric fields out of one sweep-cell result.

    Works on any metrics dataclass (``SingleBottleneckResult``,
    ``WiFiSchemeResult``, ...) or a plain mapping; non-numeric fields
    (labels, ``extra`` dicts, arrays) are skipped.  Booleans are excluded —
    averaging them across seeds would silently turn a claim check into a
    vote.
    """
    if isinstance(result, Mapping):
        items = result.items()
    elif dataclasses.is_dataclass(result) and not isinstance(result, type):
        items = ((f.name, getattr(result, f.name))
                 for f in dataclasses.fields(result))
    else:
        items = vars(result).items()
    return {name: float(value) for name, value in items
            if isinstance(value, (int, float)) and not isinstance(value, bool)}


def aggregate_metric_dicts(dicts: Sequence[Mapping[str, float]]
                           ) -> Dict[str, SeedAggregate]:
    """Aggregate a list of per-seed metric dicts key-by-key.

    Every dict must expose the same keys (one simulation per seed produces
    the same metric set); a mismatch raises :class:`ValueError` instead of
    silently dropping a seed's observation.
    """
    dicts = list(dicts)
    if not dicts:
        raise ValueError("aggregate_metric_dicts needs at least one dict")
    keys = list(dicts[0])
    for index, d in enumerate(dicts[1:], start=1):
        if set(d) != set(keys):
            raise ValueError(
                f"per-seed metric dicts disagree on keys: seed index 0 has "
                f"{sorted(keys)}, index {index} has {sorted(d)}")
    return {key: aggregate_values([d[key] for d in dicts]) for key in keys}


def aggregate_results(results: Sequence[Any]) -> Dict[str, SeedAggregate]:
    """Aggregate the numeric fields of per-seed result objects."""
    return aggregate_metric_dicts([result_metrics(r) for r in results])


def split_by_seed(results: Sequence[Any], n_seeds: int) -> List[List[Any]]:
    """Regroup a flat seed-major result list into per-cell seed lists.

    Multi-seed entry points submit their jobs seed-major — all of seed 0's
    cells (in grid order), then all of seed 1's, and so on — and executors
    return results in submission order.  This inverts that layout:
    ``split_by_seed(results, k)[j]`` is grid cell ``j``'s results across the
    ``k`` seeds, in seed order, ready for :class:`SeedResultSet`.
    """
    results = list(results)
    if n_seeds <= 0 or (len(results) % n_seeds) != 0:
        raise ValueError(f"cannot split {len(results)} results into "
                         f"{n_seeds} equal seed blocks")
    span = len(results) // n_seeds
    return [[results[k * span + j] for k in range(n_seeds)]
            for j in range(span)]


class SeedResultSet:
    """Per-seed results of one sweep cell, readable like a single result.

    Multi-seed entry points return one of these per (scheme, trace) cell in
    place of the single result object.  It quacks like the underlying result:
    reading a numeric metric attribute (``set.utilization``) returns the
    across-seed **mean**, so single-seed consumers such as
    :func:`~repro.experiments.runner.sweep_averages` and the benchmark claim
    checks keep working unchanged.  The full distribution is available as

    * ``set.stats[name]`` / ``set.agg(name)`` — the metric's
      :class:`SeedAggregate` (mean, stdev, 95 % CI, min/max),
    * ``set.per_seed`` / ``set.seeds`` — the raw per-seed result objects in
      seed order.

    Non-numeric attributes (``scheme``, ``trace`` labels) are forwarded from
    the first seed's result.
    """

    def __init__(self, seeds: Sequence[int], results: Sequence[Any],
                 metrics: Any = None):
        seeds = tuple(seeds)
        results = tuple(results)
        if not results:
            raise ValueError("SeedResultSet needs at least one result")
        if len(seeds) != len(results):
            raise ValueError(
                f"got {len(seeds)} seeds but {len(results)} results")
        metrics_fn = metrics if metrics is not None else result_metrics
        self.seeds = seeds
        self.per_seed = results
        self.stats: Dict[str, SeedAggregate] = aggregate_metric_dicts(
            [metrics_fn(r) for r in results])

    def agg(self, name: str) -> SeedAggregate:
        """The :class:`SeedAggregate` of one metric."""
        return self.stats[name]

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        stats = self.__dict__.get("stats") or {}
        if name in stats:
            return stats[name].mean
        per_seed = self.__dict__.get("per_seed") or ()
        if per_seed:
            try:
                return getattr(per_seed[0], name)
            except AttributeError:
                pass
        raise AttributeError(
            f"{type(self).__name__} has no metric or forwarded attribute "
            f"{name!r}")

    def __len__(self) -> int:
        return len(self.per_seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (f"<SeedResultSet seeds={self.seeds} "
                f"metrics={sorted(self.stats)}>")


def aggregate_cells(pairs: Sequence[Tuple[Any, Any]]
                    ) -> Dict[str, Dict[str, Dict[str, SeedAggregate]]]:
    """Aggregate ``SweepSpec.run_cells()`` output over the seed axis.

    ``pairs`` is the list of ``(SweepCell, result)`` tuples a multi-seed grid
    produces.  Cells are grouped by ``(scheme, trace, overrides)`` — i.e.
    everything except the seed — and each group's numeric metrics are
    aggregated, giving ``out[scheme][trace][metric] -> SeedAggregate``.

    When the grid has several override mappings the trace key becomes
    ``"{trace}|{overrides}"`` so distinct cells never merge.
    """
    grouped: Dict[Tuple[str, str, tuple], List[Any]] = {}
    for cell, result in pairs:
        grouped.setdefault((cell.scheme, cell.trace, cell.overrides),
                           []).append(result)
    multiple_overrides = len({key[2] for key in grouped}) > 1
    out: Dict[str, Dict[str, Dict[str, SeedAggregate]]] = {}
    for (scheme, trace, overrides), results in grouped.items():
        label = trace
        if multiple_overrides:
            label = f"{trace}|{dict(overrides)!r}"
        out.setdefault(scheme, {})[label] = aggregate_results(results)
    return out
