"""Fairness metrics.

The paper reports Jain's fairness index for 2–32 competing ABC flows (§6.5)
and compares the convergence speed of ABC and Cubic flows via the standard
deviation of their per-run throughputs (Fig. 12).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def jain_fairness_index(allocations: Sequence[float]) -> float:
    """Jain, Durresi & Babic's fairness index.

    ``(Σx)² / (n · Σx²)`` — equals 1.0 when all allocations are identical and
    approaches ``1/n`` when one flow takes everything.
    """
    x = np.asarray(list(allocations), dtype=float)
    if x.size == 0:
        raise ValueError("allocations must not be empty")
    if np.any(x < 0):
        raise ValueError("allocations must be non-negative")
    total_sq = float(np.sum(x)) ** 2
    denom = x.size * float(np.sum(x * x))
    if denom == 0:
        return 1.0
    return total_sq / denom


def throughput_ratio(group_a: Sequence[float], group_b: Sequence[float]) -> float:
    """Ratio of mean throughputs between two groups of flows.

    Fig. 12's headline claim is that the difference in average throughput of
    ABC and Cubic flows stays under 5 %, i.e. this ratio stays within
    ``[0.95, 1.05]`` under ABC's max-min weight allocation.
    """
    a = np.asarray(list(group_a), dtype=float)
    b = np.asarray(list(group_b), dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError("both groups must be non-empty")
    mean_b = float(np.mean(b))
    if mean_b == 0:
        return float("inf")
    return float(np.mean(a)) / mean_b


def relative_std(values: Sequence[float]) -> float:
    """Coefficient of variation (std / mean), 0.0 for constant input."""
    x = np.asarray(list(values), dtype=float)
    if x.size == 0:
        raise ValueError("values must not be empty")
    m = float(np.mean(x))
    if m == 0:
        return 0.0
    return float(np.std(x)) / m
