"""Throughput, utilisation and delay metrics used across the experiments."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

import numpy as np


def utilization(delivered_bits: float, offered_bits: float) -> float:
    """Fraction of the link's offered capacity that carried useful traffic.

    Utilisation is clipped to ``[0, 1]`` — rounding in the opportunity
    accounting can push the raw ratio marginally above one.
    """
    if offered_bits <= 0:
        return 0.0
    return float(min(max(delivered_bits / offered_bits, 0.0), 1.0))


def percentile(values: Sequence[float], pct: float) -> float:
    """Percentile of a sequence (0.0 for an empty sequence)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.percentile(arr, pct))


def mean(values: Sequence[float]) -> float:
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.mean(arr))


def normalize_to_reference(results: Mapping[str, float],
                           reference: str) -> Dict[str, float]:
    """Normalise a metric dictionary to one scheme's value.

    The paper's summary table (§1) reports throughput and delay normalised to
    ABC; this helper produces that representation.
    """
    if reference not in results:
        raise KeyError(f"reference scheme {reference!r} missing from results")
    ref = results[reference]
    if ref == 0:
        raise ValueError("reference value must be non-zero")
    return {name: value / ref for name, value in results.items()}


def pareto_frontier(points: Iterable[tuple[str, float, float]]
                    ) -> list[tuple[str, float, float]]:
    """Return the Pareto-optimal subset of ``(name, delay, throughput)``.

    A point is on the frontier if no other point has both lower delay and
    higher throughput.  Fig. 8 draws this frontier over the prior schemes and
    shows ABC sitting outside it.
    """
    pts = list(points)
    frontier = []
    for name, delay, tput in pts:
        dominated = any(
            (other_delay <= delay and other_tput >= tput)
            and (other_delay < delay or other_tput > tput)
            for other_name, other_delay, other_tput in pts
            if other_name != name
        )
        if not dominated:
            frontier.append((name, delay, tput))
    return sorted(frontier, key=lambda item: item[1])


def is_outside_frontier(candidate: tuple[float, float],
                        frontier_points: Iterable[tuple[float, float]]) -> bool:
    """True when ``candidate = (delay, throughput)`` dominates the frontier.

    Used to assert the paper's qualitative claim that ABC sits outside the
    Pareto frontier of prior schemes: for every frontier point ABC either has
    lower delay with at least as much throughput, or more throughput with at
    most the same delay.
    """
    delay, tput = candidate
    for other_delay, other_tput in frontier_points:
        if other_delay <= delay and other_tput >= tput:
            return False
    return True
