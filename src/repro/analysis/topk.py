"""Space-Saving top-K heavy-hitter algorithm (Metwally, Agrawal & El Abbadi).

The ABC router's coexistence weight controller measures "the average rate of
the K largest flows in each queue" (§5.2) and the paper notes its
implementation uses the Space-Saving algorithm, which needs only O(K) space.
This is a faithful implementation: the structure keeps at most ``capacity``
counters; when a new key arrives and the table is full, the minimum counter is
evicted and the new key inherits its count (recorded as that key's maximum
possible error).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple


class SpaceSaving:
    """Approximate top-K frequency / volume counting in O(K) space."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._counts: Dict[Hashable, float] = {}
        self._errors: Dict[Hashable, float] = {}
        self.total = 0.0

    def update(self, key: Hashable, amount: float = 1.0) -> None:
        """Add ``amount`` (bytes, packets, ...) to ``key``'s counter."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self.total += amount
        if key in self._counts:
            self._counts[key] += amount
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = amount
            self._errors[key] = 0.0
            return
        # Evict the minimum counter; the newcomer inherits its count, which
        # bounds the overestimation error by that minimum.
        victim = min(self._counts, key=self._counts.__getitem__)
        min_count = self._counts.pop(victim)
        self._errors.pop(victim, None)
        self._counts[key] = min_count + amount
        self._errors[key] = min_count

    def top(self, k: int) -> List[Tuple[Hashable, float]]:
        """The ``k`` largest keys as ``(key, estimated_count)`` pairs."""
        items = sorted(self._counts.items(), key=lambda kv: kv[1], reverse=True)
        return items[:k]

    def estimate(self, key: Hashable) -> float:
        """Estimated count for ``key`` (0.0 if not tracked)."""
        return self._counts.get(key, 0.0)

    def error_bound(self, key: Hashable) -> float:
        """Maximum overestimation error for ``key``."""
        return self._errors.get(key, 0.0)

    def tracked_keys(self) -> List[Hashable]:
        return list(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def reset(self) -> None:
        self._counts.clear()
        self._errors.clear()
        self.total = 0.0
