"""Measurement and allocation utilities.

* :mod:`repro.analysis.metrics` — throughput, utilisation and delay metrics.
* :mod:`repro.analysis.fairness` — Jain's fairness index and convergence
  helpers.
* :mod:`repro.analysis.topk` — the Space-Saving heavy-hitter algorithm used by
  the ABC router's coexistence weight controller (§5.2).
* :mod:`repro.analysis.maxmin` — max-min fair allocation over flow demands.
* :mod:`repro.analysis.zombie` — RCP's Zombie-List flow-count estimator, the
  baseline weight-assignment strategy ABC is compared against in Fig. 12.
* :mod:`repro.analysis.stats` — seed-axis statistics (mean, stdev, 95 % CI)
  for multi-seed sweeps.
"""

from repro.analysis.fairness import jain_fairness_index
from repro.analysis.maxmin import max_min_allocation
from repro.analysis.metrics import normalize_to_reference, percentile, utilization
from repro.analysis.stats import (SeedAggregate, SeedResultSet,
                                  aggregate_cells, aggregate_metric_dicts,
                                  aggregate_results, aggregate_values,
                                  result_metrics, t_critical_95)
from repro.analysis.topk import SpaceSaving
from repro.analysis.zombie import ZombieList

__all__ = [
    "SeedAggregate",
    "SeedResultSet",
    "aggregate_cells",
    "aggregate_metric_dicts",
    "aggregate_results",
    "aggregate_values",
    "result_metrics",
    "t_critical_95",
    "jain_fairness_index",
    "max_min_allocation",
    "utilization",
    "percentile",
    "normalize_to_reference",
    "SpaceSaving",
    "ZombieList",
]
