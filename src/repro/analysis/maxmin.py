"""Max-min fair allocation over flow demands.

ABC's coexistence weight controller (§5.2) estimates the demand of every flow
sharing the bottleneck (top-K flows: measured rate inflated by X %; short
flows: their measured aggregate rate) and computes the max-min fair allocation
of the link capacity over those demands.  The weight of each queue is then the
total allocation of its flows.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping


def max_min_allocation(demands: Mapping[Hashable, float],
                       capacity: float) -> Dict[Hashable, float]:
    """Water-filling max-min fair allocation.

    Each flow receives ``min(demand, fair_share)`` where the fair share is
    raised iteratively as demand-limited flows leave capacity on the table.
    Flows with zero (or negative) demand receive zero.

    Parameters
    ----------
    demands:
        Mapping from flow key to demanded rate (any consistent unit).
    capacity:
        Total capacity to distribute (same unit as the demands).
    """
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    allocation: Dict[Hashable, float] = {k: 0.0 for k in demands}
    remaining = {k: max(d, 0.0) for k, d in demands.items() if d > 0}
    available = capacity

    while remaining and available > 1e-12:
        share = available / len(remaining)
        satisfied = {k: d for k, d in remaining.items() if d <= share}
        if not satisfied:
            # Every remaining flow can absorb the equal share.
            for k in remaining:
                allocation[k] += share
            available = 0.0
            break
        for k, d in satisfied.items():
            allocation[k] += d
            available -= d
            del remaining[k]
    return allocation


def queue_weights_from_allocation(allocation: Mapping[Hashable, float],
                                  queue_of: Mapping[Hashable, str],
                                  queues: tuple[str, str] = ("abc", "nonabc"),
                                  minimum_weight: float = 0.05) -> Dict[str, float]:
    """Convert per-flow allocations to per-queue scheduler weights.

    The weight of a queue is the fraction of the total allocation assigned to
    flows in that queue, floored at ``minimum_weight`` so a queue can never be
    starved completely (new flows must be able to ramp up).
    """
    totals = {q: 0.0 for q in queues}
    for key, value in allocation.items():
        queue = queue_of.get(key)
        if queue in totals:
            totals[queue] += value
    grand_total = sum(totals.values())
    if grand_total <= 0:
        return {q: 1.0 / len(queues) for q in queues}
    weights = {q: totals[q] / grand_total for q in queues}
    for q in queues:
        weights[q] = max(weights[q], minimum_weight)
    norm = sum(weights.values())
    return {q: w / norm for q, w in weights.items()}
