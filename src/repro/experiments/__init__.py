"""Experiment harnesses: one module per paper figure/table.

Each experiment function is pure Python (no plotting): it runs the relevant
simulations and returns the rows/series the corresponding figure or table in
the paper reports.  The benchmark harnesses under ``benchmarks/`` call these
functions and print the results; the integration tests assert the qualitative
claims (who wins, by roughly what factor, where crossovers fall).

Index (see DESIGN.md §4 for the full mapping):

* :mod:`repro.experiments.runner` — scheme registry and the single-bottleneck
  cellular runner shared by most experiments.
* :mod:`repro.experiments.timeseries` — Fig. 1 and Fig. 17 time series.
* :mod:`repro.experiments.feedback` — Fig. 2 dequeue- vs enqueue-rate ablation.
* :mod:`repro.experiments.fairness` — Fig. 3, the Jain-index experiment (§6.5).
* :mod:`repro.experiments.pareto` — Figs. 8, 9, 15, 16, 18 and Table 1.
* :mod:`repro.experiments.wifi_eval` — Figs. 4, 5, 10 and 14.
* :mod:`repro.experiments.coexistence` — Figs. 6, 7, 11, 12 and 13.
* :mod:`repro.experiments.oracle` — the PK-ABC comparison (§6.6).
* :mod:`repro.experiments.stability_eval` — Theorem 3.1 boundary sweep.
"""

from repro.experiments.runner import (SCHEME_NAMES, SingleBottleneckResult,
                                      make_scheme, run_cellular_sweep,
                                      run_single_bottleneck)

__all__ = [
    "SCHEME_NAMES",
    "SingleBottleneckResult",
    "make_scheme",
    "run_single_bottleneck",
    "run_cellular_sweep",
]
