"""Coexistence experiments: Figs. 6, 7, 11, 12 and 13.

* Fig. 6 — an ABC flow traversing an ABC wireless link (stepped rate) followed
  by a 12 Mbit/s wired drop-tail link: whichever of the two windows
  (``w_abc``, ``w_cubic``) is smaller controls the rate, and the other stays
  capped at 2× the in-flight packets.
* Fig. 11 — the same topology with on-off Cubic cross traffic on the wired
  link: ABC tracks the ideal rate (the min of the wireless rate and its fair
  share of the wired link).
* Fig. 7 / Fig. 12 — ABC and Cubic flows sharing an ABC bottleneck through the
  two-queue scheduler; Fig. 12 adds Poisson short flows and compares the
  max-min weight allocation against RCP's Zombie-List strategy.
* Fig. 13 — one backlogged ABC flow sharing the bottleneck with 200
  application-limited ABC flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.stats import (SeedAggregate, SeedResultSet,
                                  aggregate_metric_dicts, split_by_seed)
from repro.aqm import DropTailQdisc
from repro.cc import make_cc
from repro.cellular.synthetic import SyntheticTraceConfig, synthetic_trace
from repro.core.coexistence import (DualQueueABCQdisc, MaxMinWeightController,
                                    ZombieListWeightController)
from repro.core.params import ABCParams
from repro.runtime.executor import (SweepExecutor, SweepJob, get_executor,
                                    resolve_seeds)
from repro.core.router import ABCRouterQdisc
from repro.simulator.link import SteppedRate
from repro.simulator.scenario import Scenario
from repro.simulator.traffic import FixedSizeSource, OnOffSource, RateLimitedSource


# ---------------------------------------------------------------------------
# Fig. 6 / Fig. 11 — non-ABC bottlenecks on the path
# ---------------------------------------------------------------------------
@dataclass
class DualBottleneckTrace:
    """Time series of the Fig. 6 / Fig. 11 experiment.

    For multi-seed runs the arrays are across-seed means (trimmed to the
    shortest seed's sample count), ``n_seeds`` > 1, and ``seed_stats`` maps
    ``tracking_error`` to its :class:`~repro.analysis.stats.SeedAggregate`.
    """

    times: np.ndarray
    throughput_mbps: np.ndarray
    queuing_delay_ms: np.ndarray
    w_abc: np.ndarray
    w_cubic: np.ndarray
    wireless_rate_mbps: np.ndarray
    ideal_rate_mbps: np.ndarray
    tracking_error: float = 0.0
    n_seeds: int = 1
    seed_stats: Optional[Dict[str, SeedAggregate]] = None


def _default_wireless_steps(duration: float, period: float = 5.0,
                            rates_mbps: Sequence[float] = (18, 6, 14, 4, 10, 22, 8, 16)
                            ) -> SteppedRate:
    steps = []
    t = 0.0
    index = 0
    while t < duration:
        steps.append((t, rates_mbps[index % len(rates_mbps)] * 1e6))
        t += period
        index += 1
    return SteppedRate(steps)


def fig6_cell(duration: float, wired_mbps: float, rtt: float,
              sample_interval: float, cross_traffic: bool,
              cross_schedule: Optional[Sequence[tuple]] = None,
              seed: int = 0) -> DualBottleneckTrace:
    """One seed's run of the Fig. 6 / Fig. 11 experiment.

    Module-level with plain picklable kwargs so the entry points can route it
    through the sweep executor (pool fan-out + result cache).  The topology
    itself is deterministic — ``seed`` exists for seed-axis API uniformity
    with the other figures and to keep per-seed cache keys distinct.
    """
    del seed  # deterministic scenario; see docstring
    scenario = Scenario()
    wireless_capacity = _default_wireless_steps(duration)
    params = ABCParams()
    wireless = scenario.add_rate_link(wireless_capacity,
                                      qdisc=ABCRouterQdisc(params=params,
                                                           buffer_packets=500),
                                      name="wireless")
    wired = scenario.add_rate_link(wired_mbps * 1e6,
                                   qdisc=DropTailQdisc(buffer_packets=100),
                                   name="wired")
    abc_flow = scenario.add_flow(make_cc("abc", params=params),
                                 [wireless, wired], rtt=rtt, label="abc")

    cross_flows = []
    if cross_traffic:
        if cross_schedule is None:
            third = duration / 3.0
            cross_schedule = [(third, 2 * third), (2 * third + 1e-9, duration)]
        # One Cubic cross-traffic flow per on-interval keeps the arrival
        # pattern simple and mirrors the paper's on-off cross traffic.
        cross_flows.append(scenario.add_flow(
            make_cc("cubic"), [wired], rtt=rtt,
            source=OnOffSource(list(cross_schedule)), label="cross"))

    # Sample windows and rates while the simulation runs.
    samples: List[tuple] = []

    def _sample() -> None:
        now = scenario.env.now
        cc = abc_flow.cc
        samples.append((now, cc.w_abc, cc.w_nonabc,
                        wireless_capacity.rate_at(now)))
        if now + sample_interval <= duration:
            scenario.env.schedule(sample_interval, _sample)

    scenario.env.schedule(0.0, _sample)
    scenario.run(duration)

    times = np.array([s[0] for s in samples])
    w_abc = np.array([s[1] for s in samples])
    w_cubic = np.array([min(s[2], 10_000.0) for s in samples])
    wireless_rate = np.array([s[3] for s in samples]) / 1e6

    t_bins, tput = abc_flow.stats.throughput_timeseries(bin_size=sample_interval,
                                                        t1=duration)
    _, queuing = abc_flow.stats.queuing_delay_timeseries(bin_size=sample_interval)
    n = min(len(times), len(tput), len(queuing))

    # Ideal rate: min(wireless rate, fair share of the wired link).
    ideal = []
    for i in range(n):
        now = times[i]
        fair_share = wired_mbps
        if cross_traffic and any(start <= now < stop for start, stop in cross_schedule):
            fair_share = wired_mbps / 2.0
        ideal.append(min(wireless_rate[i], fair_share))
    ideal_arr = np.array(ideal)
    achieved = tput[:n] / 1e6
    with np.errstate(divide="ignore", invalid="ignore"):
        errors = np.abs(achieved - ideal_arr) / np.maximum(ideal_arr, 1e-9)
    # Ignore the first few seconds of ramp-up when scoring tracking accuracy.
    settled = errors[times[:n] > 5.0]
    tracking_error = float(np.mean(settled)) if settled.size else float("nan")

    return DualBottleneckTrace(
        times=times[:n],
        throughput_mbps=achieved,
        queuing_delay_ms=queuing[:n] * 1000.0,
        w_abc=w_abc[:n],
        w_cubic=w_cubic[:n],
        wireless_rate_mbps=wireless_rate[:n],
        ideal_rate_mbps=ideal_arr,
        tracking_error=tracking_error,
    )


def _combine_dual_bottleneck(per_seed: Sequence[DualBottleneckTrace],
                             seed_list: Sequence[int]) -> DualBottleneckTrace:
    """Average per-seed Fig. 6/11 traces into one mean-curve trace."""
    n = min(len(trace.times) for trace in per_seed)

    def mean_of(attr: str) -> np.ndarray:
        return np.mean([getattr(trace, attr)[:n] for trace in per_seed],
                       axis=0)

    stats = aggregate_metric_dicts(
        [{"tracking_error": trace.tracking_error} for trace in per_seed])
    return DualBottleneckTrace(
        times=per_seed[0].times[:n],
        throughput_mbps=mean_of("throughput_mbps"),
        queuing_delay_ms=mean_of("queuing_delay_ms"),
        w_abc=mean_of("w_abc"),
        w_cubic=mean_of("w_cubic"),
        wireless_rate_mbps=mean_of("wireless_rate_mbps"),
        ideal_rate_mbps=mean_of("ideal_rate_mbps"),
        tracking_error=stats["tracking_error"].mean,
        n_seeds=len(seed_list),
        seed_stats=stats,
    )


def fig6_nonabc_bottleneck(duration: float = 80.0, wired_mbps: float = 12.0,
                           rtt: float = 0.1, sample_interval: float = 0.25,
                           cross_traffic: bool = False,
                           cross_schedule: Optional[Sequence[tuple]] = None,
                           executor: Optional[SweepExecutor] = None,
                           jobs: Optional[int] = None,
                           cache_dir: Optional[str] = None,
                           seeds: Optional[Sequence[int]] = None
                           ) -> DualBottleneckTrace:
    """Run the wireless(ABC)+wired(drop-tail) experiment.

    With ``cross_traffic=True`` this is the Fig. 11 experiment: an on-off
    Cubic flow shares the wired link, so ABC's ideal rate becomes the minimum
    of the wireless rate and its fair share of the wired link.

    The run is routed through the sweep executor, so it honours
    ``REPRO_JOBS``/``REPRO_CACHE_DIR`` like the sweep figures.  The topology
    is deterministic; ``seeds=`` (or ``REPRO_SEEDS``) exists for API
    uniformity with the stochastic figures and returns the across-seed mean
    curves with ``seed_stats`` attached, exactly like
    :func:`~repro.experiments.timeseries.fig17_square_wave`.  Because
    :func:`fig6_cell` provably ignores its seed, the seed axis replicates a
    single simulation instead of running N identical ones.
    """
    seeds = resolve_seeds(seeds)
    seed_list = (0,) if seeds is None else seeds
    schedule = (None if cross_schedule is None
                else [tuple(interval) for interval in cross_schedule])
    tag = "fig11" if cross_traffic else "fig6"
    job = SweepJob(func=fig6_cell,
                   kwargs=dict(duration=duration, wired_mbps=wired_mbps,
                               rtt=rtt, sample_interval=sample_interval,
                               cross_traffic=cross_traffic,
                               cross_schedule=schedule, seed=0),
                   label=tag)
    result = get_executor(executor, jobs=jobs, cache_dir=cache_dir).run([job])[0]
    if len(seed_list) == 1:
        return result
    return _combine_dual_bottleneck([result] * len(seed_list), seed_list)


def fig11_cross_traffic(duration: float = 80.0, **kwargs) -> DualBottleneckTrace:
    """Fig. 11 is Fig. 6 plus on-off cross traffic on the wired link."""
    return fig6_nonabc_bottleneck(duration=duration, cross_traffic=True, **kwargs)


# ---------------------------------------------------------------------------
# Fig. 7 / Fig. 12 — sharing an ABC bottleneck with non-ABC flows
# ---------------------------------------------------------------------------
@dataclass
class CoexistenceResult:
    """Long-flow throughputs under the two-queue ABC scheduler."""

    abc_throughputs_mbps: List[float]
    cubic_throughputs_mbps: List[float]
    abc_queuing_p95_ms: float
    cubic_queuing_p95_ms: float
    weight_history: List[tuple] = field(default_factory=list)

    @property
    def mean_abc_mbps(self) -> float:
        return float(np.mean(self.abc_throughputs_mbps)) if self.abc_throughputs_mbps else 0.0

    @property
    def mean_cubic_mbps(self) -> float:
        return float(np.mean(self.cubic_throughputs_mbps)) if self.cubic_throughputs_mbps else 0.0

    @property
    def throughput_gap(self) -> float:
        """Relative difference between mean Cubic and mean ABC throughput."""
        denom = max(self.mean_abc_mbps, 1e-9)
        return (self.mean_cubic_mbps - self.mean_abc_mbps) / denom


def fig7_cell(link_mbps: float, duration: float, rtt: float, stagger: float,
              seed: int = 17) -> CoexistenceResult:
    """One seed's run of the Fig. 7 staggered-arrival experiment.

    Module-level (controller built inside) so the entry point can route it
    through the sweep executor with plain picklable kwargs.
    """
    return _run_shared_bottleneck(
        link_mbps=link_mbps, duration=duration, rtt=rtt,
        n_abc=2, n_cubic=2, abc_starts=(0.0, stagger),
        cubic_starts=(2 * stagger, 3 * stagger),
        controller=MaxMinWeightController(interval=1.0),
        short_flow_load=0.0, warmup=3 * stagger, seed=seed)


def fig7_coexistence_timeseries(link_mbps: float = 24.0, duration: float = 120.0,
                                rtt: float = 0.1, stagger: float = 30.0,
                                executor: Optional[SweepExecutor] = None,
                                jobs: Optional[int] = None,
                                cache_dir: Optional[str] = None,
                                seeds: Optional[Sequence[int]] = None):
    """Fig. 7: two ABC then two Cubic flows arrive one after another.

    Routed through the sweep executor.  With multiple ``seeds`` (argument or
    ``REPRO_SEEDS``) the return value becomes a
    :class:`~repro.analysis.stats.SeedResultSet` aggregating
    :func:`coexistence_metrics` across seeds (Fig. 7 runs no short flows, so
    the seed axis mirrors Fig. 12's API); a single/default seed returns the
    legacy :class:`CoexistenceResult`.  The seed only drives the Poisson
    short-flow process, which Fig. 7 disables — so the seed axis replicates
    one simulation instead of running N identical ones.
    """
    seeds = resolve_seeds(seeds)
    seed_list = (17,) if seeds is None else seeds
    job = SweepJob(func=fig7_cell,
                   kwargs=dict(link_mbps=link_mbps, duration=duration,
                               rtt=rtt, stagger=stagger, seed=17),
                   label="fig7")
    result = get_executor(executor, jobs=jobs, cache_dir=cache_dir).run([job])[0]
    if len(seed_list) == 1:
        return result
    return SeedResultSet(seed_list, [result] * len(seed_list),
                         metrics=coexistence_metrics)


def _run_shared_bottleneck(link_mbps: float, duration: float, rtt: float,
                           n_abc: int, n_cubic: int,
                           controller, short_flow_load: float,
                           abc_starts: Optional[Sequence[float]] = None,
                           cubic_starts: Optional[Sequence[float]] = None,
                           short_flow_bytes: int = 50_000,
                           warmup: float = 5.0, seed: int = 17
                           ) -> CoexistenceResult:
    params = ABCParams()
    scenario = Scenario()
    qdisc = DualQueueABCQdisc(params=params, buffer_packets=500,
                              controller=controller)
    link = scenario.add_rate_link(link_mbps * 1e6, qdisc=qdisc, name="shared")

    abc_flows = []
    for i in range(n_abc):
        start = abc_starts[i] if abc_starts else 0.0
        abc_flows.append(scenario.add_flow(make_cc("abc", params=params), [link],
                                           rtt=rtt, start_time=start,
                                           label=f"abc-{i}"))
    cubic_flows = []
    for i in range(n_cubic):
        start = cubic_starts[i] if cubic_starts else 0.0
        cubic_flows.append(scenario.add_flow(make_cc("cubic"), [link], rtt=rtt,
                                             start_time=start,
                                             label=f"cubic-{i}"))

    # Poisson arrivals of short non-ABC flows offering a fixed load.
    if short_flow_load > 0:
        rng = np.random.default_rng(seed)
        offered_bps = short_flow_load * link_mbps * 1e6
        arrival_rate = offered_bps / (short_flow_bytes * 8.0)
        t = warmup
        while t < duration:
            t += rng.exponential(1.0 / arrival_rate)
            if t >= duration:
                break
            scenario.add_flow(make_cc("cubic"), [link], rtt=rtt, start_time=t,
                              source=FixedSizeSource(short_flow_bytes),
                              label="short")

    scenario.run(duration)

    abc_tputs = [f.stats.throughput_bps(warmup, duration) / 1e6 for f in abc_flows]
    cubic_tputs = [f.stats.throughput_bps(warmup, duration) / 1e6 for f in cubic_flows]
    abc_q = [f.stats.delay_percentile(95, kind="queuing") * 1000 for f in abc_flows]
    cubic_q = [f.stats.delay_percentile(95, kind="queuing") * 1000 for f in cubic_flows]
    return CoexistenceResult(
        abc_throughputs_mbps=abc_tputs,
        cubic_throughputs_mbps=cubic_tputs,
        abc_queuing_p95_ms=float(np.mean(abc_q)) if abc_q else 0.0,
        cubic_queuing_p95_ms=float(np.mean(cubic_q)) if cubic_q else 0.0,
        weight_history=list(qdisc.weight_history),
    )


def coexistence_load_cell(load: float, strategy: str, link_mbps: float,
                          duration: float, rtt: float, n_long: int,
                          seed: int) -> CoexistenceResult:
    """One offered-load cell of the Fig. 12 sweep.

    The weight controller is built *inside* the cell from its ``strategy``
    name, so the job's kwargs stay plain picklable values.
    """
    if strategy == "maxmin":
        controller = MaxMinWeightController(interval=1.0)
    elif strategy == "zombie":
        controller = ZombieListWeightController(interval=1.0)
    else:
        raise ValueError("strategy must be 'maxmin' or 'zombie'")
    return _run_shared_bottleneck(
        link_mbps=link_mbps, duration=duration, rtt=rtt,
        n_abc=n_long, n_cubic=n_long, controller=controller,
        short_flow_load=load, seed=seed)


def coexistence_metrics(result: CoexistenceResult) -> Dict[str, float]:
    """The Fig. 12 metrics aggregated across seeds (properties included)."""
    return {
        "mean_abc_mbps": result.mean_abc_mbps,
        "mean_cubic_mbps": result.mean_cubic_mbps,
        "throughput_gap": result.throughput_gap,
        "abc_queuing_p95_ms": result.abc_queuing_p95_ms,
        "cubic_queuing_p95_ms": result.cubic_queuing_p95_ms,
    }


def fig12_offered_load_sweep(loads: Sequence[float] = (0.0625, 0.125, 0.25, 0.5),
                             strategy: str = "maxmin", link_mbps: float = 24.0,
                             duration: float = 40.0, rtt: float = 0.1,
                             n_long: int = 3, seed: int = 17,
                             executor: Optional[SweepExecutor] = None,
                             jobs: Optional[int] = None,
                             cache_dir: Optional[str] = None,
                             seeds: Optional[Sequence[int]] = None
                             ) -> Dict[float, CoexistenceResult]:
    """Fig. 12: long ABC and Cubic flows plus Poisson short flows.

    ``strategy`` selects the queue-weight controller: ``"maxmin"`` (the
    paper's approach) or ``"zombie"`` (RCP's flow-count equalisation, which
    over-serves the queue holding the short flows).

    The seed drives the Poisson short-flow arrival process, so with multiple
    ``seeds`` (argument or ``REPRO_SEEDS``) each load's value becomes a
    :class:`~repro.analysis.stats.SeedResultSet` aggregating
    :func:`coexistence_metrics` across arrival patterns; a single/default
    seed returns the legacy per-load :class:`CoexistenceResult`.
    """
    if strategy not in ("maxmin", "zombie"):
        raise ValueError("strategy must be 'maxmin' or 'zombie'")
    seeds = resolve_seeds(seeds)
    seed_list = (seed,) if seeds is None else seeds
    sweep_jobs = [SweepJob(func=coexistence_load_cell,
                           kwargs=dict(load=load, strategy=strategy,
                                       link_mbps=link_mbps, duration=duration,
                                       rtt=rtt, n_long=n_long, seed=s),
                           label=f"fig12/{strategy}/seed{s}/load{load:g}")
                  for s in seed_list for load in loads]
    results = get_executor(executor, jobs=jobs, cache_dir=cache_dir).run(sweep_jobs)
    if len(seed_list) == 1:
        return dict(zip(loads, results))
    groups = split_by_seed(results, len(seed_list))
    return {load: SeedResultSet(seed_list, groups[j],
                                metrics=coexistence_metrics)
            for j, load in enumerate(loads)}


# ---------------------------------------------------------------------------
# Fig. 13 — application-limited flows
# ---------------------------------------------------------------------------
@dataclass
class AppLimitedResult:
    utilization: float
    queuing_p95_ms: float
    backlogged_throughput_mbps: float
    app_limited_aggregate_mbps: float


def fig13_cell(num_app_limited: int, aggregate_app_rate_mbps: float,
               duration: float, rtt: float, seed: int) -> AppLimitedResult:
    """One seed's run of the Fig. 13 experiment (module-level sweep job).

    The seed drives the synthetic cellular trace, so the seed axis samples
    genuinely different capacity processes.
    """
    config = SyntheticTraceConfig(mean_rate_bps=12e6, min_rate_bps=2e6,
                                  max_rate_bps=24e6, volatility=0.2,
                                  outage_rate_per_s=0.0, name="app-limited")
    trace = synthetic_trace(config, duration, seed=seed)
    params = ABCParams()
    scenario = Scenario()
    link = scenario.add_cellular_link(trace,
                                      qdisc=ABCRouterQdisc(params=params,
                                                           buffer_packets=500),
                                      name="cell")
    backlogged = scenario.add_flow(make_cc("abc", params=params), [link],
                                   rtt=rtt, label="backlogged")
    per_flow_rate = aggregate_app_rate_mbps * 1e6 / num_app_limited
    app_flows = [scenario.add_flow(make_cc("abc", params=params), [link], rtt=rtt,
                                   source=RateLimitedSource(per_flow_rate),
                                   label=f"app-{i}")
                 for i in range(num_app_limited)]
    result = scenario.run(duration)
    aggregate = sum(result.flow_throughput_bps(f) for f in app_flows) / 1e6
    return AppLimitedResult(
        utilization=result.link_utilization(link),
        queuing_p95_ms=result.aggregate_delay_percentile_ms(95, kind="queuing"),
        backlogged_throughput_mbps=result.flow_throughput_bps(backlogged) / 1e6,
        app_limited_aggregate_mbps=aggregate,
    )


def fig13_app_limited(num_app_limited: int = 50,
                      aggregate_app_rate_mbps: float = 1.0,
                      duration: float = 30.0, rtt: float = 0.1,
                      seed: int = 23,
                      executor: Optional[SweepExecutor] = None,
                      jobs: Optional[int] = None,
                      cache_dir: Optional[str] = None,
                      seeds: Optional[Sequence[int]] = None):
    """Fig. 13: a backlogged ABC flow plus many application-limited ABC flows.

    The paper uses 200 application-limited flows; the default here is 50 (with
    the same 1 Mbit/s aggregate) to keep the runtime reasonable — the claim
    being tested (the backlogged flow still fills the link and delays stay
    low even though most flows cannot respond to accelerates) is unchanged.

    Routed through the sweep executor.  The seed regenerates the synthetic
    cellular trace, so with multiple ``seeds`` (argument or ``REPRO_SEEDS``)
    the return value becomes a
    :class:`~repro.analysis.stats.SeedResultSet` over genuinely different
    capacity processes; a single/default seed returns the legacy
    :class:`AppLimitedResult` bit-for-bit.
    """
    seeds = resolve_seeds(seeds)
    seed_list = (seed,) if seeds is None else seeds
    sweep_jobs = [SweepJob(func=fig13_cell,
                           kwargs=dict(num_app_limited=num_app_limited,
                                       aggregate_app_rate_mbps=aggregate_app_rate_mbps,
                                       duration=duration, rtt=rtt, seed=s),
                           label=f"fig13/seed{s}")
                  for s in seed_list]
    results = get_executor(executor, jobs=jobs, cache_dir=cache_dir).run(sweep_jobs)
    if len(seed_list) == 1:
        return results[0]
    return SeedResultSet(seed_list, results)
