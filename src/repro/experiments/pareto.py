"""Throughput/delay frontier experiments: Figs. 8, 9, 15, 16, 18 and Table 1.

These experiments all run one backlogged flow per scheme over trace-driven
cellular links and report utilisation against per-packet delay:

* Fig. 8 — scatter on a single downlink trace, a single uplink trace, and a
  two-bottleneck uplink+downlink path; the claim is that ABC sits outside the
  Pareto frontier of all prior schemes.
* Fig. 9 / Fig. 15 — utilisation, 95th-percentile delay and mean delay
  averaged across eight operator traces.
* Fig. 16 — the same sweep restricted to explicit schemes (XCP, XCPw, RCP,
  VCP).
* Fig. 18 — sensitivity to the propagation RTT (20/50/100/200 ms).
* Table 1 (§1) — throughput and delay normalised to ABC.

Every sweep here fans out through :class:`repro.runtime.SweepExecutor`; pass
``executor=`` (or ``jobs=``/``cache_dir=``) to parallelise or memoize the
grid, or set ``REPRO_JOBS``/``REPRO_CACHE_DIR`` in the environment.

Each entry point also takes ``seeds=`` (default: the ``REPRO_SEEDS``
environment variable).  With several seeds the synthetic traces are
regenerated per seed and every metric is reported as an across-seed
aggregate (mean, with the 95 % confidence interval available through the
returned :class:`~repro.analysis.stats.SeedResultSet`\\ s); with a single or
default seed the output is bit-for-bit the legacy point estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.metrics import is_outside_frontier, pareto_frontier
from repro.analysis.stats import SeedAggregate, SeedResultSet, split_by_seed
from repro.cellular.synthetic import synthetic_trace_set, uplink_downlink_pair
from repro.cellular.trace import CellularTrace
from repro.experiments.runner import (EXPLICIT_SCHEMES, SCHEME_NAMES,
                                      SingleBottleneckResult,
                                      group_seed_results, normalized_table,
                                      run_cellular_sweep, sweep_averages)
from repro.runtime.executor import (SweepExecutor, SweepJob, get_executor,
                                    resolve_seeds)
from repro.runtime.spec import SweepSpec, sweep_cell, validate_schemes
from repro.runtime.trace_store import register_trace

#: Scheme subset used by default for the heavier sweeps (everything).
DEFAULT_SCHEMES: Sequence[str] = SCHEME_NAMES


@dataclass
class ParetoPoint:
    scheme: str
    delay_p95_ms: float
    utilization: float
    throughput_mbps: float


@dataclass
class ParetoScatter:
    """One panel of Fig. 8.

    For a multi-seed run each point holds across-seed means and
    ``point_stats[scheme][metric]`` carries the full
    :class:`~repro.analysis.stats.SeedAggregate` (mean, stdev, 95 % CI,
    min/max) behind it; for single-seed runs ``point_stats`` is empty.
    """

    label: str
    points: List[ParetoPoint] = field(default_factory=list)
    point_stats: Dict[str, Dict[str, SeedAggregate]] = field(default_factory=dict)

    def frontier(self, exclude: str = "abc") -> List[tuple]:
        """Pareto frontier of every scheme except ``exclude``."""
        others = [(p.scheme, p.delay_p95_ms, p.utilization)
                  for p in self.points if p.scheme != exclude]
        return pareto_frontier(others)

    def abc_outside_frontier(self) -> bool:
        abc = next((p for p in self.points if p.scheme == "abc"), None)
        if abc is None:
            return False
        frontier = [(delay, util) for _, delay, util in self.frontier()]
        return is_outside_frontier((abc.delay_p95_ms, abc.utilization), frontier)


def _scatter_from_results(label: str,
                          results: Mapping[str, SingleBottleneckResult]
                          ) -> ParetoScatter:
    scatter = ParetoScatter(label=label)
    for scheme, res in results.items():
        scatter.points.append(ParetoPoint(
            scheme=scheme,
            delay_p95_ms=res.delay_p95_ms,
            utilization=res.utilization,
            throughput_mbps=res.throughput_bps / 1e6,
        ))
    return scatter


def _fig8_panel_links(duration: float, seed: int) -> Tuple[tuple, ...]:
    """The three Fig. 8 panels for one seed, traces as store refs."""
    uplink, downlink = uplink_downlink_pair(duration=duration, seed=seed)
    up_ref, down_ref = register_trace(uplink), register_trace(downlink)
    return (("downlink", down_ref, ()),
            ("uplink", up_ref, ()),
            ("uplink+downlink", up_ref, (down_ref,)))


def fig8_pareto(schemes: Sequence[str] = DEFAULT_SCHEMES,
                duration: float = 30.0, rtt: float = 0.1, seed: int = 11,
                executor: Optional[SweepExecutor] = None,
                jobs: Optional[int] = None,
                cache_dir: Optional[str] = None,
                seeds: Optional[Sequence[int]] = None
                ) -> Dict[str, ParetoScatter]:
    """Reproduce Fig. 8: downlink, uplink and uplink+downlink scatters.

    With multiple ``seeds`` (argument or ``REPRO_SEEDS``) the uplink/downlink
    trace pair is regenerated per seed; every scatter point is the
    across-seed mean and ``panel.point_stats`` carries the per-metric
    aggregates.  With a single seed ``s`` the output matches the legacy
    ``seed=s`` run.
    """
    schemes = list(schemes)
    validate_schemes(schemes)
    executor = get_executor(executor, jobs=jobs, cache_dir=cache_dir)
    seeds = resolve_seeds(seeds)
    seed_list = (seed,) if seeds is None else seeds

    sweep_jobs = []
    panel_labels: List[str] = []
    for s in seed_list:
        panel_links = _fig8_panel_links(duration, s)
        if not panel_labels:
            panel_labels = [label for label, _, _ in panel_links]
        # fig8's legacy `seed` only drives trace generation; the per-cell
        # simulation seed stays at the legacy 0 unless the seed axis is real.
        cell_seed = 0 if seeds is None or len(seeds) == 1 else s
        sweep_jobs += [SweepJob(func=sweep_cell,
                                kwargs=dict(scheme=str(sch).lower(),
                                            link_spec=link, rtt=rtt,
                                            duration=duration,
                                            extra_links=extras,
                                            seed=cell_seed),
                                label=f"seed{s}/{label}/{sch}")
                       for label, link, extras in panel_links
                       for sch in schemes]
    groups = split_by_seed(executor.run(sweep_jobs), len(seed_list))

    panels: Dict[str, ParetoScatter] = {}
    for p, label in enumerate(panel_labels):
        cells = {s: groups[p * len(schemes) + i]
                 for i, s in enumerate(schemes)}
        if len(seed_list) == 1:
            panels[label] = _scatter_from_results(
                label, {s: cells[s][0] for s in schemes})
        else:
            sets = {s: SeedResultSet(seed_list, cells[s]) for s in schemes}
            scatter = _scatter_from_results(label, sets)
            scatter.point_stats = {s: sets[s].stats for s in schemes}
            panels[label] = scatter
    return panels


def fig9_sweep(schemes: Sequence[str] = DEFAULT_SCHEMES,
               duration: float = 30.0, rtt: float = 0.1, seed: int = 1,
               traces: Optional[Mapping[str, CellularTrace]] = None,
               executor: Optional[SweepExecutor] = None,
               jobs: Optional[int] = None, cache_dir: Optional[str] = None,
               seeds: Optional[Sequence[int]] = None,
               trace_names: Optional[Sequence[str]] = None
               ) -> Dict[str, Dict[str, SingleBottleneckResult]]:
    """Reproduce Fig. 9 / Fig. 15: every scheme over the eight-trace set.

    With multiple ``seeds`` (argument or ``REPRO_SEEDS``) the synthetic
    trace set is regenerated per seed (unless ``traces`` is given, which
    pins it) and each (scheme, trace-name) value becomes a
    :class:`~repro.analysis.stats.SeedResultSet`; :func:`sweep_averages`
    then reports mean ± 95 % CI per scheme.  ``seeds=[s]`` is bit-for-bit
    identical to the legacy ``seed=s`` run (the trace set comes from ``s``,
    the per-cell simulation keeps the legacy seed 0), matching the
    single-seed semantics of :func:`fig8_pareto`/:func:`fig18_rtt_sensitivity`.

    ``trace_names`` restricts the synthetic set to a subset of the trace
    library while keeping per-seed regeneration (use it instead of
    ``traces=`` for multi-seed subset sweeps such as Figs. 15/16).
    """
    seeds = resolve_seeds(seeds)
    executor = get_executor(executor, jobs=jobs, cache_dir=cache_dir)

    def _trace_set(s: int) -> Mapping[str, CellularTrace]:
        if traces is not None:
            return traces
        return synthetic_trace_set(duration=duration, seed=s,
                                   names=(list(trace_names)
                                          if trace_names is not None else None))

    if seeds is None or len(seeds) == 1:
        # Explicit seeds=(0,) pins the per-cell seed to the legacy default
        # (and keeps run_cellular_sweep from re-reading REPRO_SEEDS).
        return run_cellular_sweep(schemes,
                                  _trace_set(seed if seeds is None else seeds[0]),
                                  rtt=rtt, duration=duration,
                                  executor=executor, seeds=(0,))
    all_cells: List[Any] = []
    sweep_jobs: List[SweepJob] = []
    for s in seeds:
        spec = SweepSpec(schemes=list(schemes), traces=dict(_trace_set(s)),
                         rtt=rtt, duration=duration, seeds=(s,))
        cells, jobs_for_seed = spec.expand()
        all_cells += cells
        sweep_jobs += jobs_for_seed
    pairs = list(zip(all_cells, executor.run(sweep_jobs)))
    return group_seed_results(pairs, seeds)


def fig16_explicit(duration: float = 30.0, rtt: float = 0.1, seed: int = 1,
                   traces: Optional[Mapping[str, CellularTrace]] = None,
                   executor: Optional[SweepExecutor] = None,
                   jobs: Optional[int] = None, cache_dir: Optional[str] = None,
                   seeds: Optional[Sequence[int]] = None,
                   trace_names: Optional[Sequence[str]] = None
                   ) -> Dict[str, Dict[str, SingleBottleneckResult]]:
    """Reproduce Fig. 16: ABC against the explicit-feedback schemes."""
    return fig9_sweep(schemes=EXPLICIT_SCHEMES, duration=duration, rtt=rtt,
                      seed=seed, traces=traces, executor=executor, jobs=jobs,
                      cache_dir=cache_dir, seeds=seeds,
                      trace_names=trace_names)


def table1_summary(sweep: Mapping[str, Mapping[str, SingleBottleneckResult]]
                   ) -> List[dict]:
    """The §1 summary table, normalised to ABC."""
    return normalized_table(sweep_averages(sweep), reference="abc")


def fig18_rtt_sensitivity(schemes: Sequence[str] = ("abc", "cubic+codel",
                                                    "cubic", "bbr", "copa",
                                                    "vegas", "sprout", "xcpw"),
                          rtts: Sequence[float] = (0.02, 0.05, 0.1, 0.2),
                          duration: float = 30.0, seed: int = 5,
                          trace: Optional[CellularTrace] = None,
                          executor: Optional[SweepExecutor] = None,
                          jobs: Optional[int] = None,
                          cache_dir: Optional[str] = None,
                          seeds: Optional[Sequence[int]] = None
                          ) -> Dict[float, Dict[str, SingleBottleneckResult]]:
    """Reproduce Fig. 18: the same trace at several propagation RTTs.

    With multiple ``seeds`` (argument or ``REPRO_SEEDS``) the trace is
    regenerated per seed (unless pinned via ``trace=``) and every
    ``out[rtt][scheme]`` value becomes a
    :class:`~repro.analysis.stats.SeedResultSet` of across-seed aggregates.
    """
    schemes = list(schemes)
    validate_schemes(schemes)
    executor = get_executor(executor, jobs=jobs, cache_dir=cache_dir)
    seeds = resolve_seeds(seeds)
    seed_list = (seed,) if seeds is None else seeds

    pinned_ref = register_trace(trace) if trace is not None else None

    def _trace_ref(s: int):
        if pinned_ref is not None:
            return pinned_ref
        generated = synthetic_trace_set(duration=duration, seed=s,
                                        names=["Verizon-LTE-1"])["Verizon-LTE-1"]
        return register_trace(generated)

    multi = len(seed_list) > 1
    sweep_jobs = []
    for s in seed_list:
        ref = _trace_ref(s)
        # As in fig8: the legacy seed is a trace seed, so single-seed runs
        # keep the legacy per-cell seed 0 (bit-identical output).
        cell_seed = s if multi else 0
        sweep_jobs += [SweepJob(func=sweep_cell,
                                kwargs=dict(scheme=str(sch).lower(),
                                            link_spec=ref, rtt=rtt,
                                            duration=duration,
                                            seed=cell_seed),
                                label=f"seed{s}/rtt{rtt:g}/{sch}")
                       for rtt in rtts for sch in schemes]
    groups = split_by_seed(executor.run(sweep_jobs), len(seed_list))

    out: Dict[float, Dict[str, SingleBottleneckResult]] = {}
    for i, rtt in enumerate(rtts):
        out[rtt] = {}
        for j, sch in enumerate(schemes):
            per_seed = groups[i * len(schemes) + j]
            out[rtt][sch] = (SeedResultSet(seed_list, per_seed) if multi
                             else per_seed[0])
    return out
