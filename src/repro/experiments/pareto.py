"""Throughput/delay frontier experiments: Figs. 8, 9, 15, 16, 18 and Table 1.

These experiments all run one backlogged flow per scheme over trace-driven
cellular links and report utilisation against per-packet delay:

* Fig. 8 — scatter on a single downlink trace, a single uplink trace, and a
  two-bottleneck uplink+downlink path; the claim is that ABC sits outside the
  Pareto frontier of all prior schemes.
* Fig. 9 / Fig. 15 — utilisation, 95th-percentile delay and mean delay
  averaged across eight operator traces.
* Fig. 16 — the same sweep restricted to explicit schemes (XCP, XCPw, RCP,
  VCP).
* Fig. 18 — sensitivity to the propagation RTT (20/50/100/200 ms).
* Table 1 (§1) — throughput and delay normalised to ABC.

Every sweep here fans out through :class:`repro.runtime.SweepExecutor`; pass
``executor=`` (or ``jobs=``/``cache_dir=``) to parallelise or memoize the
grid, or set ``REPRO_JOBS``/``REPRO_CACHE_DIR`` in the environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.metrics import is_outside_frontier, pareto_frontier
from repro.cellular.synthetic import synthetic_trace_set, uplink_downlink_pair
from repro.cellular.trace import CellularTrace
from repro.experiments.runner import (EXPLICIT_SCHEMES, SCHEME_NAMES,
                                      SingleBottleneckResult, normalized_table,
                                      run_cellular_sweep, sweep_averages)
from repro.runtime.executor import SweepExecutor, SweepJob, get_executor
from repro.runtime.spec import sweep_cell, validate_schemes

#: Scheme subset used by default for the heavier sweeps (everything).
DEFAULT_SCHEMES: Sequence[str] = SCHEME_NAMES


@dataclass
class ParetoPoint:
    scheme: str
    delay_p95_ms: float
    utilization: float
    throughput_mbps: float


@dataclass
class ParetoScatter:
    """One panel of Fig. 8."""

    label: str
    points: List[ParetoPoint] = field(default_factory=list)

    def frontier(self, exclude: str = "abc") -> List[tuple]:
        """Pareto frontier of every scheme except ``exclude``."""
        others = [(p.scheme, p.delay_p95_ms, p.utilization)
                  for p in self.points if p.scheme != exclude]
        return pareto_frontier(others)

    def abc_outside_frontier(self) -> bool:
        abc = next((p for p in self.points if p.scheme == "abc"), None)
        if abc is None:
            return False
        frontier = [(delay, util) for _, delay, util in self.frontier()]
        return is_outside_frontier((abc.delay_p95_ms, abc.utilization), frontier)


def _scatter_from_results(label: str,
                          results: Mapping[str, SingleBottleneckResult]
                          ) -> ParetoScatter:
    scatter = ParetoScatter(label=label)
    for scheme, res in results.items():
        scatter.points.append(ParetoPoint(
            scheme=scheme,
            delay_p95_ms=res.delay_p95_ms,
            utilization=res.utilization,
            throughput_mbps=res.throughput_bps / 1e6,
        ))
    return scatter


def fig8_pareto(schemes: Sequence[str] = DEFAULT_SCHEMES,
                duration: float = 30.0, rtt: float = 0.1, seed: int = 11,
                executor: Optional[SweepExecutor] = None,
                jobs: Optional[int] = None,
                cache_dir: Optional[str] = None) -> Dict[str, ParetoScatter]:
    """Reproduce Fig. 8: downlink, uplink and uplink+downlink scatters."""
    schemes = list(schemes)
    validate_schemes(schemes)
    executor = get_executor(executor, jobs=jobs, cache_dir=cache_dir)
    uplink, downlink = uplink_downlink_pair(duration=duration, seed=seed)

    panel_links = (("downlink", downlink, ()),
                   ("uplink", uplink, ()),
                   ("uplink+downlink", uplink, (downlink,)))
    sweep_jobs = [SweepJob(func=sweep_cell,
                           kwargs=dict(scheme=str(s).lower(), link_spec=link,
                                       rtt=rtt, duration=duration,
                                       extra_links=extras),
                           label=f"{label}/{s}")
                  for label, link, extras in panel_links for s in schemes]
    results = executor.run(sweep_jobs)

    panels: Dict[str, ParetoScatter] = {}
    index = 0
    for label, _, _ in panel_links:
        per_scheme = {s: results[index + i] for i, s in enumerate(schemes)}
        panels[label] = _scatter_from_results(label, per_scheme)
        index += len(schemes)
    return panels


def fig9_sweep(schemes: Sequence[str] = DEFAULT_SCHEMES,
               duration: float = 30.0, rtt: float = 0.1, seed: int = 1,
               traces: Optional[Mapping[str, CellularTrace]] = None,
               executor: Optional[SweepExecutor] = None,
               jobs: Optional[int] = None, cache_dir: Optional[str] = None
               ) -> Dict[str, Dict[str, SingleBottleneckResult]]:
    """Reproduce Fig. 9 / Fig. 15: every scheme over the eight-trace set."""
    traces = traces if traces is not None else synthetic_trace_set(duration=duration,
                                                                   seed=seed)
    return run_cellular_sweep(schemes, traces, rtt=rtt, duration=duration,
                              executor=executor, jobs=jobs,
                              cache_dir=cache_dir)


def fig16_explicit(duration: float = 30.0, rtt: float = 0.1, seed: int = 1,
                   traces: Optional[Mapping[str, CellularTrace]] = None,
                   executor: Optional[SweepExecutor] = None,
                   jobs: Optional[int] = None, cache_dir: Optional[str] = None
                   ) -> Dict[str, Dict[str, SingleBottleneckResult]]:
    """Reproduce Fig. 16: ABC against the explicit-feedback schemes."""
    return fig9_sweep(schemes=EXPLICIT_SCHEMES, duration=duration, rtt=rtt,
                      seed=seed, traces=traces, executor=executor, jobs=jobs,
                      cache_dir=cache_dir)


def table1_summary(sweep: Mapping[str, Mapping[str, SingleBottleneckResult]]
                   ) -> List[dict]:
    """The §1 summary table, normalised to ABC."""
    return normalized_table(sweep_averages(sweep), reference="abc")


def fig18_rtt_sensitivity(schemes: Sequence[str] = ("abc", "cubic+codel",
                                                    "cubic", "bbr", "copa",
                                                    "vegas", "sprout", "xcpw"),
                          rtts: Sequence[float] = (0.02, 0.05, 0.1, 0.2),
                          duration: float = 30.0, seed: int = 5,
                          trace: Optional[CellularTrace] = None,
                          executor: Optional[SweepExecutor] = None,
                          jobs: Optional[int] = None,
                          cache_dir: Optional[str] = None
                          ) -> Dict[float, Dict[str, SingleBottleneckResult]]:
    """Reproduce Fig. 18: the same trace at several propagation RTTs."""
    schemes = list(schemes)
    validate_schemes(schemes)
    executor = get_executor(executor, jobs=jobs, cache_dir=cache_dir)
    if trace is None:
        trace = synthetic_trace_set(duration=duration, seed=seed,
                                    names=["Verizon-LTE-1"])["Verizon-LTE-1"]
    sweep_jobs = [SweepJob(func=sweep_cell,
                           kwargs=dict(scheme=str(s).lower(), link_spec=trace,
                                       rtt=rtt, duration=duration),
                           label=f"rtt{rtt:g}/{s}")
                  for rtt in rtts for s in schemes]
    results = executor.run(sweep_jobs)
    out: Dict[float, Dict[str, SingleBottleneckResult]] = {}
    for i, rtt in enumerate(rtts):
        out[rtt] = {s: results[i * len(schemes) + j]
                    for j, s in enumerate(schemes)}
    return out
