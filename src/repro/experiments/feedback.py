"""Fig. 2: dequeue-rate vs enqueue-rate feedback ablation.

ABC computes its accelerate fraction from the *dequeue* rate, exploiting ACK
clocking to predict the enqueue rate one RTT ahead (Eq. 2); prior explicit
schemes compare the *enqueue* rate to the link capacity.  The paper shows the
enqueue-rate variant roughly doubles the 95th-percentile queuing delay on a
varying link.  ``feedback_basis="enqueue"`` on the ABC router reproduces that
variant without touching anything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cellular.synthetic import SyntheticTraceConfig, synthetic_trace
from repro.cellular.trace import CellularTrace
from repro.experiments.runner import run_single_bottleneck


@dataclass
class FeedbackComparison:
    """p95 queuing delay and utilisation for both feedback bases."""

    dequeue_queuing_p95_ms: float
    enqueue_queuing_p95_ms: float
    dequeue_utilization: float
    enqueue_utilization: float

    @property
    def delay_ratio(self) -> float:
        """enqueue p95 / dequeue p95 — the paper reports ≈ 2×."""
        if self.dequeue_queuing_p95_ms <= 0:
            return float("inf")
        return self.enqueue_queuing_p95_ms / self.dequeue_queuing_p95_ms


def default_feedback_trace(duration: float = 60.0, seed: int = 21) -> CellularTrace:
    """A strongly varying link (the Fig. 2 experiment runs for 60 s)."""
    config = SyntheticTraceConfig(
        mean_rate_bps=10e6, min_rate_bps=1e6, max_rate_bps=25e6,
        volatility=0.30, outage_rate_per_s=0.0, name="feedback-ablation")
    return synthetic_trace(config, duration, seed=seed)


def fig2_feedback(duration: float = 60.0, rtt: float = 0.1,
                  trace: Optional[CellularTrace] = None,
                  seed: int = 21) -> FeedbackComparison:
    """Run ABC with dequeue-based and enqueue-based feedback on one trace."""
    trace = trace if trace is not None else default_feedback_trace(duration, seed)
    dequeue = run_single_bottleneck("abc", trace, rtt=rtt, duration=duration)
    enqueue = run_single_bottleneck("abc-enqueue", trace, rtt=rtt, duration=duration)
    return FeedbackComparison(
        dequeue_queuing_p95_ms=dequeue.queuing_p95_ms,
        enqueue_queuing_p95_ms=enqueue.queuing_p95_ms,
        dequeue_utilization=dequeue.utilization,
        enqueue_utilization=enqueue.utilization,
    )


def marking_burstiness(fraction: float = 0.4, packets: int = 5000
                       ) -> Dict[str, float]:
    """Ablation: deterministic token-bucket marking vs probabilistic marking.

    Returns the variance of the gap (in packets) between consecutive
    accelerate marks for both markers at the same target fraction — the token
    bucket's gaps are near-deterministic, the probabilistic marker's are
    geometric (much larger variance), which is why Algorithm 1 uses the token
    bucket.
    """
    import numpy as np

    from repro.core.marking import ProbabilisticMarker, TokenBucketMarker

    def gaps(marker) -> list[int]:
        gap_list = []
        since_last = 0
        for _ in range(packets):
            if marker.mark(fraction):
                gap_list.append(since_last)
                since_last = 0
            else:
                since_last += 1
        return gap_list

    token_gaps = gaps(TokenBucketMarker())
    prob_gaps = gaps(ProbabilisticMarker(seed=3))
    return {
        "token_gap_variance": float(np.var(token_gaps)) if token_gaps else 0.0,
        "probabilistic_gap_variance": float(np.var(prob_gaps)) if prob_gaps else 0.0,
        "token_fraction": len(token_gaps) / packets,
        "probabilistic_fraction": len(prob_gaps) / packets,
    }
