"""Shared experiment machinery: scheme registry and single-bottleneck runs.

A *scheme* in the paper's sense is a sender-side congestion controller plus
the queueing discipline running at the bottleneck (Cubic runs over a deep
drop-tail buffer, "Cubic+Codel" runs over CoDel, ABC and the explicit schemes
bring their own router).  :func:`make_scheme` builds both halves from the
scheme label used in the figures, and :func:`run_single_bottleneck` runs the
standard one-flow-one-bottleneck cellular experiment (§6.2: 100 ms minimum
RTT, 250-packet buffer).

Sweeps (:func:`run_cellular_sweep`) route through
:class:`repro.runtime.SweepExecutor`: every (scheme, trace, seed) cell is an
independent job that can run serially, on a ``multiprocessing`` pool
(``REPRO_JOBS`` or the ``jobs=`` argument), or be replayed from the on-disk
result cache (``REPRO_CACHE_DIR`` or ``cache_dir=``) with bit-identical
metrics.  Passing ``seeds=[...]`` (or setting ``REPRO_SEEDS``) adds the
statistical seed axis: each cell runs once per seed and the sweep returns
:class:`~repro.analysis.stats.SeedResultSet` aggregates whose metric
attributes are across-seed means with 95 % confidence intervals attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from repro.analysis.stats import SeedResultSet, aggregate_values
from repro.aqm import CoDelQdisc, DropTailQdisc, PIEQdisc
from repro.cc import make_cc
from repro.cc.base import CongestionControl
from repro.cellular.trace import CellularTrace
from repro.core.params import ABCParams, CELLULAR_DEFAULTS
from repro.core.pk_abc import PKABCRouterQdisc
from repro.core.router import ABCRouterQdisc
from repro.explicit import (RCPRouterQdisc, VCPRouterQdisc, XCPRouterQdisc)
from repro.runtime.executor import SweepExecutor, get_executor, resolve_seeds
from repro.runtime.spec import SweepSpec
from repro.simulator.link import CapacityModel
from repro.simulator.qdisc import Qdisc
from repro.simulator.scenario import Scenario

#: Scheme labels in the order the paper's tables list them.
SCHEME_NAMES: Tuple[str, ...] = (
    "abc", "xcp", "xcpw", "cubic+codel", "cubic+pie", "copa", "sprout",
    "vegas", "verus", "bbr", "pcc", "cubic", "rcp", "vcp",
)

#: Subset of schemes that are explicit-feedback protocols (Fig. 16).
EXPLICIT_SCHEMES: Tuple[str, ...] = ("abc", "xcp", "xcpw", "rcp", "vcp")


@dataclass
class SchemeSpec:
    """A sender factory plus a bottleneck-qdisc factory."""

    name: str
    make_sender: Callable[[], CongestionControl]
    make_qdisc: Callable[[int], Qdisc]


def _scheme_table(params: ABCParams, seed: int = 0
                  ) -> Dict[str, Tuple[Callable[[], CongestionControl],
                                       Callable[[int], Qdisc]]]:
    """The label → (sender factory, qdisc factory) dispatch table.

    Single source of truth for scheme wiring: :func:`make_scheme` dispatches
    through it and :func:`known_scheme_names` derives the valid labels from
    its keys, so the two can never drift apart.
    """
    return {
        "abc": (lambda: make_cc("abc", params=params),
                lambda b: ABCRouterQdisc(params=params, buffer_packets=b)),
        "pk-abc": (lambda: make_cc("abc", params=params),
                   lambda b: PKABCRouterQdisc(params=params, buffer_packets=b)),
        "abc-enqueue": (lambda: make_cc("abc", params=params),
                        lambda b: ABCRouterQdisc(params=params, buffer_packets=b,
                                                 feedback_basis="enqueue")),
        "cubic": (lambda: make_cc("cubic"),
                  lambda b: DropTailQdisc(buffer_packets=b)),
        "cubic+codel": (lambda: make_cc("cubic"),
                        lambda b: CoDelQdisc(buffer_packets=b)),
        "cubic+pie": (lambda: make_cc("cubic"),
                      lambda b: PIEQdisc(buffer_packets=b, seed=seed)),
        "newreno": (lambda: make_cc("newreno"),
                    lambda b: DropTailQdisc(buffer_packets=b)),
        "vegas": (lambda: make_cc("vegas"),
                  lambda b: DropTailQdisc(buffer_packets=b)),
        "copa": (lambda: make_cc("copa"),
                 lambda b: DropTailQdisc(buffer_packets=b)),
        "bbr": (lambda: make_cc("bbr"),
                lambda b: DropTailQdisc(buffer_packets=b)),
        "pcc": (lambda: make_cc("pcc"),
                lambda b: DropTailQdisc(buffer_packets=b)),
        "sprout": (lambda: make_cc("sprout"),
                   lambda b: DropTailQdisc(buffer_packets=b)),
        "verus": (lambda: make_cc("verus"),
                  lambda b: DropTailQdisc(buffer_packets=b)),
        "xcp": (lambda: make_cc("xcp"),
                lambda b: XCPRouterQdisc(buffer_packets=b)),
        "xcpw": (lambda: make_cc("xcp"),
                 lambda b: XCPRouterQdisc(buffer_packets=b, wireless=True)),
        "rcp": (lambda: make_cc("rcp"),
                lambda b: RCPRouterQdisc(buffer_packets=b)),
        "vcp": (lambda: make_cc("vcp"),
                lambda b: VCPRouterQdisc(buffer_packets=b)),
    }


def known_scheme_names() -> frozenset:
    """The set of scheme labels :func:`make_scheme` can build."""
    return frozenset(_scheme_table(CELLULAR_DEFAULTS))


def make_scheme(name: str, buffer_packets: int = 250,
                abc_params: Optional[ABCParams] = None,
                seed: int = 0) -> SchemeSpec:
    """Build the sender+qdisc pair for a paper scheme label."""
    key = name.lower()
    params = abc_params if abc_params is not None else CELLULAR_DEFAULTS
    table = _scheme_table(params, seed=seed)
    if key not in table:
        raise KeyError(f"unknown scheme {name!r}; available: {sorted(table)}")
    sender_factory, qdisc_factory = table[key]
    return SchemeSpec(name=key, make_sender=sender_factory,
                      make_qdisc=lambda b=buffer_packets: qdisc_factory(b))


@dataclass
class SingleBottleneckResult:
    """Summary of one scheme on one bottleneck."""

    scheme: str
    trace: str
    throughput_bps: float
    utilization: float
    delay_p95_ms: float
    delay_mean_ms: float
    queuing_p95_ms: float
    queuing_mean_ms: float
    drops: int
    extra: dict = field(default_factory=dict)


LinkSpec = Union[CellularTrace, float, CapacityModel]


def _add_bottleneck(scenario: Scenario, link_spec: LinkSpec, qdisc: Qdisc,
                    name: str):
    if isinstance(link_spec, CellularTrace):
        return scenario.add_cellular_link(link_spec, qdisc=qdisc, name=name)
    return scenario.add_rate_link(link_spec, qdisc=qdisc, name=name)


def run_single_bottleneck(scheme: str, link_spec: LinkSpec,
                          rtt: float = 0.1, duration: float = 30.0,
                          buffer_packets: int = 250,
                          abc_params: Optional[ABCParams] = None,
                          warmup: float = 0.0,
                          extra_links: Sequence[LinkSpec] = (),
                          seed: int = 0) -> SingleBottleneckResult:
    """One backlogged flow of ``scheme`` over one (or more) bottleneck links.

    ``extra_links`` adds further bottlenecks in sequence on the data path
    (each gets its own instance of the scheme's qdisc), which is how the
    two-bottleneck uplink+downlink experiment of Fig. 8c is built.
    """
    spec = make_scheme(scheme, buffer_packets=buffer_packets,
                       abc_params=abc_params, seed=seed)
    scenario = Scenario()
    links = [_add_bottleneck(scenario, link_spec, spec.make_qdisc(buffer_packets),
                             name="bottleneck")]
    for index, extra in enumerate(extra_links):
        links.append(_add_bottleneck(scenario, extra,
                                     spec.make_qdisc(buffer_packets),
                                     name=f"bottleneck-{index + 1}"))
    flow = scenario.add_flow(spec.make_sender(), links, rtt=rtt,
                             label=spec.name)
    result = scenario.run(duration)

    trace_name = link_spec.name if isinstance(link_spec, CellularTrace) else str(link_spec)
    stats = flow.stats
    # The flow's utilisation is measured against the *last* bottleneck it
    # traverses when there are several (the paper reports end-to-end
    # utilisation of the constrained path); with a single link this is just
    # that link.
    per_link_utilization = [result.link_utilization(link, t0=warmup)
                            for link in links]
    min_util = min(per_link_utilization)
    return SingleBottleneckResult(
        scheme=spec.name,
        trace=trace_name,
        throughput_bps=result.flow_throughput_bps(flow, t0=warmup),
        utilization=min_util,
        delay_p95_ms=stats.delay_percentile(95) * 1000.0,
        delay_mean_ms=stats.mean_delay() * 1000.0,
        queuing_p95_ms=stats.delay_percentile(95, kind="queuing") * 1000.0,
        queuing_mean_ms=stats.mean_delay(kind="queuing") * 1000.0,
        drops=result.link_drops(links[0]),
        extra={"flow": flow, "scenario": scenario, "links": links,
               "per_link_utilization": per_link_utilization},
    )


def group_seed_results(pairs: Sequence[Tuple[Any, Any]],
                       seeds: Sequence[int]
                       ) -> Dict[str, Dict[str, SeedResultSet]]:
    """Group a multi-seed ``run_cells()`` output as ``out[scheme][trace]``.

    Cells arrive in the grid's scheme→trace→seed order, so each (scheme,
    trace) group collects its per-seed results already ordered by ``seeds``.
    """
    grouped: Dict[str, Dict[str, List[Any]]] = {}
    for cell, result in pairs:
        grouped.setdefault(cell.scheme, {}).setdefault(cell.trace,
                                                       []).append(result)
    return {scheme: {trace: SeedResultSet(seeds, results)
                     for trace, results in per_trace.items()}
            for scheme, per_trace in grouped.items()}


def run_cellular_sweep(schemes: Sequence[str],
                       traces: Mapping[str, CellularTrace],
                       rtt: float = 0.1, duration: float = 30.0,
                       buffer_packets: int = 250,
                       abc_params: Optional[ABCParams] = None,
                       executor: Optional[SweepExecutor] = None,
                       jobs: Optional[int] = None,
                       cache_dir: Optional[str] = None,
                       seeds: Optional[Sequence[int]] = None
                       ) -> Dict[str, Dict[str, SingleBottleneckResult]]:
    """Run every scheme over every trace (the Fig. 9 / 15 / 16 sweep).

    Returns ``results[scheme][trace_name]``.  The grid executes through a
    :class:`~repro.runtime.SweepExecutor` — pass one explicitly, or let
    ``jobs``/``cache_dir`` (and the ``REPRO_JOBS``/``REPRO_CACHE_DIR``
    environment variables) build one.  Raises :class:`ValueError` up front
    for an unknown scheme label or an empty scheme/trace set.

    ``seeds`` (argument, else the ``REPRO_SEEDS`` environment variable) adds
    the statistical seed axis.  With a single seed the result values are
    plain :class:`SingleBottleneckResult` objects, bit-for-bit identical to
    the single-seed output (the default seed is 0, today's behaviour).  With
    several seeds every cell runs once per seed and each value is a
    :class:`~repro.analysis.stats.SeedResultSet` whose metric attributes are
    across-seed means (full aggregates under ``.stats``).
    """
    seeds = resolve_seeds(seeds)
    spec = SweepSpec(schemes=list(schemes), traces=dict(traces), rtt=rtt,
                     duration=duration, buffer_packets=buffer_packets,
                     abc_params=abc_params,
                     seeds=seeds if seeds is not None else (0,))
    executor = get_executor(executor, jobs=jobs, cache_dir=cache_dir)
    if seeds is None or len(seeds) == 1:
        return spec.run(executor)
    return group_seed_results(spec.run_cells(executor), seeds)


#: Metrics averaged across traces by :func:`sweep_averages`, in row order.
AVERAGE_METRICS: Tuple[str, ...] = ("utilization", "delay_p95_ms",
                                    "delay_mean_ms", "queuing_p95_ms",
                                    "throughput_bps")


def sweep_averages(results: Mapping[str, Mapping[str, SingleBottleneckResult]]
                   ) -> List[dict]:
    """Average utilisation/delay per scheme across traces (Fig. 9's bars).

    Accepts both single-seed sweeps (values are
    :class:`SingleBottleneckResult`) and multi-seed sweeps from
    ``run_cellular_sweep(..., seeds=[...])`` (values are
    :class:`~repro.analysis.stats.SeedResultSet`).  For a multi-seed sweep
    each metric column holds the across-seed mean of the cross-trace average
    and gains ``<metric>_ci95``/``<metric>_stdev`` companions (95 %
    Student-t confidence half-width over seeds) plus an ``n_seeds`` column.

    Raises :class:`ValueError` when ``results`` is empty or any scheme has an
    empty trace set, instead of silently producing a partial table.
    """
    if not results:
        raise ValueError("sweep_averages needs a non-empty results mapping")
    rows = []
    for scheme, per_trace in results.items():
        values = list(per_trace.values())
        if not values:
            raise ValueError(f"scheme {scheme!r} has an empty trace set; "
                             "every scheme needs at least one trace result")
        n = len(values)
        row: Dict[str, Any] = {"scheme": scheme}
        multi_seed = (all(isinstance(v, SeedResultSet) for v in values)
                      and len({v.seeds for v in values}) == 1
                      and len(values[0].seeds) > 1)
        if multi_seed:
            seeds = values[0].seeds
            row["n_seeds"] = len(seeds)
            for metric in AVERAGE_METRICS:
                per_seed_avgs = [
                    sum(getattr(v.per_seed[i], metric) for v in values) / n
                    for i in range(len(seeds))]
                agg = aggregate_values(per_seed_avgs)
                row[metric] = agg.mean
                row[f"{metric}_ci95"] = agg.ci95
                row[f"{metric}_stdev"] = agg.stdev
        else:
            for metric in AVERAGE_METRICS:
                row[metric] = sum(getattr(v, metric) for v in values) / n
        rows.append(row)
    return rows


def normalized_table(rows: Sequence[Mapping], reference: str = "abc") -> List[dict]:
    """The §1 summary table: throughput and p95 delay normalised to ABC."""
    by_scheme = {row["scheme"]: row for row in rows}
    if reference not in by_scheme:
        raise KeyError(f"reference scheme {reference!r} not in rows")
    ref = by_scheme[reference]
    table = []
    for row in rows:
        table.append({
            "scheme": row["scheme"],
            "norm_throughput": (row["utilization"] / ref["utilization"]
                                if ref["utilization"] else 0.0),
            "norm_delay_p95": (row["delay_p95_ms"] / ref["delay_p95_ms"]
                               if ref["delay_p95_ms"] else 0.0),
        })
    return table
