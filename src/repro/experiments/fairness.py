"""Fairness experiments: Fig. 3 (additive increase) and the §6.5 Jain sweep.

Fig. 3 starts five ABC flows one by one (and stops them one by one) on a fixed
24 Mbit/s link; without the additive-increase term the flows keep whatever
rate they happened to have when they started (MIMD preserves ratios), with it
they converge to equal shares.  §6.5 reports that for 2–32 competing ABC flows
the Jain fairness index stays within 5 % of 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.fairness import jain_fairness_index
from repro.cc import make_cc
from repro.core.params import ABCParams
from repro.core.router import ABCRouterQdisc
from repro.simulator.scenario import Scenario


@dataclass
class FairnessResult:
    """Per-flow throughput time series for a staggered-arrival experiment."""

    times: np.ndarray
    per_flow_mbps: Dict[int, np.ndarray]
    steady_state_jain: float
    steady_state_throughputs_mbps: List[float]


def fig3_fairness(additive_increase: bool, num_flows: int = 5,
                  link_mbps: float = 24.0, stagger: float = 20.0,
                  rtt: float = 0.1, bin_size: float = 1.0,
                  buffer_packets: int = 250) -> FairnessResult:
    """Reproduce one panel of Fig. 3 (with or without additive increase).

    Flows start ``stagger`` seconds apart; the steady-state window is the
    interval during which all flows are active (just before the run ends).
    """
    params = ABCParams(additive_increase=additive_increase)
    duration = stagger * (num_flows + 1)
    scenario = Scenario()
    link = scenario.add_rate_link(link_mbps * 1e6,
                                  qdisc=ABCRouterQdisc(params=params,
                                                       buffer_packets=buffer_packets),
                                  name="shared")
    flows = []
    for index in range(num_flows):
        cc = make_cc("abc", params=params)
        flows.append(scenario.add_flow(cc, [link], rtt=rtt,
                                       start_time=index * stagger,
                                       label=f"abc-{index}"))
    result = scenario.run(duration)

    per_flow: Dict[int, np.ndarray] = {}
    times = np.array([])
    for flow in flows:
        t, tput = flow.stats.throughput_timeseries(bin_size=bin_size, t1=duration)
        per_flow[flow.flow_id] = tput / 1e6
        if t.size > times.size:
            times = t
    # Steady state: the final stagger window, when every flow is running.
    t0 = stagger * num_flows
    steady = [flow.stats.throughput_bps(t0, duration) / 1e6 for flow in flows]
    jain = jain_fairness_index([max(v, 1e-9) for v in steady])
    return FairnessResult(times=times, per_flow_mbps=per_flow,
                          steady_state_jain=jain,
                          steady_state_throughputs_mbps=steady)


def jain_index_sweep(flow_counts: Sequence[int] = (2, 4, 8, 16, 32),
                     link_mbps: float = 24.0, duration: float = 60.0,
                     rtt: float = 0.1, warmup: float = 20.0,
                     start_jitter: float = 0.2) -> Dict[int, float]:
    """§6.5: Jain fairness index for N simultaneous ABC flows.

    Flow starts are jittered by a fraction of a second: with a perfectly
    deterministic simulator, identical flows started at the exact same instant
    can phase-lock onto the deterministic marking pattern, an artefact a real
    deployment's natural jitter never exhibits.
    """
    out: Dict[int, float] = {}
    for count in flow_counts:
        scenario = Scenario()
        link = scenario.add_rate_link(link_mbps * 1e6,
                                      qdisc=ABCRouterQdisc(buffer_packets=500),
                                      name="shared")
        flows = [scenario.add_flow(make_cc("abc"), [link], rtt=rtt,
                                   start_time=i * start_jitter / max(count, 1),
                                   label=f"abc-{i}")
                 for i in range(count)]
        scenario.run(duration)
        throughputs = [max(f.stats.throughput_bps(warmup, duration), 1e-9)
                       for f in flows]
        out[count] = jain_fairness_index(throughputs)
    return out
