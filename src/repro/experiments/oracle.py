"""PK-ABC: perfect knowledge of future capacity (§6.6).

PK-ABC computes the target rate from the link rate expected one RTT in the
future instead of the current estimate.  The paper reports that on the Verizon
uplink trace PK-ABC reduces 95th-percentile per-packet delay from 97 ms to
28 ms at the same ≈90 % utilisation — i.e. most of ABC's residual delay comes
from reacting to capacity drops one RTT late, not from the control law itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cellular.synthetic import uplink_downlink_pair
from repro.cellular.trace import CellularTrace
from repro.experiments.runner import run_single_bottleneck


@dataclass
class OracleComparison:
    abc_utilization: float
    pk_utilization: float
    abc_queuing_p95_ms: float
    pk_queuing_p95_ms: float
    abc_delay_p95_ms: float
    pk_delay_p95_ms: float

    @property
    def delay_reduction(self) -> float:
        """Fraction of ABC's p95 queuing delay removed by perfect knowledge."""
        if self.abc_queuing_p95_ms <= 0:
            return 0.0
        return 1.0 - self.pk_queuing_p95_ms / self.abc_queuing_p95_ms


def pk_abc_comparison(duration: float = 30.0, rtt: float = 0.1, seed: int = 11,
                      trace: Optional[CellularTrace] = None) -> OracleComparison:
    """Run ABC and PK-ABC on the same uplink trace and compare delays."""
    if trace is None:
        trace, _ = uplink_downlink_pair(duration=duration, seed=seed)
    abc = run_single_bottleneck("abc", trace, rtt=rtt, duration=duration)
    pk = run_single_bottleneck("pk-abc", trace, rtt=rtt, duration=duration)
    return OracleComparison(
        abc_utilization=abc.utilization,
        pk_utilization=pk.utilization,
        abc_queuing_p95_ms=abc.queuing_p95_ms,
        pk_queuing_p95_ms=pk.queuing_p95_ms,
        abc_delay_p95_ms=abc.delay_p95_ms,
        pk_delay_p95_ms=pk.delay_p95_ms,
    )
