"""WiFi experiments: Figs. 4, 5, 10 and 14.

* Fig. 4 — inter-ACK time against A-MPDU batch size: the relation is linear
  with slope ``S/R`` plus a size-independent overhead spread.
* Fig. 5 — link-rate prediction accuracy for a non-backlogged sender at
  several offered loads over three different links (MCS indices): the
  estimator stays within ~5 % of the true capacity once the offered load is
  high enough for full batches to be observable, and is capped at twice the
  offered load below that.
* Fig. 10 / Fig. 14 — throughput against 95th-percentile delay for ABC (three
  delay thresholds) and the end-to-end baselines on a live-like WiFi link
  whose MCS index alternates 1↔7 every 2 s (Fig. 10) or follows a Brownian
  walk in [3, 7] (Fig. 14), for one and two users.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.stats import SeedResultSet, result_metrics, split_by_seed
from repro.aqm import CoDelQdisc, DropTailQdisc
from repro.cc import make_cc
from repro.core.params import ABCParams, WIFI_DEFAULTS
from repro.core.router import ABCRouterQdisc
from repro.runtime.executor import (SweepExecutor, SweepJob, get_executor,
                                    resolve_seeds)
from repro.simulator.qdisc import FifoQdisc
from repro.simulator.scenario import Scenario
from repro.simulator.traffic import RateLimitedSource
from repro.wifi import (AlternatingMCSSchedule, BrownianMCSSchedule,
                        FixedMCSSchedule, WiFiLink, WiFiMacConfig,
                        WiFiRateEstimator)

#: End-to-end baselines evaluated on WiFi (§6.3 excludes Sprout and Verus,
#: which are cellular-specific).
WIFI_BASELINES: Sequence[str] = ("cubic+codel", "copa", "vegas", "bbr", "pcc",
                                 "cubic")


# ---------------------------------------------------------------------------
# Fig. 4 — inter-ACK time vs batch size
# ---------------------------------------------------------------------------
@dataclass
class InterAckSamples:
    batch_sizes: np.ndarray
    inter_ack_times_ms: np.ndarray
    fitted_slope_ms_per_frame: float
    expected_slope_ms_per_frame: float


def fig4_inter_ack(mcs_index: int = 5, offered_load_bps: float = 12e6,
                   duration: float = 30.0, seed: int = 3) -> InterAckSamples:
    """Collect (batch size, inter-ACK time) samples from the MAC model.

    A non-backlogged sender offers bursts of varying size (the paper's sender
    was "not backlogged and sent traffic at multiple different rates"), so the
    access point transmits A-MPDUs spanning the full range of batch sizes and
    the linear ``TIA(b) = b·S/R + h`` relationship is observable.
    """
    from repro.simulator.packet import Packet

    scenario = Scenario()
    config = WiFiMacConfig(seed=seed)
    link = WiFiLink(scenario.env, mcs=FixedMCSSchedule(mcs_index), config=config,
                    qdisc=FifoQdisc(buffer_packets=2000))
    scenario.add_custom_link(link, name="wifi")

    burst_sizes = (1, 2, 4, 8, 12, 16, 20, 24, 28, 32)
    gap = 0.04  # long enough that each burst is transmitted as its own batch

    def offer(count: int, base_seq: int) -> None:
        for i in range(count):
            link.send(Packet(flow_id=0, seq=base_seq + i))

    t, seq, index = 0.0, 0, 0
    while t < duration:
        burst = burst_sizes[index % len(burst_sizes)]
        scenario.env.schedule_at(t, offer, burst, seq)
        seq += burst
        index += 1
        t += gap
    scenario.run(duration)

    sizes = np.array([obs.batch_frames for obs in link.batch_log])
    times = np.array([obs.inter_ack_time for obs in link.batch_log]) * 1000.0
    if sizes.size >= 2 and np.ptp(sizes) > 0:
        slope = float(np.polyfit(sizes, times, 1)[0])
    else:
        slope = 0.0
    expected = config.frame_size_bytes * 8.0 / link.mcs.rate_at(0.0) * 1000.0
    return InterAckSamples(batch_sizes=sizes, inter_ack_times_ms=times,
                           fitted_slope_ms_per_frame=slope,
                           expected_slope_ms_per_frame=expected)


# ---------------------------------------------------------------------------
# Fig. 5 — link-rate prediction accuracy
# ---------------------------------------------------------------------------
@dataclass
class RatePredictionPoint:
    mcs_index: int
    offered_load_mbps: float
    true_capacity_mbps: float
    predicted_mbps: float
    capped_prediction_mbps: float

    @property
    def relative_error(self) -> float:
        if self.true_capacity_mbps <= 0:
            return 0.0
        return abs(self.predicted_mbps - self.true_capacity_mbps) / self.true_capacity_mbps


def rate_prediction_cell(mcs: int, fraction: float, duration: float,
                         seed: int) -> RatePredictionPoint:
    """One (MCS index, offered-load fraction) cell of the Fig. 5 grid."""
    scenario = Scenario()
    estimator = WiFiRateEstimator(max_batch_frames=32)
    link = WiFiLink(scenario.env, mcs=FixedMCSSchedule(mcs),
                    config=WiFiMacConfig(seed=seed),
                    qdisc=FifoQdisc(buffer_packets=2000),
                    estimator=estimator)
    scenario.add_custom_link(link, name=f"wifi-{mcs}")
    true_capacity = link.true_capacity_bps(0.0)
    offered = fraction * true_capacity
    source = RateLimitedSource(offered)
    scenario.add_flow(make_cc("cubic"), [link], rtt=0.02, source=source)
    scenario.run(duration)
    raw = estimator.estimate_bps(duration, apply_cap=False)
    capped = estimator.estimate_bps(duration, apply_cap=True)
    return RatePredictionPoint(
        mcs_index=mcs,
        offered_load_mbps=offered / 1e6,
        true_capacity_mbps=true_capacity / 1e6,
        predicted_mbps=raw / 1e6,
        capped_prediction_mbps=capped / 1e6,
    )


def rate_prediction_metrics(point: RatePredictionPoint) -> Dict[str, float]:
    """Numeric fields plus the derived relative error, for seed aggregation."""
    metrics = result_metrics(point)
    metrics["relative_error"] = point.relative_error
    return metrics


def fig5_rate_prediction(mcs_indices: Sequence[int] = (3, 5, 7),
                         load_fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
                         duration: float = 20.0, seed: int = 5,
                         executor: Optional[SweepExecutor] = None,
                         jobs: Optional[int] = None,
                         cache_dir: Optional[str] = None,
                         seeds: Optional[Sequence[int]] = None
                         ) -> List[RatePredictionPoint]:
    """Sweep offered load on three links and record estimator accuracy.

    With multiple ``seeds`` (argument or ``REPRO_SEEDS``) each (MCS, load)
    point is run once per MAC-model seed and returned as a
    :class:`~repro.analysis.stats.SeedResultSet` (attribute reads give the
    across-seed mean; ``relative_error`` is aggregated too).
    """
    seeds = resolve_seeds(seeds)
    seed_list = (seed,) if seeds is None else seeds
    grid = [(mcs, fraction) for mcs in mcs_indices
            for fraction in load_fractions]
    sweep_jobs = [SweepJob(func=rate_prediction_cell,
                           kwargs=dict(mcs=mcs, fraction=fraction,
                                       duration=duration, seed=s),
                           label=f"fig5/seed{s}/mcs{mcs}/load{fraction:g}")
                  for s in seed_list for mcs, fraction in grid]
    results = get_executor(executor, jobs=jobs, cache_dir=cache_dir).run(sweep_jobs)
    if len(seed_list) == 1:
        return results
    return [SeedResultSet(seed_list, per_seed,
                          metrics=rate_prediction_metrics)
            for per_seed in split_by_seed(results, len(seed_list))]


# ---------------------------------------------------------------------------
# Fig. 10 / Fig. 14 — throughput vs delay on a varying WiFi link
# ---------------------------------------------------------------------------
@dataclass
class WiFiSchemeResult:
    scheme: str
    throughput_mbps: float
    delay_p95_ms: float
    queuing_p95_ms: float
    utilization: float
    extra: dict = field(default_factory=dict)


def _make_wifi_link(scenario: Scenario, qdisc, mcs_mode: str, seed: int,
                    estimator: Optional[WiFiRateEstimator]) -> WiFiLink:
    if mcs_mode == "alternating":
        schedule = AlternatingMCSSchedule(low_index=1, high_index=7, period=2.0)
    elif mcs_mode == "brownian":
        schedule = BrownianMCSSchedule(min_index=3, max_index=7, period=2.0,
                                       seed=seed)
    else:
        raise ValueError("mcs_mode must be 'alternating' or 'brownian'")
    link = WiFiLink(scenario.env, mcs=schedule, config=WiFiMacConfig(seed=seed),
                    qdisc=qdisc, estimator=estimator)
    scenario.add_custom_link(link, name="wifi")
    return link


def _run_wifi_case(scheme: str, num_users: int, duration: float, rtt: float,
                   mcs_mode: str, seed: int,
                   abc_delay_threshold: Optional[float] = None) -> WiFiSchemeResult:
    scenario = Scenario()
    estimator: Optional[WiFiRateEstimator] = None
    if scheme == "abc":
        params = WIFI_DEFAULTS if abc_delay_threshold is None else (
            WIFI_DEFAULTS.with_overrides(delay_threshold=abc_delay_threshold))
        estimator = WiFiRateEstimator(max_batch_frames=32,
                                      window=params.measurement_window)
        qdisc = ABCRouterQdisc(params=params, buffer_packets=500,
                               capacity_fn=estimator.capacity_fn())
    elif scheme == "cubic+codel":
        qdisc = CoDelQdisc(buffer_packets=500)
    else:
        qdisc = DropTailQdisc(buffer_packets=500)
    link = _make_wifi_link(scenario, qdisc, mcs_mode, seed, estimator)

    sender_name = "cubic" if scheme == "cubic+codel" else scheme
    flows = [scenario.add_flow(make_cc(sender_name), [link], rtt=rtt,
                               label=f"{scheme}-{i}")
             for i in range(num_users)]
    result = scenario.run(duration)

    throughput = sum(result.flow_throughput_bps(f) for f in flows) / 1e6
    delay_p95 = result.aggregate_delay_percentile_ms(95)
    queuing_p95 = result.aggregate_delay_percentile_ms(95, kind="queuing")
    return WiFiSchemeResult(
        scheme=scheme,
        throughput_mbps=throughput,
        delay_p95_ms=delay_p95,
        queuing_p95_ms=queuing_p95,
        utilization=result.link_utilization(link),
    )


def fig10_wifi(num_users: int = 1, duration: float = 45.0, rtt: float = 0.04,
               mcs_mode: str = "alternating", seed: int = 9,
               abc_delay_thresholds: Sequence[float] = (0.02, 0.06, 0.1),
               baselines: Sequence[str] = WIFI_BASELINES,
               executor: Optional[SweepExecutor] = None,
               jobs: Optional[int] = None,
               cache_dir: Optional[str] = None,
               seeds: Optional[Sequence[int]] = None) -> List[WiFiSchemeResult]:
    """Reproduce Fig. 10 (alternating MCS) or Fig. 14 (``mcs_mode="brownian"``).

    Returns one row per scheme; ABC appears once per delay threshold with the
    scheme name ``abc_dt{ms}``.

    The seed drives the WiFi MAC model (and the Brownian MCS walk), so with
    multiple ``seeds`` (argument or ``REPRO_SEEDS``) each row becomes a
    :class:`~repro.analysis.stats.SeedResultSet` across MAC realisations;
    single/default seed returns the legacy point rows.
    """
    seeds = resolve_seeds(seeds)
    seed_list = (seed,) if seeds is None else seeds

    def _jobs_for(s: int) -> List[SweepJob]:
        jobs_s = [SweepJob(func=_run_wifi_case,
                           kwargs=dict(scheme="abc", num_users=num_users,
                                       duration=duration, rtt=rtt,
                                       mcs_mode=mcs_mode, seed=s,
                                       abc_delay_threshold=threshold),
                           label=f"wifi/seed{s}/"
                                 f"abc_dt{int(round(threshold * 1000))}")
                  for threshold in abc_delay_thresholds]
        jobs_s += [SweepJob(func=_run_wifi_case,
                            kwargs=dict(scheme=scheme, num_users=num_users,
                                        duration=duration, rtt=rtt,
                                        mcs_mode=mcs_mode, seed=s),
                            label=f"wifi/seed{s}/{scheme}")
                   for scheme in baselines]
        return jobs_s

    sweep_jobs = [job for s in seed_list for job in _jobs_for(s)]
    results = get_executor(executor, jobs=jobs, cache_dir=cache_dir).run(sweep_jobs)

    rows: List[WiFiSchemeResult] = []
    for per_seed in split_by_seed(results, len(seed_list)):
        rows.append(per_seed[0] if len(seed_list) == 1
                    else SeedResultSet(seed_list, per_seed))
    for threshold, row in zip(abc_delay_thresholds, rows):
        name = f"abc_dt{int(round(threshold * 1000))}"
        if isinstance(row, SeedResultSet):
            for res in row.per_seed:
                res.scheme = name
        row.scheme = name
    return rows


def fig14_wifi_brownian(num_users: int = 1, duration: float = 45.0,
                        rtt: float = 0.04, seed: int = 13,
                        seeds: Optional[Sequence[int]] = None
                        ) -> List[WiFiSchemeResult]:
    """Appendix B variant of the WiFi experiment (Brownian MCS walk)."""
    return fig10_wifi(num_users=num_users, duration=duration, rtt=rtt,
                      mcs_mode="brownian", seed=seed, seeds=seeds)
