"""Theorem 3.1: the δ > 2τ/3 stability boundary, checked two ways.

The fluid model (Appendix A) predicts that the ABC control loop converges to a
fixed queuing delay whenever ``δ > 2τ/3`` and oscillates (or converges much
more slowly) below the boundary.  This module sweeps δ/τ ratios through the
numerical fluid model and, optionally, through the packet-level simulator, so
the theorem can be validated and the δ = 133 ms / τ = 100 ms default justified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.params import ABCParams
from repro.core.stability import FluidModel, stability_threshold
from repro.experiments.runner import run_single_bottleneck
from repro.simulator.link import ConstantRate


@dataclass
class StabilityPoint:
    delta: float
    tau: float
    theoretically_stable: bool
    fluid_converged: bool
    fluid_oscillation_s: float
    fixed_point_s: float


def fluid_stability_sweep(delta_over_tau: Sequence[float] = (0.4, 0.55, 0.67,
                                                             0.8, 1.0, 1.33, 2.0),
                          tau: float = 0.1, num_flows: int = 10,
                          capacity_bps: float = 10e6,
                          duration: float = 60.0) -> Dict[float, StabilityPoint]:
    """Integrate the fluid model for several δ/τ ratios."""
    out: Dict[float, StabilityPoint] = {}
    for ratio in delta_over_tau:
        delta = ratio * tau
        params = ABCParams(delta=delta)
        model = FluidModel(params=params, tau=tau, num_flows=num_flows,
                           capacity_bps=capacity_bps)
        result = model.simulate(duration=duration, initial_delay=0.3,
                                convergence_tolerance=2e-3)
        out[ratio] = StabilityPoint(
            delta=delta,
            tau=tau,
            theoretically_stable=delta > stability_threshold(tau),
            fluid_converged=result.converged,
            fluid_oscillation_s=result.oscillation_amplitude,
            fixed_point_s=result.fixed_point,
        )
    return out


@dataclass
class PacketLevelStabilityPoint:
    delta: float
    utilization: float
    queuing_p95_ms: float
    queuing_std_ms: float


def packet_level_stability(delta_values: Sequence[float] = (0.04, 0.133, 0.4),
                           tau: float = 0.1, link_mbps: float = 24.0,
                           duration: float = 30.0
                           ) -> Dict[float, PacketLevelStabilityPoint]:
    """Run the real ABC stack on a constant link for several δ values.

    Small δ (below 2τ/3) over-reacts to queue build-up and produces visible
    rate/queue oscillation and lower utilisation; large δ is stable but drains
    queues more slowly.
    """
    import numpy as np

    out: Dict[float, PacketLevelStabilityPoint] = {}
    for delta in delta_values:
        params = ABCParams(delta=delta)
        result = run_single_bottleneck("abc", ConstantRate(link_mbps * 1e6),
                                       rtt=tau, duration=duration,
                                       abc_params=params)
        flow = result.extra["flow"]
        _, queuing = flow.stats.queuing_delay_timeseries(bin_size=0.25)
        out[delta] = PacketLevelStabilityPoint(
            delta=delta,
            utilization=result.utilization,
            queuing_p95_ms=result.queuing_p95_ms,
            queuing_std_ms=float(np.std(queuing)) * 1000.0 if queuing.size else 0.0,
        )
    return out
