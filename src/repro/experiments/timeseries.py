"""Time-series experiments: Fig. 1 (motivation) and Fig. 17 (explicit schemes).

Fig. 1 runs Cubic, Verus, Cubic+CoDel and ABC over the same emulated LTE trace
and plots achieved throughput against link capacity plus the queuing delay
over time.  Fig. 17 runs ABC, RCP and XCPw over a square-wave link whose
capacity alternates between 12 and 24 Mbit/s every 500 ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.cellular.synthetic import lte_showcase_trace
from repro.cellular.trace import CellularTrace
from repro.experiments.runner import run_single_bottleneck
from repro.runtime.executor import SweepExecutor, SweepJob, get_executor
from repro.simulator.link import SquareWaveRate


@dataclass
class TimeSeries:
    """One scheme's throughput/queuing-delay time series plus the capacity."""

    scheme: str
    times: np.ndarray
    throughput_bps: np.ndarray
    queuing_delay_ms: np.ndarray
    capacity_bps: Optional[np.ndarray] = None
    utilization: float = 0.0
    queuing_p95_ms: float = 0.0


def _timeseries_from_result(result, bin_size: float) -> TimeSeries:
    flow = result.extra["flow"]
    times, tput = flow.stats.throughput_timeseries(bin_size=bin_size)
    qt, qd = flow.stats.queuing_delay_timeseries(bin_size=bin_size)
    n = min(len(times), len(qt))
    return TimeSeries(
        scheme=result.scheme,
        times=times[:n],
        throughput_bps=tput[:n],
        queuing_delay_ms=qd[:n] * 1000.0,
        utilization=result.utilization,
        queuing_p95_ms=result.queuing_p95_ms,
    )


def timeseries_cell(scheme: str, link_spec, rtt: float, duration: float,
                    buffer_packets: int = 250,
                    bin_size: float = 0.5) -> TimeSeries:
    """Run one scheme and bin its stats into a picklable :class:`TimeSeries`.

    Module-level (and binning *inside* the job) so the live flow/scenario
    objects never cross a process boundary when the sweep runs on a pool.
    """
    result = run_single_bottleneck(scheme, link_spec, rtt=rtt,
                                   duration=duration,
                                   buffer_packets=buffer_packets)
    return _timeseries_from_result(result, bin_size)


def fig1_timeseries(schemes: Sequence[str] = ("cubic", "verus", "cubic+codel", "abc"),
                    duration: float = 30.0, rtt: float = 0.1,
                    buffer_packets: int = 250, bin_size: float = 0.5,
                    trace: Optional[CellularTrace] = None, seed: int = 7,
                    executor: Optional[SweepExecutor] = None,
                    jobs: Optional[int] = None,
                    cache_dir: Optional[str] = None) -> Dict[str, TimeSeries]:
    """Reproduce Fig. 1: each scheme over the same emulated LTE trace."""
    trace = trace if trace is not None else lte_showcase_trace(duration=duration,
                                                               seed=seed)
    capacity_times, capacity = trace.rate_timeseries(bin_size=bin_size)
    sweep_jobs = [SweepJob(func=timeseries_cell,
                           kwargs=dict(scheme=s, link_spec=trace, rtt=rtt,
                                       duration=duration,
                                       buffer_packets=buffer_packets,
                                       bin_size=bin_size),
                           label=f"fig1/{s}")
                  for s in schemes]
    results = get_executor(executor, jobs=jobs, cache_dir=cache_dir).run(sweep_jobs)
    out: Dict[str, TimeSeries] = {}
    for scheme, series in zip(schemes, results):
        n = min(len(series.times), len(capacity))
        series.capacity_bps = capacity[:n]
        out[scheme] = series
    return out


def fig17_square_wave(schemes: Sequence[str] = ("abc", "rcp", "xcpw"),
                      low_mbps: float = 12.0, high_mbps: float = 24.0,
                      half_period: float = 0.5, duration: float = 10.0,
                      rtt: float = 0.1, bin_size: float = 0.25,
                      executor: Optional[SweepExecutor] = None,
                      jobs: Optional[int] = None,
                      cache_dir: Optional[str] = None) -> Dict[str, TimeSeries]:
    """Reproduce Fig. 17: explicit schemes on a 12↔24 Mbit/s square wave."""
    sweep_jobs = [SweepJob(func=timeseries_cell,
                           kwargs=dict(scheme=s,
                                       link_spec=SquareWaveRate(
                                           low_mbps * 1e6, high_mbps * 1e6,
                                           half_period),
                                       rtt=rtt, duration=duration,
                                       bin_size=bin_size),
                           label=f"fig17/{s}")
                  for s in schemes]
    results = get_executor(executor, jobs=jobs, cache_dir=cache_dir).run(sweep_jobs)
    return dict(zip(schemes, results))


def summarize_timeseries(series: Dict[str, TimeSeries]) -> list[dict]:
    """Per-scheme utilisation and p95 queuing delay rows for printing."""
    rows = []
    for scheme, ts in series.items():
        rows.append({
            "scheme": scheme,
            "utilization": ts.utilization,
            "queuing_p95_ms": ts.queuing_p95_ms,
            "mean_throughput_mbps": float(np.mean(ts.throughput_bps)) / 1e6
            if ts.throughput_bps.size else 0.0,
        })
    return rows
