"""Time-series experiments: Fig. 1 (motivation) and Fig. 17 (explicit schemes).

Fig. 1 runs Cubic, Verus, Cubic+CoDel and ABC over the same emulated LTE trace
and plots achieved throughput against link capacity plus the queuing delay
over time.  Fig. 17 runs ABC, RCP and XCPw over a square-wave link whose
capacity alternates between 12 and 24 Mbit/s every 500 ms.

Both entry points take ``seeds=`` (default: the ``REPRO_SEEDS`` environment
variable).  With several seeds, Fig. 1 regenerates its LTE trace per seed and
the returned :class:`TimeSeries` holds the across-seed mean curves, with the
scalar metrics' aggregates (mean/stdev/95 % CI) in ``TimeSeries.seed_stats``;
the default/single-seed output is the legacy point estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.stats import (SeedAggregate, aggregate_metric_dicts,
                                  split_by_seed)
from repro.cellular.synthetic import lte_showcase_trace
from repro.cellular.trace import CellularTrace
from repro.experiments.runner import run_single_bottleneck
from repro.runtime.executor import (SweepExecutor, SweepJob, get_executor,
                                    resolve_seeds)
from repro.runtime.trace_store import register_trace, resolve_link_spec
from repro.simulator.link import SquareWaveRate


@dataclass
class TimeSeries:
    """One scheme's throughput/queuing-delay time series plus the capacity.

    For multi-seed runs the arrays are across-seed means (trimmed to the
    shortest seed's bin count), ``n_seeds`` > 1, and ``seed_stats`` maps the
    scalar metrics (``utilization``, ``queuing_p95_ms``) to their
    :class:`~repro.analysis.stats.SeedAggregate`.
    """

    scheme: str
    times: np.ndarray
    throughput_bps: np.ndarray
    queuing_delay_ms: np.ndarray
    capacity_bps: Optional[np.ndarray] = None
    utilization: float = 0.0
    queuing_p95_ms: float = 0.0
    n_seeds: int = 1
    seed_stats: Optional[Dict[str, SeedAggregate]] = None


def _timeseries_from_result(result, bin_size: float) -> TimeSeries:
    flow = result.extra["flow"]
    times, tput = flow.stats.throughput_timeseries(bin_size=bin_size)
    qt, qd = flow.stats.queuing_delay_timeseries(bin_size=bin_size)
    n = min(len(times), len(qt))
    return TimeSeries(
        scheme=result.scheme,
        times=times[:n],
        throughput_bps=tput[:n],
        queuing_delay_ms=qd[:n] * 1000.0,
        utilization=result.utilization,
        queuing_p95_ms=result.queuing_p95_ms,
    )


def timeseries_cell(scheme: str, link_spec, rtt: float, duration: float,
                    buffer_packets: int = 250,
                    bin_size: float = 0.5, seed: int = 0) -> TimeSeries:
    """Run one scheme and bin its stats into a picklable :class:`TimeSeries`.

    Module-level (and binning *inside* the job) so the live flow/scenario
    objects never cross a process boundary when the sweep runs on a pool.
    ``link_spec`` may be a :class:`~repro.runtime.trace_store.TraceRef`.
    """
    result = run_single_bottleneck(scheme, resolve_link_spec(link_spec),
                                   rtt=rtt, duration=duration,
                                   buffer_packets=buffer_packets, seed=seed)
    return _timeseries_from_result(result, bin_size)


def _combine_seed_series(scheme: str, series_list: Sequence[TimeSeries],
                         capacities: Sequence[Optional[np.ndarray]],
                         seed_list: Sequence[int]) -> TimeSeries:
    """Average per-seed series into one mean-curve :class:`TimeSeries`."""
    n = min(len(ts.times) for ts in series_list)
    capacity = None
    usable = [c for c in capacities if c is not None]
    if usable:
        n = min(n, min(len(c) for c in usable))
        capacity = np.mean([c[:n] for c in usable], axis=0)
    stats = aggregate_metric_dicts(
        [{"utilization": ts.utilization, "queuing_p95_ms": ts.queuing_p95_ms}
         for ts in series_list])
    return TimeSeries(
        scheme=scheme,
        times=series_list[0].times[:n],
        throughput_bps=np.mean([ts.throughput_bps[:n] for ts in series_list],
                               axis=0),
        queuing_delay_ms=np.mean([ts.queuing_delay_ms[:n]
                                  for ts in series_list], axis=0),
        capacity_bps=capacity,
        utilization=stats["utilization"].mean,
        queuing_p95_ms=stats["queuing_p95_ms"].mean,
        n_seeds=len(seed_list),
        seed_stats=stats,
    )


def fig1_timeseries(schemes: Sequence[str] = ("cubic", "verus", "cubic+codel", "abc"),
                    duration: float = 30.0, rtt: float = 0.1,
                    buffer_packets: int = 250, bin_size: float = 0.5,
                    trace: Optional[CellularTrace] = None, seed: int = 7,
                    executor: Optional[SweepExecutor] = None,
                    jobs: Optional[int] = None,
                    cache_dir: Optional[str] = None,
                    seeds: Optional[Sequence[int]] = None
                    ) -> Dict[str, TimeSeries]:
    """Reproduce Fig. 1: each scheme over the same emulated LTE trace.

    With multiple ``seeds`` the LTE trace is regenerated per seed (unless
    pinned via ``trace=``) and each scheme's series is the across-seed mean.
    """
    seeds = resolve_seeds(seeds)
    seed_list = (seed,) if seeds is None else seeds
    multi = len(seed_list) > 1
    executor = get_executor(executor, jobs=jobs, cache_dir=cache_dir)

    pinned_ref = register_trace(trace) if trace is not None else None
    sweep_jobs = []
    capacities: List[np.ndarray] = []
    for s in seed_list:
        trace_s = trace if trace is not None else lte_showcase_trace(
            duration=duration, seed=s)
        _, capacity = trace_s.rate_timeseries(bin_size=bin_size)
        capacities.append(capacity)
        ref = pinned_ref if pinned_ref is not None else register_trace(trace_s)
        # fig1's legacy `seed` is a trace seed; single-seed runs keep the
        # legacy per-cell seed 0 (fig5/10/12/17 differ: there the legacy
        # seed feeds the simulation itself, so it passes through).
        cell_seed = s if multi else 0
        sweep_jobs += [SweepJob(func=timeseries_cell,
                                kwargs=dict(scheme=sch, link_spec=ref, rtt=rtt,
                                            duration=duration,
                                            buffer_packets=buffer_packets,
                                            bin_size=bin_size, seed=cell_seed),
                                label=f"fig1/seed{s}/{sch}")
                       for sch in schemes]
    groups = split_by_seed(executor.run(sweep_jobs), len(seed_list))

    out: Dict[str, TimeSeries] = {}
    for j, scheme in enumerate(schemes):
        per_seed = groups[j]
        if multi:
            out[scheme] = _combine_seed_series(scheme, per_seed, capacities,
                                               seed_list)
        else:
            series = per_seed[0]
            n = min(len(series.times), len(capacities[0]))
            series.capacity_bps = capacities[0][:n]
            out[scheme] = series
    return out


def fig17_square_wave(schemes: Sequence[str] = ("abc", "rcp", "xcpw"),
                      low_mbps: float = 12.0, high_mbps: float = 24.0,
                      half_period: float = 0.5, duration: float = 10.0,
                      rtt: float = 0.1, bin_size: float = 0.25,
                      executor: Optional[SweepExecutor] = None,
                      jobs: Optional[int] = None,
                      cache_dir: Optional[str] = None,
                      seeds: Optional[Sequence[int]] = None
                      ) -> Dict[str, TimeSeries]:
    """Reproduce Fig. 17: explicit schemes on a 12↔24 Mbit/s square wave.

    The square-wave link is deterministic, so the seed axis only reseeds the
    per-cell simulation; multi-seed runs still return mean curves with
    ``seed_stats`` attached, for API uniformity with :func:`fig1_timeseries`.
    """
    seeds = resolve_seeds(seeds)
    seed_list = (0,) if seeds is None else seeds
    multi = len(seed_list) > 1
    sweep_jobs = [SweepJob(func=timeseries_cell,
                           kwargs=dict(scheme=sch,
                                       link_spec=SquareWaveRate(
                                           low_mbps * 1e6, high_mbps * 1e6,
                                           half_period),
                                       rtt=rtt, duration=duration,
                                       bin_size=bin_size, seed=s),
                           label=f"fig17/seed{s}/{sch}")
                  for s in seed_list for sch in schemes]
    results = get_executor(executor, jobs=jobs, cache_dir=cache_dir).run(sweep_jobs)
    if not multi:
        return dict(zip(schemes, results))
    groups = split_by_seed(results, len(seed_list))
    return {scheme: _combine_seed_series(scheme, groups[j],
                                         [None] * len(seed_list), seed_list)
            for j, scheme in enumerate(schemes)}


def summarize_timeseries(series: Dict[str, TimeSeries]) -> list[dict]:
    """Per-scheme utilisation and p95 queuing delay rows for printing."""
    rows = []
    for scheme, ts in series.items():
        rows.append({
            "scheme": scheme,
            "utilization": ts.utilization,
            "queuing_p95_ms": ts.queuing_p95_ms,
            "mean_throughput_mbps": float(np.mean(ts.throughput_bps)) / 1e6
            if ts.throughput_bps.size else 0.0,
        })
    return rows
