"""Coexistence of ABC and non-ABC flows at an ABC bottleneck (§5.2).

The ABC router separates ABC and non-ABC packets into two queues and schedules
between them with weights ``w_ABC`` and ``1 − w_ABC``.  ABC's target-rate
computation then only considers ABC's share of the link.  The interesting part
is how the weights are chosen:

* :class:`MaxMinWeightController` — the paper's approach.  Measure the rate of
  the K largest flows in each queue (Space-Saving), treat the remainder of
  each queue as demand-limited short flows, inflate top-K demands by X %,
  compute a max-min fair allocation over all demands and set each queue's
  weight to the total allocation of its flows.
* :class:`ZombieListWeightController` — RCP's strategy: estimate the number of
  flows per queue with a Zombie List and equalise *average* per-flow rates,
  i.e. make weights proportional to flow counts.  Fig. 12b shows why this is
  unfair in the presence of short flows.

The scheduler itself is a byte-weighted deficit scheduler: the queue whose
served-bytes-to-weight ratio is smallest goes next, which converges to the
configured weights whenever both queues are backlogged and stays
work-conserving otherwise.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.maxmin import max_min_allocation
from repro.analysis.topk import SpaceSaving
from repro.analysis.zombie import ZombieList
from repro.core.params import ABCParams
from repro.core.router import ABCRouterQdisc
from repro.simulator.packet import Packet
from repro.simulator.qdisc import FifoQdisc, Qdisc


class WeightController:
    """Interface for coexistence weight controllers."""

    def record_departure(self, queue: str, flow_id: int, size: int, now: float) -> None:
        """Observe one departing packet."""

    def compute_weight(self, now: float, capacity_bps: float) -> float:
        """Return the ABC queue's weight in ``(0, 1)``."""
        raise NotImplementedError


class MaxMinWeightController(WeightController):
    """The paper's demand-based max-min weight allocation (§5.2)."""

    def __init__(self, top_k: int = 10, demand_headroom: float = 0.10,
                 interval: float = 1.0, minimum_weight: float = 0.05):
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        if demand_headroom < 0:
            raise ValueError("demand_headroom must be non-negative")
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.top_k = top_k
        self.demand_headroom = demand_headroom
        self.interval = interval
        self.minimum_weight = minimum_weight
        self._meters = {"abc": SpaceSaving(capacity=4 * top_k),
                        "nonabc": SpaceSaving(capacity=4 * top_k)}
        self._totals = {"abc": 0.0, "nonabc": 0.0}
        self._interval_start: Optional[float] = None
        self.last_weight = 0.5
        self.last_allocation: Dict = {}

    def record_departure(self, queue: str, flow_id: int, size: int, now: float) -> None:
        if self._interval_start is None:
            self._interval_start = now
        self._meters[queue].update(flow_id, size)
        self._totals[queue] += size

    def _demands(self, elapsed: float) -> tuple[Dict, Dict]:
        """Build the demand map and the flow→queue map for the allocation."""
        demands: Dict = {}
        queue_of: Dict = {}
        for queue in ("abc", "nonabc"):
            meter = self._meters[queue]
            top = meter.top(self.top_k)
            top_bytes = 0.0
            for flow_id, volume in top:
                rate = volume * 8.0 / elapsed
                key = (queue, flow_id)
                demands[key] = rate * (1.0 + self.demand_headroom)
                queue_of[key] = queue
                top_bytes += volume
            short_bytes = max(self._totals[queue] - top_bytes, 0.0)
            if short_bytes > 0:
                key = (queue, "__short__")
                demands[key] = short_bytes * 8.0 / elapsed
                queue_of[key] = queue
        return demands, queue_of

    def compute_weight(self, now: float, capacity_bps: float) -> float:
        if self._interval_start is None:
            return self.last_weight
        elapsed = now - self._interval_start
        if elapsed < self.interval:
            return self.last_weight
        demands, queue_of = self._demands(elapsed)
        if demands:
            allocation = max_min_allocation(demands, capacity_bps)
            self.last_allocation = allocation
            totals = {"abc": 0.0, "nonabc": 0.0}
            for key, value in allocation.items():
                totals[queue_of[key]] += value
            grand = totals["abc"] + totals["nonabc"]
            if grand > 0:
                weight = totals["abc"] / grand
                weight = min(max(weight, self.minimum_weight), 1.0 - self.minimum_weight)
                self.last_weight = weight
        # Start a fresh measurement interval.
        for meter in self._meters.values():
            meter.reset()
        self._totals = {"abc": 0.0, "nonabc": 0.0}
        self._interval_start = now
        return self.last_weight


class ZombieListWeightController(WeightController):
    """RCP's flow-count-based weights (the Fig. 12b baseline)."""

    def __init__(self, interval: float = 1.0, minimum_weight: float = 0.05,
                 zombie_size: int = 64, seed: int = 0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.minimum_weight = minimum_weight
        self._zombies = {"abc": ZombieList(size=zombie_size, seed=seed),
                         "nonabc": ZombieList(size=zombie_size, seed=seed + 1)}
        self._last_update: Optional[float] = None
        self.last_weight = 0.5

    def record_departure(self, queue: str, flow_id: int, size: int, now: float) -> None:
        self._zombies[queue].observe(flow_id)

    def compute_weight(self, now: float, capacity_bps: float) -> float:
        if self._last_update is None:
            self._last_update = now
            return self.last_weight
        if now - self._last_update < self.interval:
            return self.last_weight
        self._last_update = now
        n_abc = self._zombies["abc"].estimated_flow_count()
        n_nonabc = self._zombies["nonabc"].estimated_flow_count()
        weight = n_abc / (n_abc + n_nonabc)
        self.last_weight = min(max(weight, self.minimum_weight),
                               1.0 - self.minimum_weight)
        return self.last_weight


class DualQueueABCQdisc(Qdisc):
    """Two-queue ABC bottleneck: ABC traffic and legacy traffic side by side.

    ABC packets (identified by ``packet.abc_capable``) go through an embedded
    :class:`~repro.core.router.ABCRouterQdisc` whose capacity is scaled by the
    current ABC weight; non-ABC packets go through a separate drop-tail (or
    caller-supplied) queue.  A byte-weighted scheduler serves the two queues
    in proportion to the weights produced by the controller.
    """

    name = "abc-dual"

    def __init__(self, params: Optional[ABCParams] = None,
                 buffer_packets: int = 250,
                 nonabc_qdisc: Optional[Qdisc] = None,
                 controller: Optional[WeightController] = None,
                 initial_weight: float = 0.5):
        super().__init__(buffer_packets=buffer_packets)
        if not 0.0 < initial_weight < 1.0:
            raise ValueError("initial_weight must be in (0, 1)")
        self.params = params if params is not None else ABCParams()
        self.abc_queue = ABCRouterQdisc(params=self.params,
                                        buffer_packets=buffer_packets,
                                        capacity_fn=self._abc_capacity)
        self.nonabc_queue = nonabc_qdisc if nonabc_qdisc is not None else (
            FifoQdisc(buffer_packets=buffer_packets))
        self.controller = controller if controller is not None else MaxMinWeightController()
        self.weight_abc = initial_weight
        # Seed the controller so its first report agrees with the configured
        # starting point instead of silently resetting to its own default.
        if hasattr(self.controller, "last_weight"):
            self.controller.last_weight = initial_weight
        self._served_bytes = {"abc": 0.0, "nonabc": 0.0}
        self.weight_history: list[tuple[float, float]] = []

    # ------------------------------------------------------------ capacity
    def _link_capacity(self, now: float) -> float:
        if self.link is None:
            return 0.0
        return self.link.capacity_bps(now)

    def _abc_capacity(self, now: float) -> float:
        """Capacity share visible to the embedded ABC router (§5.2)."""
        return self._link_capacity(now) * self.weight_abc

    # ------------------------------------------------------------ queue ops
    def _classify(self, packet: Packet) -> str:
        return "abc" if getattr(packet, "abc_capable", False) else "nonabc"

    def enqueue(self, packet: Packet, now: float) -> bool:
        queue_name = self._classify(packet)
        queue = self.abc_queue if queue_name == "abc" else self.nonabc_queue
        accepted = queue.enqueue(packet, now)
        if accepted:
            self.backlog_bytes += packet.size
            self.backlog_packets += 1
        else:
            self.dropped_packets += 1
        return accepted

    def _pick_queue(self) -> Optional[str]:
        abc_empty = self.abc_queue.is_empty
        nonabc_empty = self.nonabc_queue.is_empty
        if abc_empty and nonabc_empty:
            return None
        if abc_empty:
            return "nonabc"
        if nonabc_empty:
            return "abc"
        # Both backlogged: serve the queue that is furthest behind its weight.
        abc_normalised = self._served_bytes["abc"] / max(self.weight_abc, 1e-9)
        nonabc_normalised = (self._served_bytes["nonabc"]
                             / max(1.0 - self.weight_abc, 1e-9))
        return "abc" if abc_normalised <= nonabc_normalised else "nonabc"

    def dequeue(self, now: float) -> Optional[Packet]:
        self._refresh_weight(now)
        choice = self._pick_queue()
        if choice is None:
            return None
        queue = self.abc_queue if choice == "abc" else self.nonabc_queue
        packet = queue.dequeue(now)
        if packet is None:
            return None
        self.backlog_bytes -= packet.size
        self.backlog_packets -= 1
        self._served_bytes[choice] += packet.size
        self.controller.record_departure(choice, packet.flow_id, packet.size, now)
        return packet

    def _refresh_weight(self, now: float) -> None:
        weight = self.controller.compute_weight(now, self._link_capacity(now))
        if weight != self.weight_abc:
            self.weight_abc = weight
            self.weight_history.append((now, weight))
            # Reset the served-byte counters so the new weights take effect
            # quickly instead of being dominated by history.
            self._served_bytes = {"abc": 0.0, "nonabc": 0.0}

    # ------------------------------------------------------------ helpers
    def peek(self) -> Optional[Packet]:
        choice = self._pick_queue()
        if choice is None:
            return None
        queue = self.abc_queue if choice == "abc" else self.nonabc_queue
        return queue.peek()

    def abc_queuing_delay(self, now: float) -> float:
        return self.abc_queue.queuing_delay(now, self._abc_capacity(now))

    def nonabc_queuing_delay(self, now: float) -> float:
        capacity = self._link_capacity(now) * (1.0 - self.weight_abc)
        return self.nonabc_queue.queuing_delay(now, capacity)
