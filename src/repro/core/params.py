"""ABC protocol parameters.

The defaults follow the paper's evaluation setup (§6.2): ``η = 0.98``,
``δ = 133 ms`` (for a 100 ms propagation RTT, satisfying the Theorem 3.1
stability bound ``δ > 2τ/3``), and a delay threshold ``dt`` that absorbs the
batching-induced queuing delay of the wireless MAC (20–100 ms in the WiFi
experiments, Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class ABCParams:
    """Parameters of the ABC router control law (Eq. 1 and Eq. 2).

    Attributes
    ----------
    eta:
        Target utilisation η, slightly below 1 so a small amount of bandwidth
        is traded for large delay reductions.
    delta:
        Queue-draining time constant δ in seconds; the second term of Eq. (1)
        drains queuing delay above ``dt`` within δ seconds.  Must satisfy
        ``δ > 2/3 · τ`` for stability (Theorem 3.1).
    delay_threshold:
        ``dt`` in seconds — queuing delay below this is ignored so that
        MAC-layer batching does not trigger rate reductions.
    measurement_window:
        Sliding-window length ``T`` (seconds) over which the router measures
        its dequeue rate ``cr(t)`` and link capacity ``µ(t)``.
    token_limit:
        Cap on the marking token bucket of Algorithm 1.
    additive_increase:
        Whether senders apply the ``+1/w`` per-ACK additive-increase term of
        Eq. (3).  Disabling it reproduces the unfair MIMD behaviour of
        Fig. 3a.
    window_cap_factor:
        Both sender windows are capped at this multiple of the packets in
        flight (§5.1.1 uses 2×).
    """

    eta: float = 0.98
    delta: float = 0.133
    delay_threshold: float = 0.02
    measurement_window: float = 0.05
    token_limit: float = 2.0
    additive_increase: bool = True
    window_cap_factor: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 < self.eta <= 1.0:
            raise ValueError("eta must be in (0, 1]")
        if self.delta <= 0:
            raise ValueError("delta must be positive")
        if self.delay_threshold < 0:
            raise ValueError("delay_threshold must be non-negative")
        if self.measurement_window <= 0:
            raise ValueError("measurement_window must be positive")
        if self.token_limit < 1.0:
            raise ValueError("token_limit must be at least 1.0")
        if self.window_cap_factor < 1.0:
            raise ValueError("window_cap_factor must be at least 1.0")

    def with_overrides(self, **kwargs) -> "ABCParams":
        """Return a copy with some fields replaced."""
        return replace(self, **kwargs)

    def is_stable_for_rtt(self, rtt: float) -> bool:
        """Check the Theorem 3.1 stability criterion ``δ > 2/3 · τ``."""
        return self.delta > (2.0 / 3.0) * rtt


#: Parameters used throughout the paper's cellular evaluation (§6.2).
CELLULAR_DEFAULTS = ABCParams(eta=0.98, delta=0.133, delay_threshold=0.02)

#: Parameters used for the WiFi evaluation; ``dt`` must exceed the average
#: inter-scheduling (batch) time of the WiFi MAC (§3.1.2), and Fig. 10 sweeps
#: dt over {20, 60, 100} ms.
WIFI_DEFAULTS = ABCParams(eta=0.95, delta=0.133, delay_threshold=0.06,
                          measurement_window=0.04)
