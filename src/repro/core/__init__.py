"""The paper's contribution: Accel-Brake Control (ABC).

* :mod:`repro.core.params` — the protocol constants (η, δ, dt, ...).
* :mod:`repro.core.marking` — Algorithm 1's deterministic token-bucket marker
  (plus a probabilistic variant used as an ablation).
* :mod:`repro.core.router` — the ABC router qdisc: target-rate computation
  (Eq. 1), accelerate-fraction computation (Eq. 2) and per-packet marking.
* :mod:`repro.core.sender` — the ABC sender: accel/brake window updates with
  additive increase (Eq. 3) and the dual-window coexistence machinery of
  §5.1.1.
* :mod:`repro.core.coexistence` — the two-queue scheduler and the max-min
  weight allocation used to share an ABC bottleneck with non-ABC flows (§5.2).
* :mod:`repro.core.pk_abc` — the PK-ABC oracle variant (§6.6).
* :mod:`repro.core.stability` — the fluid model behind Theorem 3.1.
* :mod:`repro.core.ecn` — the ECN codepoint re-purposing of §5.1.2.
"""

from repro.core.coexistence import DualQueueABCQdisc, MaxMinWeightController, ZombieListWeightController
from repro.core.marking import ProbabilisticMarker, TokenBucketMarker
from repro.core.params import ABCParams
from repro.core.pk_abc import PKABCRouterQdisc
from repro.core.router import ABCRouterQdisc
from repro.core.sender import ABCWindowControl
from repro.core.stability import FluidModel, stability_threshold

__all__ = [
    "ABCParams",
    "TokenBucketMarker",
    "ProbabilisticMarker",
    "ABCRouterQdisc",
    "ABCWindowControl",
    "PKABCRouterQdisc",
    "DualQueueABCQdisc",
    "MaxMinWeightController",
    "ZombieListWeightController",
    "FluidModel",
    "stability_threshold",
]
