"""PK-ABC: ABC with perfect knowledge of future link capacity (§6.6).

The paper's PK-ABC variant assumes the base station can predict its resource
allocation: instead of the *current* capacity estimate, the router uses the
exact link rate expected one RTT in the future when computing the target rate.
On the Verizon uplink trace this cuts the 95th-percentile per-packet delay
from 97 ms to 28 ms at the same (~90 %) utilisation.

With a trace-driven link the future is simply the next stretch of the trace,
so PK-ABC is the ABC router with a look-ahead capacity callback.
"""

from __future__ import annotations

from typing import Optional

from repro.core.params import ABCParams
from repro.core.router import ABCRouterQdisc


class PKABCRouterQdisc(ABCRouterQdisc):
    """ABC router that reads the link capacity one RTT into the future."""

    name = "pk-abc"

    def __init__(self, params: Optional[ABCParams] = None,
                 buffer_packets: int = 250, lookahead: float = 0.1,
                 **kwargs):
        super().__init__(params=params, buffer_packets=buffer_packets, **kwargs)
        if lookahead <= 0:
            raise ValueError("lookahead must be positive")
        self.lookahead = lookahead

    def capacity_bps(self, now: float) -> float:
        if self.capacity_fn is not None:
            return max(self.capacity_fn(now), 0.0) * self.capacity_share
        link = self.link
        if link is not None and hasattr(link, "future_capacity_bps"):
            future = link.future_capacity_bps(now, self.lookahead)
            return max(future, 0.0) * self.capacity_share
        return super().capacity_bps(now)
