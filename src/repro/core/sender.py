"""The ABC sender: accel/brake window updates and dual-window coexistence.

The sender-side algorithm is deliberately tiny (§3.1.1, §3.1.3):

* on an **accelerate** ACK the window grows by ``1 + 1/w`` packets (the ``1``
  is the multiplicative accel/brake response, the ``1/w`` is the
  additive-increase term that yields fairness, Eq. 3);
* on a **brake** ACK the window shrinks by ``1 − 1/w`` packets;
* updates are byte-based so variable packet sizes and partial ACKs are handled
  naturally (§3.1.1).

For coexistence with non-ABC bottlenecks (§5.1.1) the sender maintains a
second congestion window ``w_nonabc`` driven by Cubic, reacting to drops and
classic ECN marks.  The effective window is the minimum of the two, and both
windows are capped at ``window_cap_factor ×`` the packets in flight so the
idle window cannot grow without bound.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import CongestionControl
from repro.cc.cubic import Cubic
from repro.core.params import ABCParams
from repro.simulator.packet import MTU, AckFeedback


class ABCWindowControl(CongestionControl):
    """ABC congestion control (sender side).

    Parameters
    ----------
    params:
        Protocol parameters; only ``additive_increase`` and
        ``window_cap_factor`` are used on the sender side.
    dual_window:
        When True (default) the Cubic-driven ``w_nonabc`` window is maintained
        so the flow behaves like Cubic whenever a non-ABC router is the
        bottleneck.  Disabling it isolates the pure accel/brake behaviour for
        unit tests and the fairness experiments on all-ABC paths.
    """

    name = "abc"
    uses_abc = True

    def __init__(self, params: Optional[ABCParams] = None, mss: int = MTU,
                 initial_cwnd: float = 2.0, dual_window: bool = True):
        super().__init__(mss=mss, initial_cwnd=initial_cwnd)
        self.params = params if params is not None else ABCParams()
        self.dual_window = dual_window
        self.w_abc = float(initial_cwnd)
        self.cubic = Cubic(mss=mss, initial_cwnd=initial_cwnd) if dual_window else None
        self.accel_acks = 0
        self.brake_acks = 0

    # ------------------------------------------------------------ windows
    @property
    def w_nonabc(self) -> float:
        """The Cubic window tracking non-ABC bottlenecks (inf when disabled)."""
        if self.cubic is None:
            return float("inf")
        return self.cubic.cwnd()

    def cwnd(self) -> float:
        return max(min(self.w_abc, self.w_nonabc), self.min_cwnd())

    def min_cwnd(self) -> float:
        return 1.0

    # ------------------------------------------------------------ feedback
    def on_ack(self, feedback: AckFeedback) -> None:
        acked = feedback.bytes_acked / self.mss
        ai = acked / max(self.w_abc, 1.0) if self.params.additive_increase else 0.0
        if feedback.accel:
            self.accel_acks += 1
            self.w_abc += acked + ai
        else:
            self.brake_acks += 1
            self.w_abc -= acked - ai
        self.w_abc = max(self.w_abc, self.min_cwnd())

        if self.cubic is not None:
            self.cubic.on_ack(feedback)

        self._apply_window_caps(feedback.packets_in_flight)

    def fast_ack(self, feedback: AckFeedback) -> float:
        """Fused accel/brake + Cubic + window-cap update for the batched fast
        path.  This is :meth:`on_ack` followed by the sender's
        ``max(cwnd(), min_cwnd())`` read, flattened into one call with the
        same floating-point operations in the same order — the ``max``/``min``
        built-ins are replaced by the equivalent comparisons so the result is
        bit-identical (``min_cwnd`` is the constant 1.0 here).
        """
        acked = feedback.bytes_acked / self.mss
        w = self.w_abc
        if self.params.additive_increase:
            ai = acked / (w if w > 1.0 else 1.0)
        else:
            ai = 0.0
        if feedback.accel:
            self.accel_acks += 1
            w = w + (acked + ai)
        else:
            self.brake_acks += 1
            w = w - (acked - ai)
        if w < 1.0:
            w = 1.0

        cubic = self.cubic
        if cubic is not None:
            cubic.on_ack(feedback)

        # _apply_window_caps, inlined.
        in_flight = feedback.packets_in_flight + 1
        cap = self.params.window_cap_factor * (in_flight if in_flight >= 1 else 1)
        if cap < 2.0:
            cap = 2.0
        if w > cap:
            w = cap
        self.w_abc = w

        if cubic is not None:
            cw = cubic._cwnd
            if cw > cap:
                cw = cap if cap >= 1.0 else 1.0
                cubic._cwnd = cw
            # cwnd() = max(min(w_abc, cubic cwnd), 1.0), inlined.
            effective = w if w <= cw else cw
        else:
            effective = w
        return effective if effective >= 1.0 else 1.0

    def _apply_window_caps(self, packets_in_flight: int) -> None:
        """Cap both windows at ``window_cap_factor ×`` packets in flight
        (§5.1.1) so the non-bottleneck window cannot grow unboundedly.

        The count includes the packet whose ACK is being processed (the sender
        removes it from its in-flight set just before invoking the congestion
        controller), otherwise the cap would bite during normal ACK-clocked
        growth instead of only when the window is idle."""
        in_flight = packets_in_flight + 1
        cap = max(self.params.window_cap_factor * max(in_flight, 1),
                  2.0 * self.min_cwnd())
        self.w_abc = min(self.w_abc, cap)
        if self.cubic is not None:
            self.cubic.clamp_to(cap)

    def on_loss(self, now: float) -> None:
        if self.cubic is not None:
            self.cubic.on_loss(now)

    def on_timeout(self, now: float) -> None:
        # Losing a whole window of feedback usually means the path is dead or
        # an outage occurred; restart conservatively on both windows.
        self.w_abc = max(self.w_abc / 2.0, self.min_cwnd())
        if self.cubic is not None:
            self.cubic.on_timeout(now)

    # ------------------------------------------------------------ stats
    @property
    def observed_accel_fraction(self) -> float:
        total = self.accel_acks + self.brake_acks
        return self.accel_acks / total if total else 0.0
