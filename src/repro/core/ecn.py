"""ECN codepoint re-purposing (§5.1.2) and the proxied-network variant.

ABC needs one bit of router-to-sender feedback per packet but adds no header
fields.  Instead it re-interprets the two IP ECN bits:

* ABC senders transmit data packets with codepoint ``01`` (classic ECT(1)),
  which ABC routers read as *accelerate*;
* ABC routers signal *brake* by rewriting the codepoint to ``10`` (ECT(0));
* legacy ECN routers still see an ECN-capable transport either way and still
  use ``11`` (CE) for classic congestion marking, so both signals coexist.

On the return path the receiver echoes classic ECN via the ECE flag and the
accel/brake bit via the (historic) NS bit; in proxied cellular networks the
simpler encoding of the second table below works with unmodified receivers.

This module provides the explicit translation tables plus helpers used by the
unit tests; the hot-path marking logic lives directly in
:mod:`repro.simulator.packet` (:func:`~repro.simulator.packet.apply_brake`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.packet import ECN

#: Classic RFC 3168 interpretation of the ECT/CE bit pair.
CLASSIC_INTERPRETATION = {
    ECN.NOT_ECT: "Non-ECN-Capable Transport",
    ECN.ACCEL: "ECN-Capable Transport ECT(1)",
    ECN.BRAKE: "ECN-Capable Transport ECT(0)",
    ECN.CE: "ECN set",
}

#: ABC's re-interpretation of the same bits (§5.1.2, second table).
ABC_INTERPRETATION = {
    ECN.NOT_ECT: "Non-ECN-Capable Transport",
    ECN.ACCEL: "Accelerate",
    ECN.BRAKE: "Brake",
    ECN.CE: "ECN set",
}


@dataclass(frozen=True)
class ReceiverEcho:
    """What an ABC receiver feeds back for a given received codepoint.

    ``ece`` is the classic ECN-Echo flag; ``accel`` is the ABC feedback bit
    (carried in the re-purposed NS bit).
    """

    accel: bool
    ece: bool


def receiver_echo(codepoint: ECN) -> ReceiverEcho:
    """Feedback an ABC-aware receiver generates for a data packet."""
    return ReceiverEcho(accel=(codepoint == ECN.ACCEL),
                        ece=(codepoint == ECN.CE))


def sender_codepoint(abc_enabled: bool, ecn_enabled: bool = True) -> ECN:
    """Codepoint a sender stamps on outgoing data packets."""
    if abc_enabled:
        return ECN.ACCEL
    return ECN.BRAKE if ecn_enabled else ECN.NOT_ECT


def is_legacy_ecn_capable(codepoint: ECN) -> bool:
    """Would a legacy RFC 3168 router consider this packet ECN-capable?"""
    return codepoint.is_ecn_capable


# ---------------------------------------------------------------------------
# Proxied-network deployment (§5.1.2 "Deployment in Proxied Networks"): when
# no non-ABC router on the path uses ECN, accelerate can be either ECT
# codepoint and brake can be CE, so completely unmodified receivers (which
# echo CE via ECE) already convey ABC feedback.
# ---------------------------------------------------------------------------

def proxied_sender_codepoint() -> ECN:
    """Accelerate marking used by a proxy-deployed ABC sender."""
    return ECN.ACCEL


def proxied_brake(codepoint: ECN) -> ECN:
    """Brake marking used by a proxy-deployed ABC router (plain CE)."""
    if codepoint.is_ecn_capable:
        return ECN.CE
    return codepoint


def proxied_receiver_accel(codepoint: ECN) -> bool:
    """An unmodified receiver echoes CE as ECE; absence of ECE = accelerate."""
    return codepoint != ECN.CE
