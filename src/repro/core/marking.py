"""Packet marking: Algorithm 1's deterministic token bucket.

The router computes an accelerate fraction ``f(t)`` for every outgoing packet
(Eq. 2) and must ensure that no more than that fraction of packets carry an
accelerate mark.  The paper uses a deterministic token bucket (Algorithm 1) to
avoid the burstiness of probabilistic marking; both variants are implemented
here so the difference can be measured (see ``benchmarks/bench_marking.py``).
"""

from __future__ import annotations

import random


class TokenBucketMarker:
    """Deterministic accel/brake marker (Algorithm 1 of the paper).

    ``token`` is incremented by ``f(t)`` for every outgoing packet (capped at
    ``token_limit``) and decremented by one whenever a packet is marked
    accelerate; a packet can only be marked accelerate when ``token > 1``.
    Over any window of packets the accelerate fraction therefore never exceeds
    the average of the ``f(t)`` values supplied, yet the marker follows
    changes in ``f(t)`` packet-by-packet.
    """

    def __init__(self, token_limit: float = 2.0):
        if token_limit < 1.0:
            raise ValueError("token_limit must be at least 1.0")
        self.token_limit = token_limit
        self.token = 0.0
        self.accel_count = 0
        self.brake_count = 0

    def mark(self, fraction: float) -> bool:
        """Decide the marking of one outgoing packet.

        Parameters
        ----------
        fraction:
            The accelerate fraction ``f(t)`` computed for this packet, in
            ``[0, 1]``.

        Returns
        -------
        bool
            True to keep the accelerate mark, False to brake.
        """
        fraction = min(max(fraction, 0.0), 1.0)
        self.token = min(self.token + fraction, self.token_limit)
        if self.token >= 1.0:
            self.token -= 1.0
            self.accel_count += 1
            return True
        self.brake_count += 1
        return False

    def observe(self, fraction: float) -> None:
        """Account for an outgoing packet that is not eligible for marking.

        Algorithm 1 increments the token for *every* outgoing packet, even
        ones that already carry a brake (set by an upstream ABC router) — only
        the decrement is tied to granting an accelerate.  This is what makes
        the accelerate fraction along a multi-bottleneck path the *minimum* of
        the per-router fractions rather than their product.
        """
        fraction = min(max(fraction, 0.0), 1.0)
        self.token = min(self.token + fraction, self.token_limit)

    @property
    def accel_fraction(self) -> float:
        total = self.accel_count + self.brake_count
        return self.accel_count / total if total else 0.0

    def reset(self) -> None:
        self.token = 0.0
        self.accel_count = 0
        self.brake_count = 0


class ProbabilisticMarker:
    """Mark accelerate with probability ``f(t)`` (the ablation alternative).

    The paper notes this is simpler but burstier than the token bucket; the
    marking benchmark quantifies the difference in the variance of inter-mark
    gaps.
    """

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self.accel_count = 0
        self.brake_count = 0

    def mark(self, fraction: float) -> bool:
        fraction = min(max(fraction, 0.0), 1.0)
        accel = self._rng.random() < fraction
        if accel:
            self.accel_count += 1
        else:
            self.brake_count += 1
        return accel

    def observe(self, fraction: float) -> None:
        """Probabilistic marking keeps no state across packets."""

    @property
    def accel_fraction(self) -> float:
        total = self.accel_count + self.brake_count
        return self.accel_count / total if total else 0.0

    def reset(self) -> None:
        self.accel_count = 0
        self.brake_count = 0
