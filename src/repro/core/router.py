"""The ABC router: target rate (Eq. 1), accelerate fraction (Eq. 2), marking.

The router is implemented as a qdisc, mirroring the paper's Linux qdisc kernel
module (§6.1).  On every dequeued packet it:

1. measures the dequeue rate ``cr(t)`` over a sliding window of length ``T``;
2. reads the link capacity ``µ(t)`` (from the owning link, from a supplied
   capacity callback, or — on WiFi — from the §4.1 estimator);
3. computes the target rate ``tr(t) = η·µ(t) − µ(t)/δ·(x(t) − dt)+``;
4. converts it to the accelerate fraction ``f(t) = min(tr/(2·cr), 1)``;
5. marks the packet accelerate or brake through the deterministic token
   bucket of Algorithm 1, honouring the rule that accelerates may be
   downgraded to brakes but never upgraded (multi-bottleneck support).

Setting ``feedback_basis="enqueue"`` reproduces the ablation of Fig. 2, where
the fraction is computed from the enqueue rate the way prior explicit schemes
do — the resulting feedback lags capacity changes by an RTT and roughly
doubles tail queuing delay.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.marking import ProbabilisticMarker, TokenBucketMarker
from repro.core.params import ABCParams
from repro.simulator.estimators import WindowedRateEstimator
from repro.simulator.packet import ECN, Packet, apply_brake
from repro.simulator.qdisc import Qdisc

#: Type of the optional capacity callback: ``capacity_bps = fn(now)``.
CapacityFn = Callable[[float], float]


class ABCRouterQdisc(Qdisc):
    """ABC marking router implemented as a queueing discipline."""

    name = "abc"

    def __init__(self, params: Optional[ABCParams] = None,
                 buffer_packets: int = 250,
                 capacity_fn: Optional[CapacityFn] = None,
                 feedback_basis: str = "dequeue",
                 delay_mode: str = "standing",
                 probabilistic_marking: bool = False,
                 capacity_share: float = 1.0):
        super().__init__(buffer_packets=buffer_packets)
        if feedback_basis not in ("dequeue", "enqueue"):
            raise ValueError("feedback_basis must be 'dequeue' or 'enqueue'")
        if delay_mode not in ("standing", "sojourn"):
            raise ValueError("delay_mode must be 'standing' or 'sojourn'")
        if not 0.0 < capacity_share <= 1.0:
            raise ValueError("capacity_share must be in (0, 1]")
        self.params = params if params is not None else ABCParams()
        self.capacity_fn = capacity_fn
        self.feedback_basis = feedback_basis
        self.delay_mode = delay_mode
        self.capacity_share = capacity_share

        window = self.params.measurement_window
        self._dequeue_rate = WindowedRateEstimator(window=window)
        self._enqueue_rate = WindowedRateEstimator(window=window)
        if probabilistic_marking:
            self.marker = ProbabilisticMarker()
        else:
            self.marker = TokenBucketMarker(token_limit=self.params.token_limit)

        # Introspection counters used by tests and the feedback ablation.
        self.accel_marked = 0
        self.brake_marked = 0
        self.last_target_rate = 0.0
        self.last_fraction = 1.0
        self.last_capacity = 0.0
        self.last_queuing_delay = 0.0

    # ------------------------------------------------------------ measurement
    def capacity_bps(self, now: float) -> float:
        """Link capacity µ(t) available to ABC traffic."""
        if self.capacity_fn is not None:
            capacity = self.capacity_fn(now)
        elif self.link is not None:
            capacity = self.link.capacity_bps(now)
        else:
            capacity = 0.0
        return max(capacity, 0.0) * self.capacity_share

    def set_capacity_share(self, share: float) -> None:
        """Restrict the target-rate computation to a share of the link
        (used by the two-queue coexistence scheduler, §5.2)."""
        if not 0.0 < share <= 1.0:
            raise ValueError("share must be in (0, 1]")
        self.capacity_share = share

    def queuing_delay_estimate(self, now: float, capacity: float) -> float:
        """The x(t) term of Eq. (1)."""
        if self.delay_mode == "sojourn":
            return self.sojourn_time(now)
        return self.queuing_delay(now, capacity)

    # ------------------------------------------------------------ control law
    def target_rate(self, now: float, capacity: Optional[float] = None) -> float:
        """Eq. (1): ``tr(t) = η·µ(t) − µ(t)/δ·(x(t) − dt)+``, floored at 0."""
        p = self.params
        mu = self.capacity_bps(now) if capacity is None else capacity
        x = self.queuing_delay_estimate(now, mu)
        excess_delay = max(x - p.delay_threshold, 0.0)
        tr = p.eta * mu - (mu / p.delta) * excess_delay
        self.last_capacity = mu
        self.last_queuing_delay = x
        self.last_target_rate = max(tr, 0.0)
        return self.last_target_rate

    def accel_fraction(self, now: float) -> float:
        """Eq. (2): ``f(t) = min(tr(t) / (2·cr(t)), 1)``.

        With ``feedback_basis="enqueue"`` the denominator uses the enqueue
        rate instead (the Fig. 2 ablation).
        """
        tr = self.target_rate(now)
        if self.feedback_basis == "dequeue":
            reference = self._dequeue_rate.rate_bps(now)
        else:
            reference = self._enqueue_rate.rate_bps(now)
        if reference <= 0.0:
            # No rate measurement yet (start-up or after an idle period):
            # allow senders to ramp up by marking accelerate.
            fraction = 1.0
        else:
            fraction = min(0.5 * tr / reference, 1.0)
        self.last_fraction = max(fraction, 0.0)
        return self.last_fraction

    # ------------------------------------------------------------ queue ops
    def enqueue(self, packet: Packet, now: float) -> bool:
        if self.backlog_packets >= self.buffer_packets:
            self.dropped_packets += 1
            return False
        self._enqueue_rate.add(now, packet.size)
        self._push(packet, now)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        packet = self._pop(now)
        if packet is None:
            return None
        self._dequeue_rate.add(now, packet.size)
        self._apply_marking(packet, now)
        return packet

    def _apply_marking(self, packet: Packet, now: float) -> None:
        """Mark a departing packet; only ABC (accelerate-carrying) packets are
        eligible, and marks are only ever downgraded (accel → brake)."""
        fraction = self.accel_fraction(now)
        if packet.ecn != ECN.ACCEL:
            # Brake/CE/Not-ECT packets pass through untouched (the router may
            # not upgrade), but the token bucket still advances (Algorithm 1
            # adds f(t) for every outgoing packet) so that the accelerate
            # fraction along a multi-bottleneck path is the minimum of the
            # per-router fractions rather than their product.
            self.marker.observe(fraction)
            return
        keep_accel = self.marker.mark(fraction)
        if keep_accel:
            self.accel_marked += 1
        else:
            packet.ecn = apply_brake(packet.ecn)
            self.brake_marked += 1
            self.marked_packets += 1

    # ------------------------------------------------------------ stats
    @property
    def observed_accel_fraction(self) -> float:
        total = self.accel_marked + self.brake_marked
        return self.accel_marked / total if total else 0.0
