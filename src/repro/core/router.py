"""The ABC router: target rate (Eq. 1), accelerate fraction (Eq. 2), marking.

The router is implemented as a qdisc, mirroring the paper's Linux qdisc kernel
module (§6.1).  On every dequeued packet it:

1. measures the dequeue rate ``cr(t)`` over a sliding window of length ``T``;
2. reads the link capacity ``µ(t)`` (from the owning link, from a supplied
   capacity callback, or — on WiFi — from the §4.1 estimator);
3. computes the target rate ``tr(t) = η·µ(t) − µ(t)/δ·(x(t) − dt)+``;
4. converts it to the accelerate fraction ``f(t) = min(tr/(2·cr), 1)``;
5. marks the packet accelerate or brake through the deterministic token
   bucket of Algorithm 1, honouring the rule that accelerates may be
   downgraded to brakes but never upgraded (multi-bottleneck support).

Setting ``feedback_basis="enqueue"`` reproduces the ablation of Fig. 2, where
the fraction is computed from the enqueue rate the way prior explicit schemes
do — the resulting feedback lags capacity changes by an RTT and roughly
doubles tail queuing delay.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cellular.estimators import VectorRateEstimator
from repro.core.marking import ProbabilisticMarker, TokenBucketMarker
from repro.core.params import ABCParams
from repro.simulator import fastpath
from repro.simulator.estimators import WindowedRateEstimator
from repro.simulator.packet import ECN, Packet, apply_brake
from repro.simulator.qdisc import Qdisc

#: Type of the optional capacity callback: ``capacity_bps = fn(now)``.
CapacityFn = Callable[[float], float]


class ABCRouterQdisc(Qdisc):
    """ABC marking router implemented as a queueing discipline."""

    name = "abc"

    def __init__(self, params: Optional[ABCParams] = None,
                 buffer_packets: int = 250,
                 capacity_fn: Optional[CapacityFn] = None,
                 feedback_basis: str = "dequeue",
                 delay_mode: str = "standing",
                 probabilistic_marking: bool = False,
                 capacity_share: float = 1.0):
        super().__init__(buffer_packets=buffer_packets)
        if feedback_basis not in ("dequeue", "enqueue"):
            raise ValueError("feedback_basis must be 'dequeue' or 'enqueue'")
        if delay_mode not in ("standing", "sojourn"):
            raise ValueError("delay_mode must be 'standing' or 'sojourn'")
        if not 0.0 < capacity_share <= 1.0:
            raise ValueError("capacity_share must be in (0, 1]")
        self.params = params if params is not None else ABCParams()
        self.capacity_fn = capacity_fn
        self.feedback_basis = feedback_basis
        self.delay_mode = delay_mode
        self.capacity_share = capacity_share

        window = self.params.measurement_window
        self._fast = fastpath.enabled()
        if self._fast:
            # Numpy-folded estimators: identical hot-write representation
            # (the inlined appends in _enqueue_fast/_dequeue_fast work on
            # them unchanged), vectorised window expiry on read.
            self._dequeue_rate = VectorRateEstimator(window=window)
            self._enqueue_rate = VectorRateEstimator(window=window)
        else:
            self._dequeue_rate = WindowedRateEstimator(window=window)
            self._enqueue_rate = WindowedRateEstimator(window=window)
        if probabilistic_marking:
            self.marker = ProbabilisticMarker()
        else:
            self.marker = TokenBucketMarker(token_limit=self.params.token_limit)
        if self._fast:
            # Fused per-packet pipeline; the capacity memo is enabled per
            # link type in attach().  Instance attributes shadow the class
            # methods so the classic path stays untouched when the knob is
            # off.
            self._ref_rate = (self._dequeue_rate if feedback_basis == "dequeue"
                              else self._enqueue_rate)
            self._token_bucket = not probabilistic_marking
            self._standing = delay_mode == "standing"
            self._cap_memo_time = -1.0
            self._cap_memo = 0.0
            self._cap_memoizable = False
            self.enqueue = self._enqueue_fast
            self.dequeue = self._dequeue_fast

        # Introspection counters used by tests and the feedback ablation.
        self.accel_marked = 0
        self.brake_marked = 0
        self.last_target_rate = 0.0
        self.last_fraction = 1.0
        self.last_capacity = 0.0
        self.last_queuing_delay = 0.0

    # ------------------------------------------------------------ wiring
    def attach(self, link) -> None:
        super().attach(link)
        if self._fast:
            # The per-timestamp capacity memo is only sound when capacity is
            # a pure function of `now`: the two stock link models qualify, a
            # user-supplied capacity_fn (e.g. the stateful WiFi estimator)
            # may not — those keep the one-call-per-packet behaviour.  A
            # subclass overriding capacity_bps (PK-ABC's lookahead oracle)
            # also opts out, since the memoized read inlines the base method.
            from repro.simulator.link import OpportunityLink, RateLink
            self._cap_memoizable = (
                self.capacity_fn is None
                and type(link) in (OpportunityLink, RateLink)
                and type(self).capacity_bps is ABCRouterQdisc.capacity_bps)

    # ------------------------------------------------------------ measurement
    def capacity_bps(self, now: float) -> float:
        """Link capacity µ(t) available to ABC traffic."""
        if self.capacity_fn is not None:
            capacity = self.capacity_fn(now)
        elif self.link is not None:
            capacity = self.link.capacity_bps(now)
        else:
            capacity = 0.0
        return max(capacity, 0.0) * self.capacity_share

    def set_capacity_share(self, share: float) -> None:
        """Restrict the target-rate computation to a share of the link
        (used by the two-queue coexistence scheduler, §5.2)."""
        if not 0.0 < share <= 1.0:
            raise ValueError("share must be in (0, 1]")
        self.capacity_share = share
        if self._fast:
            self._cap_memo_time = -1.0

    def queuing_delay_estimate(self, now: float, capacity: float) -> float:
        """The x(t) term of Eq. (1)."""
        if self.delay_mode == "sojourn":
            return self.sojourn_time(now)
        return self.queuing_delay(now, capacity)

    # ------------------------------------------------------------ control law
    def target_rate(self, now: float, capacity: Optional[float] = None) -> float:
        """Eq. (1): ``tr(t) = η·µ(t) − µ(t)/δ·(x(t) − dt)+``, floored at 0."""
        p = self.params
        mu = self.capacity_bps(now) if capacity is None else capacity
        x = self.queuing_delay_estimate(now, mu)
        excess_delay = max(x - p.delay_threshold, 0.0)
        tr = p.eta * mu - (mu / p.delta) * excess_delay
        self.last_capacity = mu
        self.last_queuing_delay = x
        self.last_target_rate = max(tr, 0.0)
        return self.last_target_rate

    def accel_fraction(self, now: float) -> float:
        """Eq. (2): ``f(t) = min(tr(t) / (2·cr(t)), 1)``.

        With ``feedback_basis="enqueue"`` the denominator uses the enqueue
        rate instead (the Fig. 2 ablation).
        """
        tr = self.target_rate(now)
        if self.feedback_basis == "dequeue":
            reference = self._dequeue_rate.rate_bps(now)
        else:
            reference = self._enqueue_rate.rate_bps(now)
        if reference <= 0.0:
            # No rate measurement yet (start-up or after an idle period):
            # allow senders to ramp up by marking accelerate.
            fraction = 1.0
        else:
            fraction = min(0.5 * tr / reference, 1.0)
        self.last_fraction = max(fraction, 0.0)
        return self.last_fraction

    # ------------------------------------------------------------ queue ops
    def enqueue(self, packet: Packet, now: float) -> bool:
        if self.backlog_packets >= self.buffer_packets:
            self.dropped_packets += 1
            return False
        self._enqueue_rate.add(now, packet.size)
        self._push(packet, now)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        packet = self._pop(now)
        if packet is None:
            return None
        self._dequeue_rate.add(now, packet.size)
        self._apply_marking(packet, now)
        return packet

    def _apply_marking(self, packet: Packet, now: float) -> None:
        """Mark a departing packet; only ABC (accelerate-carrying) packets are
        eligible, and marks are only ever downgraded (accel → brake)."""
        fraction = self.accel_fraction(now)
        if packet.ecn != ECN.ACCEL:
            # Brake/CE/Not-ECT packets pass through untouched (the router may
            # not upgrade), but the token bucket still advances (Algorithm 1
            # adds f(t) for every outgoing packet) so that the accelerate
            # fraction along a multi-bottleneck path is the minimum of the
            # per-router fractions rather than their product.
            self.marker.observe(fraction)
            return
        keep_accel = self.marker.mark(fraction)
        if keep_accel:
            self.accel_marked += 1
        else:
            packet.ecn = apply_brake(packet.ecn)
            self.brake_marked += 1
            self.marked_packets += 1

    # ------------------------------------------------------------ fast path
    # Installed as instance attributes when REPRO_BATCH_ACKS is on.  Each is
    # the corresponding classic chain (enqueue; dequeue → estimator add →
    # _apply_marking → accel_fraction → target_rate → capacity/queuing-delay
    # reads → marker) flattened into straight-line code with identical
    # arithmetic; `max`/`min` become the equivalent comparisons.  Equivalence
    # is pinned by tests/test_batched_ack.py.

    def _enqueue_fast(self, packet: Packet, now: float) -> bool:
        if self.backlog_packets >= self.buffer_packets:
            self.dropped_packets += 1
            return False
        size = packet.size
        rate = self._enqueue_rate
        if rate._first_sample_time is None:
            rate._first_sample_time = now
        rate._times.append(now)
        rate._sizes.append(size)
        rate._total += size
        packet.enqueue_time = now
        self._queue.append(packet)
        self.backlog_bytes += size
        self.backlog_packets += 1
        return True

    def _dequeue_fast(self, now: float) -> Optional[Packet]:
        queue = self._queue
        if not queue:
            return None
        packet = queue.popleft()
        packet.dequeue_time = now
        waited = now - packet.enqueue_time
        if waited > 0.0:
            packet.total_queuing_delay += waited
        size = packet.size
        self.backlog_bytes -= size
        self.backlog_packets -= 1

        rate = self._dequeue_rate
        if rate._first_sample_time is None:
            rate._first_sample_time = now
        rate._times.append(now)
        rate._sizes.append(size)
        rate._total += size

        # target_rate (Eq. 1).  All dequeues of one transmission opportunity
        # share `now`, so the capacity lookup is memoized per timestamp when
        # capacity is a pure function of time.
        params = self.params
        if self._cap_memoizable:
            if now == self._cap_memo_time:
                mu = self._cap_memo
            else:
                mu = self.link.capacity_bps(now)
                if mu < 0.0:
                    mu = 0.0
                mu *= self.capacity_share
                self._cap_memo_time = now
                self._cap_memo = mu
        else:
            mu = self.capacity_bps(now)
        if self._standing:
            x = self.backlog_bytes * 8.0 / mu if mu > 0.0 else 0.0
        else:
            head = queue[0] if queue else None
            if head is None:
                x = 0.0
            else:
                x = now - head.enqueue_time
                if x < 0.0:
                    x = 0.0
        excess_delay = x - params.delay_threshold
        if excess_delay < 0.0:
            excess_delay = 0.0
        tr = params.eta * mu - (mu / params.delta) * excess_delay
        self.last_capacity = mu
        self.last_queuing_delay = x
        if tr < 0.0:
            tr = 0.0
        self.last_target_rate = tr

        # accel_fraction (Eq. 2).
        reference = self._ref_rate.rate_bps(now)
        if reference <= 0.0:
            fraction = 1.0
        else:
            fraction = 0.5 * tr / reference
            if fraction > 1.0:
                fraction = 1.0
        if fraction < 0.0:
            fraction = 0.0
        self.last_fraction = fraction

        # Token-bucket marking (Algorithm 1); `fraction` is already clamped
        # to [0, 1] so the marker's defensive clamp is skipped.
        marker = self.marker
        if packet.ecn is not ECN.ACCEL:
            if self._token_bucket:
                token = marker.token + fraction
                limit = marker.token_limit
                marker.token = token if token <= limit else limit
            else:
                marker.observe(fraction)
            return packet
        if self._token_bucket:
            token = marker.token + fraction
            limit = marker.token_limit
            if token > limit:
                token = limit
            if token >= 1.0:
                marker.token = token - 1.0
                marker.accel_count += 1
                keep_accel = True
            else:
                marker.token = token
                marker.brake_count += 1
                keep_accel = False
        else:
            keep_accel = marker.mark(fraction)
        if keep_accel:
            self.accel_marked += 1
        else:
            packet.ecn = apply_brake(packet.ecn)
            self.brake_marked += 1
            self.marked_packets += 1
        return packet

    # ------------------------------------------------------------ stats
    @property
    def observed_accel_fraction(self) -> float:
        total = self.accel_marked + self.brake_marked
        return self.accel_marked / total if total else 0.0
