"""Fluid model and stability analysis of the ABC control loop (Theorem 3.1).

Appendix A models a single ABC link shared by ``N`` flows with round-trip
propagation delay ``τ`` as the delay-differential equation

    ẋ(t) = A − (1/δ) · (x(t − τ) − dt)⁺ ,      A = (η − 1) + N / (µ · l)

where ``x(t)`` is the queuing delay, ``l`` is the additive-increase period
(one extra packet every ``l`` seconds, i.e. one per RTT) and ``y⁺ = max(y, 0)``.
Yorke's theorem gives global asymptotic stability whenever ``δ > 2τ/3``.

:class:`FluidModel` integrates the DDE with a forward-Euler scheme and a
history buffer so the theorem's predictions (fixed point, convergence,
oscillation below the bound) can be checked numerically and compared against
the packet-level simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.params import ABCParams


def stability_threshold(tau: float) -> float:
    """The Theorem 3.1 bound: ABC is stable when ``δ > 2/3 · τ``."""
    if tau < 0:
        raise ValueError("tau must be non-negative")
    return 2.0 * tau / 3.0


def is_theoretically_stable(delta: float, tau: float) -> bool:
    """Check the sufficient stability condition of Theorem 3.1."""
    return delta > stability_threshold(tau)


@dataclass
class FluidModelResult:
    """Outcome of a fluid-model integration."""

    times: np.ndarray
    queuing_delay: np.ndarray
    fixed_point: float
    converged: bool
    final_error: float
    oscillation_amplitude: float


class FluidModel:
    """Numerical integration of the ABC fluid model (Appendix A).

    Parameters
    ----------
    params:
        ABC parameters; ``eta``, ``delta`` and ``delay_threshold`` are used.
    tau:
        Round-trip propagation (feedback) delay in seconds.
    num_flows:
        Number of competing ABC flows ``N``.
    capacity_bps:
        Link capacity µ (constant, per the theorem's setting).
    ai_period:
        ``l``: each sender adds one extra packet every ``l`` seconds.  The
        paper's additive increase is one packet per RTT, so the default is
        ``tau``.
    mss_bits:
        Packet size in bits, used to convert the additive-increase packet rate
        into a rate fraction of µ.
    """

    def __init__(self, params: Optional[ABCParams] = None, tau: float = 0.1,
                 num_flows: int = 1, capacity_bps: float = 10e6,
                 ai_period: Optional[float] = None, mss_bits: float = 12000.0):
        if tau <= 0:
            raise ValueError("tau must be positive")
        if num_flows < 0:
            raise ValueError("num_flows must be non-negative")
        if capacity_bps <= 0:
            raise ValueError("capacity_bps must be positive")
        self.params = params if params is not None else ABCParams()
        self.tau = tau
        self.num_flows = num_flows
        self.capacity_bps = capacity_bps
        self.ai_period = ai_period if ai_period is not None else tau
        self.mss_bits = mss_bits

    # ------------------------------------------------------------ constants
    @property
    def drift(self) -> float:
        """The constant ``A = (η − 1) + N/(µ·l)`` (with N·mss/l in bit/s)."""
        ai_rate_bps = self.num_flows * self.mss_bits / self.ai_period
        return (self.params.eta - 1.0) + ai_rate_bps / self.capacity_bps

    def fixed_point(self) -> float:
        """Equilibrium queuing delay ``x* = A·δ + dt`` (0 when A ≤ 0)."""
        a = self.drift
        if a <= 0:
            return 0.0
        return a * self.params.delta + self.params.delay_threshold

    def equilibrium_rate_fraction(self) -> float:
        """Equilibrium enqueue rate as a fraction of µ (Eqs. 15 and 18).

        ``η + N/(µ·l)`` when A < 0 (queue empties; utilisation between η and
        1), and exactly 1 when A > 0 (the queue stabilises above ``dt``).
        """
        a = self.drift
        if a <= 0:
            return min(1.0 + a, 1.0)
        return 1.0

    def is_stable(self) -> bool:
        return is_theoretically_stable(self.params.delta, self.tau)

    # ------------------------------------------------------------ integration
    def simulate(self, duration: float = 30.0, step: float = 1e-3,
                 initial_delay: float = 0.0,
                 convergence_tolerance: float = 1e-3,
                 settle_fraction: float = 0.2) -> FluidModelResult:
        """Integrate the DDE and report convergence behaviour.

        ``converged`` is True when, over the final ``settle_fraction`` of the
        run, the queuing delay stays within ``convergence_tolerance`` seconds
        of the theoretical fixed point.
        """
        if duration <= 0 or step <= 0:
            raise ValueError("duration and step must be positive")
        if step >= self.tau:
            raise ValueError("step must be smaller than the feedback delay tau")
        n_steps = int(math.ceil(duration / step))
        delay_steps = max(int(round(self.tau / step)), 1)
        x = np.empty(n_steps + 1)
        x[0] = max(initial_delay, 0.0)
        a = self.drift
        inv_delta = 1.0 / self.params.delta
        dt_threshold = self.params.delay_threshold

        for i in range(n_steps):
            delayed_index = i - delay_steps
            delayed_x = x[delayed_index] if delayed_index >= 0 else x[0]
            drain = inv_delta * max(delayed_x - dt_threshold, 0.0)
            x_next = x[i] + step * (a - drain)
            x[i + 1] = max(x_next, 0.0)

        times = np.arange(n_steps + 1) * step
        fixed = self.fixed_point()
        settle_start = int((1.0 - settle_fraction) * n_steps)
        tail = x[settle_start:]
        final_error = float(np.max(np.abs(tail - fixed))) if tail.size else math.inf
        amplitude = float(np.max(tail) - np.min(tail)) if tail.size else math.inf
        converged = final_error <= convergence_tolerance
        return FluidModelResult(
            times=times,
            queuing_delay=x,
            fixed_point=fixed,
            converged=converged,
            final_error=final_error,
            oscillation_amplitude=amplitude,
        )

    def empirical_stability(self, duration: float = 60.0, step: float = 1e-3,
                            initial_delay: float = 0.5,
                            tolerance: float = 2e-3) -> bool:
        """Check convergence numerically from a perturbed initial condition."""
        result = self.simulate(duration=duration, step=step,
                               initial_delay=initial_delay,
                               convergence_tolerance=tolerance)
        return result.converged
