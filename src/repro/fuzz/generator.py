"""Seeded random generation of valid simulation scenarios.

:class:`ScenarioGen` samples :class:`FuzzScenario` descriptions — plain,
JSON-serializable dataclasses — and :func:`build_scenario` turns one into a
runnable :class:`~repro.simulator.scenario.Scenario`.  Keeping the
description and the build separate is what makes the rest of the fuzzing
stack work: descriptions travel through pickled sweep-job kwargs, shrink
transformations edit them structurally, and corpus entries replay them years
later from JSON.

The sampled space covers the knobs the paper's experiments vary (and a few
they do not): bottleneck model (constant rate, square wave, synthetic
cellular trace), bottleneck buffer size, AQM/scheme at the bottleneck, an
optional wired backhaul hop, random packet loss, flow count, per-flow RTTs
and staggered arrivals, and cross-traffic (a loss-based flow sharing the
bottleneck with the scheme's native flows).

Every sample is *valid by construction*: scheme labels come from the
experiment registry, explicit-feedback schemes are never paired with foreign
cross-traffic, rates/buffers/durations stay inside ranges the simulator
defines behavior for.  The fuzzer searches for invariant violations, not for
input-validation crashes.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.aqm import DropTailQdisc
from repro.cc import make_cc
from repro.cellular.synthetic import SyntheticTraceConfig, synthetic_trace
from repro.experiments.runner import make_scheme
from repro.simulator.link import ConstantRate, SquareWaveRate
from repro.simulator.scenario import Flow, Scenario
from repro.simulator.traffic import FixedSizeSource

#: Schemes the fuzzer samples.  Excludes the rate-based schemes whose pacing
#: timers dominate runtime (sprout, verus, pcc) and pk-abc (needs a
#: trace-driven link's future-capacity oracle on every path).
SCHEME_POOL = (
    "abc", "abc-enqueue", "cubic", "cubic+codel", "cubic+pie", "newreno",
    "vegas", "copa", "bbr", "xcp", "rcp", "vcp",
)

#: Schemes whose bottleneck qdisc tolerates foreign loss-based cross-traffic
#: (drop-tail/AQM queues, plus the ABC router which the paper's coexistence
#: experiments share with Cubic).  Explicit-feedback routers (XCP/RCP/VCP)
#: only ever see their native senders.
CROSS_TRAFFIC_SCHEMES = frozenset(
    {"abc", "abc-enqueue", "cubic", "cubic+codel", "cubic+pie", "newreno",
     "vegas", "copa", "bbr"})

#: Congestion controllers used as cross-traffic.
CROSS_CCS = ("cubic", "newreno")

#: Extra controllers the small-metro churn mix assigns to non-native flows
#: (the paper's coexistence traffic).  Kept separate from :data:`CROSS_CCS`
#: so extending the metro mix never perturbs :class:`ScenarioGen`'s sampled
#: stream for a given seed.
CHURN_CCS = ("cubic", "bbr")

#: Sentinel flow ``cc`` meaning "the bottleneck scheme's native sender".
NATIVE = "native"


@dataclass
class LinkSpec:
    """One hop of the data path, as plain serializable data.

    ``kind`` selects the capacity model: ``constant`` (``rate_bps``),
    ``square`` (``low_bps``/``high_bps``/``half_period``) or ``cellular``
    (a :class:`~repro.cellular.synthetic.SyntheticTraceConfig` subset plus
    ``trace_seed``).  ``role`` is ``bottleneck`` (gets the scheme's qdisc)
    or ``wired`` (drop-tail backhaul hop).
    """

    kind: str
    params: Dict[str, float] = field(default_factory=dict)
    buffer_packets: int = 250
    loss_rate: float = 0.0
    loss_seed: int = 0
    role: str = "bottleneck"

    def validate(self) -> None:
        if self.kind not in ("constant", "square", "cellular"):
            raise ValueError(f"unknown link kind {self.kind!r}")
        if self.role not in ("bottleneck", "wired"):
            raise ValueError(f"unknown link role {self.role!r}")
        if self.buffer_packets <= 0:
            raise ValueError("buffer_packets must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.kind == "constant" and self.params.get("rate_bps", 0) <= 0:
            raise ValueError("constant link needs a positive rate_bps")
        if self.kind == "square":
            if (self.params.get("low_bps", 0) <= 0
                    or self.params.get("high_bps", 0) <= 0
                    or self.params.get("half_period", 0) <= 0):
                raise ValueError("square link needs positive low/high/period")
        if self.kind == "cellular":
            mean = self.params.get("mean_rate_bps", 0)
            if mean <= 0:
                raise ValueError("cellular link needs a positive mean rate")


@dataclass
class FlowSpec:
    """One flow: a congestion controller, its RTT and its arrival time.

    ``size_bytes`` makes the flow finite: it transfers that many bytes and
    departs (the metro churn model).  ``None`` means backlogged forever.
    """

    cc: str = NATIVE
    rtt: float = 0.1
    start_time: float = 0.0
    size_bytes: Optional[int] = None

    def validate(self) -> None:
        if self.rtt <= 0:
            raise ValueError("rtt must be positive")
        if self.start_time < 0:
            raise ValueError("start_time must be non-negative")
        if self.cc != NATIVE and self.cc not in CROSS_CCS \
                and self.cc not in CHURN_CCS:
            raise ValueError(f"unknown flow cc {self.cc!r}")
        if self.size_bytes is not None and self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive when set")


@dataclass
class FuzzScenario:
    """A complete, serializable scenario description."""

    scenario_id: int
    scheme: str
    duration: float
    links: List[LinkSpec]
    flows: List[FlowSpec]
    sim_seed: int = 0

    # ------------------------------------------------------------ validity
    def validate(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not self.links:
            raise ValueError("scenario needs at least one link")
        if self.links[0].role != "bottleneck":
            raise ValueError("first link must be the bottleneck")
        if sum(1 for l in self.links if l.role == "bottleneck") != 1:
            raise ValueError("scenario needs exactly one bottleneck link")
        if not self.flows:
            raise ValueError("scenario needs at least one flow")
        for link in self.links:
            link.validate()
        for flow in self.flows:
            flow.validate()
            if flow.start_time >= self.duration:
                raise ValueError("flow starts after the scenario ends")
            if flow.cc != NATIVE and self.scheme not in CROSS_TRAFFIC_SCHEMES:
                raise ValueError(
                    f"scheme {self.scheme!r} does not accept cross-traffic")

    # ------------------------------------------------------------ identity
    def signature(self) -> str:
        """Structural signature used to dedupe similar failures.

        Deliberately coarse: two scenarios that differ only in numeric
        parameters (rates, RTTs, seeds) share a signature, so a campaign
        report groups them as one failure mode.
        """
        kinds = "+".join(link.kind for link in self.links)
        ccs = ",".join(sorted(flow.cc for flow in self.flows))
        lossy = any(link.loss_rate > 0 for link in self.links)
        return (f"{self.scheme}|{kinds}|flows={len(self.flows)}"
                f"|ccs={ccs}|lossy={int(lossy)}")

    # ------------------------------------------------------------ (de)serial
    def to_jsonable(self) -> dict:
        """Plain-dict encoding (JSON- and pickle-friendly)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_jsonable(cls, data: dict) -> "FuzzScenario":
        links = [LinkSpec(**entry) for entry in data["links"]]
        flows = [FlowSpec(**entry) for entry in data["flows"]]
        return cls(scenario_id=int(data["scenario_id"]),
                   scheme=str(data["scheme"]),
                   duration=float(data["duration"]),
                   links=links, flows=flows,
                   sim_seed=int(data.get("sim_seed", 0)))


# ---------------------------------------------------------------------------
# Building a runnable simulation from a description
# ---------------------------------------------------------------------------
@dataclass
class BuiltScenario:
    """A wired-up simulation plus the handles the invariant suite needs."""

    fuzz: FuzzScenario
    scenario: Scenario
    flows: List[Flow]


def _build_link(scenario: Scenario, spec: LinkSpec, duration: float,
                scheme_qdisc_factory, index: int):
    qdisc = (scheme_qdisc_factory()
             if spec.role == "bottleneck"
             else DropTailQdisc(buffer_packets=spec.buffer_packets))
    name = f"{spec.role}-{index}"
    if spec.kind == "constant":
        return scenario.add_rate_link(
            ConstantRate(spec.params["rate_bps"]), qdisc=qdisc, name=name,
            loss_rate=spec.loss_rate, loss_seed=spec.loss_seed)
    if spec.kind == "square":
        model = SquareWaveRate(spec.params["low_bps"], spec.params["high_bps"],
                               spec.params["half_period"])
        return scenario.add_rate_link(model, qdisc=qdisc, name=name,
                                      loss_rate=spec.loss_rate,
                                      loss_seed=spec.loss_seed)
    config = SyntheticTraceConfig(
        mean_rate_bps=spec.params["mean_rate_bps"],
        min_rate_bps=spec.params["min_rate_bps"],
        max_rate_bps=spec.params["max_rate_bps"],
        volatility=spec.params.get("volatility", 0.25),
        outage_rate_per_s=spec.params.get("outage_rate_per_s", 0.0),
        outage_duration_s=spec.params.get("outage_duration_s", 0.3),
        name=name)
    trace = synthetic_trace(config, duration,
                            seed=int(spec.params.get("trace_seed", 0)))
    return scenario.add_cellular_link(trace, qdisc=qdisc, name=name,
                                      loss_rate=spec.loss_rate,
                                      loss_seed=spec.loss_seed)


def build_scenario(fuzz: FuzzScenario) -> BuiltScenario:
    """Wire a :class:`FuzzScenario` into a runnable simulation (not yet run)."""
    fuzz.validate()
    bottleneck = fuzz.links[0]
    scheme = make_scheme(fuzz.scheme, buffer_packets=bottleneck.buffer_packets,
                         seed=fuzz.sim_seed)
    scenario = Scenario()
    links = [_build_link(scenario, spec, fuzz.duration, scheme.make_qdisc, i)
             for i, spec in enumerate(fuzz.links)]
    flows = []
    for flow_spec in fuzz.flows:
        cc = (scheme.make_sender() if flow_spec.cc == NATIVE
              else make_cc(flow_spec.cc))
        source = (None if flow_spec.size_bytes is None
                  else FixedSizeSource(flow_spec.size_bytes))
        flows.append(scenario.add_flow(cc, links, rtt=flow_spec.rtt,
                                       start_time=flow_spec.start_time,
                                       source=source,
                                       label=f"{flow_spec.cc}"))
    return BuiltScenario(fuzz=fuzz, scenario=scenario, flows=flows)


# ---------------------------------------------------------------------------
# Random sampling
# ---------------------------------------------------------------------------
class ScenarioGen:
    """Seeded sampler over the scenario space.

    The i-th scenario of a campaign is a pure function of ``(seed, i)`` —
    each sample draws from its own ``random.Random`` — so campaigns are
    reproducible regardless of sampling order or worker count.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed

    # ------------------------------------------------------------ pieces
    def _sample_bottleneck(self, rng: random.Random) -> LinkSpec:
        kind = rng.choices(("constant", "square", "cellular"),
                           weights=(0.35, 0.25, 0.40))[0]
        if kind == "constant":
            params = {"rate_bps": rng.uniform(1e6, 20e6)}
        elif kind == "square":
            low = rng.uniform(1e6, 8e6)
            params = {"low_bps": low,
                      "high_bps": low * rng.uniform(1.5, 4.0),
                      "half_period": rng.uniform(0.2, 1.0)}
        else:
            mean = rng.uniform(2e6, 10e6)
            params = {"mean_rate_bps": mean,
                      "min_rate_bps": mean * rng.uniform(0.05, 0.3),
                      "max_rate_bps": mean * rng.uniform(1.5, 4.0),
                      "volatility": rng.uniform(0.15, 0.4),
                      "outage_rate_per_s": rng.choice((0.0, 0.1, 0.3)),
                      "outage_duration_s": rng.uniform(0.1, 0.4),
                      "trace_seed": rng.randrange(2**16)}
        loss_rate = 0.0 if rng.random() < 0.6 else rng.uniform(0.001, 0.05)
        return LinkSpec(kind=kind, params=params,
                        buffer_packets=rng.choice((10, 25, 50, 100, 250, 400)),
                        loss_rate=loss_rate,
                        loss_seed=rng.randrange(2**16),
                        role="bottleneck")

    def _sample_wired(self, rng: random.Random) -> LinkSpec:
        # A fast backhaul hop: rarely the bottleneck, but it exercises
        # multi-hop queuing-delay accounting and per-link conservation.
        return LinkSpec(kind="constant",
                        params={"rate_bps": rng.uniform(40e6, 100e6)},
                        buffer_packets=500, loss_rate=0.0,
                        loss_seed=0, role="wired")

    # ------------------------------------------------------------ sampling
    def sample(self, index: int) -> FuzzScenario:
        """The ``index``-th scenario of this generator's stream."""
        # String seeding hashes via sha512 — stable across processes and
        # Python versions, unlike hash()-based tuple seeding.
        rng = random.Random(f"{self.seed}:{index}")
        scheme = rng.choice(SCHEME_POOL)
        duration = rng.uniform(2.0, 6.0)
        links = [self._sample_bottleneck(rng)]
        if rng.random() < 0.25:
            links.append(self._sample_wired(rng))
        n_flows = rng.choice((1, 1, 2, 2, 3))
        flows = []
        for i in range(n_flows):
            cc = NATIVE
            if (i > 0 and scheme in CROSS_TRAFFIC_SCHEMES
                    and rng.random() < 0.25):
                cc = rng.choice(CROSS_CCS)
            flows.append(FlowSpec(
                cc=cc, rtt=rng.uniform(0.02, 0.2),
                start_time=0.0 if rng.random() < 0.5
                else rng.uniform(0.0, duration / 2.0)))
        scenario = FuzzScenario(scenario_id=index, scheme=scheme,
                                duration=duration, links=links, flows=flows,
                                sim_seed=rng.randrange(2**16))
        scenario.validate()
        return scenario

    def sample_many(self, budget: int) -> List[FuzzScenario]:
        if budget <= 0:
            raise ValueError("budget must be positive")
        return [self.sample(i) for i in range(budget)]


class SmallMetroGen:
    """Seeded sampler of small metro cities: 10-20 cells with churn on.

    A *city* is a list of per-cell :class:`FuzzScenario` descriptions, one
    single-bottleneck cell each, mirroring the metro pack's workload
    (:func:`repro.metro.cell.metro_cell`): a couple of long-lived backlogged
    flows plus a churning population of finite-size flows — Poisson arrival
    times and bounded-Pareto sizes drawn from the deterministic streams in
    :mod:`repro.metro.workload` — whose schemes come from the coexistence
    mix (ABC natives plus :data:`CHURN_CCS` cross-traffic).  Every cell runs
    the ABC router (``scheme="abc"``), so each one goes through the
    *existing* invariant net and campaign machinery unchanged: churn is just
    flows with ``size_bytes`` set.
    """

    #: The coexistence mix churn flows draw their scheme from.
    MIX = (("abc", 0.6), ("cubic", 0.3), ("bbr", 0.1))

    def __init__(self, seed: int = 0, min_cells: int = 10,
                 max_cells: int = 20):
        if not 1 <= min_cells <= max_cells:
            raise ValueError("need 1 <= min_cells <= max_cells")
        self.seed = seed
        self.min_cells = min_cells
        self.max_cells = max_cells

    def _sample_cell_link(self, rng: random.Random) -> LinkSpec:
        if rng.random() < 0.5:
            params = {"rate_bps": rng.uniform(4e6, 12e6)}
            kind = "constant"
        else:
            low = rng.uniform(3e6, 8e6)
            params = {"low_bps": low,
                      "high_bps": low * rng.uniform(1.5, 2.5),
                      "half_period": rng.uniform(0.3, 0.7)}
            kind = "square"
        return LinkSpec(kind=kind, params=params,
                        buffer_packets=rng.choice((50, 100, 250)),
                        role="bottleneck")

    def sample_city(self, index: int) -> List[FuzzScenario]:
        """The ``index``-th city of this generator's stream."""
        from repro.metro.workload import (bounded_pareto_sizes,
                                          poisson_arrivals, scheme_assignment)

        rng = random.Random(f"metro-fuzz-{self.seed}:{index}")
        n_cells = rng.randint(self.min_cells, self.max_cells)
        duration = round(rng.uniform(2.0, 4.0), 1)
        cells: List[FuzzScenario] = []
        for c in range(n_cells):
            # The workload streams key on the cell *name*, which encodes
            # (generator seed, city index, cell index) — independent cells,
            # reproducible city.
            cell_name = f"fuzz-metro-{self.seed}-{index}-{c}"
            rtt = round(rng.uniform(0.03, 0.12), 3)
            flows = [FlowSpec(cc=NATIVE, rtt=rtt, start_time=0.0)
                     for _ in range(rng.choice((1, 2)))]
            arrivals = poisson_arrivals(rng.uniform(1.0, 3.0), duration,
                                        cell_name, self.seed)
            sizes = bounded_pareto_sizes(len(arrivals), cell_name, self.seed,
                                         min_bytes=20_000,
                                         max_bytes=500_000, alpha=1.2)
            schemes = scheme_assignment(len(arrivals), self.MIX, cell_name,
                                        self.seed)
            for start, size, scheme in zip(arrivals, sizes, schemes):
                flows.append(FlowSpec(
                    cc=NATIVE if scheme == "abc" else scheme, rtt=rtt,
                    start_time=start, size_bytes=size))
            cell = FuzzScenario(scenario_id=index * 1000 + c, scheme="abc",
                                duration=duration,
                                links=[self._sample_cell_link(rng)],
                                flows=flows,
                                sim_seed=rng.randrange(2**16))
            cell.validate()
            cells.append(cell)
        return cells
