"""Composable invariant checkers run against every finished simulation.

Each checker is a plain function ``(ctx: CheckContext) -> list[Violation]``;
:func:`run_invariants` runs a suite and concatenates the findings.  The
checkers only assert properties that hold for *every* valid scenario — they
are sound bounds, not statistical expectations — so any violation is a real
simulator (or checker) bug worth a corpus entry:

``link-throughput``
    Bits a link delivered never exceed the bits its capacity model offered
    (plus an explicit per-model slack for edge effects).
``non-negative``
    Queue backlogs, counters, congestion windows and delay samples are
    non-negative and finite.
``queuing-delay-bound``
    No delivered packet queued longer than the worst-case FIFO drain time of
    the buffers it crossed.
``packet-conservation``
    Per link: packets that arrived equal packets delivered + dropped (queue
    and random loss) + still queued + mid-transmission.  Per flow: the
    receiver never saw more packets than the sender transmitted.
``fairness``
    Symmetric long-running ABC flows reach a Jain-index floor over the
    second half of the run (checked only when the scenario qualifies).

Determinism (same scenario → bit-identical summary) is checked by the
campaign layer, which owns running the simulation twice; see
:func:`repro.fuzz.campaign.fuzz_cell`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.analysis.fairness import jain_fairness_index
from repro.fuzz.generator import NATIVE, BuiltScenario, FuzzScenario
from repro.simulator.link import (CapacityModel, ConstantRate, OpportunityLink,
                                  RateLink, SquareWaveRate, SteppedRate)
from repro.simulator.packet import MTU
from repro.simulator.scenario import ScenarioResult

#: Jain-index floor for symmetric ABC flows (second half of the run).  ABC
#: converges to near-perfect fairness in the paper's Fig. 3; the floor is
#: deliberately loose because short fuzz runs include convergence transients.
FAIRNESS_FLOOR = 0.6

#: Absolute slack for float comparisons on time quantities (seconds).
TIME_EPS = 1e-6


@dataclass(frozen=True)
class Violation:
    """One invariant failure, as serializable data."""

    invariant: str
    message: str


@dataclass
class CheckContext:
    """Everything a checker may inspect about one finished simulation."""

    fuzz: FuzzScenario
    built: BuiltScenario
    result: ScenarioResult
    cwnd_samples: Optional[Dict[int, List[float]]] = None


Checker = Callable[[CheckContext], List[Violation]]


class CwndProbe:
    """Samples every flow's congestion window during the run.

    Install *before* ``scenario.run``; the probe re-schedules itself on the
    scenario's event loop.  ``samples[flow_id]`` holds the sampled windows.
    """

    def __init__(self, built: BuiltScenario, interval: float = 0.05):
        self.built = built
        self.interval = interval
        self.samples: Dict[int, List[float]] = {
            flow.flow_id: [] for flow in built.flows}
        self._duration = built.fuzz.duration
        built.scenario.env.schedule(0.0, self._sample)

    def _sample(self) -> None:
        for flow in self.built.flows:
            self.samples[flow.flow_id].append(flow.sender.cc.cwnd())
        env = self.built.scenario.env
        if env.now + self.interval <= self._duration:
            env.schedule(self.interval, self._sample)


# ---------------------------------------------------------------------------
# Checkers
# ---------------------------------------------------------------------------
def _model_min_rate(model: CapacityModel) -> float:
    if isinstance(model, ConstantRate):
        return model.rate_bps
    if isinstance(model, SquareWaveRate):
        return min(model.low_bps, model.high_bps)
    if isinstance(model, SteppedRate):
        return min(model._rates)
    raise TypeError(f"no min-rate bound for {type(model).__name__}")


def _rate_segments(model: CapacityModel, duration: float) -> int:
    """Upper bound on the number of rate changes during the run."""
    if isinstance(model, ConstantRate):
        return 0
    if isinstance(model, SquareWaveRate):
        return int(duration / model.half_period) + 1
    if isinstance(model, SteppedRate):
        return len(model._rates)
    raise TypeError(f"no segment bound for {type(model).__name__}")


def check_link_throughput(ctx: CheckContext) -> List[Violation]:
    """Delivered bits never exceed offered capacity (plus explicit slack).

    Slack terms: trace-driven links get a couple of MTUs for opportunities
    landing exactly on the window edges; rate links additionally get one MTU
    per rate change, because a transmission is paced at the rate sampled at
    its *start* (a rate drop mid-packet briefly overshoots the integral).
    """
    out = []
    duration = ctx.fuzz.duration
    for link in ctx.built.scenario.links:
        delivered = ctx.result.link_monitor(link).delivered_bytes(0.0, duration) * 8.0
        offered = link.offered_bits(0.0, duration)
        if isinstance(link, RateLink):
            slack = (_rate_segments(link.capacity, duration) + 4) * MTU * 8.0
        else:
            slack = 4 * MTU * 8.0
        if delivered > offered + slack:
            out.append(Violation(
                "link-throughput",
                f"link {link.name!r} delivered {delivered:.0f} bits but "
                f"offered only {offered:.0f} (+{slack:.0f} slack) over "
                f"{duration:.3f}s"))
    return out


def check_non_negative(ctx: CheckContext) -> List[Violation]:
    """Backlogs, counters, cwnd samples and delay samples are sane."""
    out = []
    for link in ctx.built.scenario.links:
        q = link.qdisc
        if q.backlog_packets < 0 or q.backlog_bytes < 0:
            out.append(Violation(
                "non-negative",
                f"link {link.name!r} ended with negative backlog "
                f"({q.backlog_packets} pkts / {q.backlog_bytes} bytes)"))
        if min((q.dropped_packets, link.random_loss_packets,
                link.delivered_packets, link.arrived_packets)) < 0:
            out.append(Violation(
                "non-negative",
                f"link {link.name!r} has a negative packet counter"))
        monitor = ctx.result.link_monitor(link)
        if monitor.queue_sample_backlogs and min(monitor.queue_sample_backlogs) < 0:
            out.append(Violation(
                "non-negative",
                f"link {link.name!r} recorded a negative queue sample"))
    for flow in ctx.built.flows:
        if flow.sender.in_flight < 0:
            out.append(Violation(
                "non-negative",
                f"flow {flow.flow_id} ended with in_flight="
                f"{flow.sender.in_flight}"))
        delays = flow.stats.delays("queuing")
        if delays.size and float(delays.min()) < -TIME_EPS:
            out.append(Violation(
                "non-negative",
                f"flow {flow.flow_id} recorded a negative queuing delay"))
        for sample in (ctx.cwnd_samples or {}).get(flow.flow_id, ()):
            if not math.isfinite(sample) or sample < 0.0:
                out.append(Violation(
                    "non-negative",
                    f"flow {flow.flow_id} cwnd sample {sample!r} is negative "
                    f"or non-finite"))
                break
    return out


def link_queuing_delay_bound(link, duration: float) -> float:
    """Sound upper bound on any packet's queuing delay at ``link``.

    FIFO drain argument: an admitted packet has at most ``B - 1`` packets
    ahead of it (``B`` = buffer size in packets), every transmission serves
    the head of the queue, and the AQMs never stall a non-empty queue (CoDel
    re-dequeues after an internal drop, PIE and the routers drop at enqueue).
    So the packet departs within ``B`` transmissions of its arrival.
    """
    B = link.qdisc.buffer_packets
    if isinstance(link, OpportunityLink):
        bound = link.max_drain_interval(B)
    elif isinstance(link, RateLink):
        bound = (B + 1) * MTU * 8.0 / _model_min_rate(link.capacity)
    else:
        return duration
    # A packet delivered inside the run queued for less than the whole run.
    return min(bound, duration)


def check_queuing_delay(ctx: CheckContext) -> List[Violation]:
    out = []
    duration = ctx.fuzz.duration
    bounds = {id(link): link_queuing_delay_bound(link, duration)
              for link in ctx.built.scenario.links}
    for flow in ctx.built.flows:
        path_bound = sum(bounds[id(link)] for link in flow.links)
        delays = flow.stats.delays("queuing")
        if delays.size == 0:
            continue
        worst = float(delays.max())
        if worst > path_bound + TIME_EPS:
            out.append(Violation(
                "queuing-delay-bound",
                f"flow {flow.flow_id} saw {worst * 1000:.2f} ms of queuing "
                f"but the FIFO drain bound for its path is "
                f"{path_bound * 1000:.2f} ms"))
    return out


def check_packet_conservation(ctx: CheckContext) -> List[Violation]:
    out = []
    for link in ctx.built.scenario.links:
        q = link.qdisc
        accounted = (link.delivered_packets + q.dropped_packets
                     + link.random_loss_packets + q.backlog_packets
                     + link.packets_in_transmission)
        if accounted != link.arrived_packets:
            out.append(Violation(
                "packet-conservation",
                f"link {link.name!r}: arrived={link.arrived_packets} but "
                f"delivered={link.delivered_packets} "
                f"+ queue_drops={q.dropped_packets} "
                f"+ random_loss={link.random_loss_packets} "
                f"+ backlog={q.backlog_packets} "
                f"+ in_transmission={link.packets_in_transmission} "
                f"= {accounted}"))
    for flow in ctx.built.flows:
        received = len(flow.stats)
        sent = flow.sender.packets_sent
        if received > sent:
            out.append(Violation(
                "packet-conservation",
                f"flow {flow.flow_id} received {received} packets but the "
                f"sender only transmitted {sent}"))
    return out


def fairness_applies(fuzz: FuzzScenario) -> bool:
    """Whether the symmetric-ABC fairness floor is meaningful here.

    Requires ≥ 2 native ABC flows, identical RTTs, *simultaneous* starts and
    no random loss anywhere on the path.  Simultaneity matters: a flow
    joining against an established competitor converges over tens of RTTs
    (the paper's Fig. 3 dynamics), so short fuzz runs with staggered
    arrivals legitimately end far from the fair share — fuzzing found
    exactly that (abc on a square-wave link, join at t=0.8s of 4s, Jain
    0.57), and it is convergence, not a bug.
    """
    if fuzz.scheme != "abc" or len(fuzz.flows) < 2:
        return False
    if any(flow.cc != NATIVE for flow in fuzz.flows):
        return False
    rtts = {flow.rtt for flow in fuzz.flows}
    if len(rtts) != 1:
        return False
    if any(flow.start_time != 0.0 for flow in fuzz.flows):
        return False
    if any(link.loss_rate > 0.0 for link in fuzz.links):
        return False
    return True


def check_fairness(ctx: CheckContext) -> List[Violation]:
    if not fairness_applies(ctx.fuzz):
        return []
    half = ctx.fuzz.duration / 2.0
    rates = [ctx.result.flow_throughput_bps(flow, t0=half)
             for flow in ctx.built.flows]
    if sum(rates) <= 0.0:
        return []  # outage-dominated trace: fairness is undefined.
    index = jain_fairness_index(rates)
    if index < FAIRNESS_FLOOR:
        return [Violation(
            "fairness",
            f"{len(rates)} symmetric abc flows reached Jain index "
            f"{index:.3f} < {FAIRNESS_FLOOR} over the second half "
            f"(rates: {[f'{r / 1e6:.2f}Mbps' for r in rates]})")]
    return []


DEFAULT_CHECKERS: List[Checker] = [
    check_link_throughput,
    check_non_negative,
    check_queuing_delay,
    check_packet_conservation,
    check_fairness,
]

#: Names of every invariant the default suite (plus the campaign's
#: determinism replay) can report.
INVARIANT_NAMES = ("link-throughput", "non-negative", "queuing-delay-bound",
                   "packet-conservation", "fairness", "determinism")


def run_invariants(ctx: CheckContext,
                   checkers: Optional[List[Checker]] = None) -> List[Violation]:
    """Run ``checkers`` (default: the full suite) and collect violations."""
    suite = DEFAULT_CHECKERS if checkers is None else checkers
    violations: List[Violation] = []
    for checker in suite:
        violations.extend(checker(ctx))
    return violations


# ---------------------------------------------------------------------------
# Deterministic run summary (the determinism invariant's comparand)
# ---------------------------------------------------------------------------
def scenario_summary(built: BuiltScenario) -> dict:
    """Exact-integer/float summary of one finished run.

    Two runs of the same :class:`FuzzScenario` must produce *equal* summaries
    (the determinism invariant compares with ``==``), so every field here is
    a deterministic function of the simulation — no wall-clock, no ids.
    """
    links = {}
    for link in built.scenario.links:
        links[link.name] = {
            "arrived": link.arrived_packets,
            "delivered_packets": link.delivered_packets,
            "delivered_bytes": link.delivered_bytes,
            "queue_drops": link.qdisc.dropped_packets,
            "random_loss": link.random_loss_packets,
            "backlog": link.qdisc.backlog_packets,
        }
    flows = {}
    for flow in built.flows:
        stats = flow.stats
        flows[str(flow.flow_id)] = {
            "packets_sent": flow.sender.packets_sent,
            "bytes_acked": flow.sender.bytes_acked,
            "retransmissions": flow.sender.retransmissions,
            "packets_received": len(stats),
            "bytes_received": stats.bytes_received,
            "max_queuing_delay": (float(stats.delays("queuing").max())
                                  if len(stats) else 0.0),
        }
    return {"links": links, "flows": flows}
