"""Greedy delta-debugging minimizer for failing fuzz scenarios.

Given a :class:`~repro.fuzz.generator.FuzzScenario` and a ``fails``
predicate (``FuzzScenario -> bool``, True while the bug still reproduces),
:func:`shrink_scenario` repeatedly tries structure- and value-simplifying
transformations and keeps any variant that still fails.  The result is the
smallest scenario this greedy walk reaches — fewer flows, shorter runs,
rounder parameters — which is what gets committed to
``tests/data/fuzz_corpus/`` as a regression test.

The predicate is injected rather than hard-wired to the invariant suite so
the shrinker itself is unit-testable with pure functions (no simulation);
the campaign layer passes a predicate that re-runs the simulation and checks
whether the original invariant still trips.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path
from typing import Callable, Iterator, List, Optional

from repro.fuzz.generator import FuzzScenario, LinkSpec

#: Buffer sizes the shrinker rounds down through.
_BUFFER_LADDER = (10, 25, 50, 100, 250)

#: Round-number rates (bps) tried as replacements, smallest first.
_RATE_LADDER = (1e6, 2e6, 5e6, 10e6, 20e6)


def _clone(scenario: FuzzScenario) -> FuzzScenario:
    return FuzzScenario.from_jsonable(copy.deepcopy(scenario.to_jsonable()))


def _candidates(scenario: FuzzScenario) -> Iterator[FuzzScenario]:
    """Yield simplified variants of ``scenario``, most aggressive first.

    Every yielded variant is valid by construction (callers still run
    ``validate`` defensively).  Order matters for greed: structural deletions
    (flows, the backhaul link) come before value simplifications.
    """
    # 1. Drop a flow.
    if len(scenario.flows) > 1:
        for index in range(len(scenario.flows)):
            variant = _clone(scenario)
            del variant.flows[index]
            yield variant
    # 2. Drop the wired backhaul hop.
    if len(scenario.links) > 1:
        variant = _clone(scenario)
        variant.links = [link for link in variant.links
                         if link.role == "bottleneck"]
        yield variant
    # 3. Halve the duration (floor at 1 s, rounded to a tenth).
    if scenario.duration > 1.0:
        variant = _clone(scenario)
        variant.duration = max(1.0, round(scenario.duration / 2.0, 1))
        for flow in variant.flows:
            flow.start_time = min(flow.start_time, variant.duration / 2.0)
        yield variant
    # 4. Remove random loss.
    if any(link.loss_rate > 0.0 for link in scenario.links):
        variant = _clone(scenario)
        for link in variant.links:
            link.loss_rate = 0.0
        yield variant
    # 5. Simplify the bottleneck capacity model.
    bottleneck = scenario.links[0]
    if bottleneck.kind == "cellular":
        variant = _clone(scenario)
        variant.links[0] = LinkSpec(
            kind="constant",
            params={"rate_bps": bottleneck.params["mean_rate_bps"]},
            buffer_packets=bottleneck.buffer_packets,
            loss_rate=bottleneck.loss_rate,
            loss_seed=bottleneck.loss_seed, role="bottleneck")
        yield variant
    if bottleneck.kind == "square":
        variant = _clone(scenario)
        variant.links[0] = LinkSpec(
            kind="constant",
            params={"rate_bps": bottleneck.params["low_bps"]},
            buffer_packets=bottleneck.buffer_packets,
            loss_rate=bottleneck.loss_rate,
            loss_seed=bottleneck.loss_seed, role="bottleneck")
        yield variant
    # 6. Round rates to the ladder (next round number at or below).
    for key in ("rate_bps", "low_bps", "high_bps", "mean_rate_bps"):
        value = bottleneck.params.get(key)
        if value is None:
            continue
        rounded = max((r for r in _RATE_LADDER if r <= value), default=None)
        if rounded is not None and rounded != value:
            variant = _clone(scenario)
            variant.links[0].params[key] = rounded
            yield variant
    # 7. Shrink the buffer down the ladder.
    smaller = max((b for b in _BUFFER_LADDER
                   if b < bottleneck.buffer_packets), default=None)
    if smaller is not None:
        variant = _clone(scenario)
        variant.links[0].buffer_packets = smaller
        yield variant
    # 8. Canonicalise flows: zero start times, round RTTs to 10 ms.
    for index, flow in enumerate(scenario.flows):
        if flow.start_time > 0.0:
            variant = _clone(scenario)
            variant.flows[index].start_time = 0.0
            yield variant
        rounded_rtt = max(0.01, round(flow.rtt, 2))
        if rounded_rtt != flow.rtt:
            variant = _clone(scenario)
            variant.flows[index].rtt = rounded_rtt
            yield variant


def shrink_scenario(scenario: FuzzScenario,
                    fails: Callable[[FuzzScenario], bool],
                    max_attempts: int = 200) -> FuzzScenario:
    """Greedily minimize ``scenario`` while ``fails`` stays True.

    ``max_attempts`` caps the total number of predicate evaluations (each
    one is typically a full simulation), so shrinking cannot run away on a
    pathological scenario.
    """
    if not fails(scenario):
        raise ValueError("shrink_scenario needs a failing scenario to start")
    current = _clone(scenario)
    attempts = 1  # the initial confirmation above
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for variant in _candidates(current):
            if attempts >= max_attempts:
                break
            try:
                variant.validate()
            except ValueError:
                continue
            attempts += 1
            if fails(variant):
                current = variant
                progress = True
                break  # restart from the shrunk scenario
    return current


# ---------------------------------------------------------------------------
# Corpus serialization
# ---------------------------------------------------------------------------
CORPUS_FORMAT = 1


def corpus_entry(scenario: FuzzScenario, violations: List[str],
                 description: str = "",
                 summary: Optional[dict] = None) -> dict:
    """Build a corpus-entry dict.

    Failing entries (``violations`` non-empty) pin the invariant names that
    must trip on replay.  Clean entries (``violations == []``) additionally
    pin the exact run ``summary`` so they double as determinism regressions.
    """
    entry = {
        "format": CORPUS_FORMAT,
        "description": description,
        "scenario": scenario.to_jsonable(),
        "expect": ({"violations": sorted(set(violations))} if violations
                   else {"clean": True, "summary": summary or {}}),
    }
    return entry


def save_corpus_entry(entry: dict, path: Path) -> None:
    """Write one entry as deterministic, diff-friendly JSON."""
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")


def load_corpus_entry(path: Path) -> dict:
    entry = json.loads(path.read_text())
    if entry.get("format") != CORPUS_FORMAT:
        raise ValueError(f"{path}: unsupported corpus format "
                         f"{entry.get('format')!r}")
    return entry
