"""Scenario fuzzing: randomized generation, invariant checking, shrinking.

The paper validates ABC on hand-picked figures; this package turns the fast
engine and the parallel sweep runtime into a *search* over scenario space.
Four layers (see ``docs/ARCHITECTURE.md`` § Fuzzing):

* :mod:`repro.fuzz.generator` — seeded :class:`~repro.fuzz.generator.ScenarioGen`
  samples random-but-valid scenarios and builds runnable simulations.
* :mod:`repro.fuzz.invariants` — composable checkers run against every
  finished simulation's monitors and counters.
* :mod:`repro.fuzz.shrink` — greedy delta-debugging minimizer for failing
  scenarios, plus corpus (de)serialization.
* :mod:`repro.fuzz.campaign` — campaign driver fanning scenarios out through
  :class:`repro.runtime.SweepExecutor`, deduping failures and emitting a
  deterministic JSON report (CLI: ``tools/fuzz_scenarios.py``).
"""

from repro.fuzz.generator import (FlowSpec, FuzzScenario, LinkSpec,
                                  ScenarioGen, build_scenario)
from repro.fuzz.invariants import (CheckContext, Violation, run_invariants,
                                   scenario_summary)
from repro.fuzz.shrink import shrink_scenario
from repro.fuzz.campaign import fuzz_cell, run_campaign

__all__ = [
    "FlowSpec", "FuzzScenario", "LinkSpec", "ScenarioGen", "build_scenario",
    "CheckContext", "Violation", "run_invariants", "scenario_summary",
    "shrink_scenario", "fuzz_cell", "run_campaign",
]
