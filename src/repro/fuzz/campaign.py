"""Campaign driver: fan fuzz scenarios out through the sweep runtime.

:func:`fuzz_cell` is the module-level job function — one scenario in, one
serializable verdict out — so campaigns parallelise through the existing
:class:`~repro.runtime.executor.SweepExecutor` (``--jobs``/``REPRO_JOBS``)
and memoise through :class:`~repro.runtime.cache.ResultCache`
(``REPRO_CACHE_DIR``) exactly like the paper-figure sweeps do.

:func:`run_campaign` samples ``budget`` scenarios from a seeded
:class:`~repro.fuzz.generator.ScenarioGen`, runs them, dedupes failures by
(invariant, scenario signature), optionally shrinks one representative per
failure group, and returns a *deterministic* report: same seed and budget →
byte-identical JSON, regardless of worker count, cache state or wall-clock.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.fuzz.generator import FuzzScenario, ScenarioGen, build_scenario
from repro.fuzz.invariants import (CheckContext, CwndProbe, INVARIANT_NAMES,
                                   Violation, run_invariants,
                                   scenario_summary)
from repro.fuzz.shrink import corpus_entry, save_corpus_entry, shrink_scenario
from repro.obs.manifest import (build_manifest, provenance, run_dir,
                                write_manifest)
from repro.runtime.executor import SweepExecutor, SweepJob, get_executor
from repro.runtime.faults import is_failure

#: Report schema version (bump on incompatible report changes).
#: v2: reports embed the deterministic provenance record (git SHA, code
#: version salt, REPRO_* knob snapshot) under ``manifest``.
#: v3: fault-tolerant campaigns — scenarios whose sweep job exhausted its
#: retry budget under the salvage policy are reported under ``failed_jobs``
#: (with their deterministic JobFailure records) instead of aborting the
#: campaign.
REPORT_FORMAT = 3


def _run_once(fuzz: FuzzScenario):
    """Build, instrument and run one scenario; returns (ctx, summary)."""
    built = build_scenario(fuzz)
    probe = CwndProbe(built)
    result = built.scenario.run(fuzz.duration)
    ctx = CheckContext(fuzz=fuzz, built=built, result=result,
                       cwnd_samples=probe.samples)
    return ctx, scenario_summary(built)


def evaluate_scenario(fuzz: FuzzScenario,
                      check_determinism: bool = True) -> Dict[str, Any]:
    """Run one scenario through the full invariant suite.

    Returns a picklable verdict dict.  When ``check_determinism`` is set the
    simulation runs twice from scratch and the two run summaries must be
    equal — the bit-for-bit property every sweep and cache hit relies on.
    """
    ctx, summary = _run_once(fuzz)
    violations = run_invariants(ctx)
    if check_determinism:
        _, replay = _run_once(fuzz)
        if replay != summary:
            violations.append(Violation(
                "determinism",
                "two identical runs produced different summaries"))
    return {
        "scenario_id": fuzz.scenario_id,
        "signature": fuzz.signature(),
        "violations": [[v.invariant, v.message] for v in violations],
        "summary": summary,
    }


def fuzz_cell(spec: dict, check_determinism: bool = True) -> Dict[str, Any]:
    """Module-level sweep job: evaluate one serialized scenario.

    Must stay module-level and take only picklable kwargs — parallel workers
    receive it by reference and the result cache keys on its qualified name
    plus the canonical encoding of ``spec``.
    """
    return evaluate_scenario(FuzzScenario.from_jsonable(spec),
                             check_determinism=check_determinism)


# ---------------------------------------------------------------------------
# Campaign orchestration
# ---------------------------------------------------------------------------
def _still_fails(invariant: str, check_determinism: bool):
    """Predicate factory for the shrinker: does ``invariant`` still trip?"""
    def fails(candidate: FuzzScenario) -> bool:
        verdict = evaluate_scenario(candidate,
                                    check_determinism=check_determinism)
        return any(name == invariant for name, _ in verdict["violations"])
    return fails


def run_campaign(budget: int, seed: int = 0,
                 jobs: Optional[int | str] = None,
                 executor: Optional[SweepExecutor] = None,
                 check_determinism: bool = True,
                 shrink: bool = True,
                 shrink_attempts: int = 60,
                 corpus_dir: Optional[Path] = None,
                 journal: Any = None,
                 failures: Optional[str] = None) -> Dict[str, Any]:
    """Run a fuzzing campaign and return the (deterministic) report dict.

    Failures are grouped by ``(invariant, scenario signature)``; each group
    keeps its first (lowest scenario id) example, which is optionally
    shrunk in-process and — when ``corpus_dir`` is given — written out as a
    corpus entry ready to commit under ``tests/data/fuzz_corpus/``.

    ``journal`` enables checkpoint/resume (``tools/fuzz_scenarios.py
    --resume``): completed scenarios are journaled as they land, and a
    re-run of the identical campaign evaluates only the missing ones (see
    :mod:`repro.runtime.journal`).  ``failures`` selects the executor's
    strict-vs-salvage policy; under ``"salvage"`` a scenario whose sweep
    job exhausted its retries is reported under ``failed_jobs`` (with its
    deterministic :class:`~repro.runtime.faults.JobFailure` record) instead
    of aborting the campaign.  Both default to the executor's own
    configuration / environment knobs.
    """
    generator = ScenarioGen(seed)
    scenarios = generator.sample_many(budget)
    sweep_jobs = [SweepJob(func=fuzz_cell,
                           kwargs={"spec": fuzz.to_jsonable(),
                                   "check_determinism": check_determinism},
                           label=f"fuzz-{seed}-{fuzz.scenario_id}")
                  for fuzz in scenarios]
    runner = get_executor(executor, jobs=jobs, journal=journal)
    verdicts = runner.run(sweep_jobs, failure_policy=failures)

    # Group violations by failure mode; keep the first example of each.
    # Salvaged JobFailure sentinels (fault-tolerant campaigns) are split out
    # into the deterministic ``failed_jobs`` section first.
    failed_jobs = [
        {"scenario_id": fuzz.scenario_id, "failure": verdict.to_jsonable()}
        for fuzz, verdict in zip(scenarios, verdicts) if is_failure(verdict)]
    groups: Dict[tuple, Dict[str, Any]] = {}
    violating_scenarios = 0
    for fuzz, verdict in zip(scenarios, verdicts):
        if is_failure(verdict) or not verdict["violations"]:
            continue
        violating_scenarios += 1
        for invariant, message in verdict["violations"]:
            key = (invariant, verdict["signature"])
            group = groups.setdefault(key, {
                "invariant": invariant,
                "signature": verdict["signature"],
                "count": 0,
                "first_scenario_id": fuzz.scenario_id,
                "example_message": message,
                "example_scenario": fuzz.to_jsonable(),
            })
            group["count"] += 1

    failure_groups = [groups[key] for key in sorted(groups)]
    for group in failure_groups:
        example = FuzzScenario.from_jsonable(group["example_scenario"])
        if shrink:
            minimized = shrink_scenario(
                example, _still_fails(group["invariant"], check_determinism),
                max_attempts=shrink_attempts)
            group["minimized_scenario"] = minimized.to_jsonable()
        if corpus_dir is not None:
            target = FuzzScenario.from_jsonable(
                group.get("minimized_scenario", group["example_scenario"]))
            verdict = evaluate_scenario(target,
                                        check_determinism=check_determinism)
            entry = corpus_entry(
                target,
                violations=[name for name, _ in verdict["violations"]],
                description=(f"fuzz seed={seed} budget={budget}: "
                             f"{group['invariant']} on {group['signature']}"))
            save_corpus_entry(
                entry, Path(corpus_dir) /
                f"{group['invariant']}-{target.scenario_id}.json")

    report = {
        "format": REPORT_FORMAT,
        "budget": budget,
        "seed": seed,
        "invariants": list(INVARIANT_NAMES),
        "scenarios_run": len(scenarios),
        "violating_scenarios": violating_scenarios,
        "failure_groups": failure_groups,
        "failed_jobs": failed_jobs,
        "clean": not failure_groups and not failed_jobs,
        # Deterministic provenance only (no timestamps/timings): the report
        # itself must stay byte-identical for a given (seed, budget).
        "manifest": provenance(),
    }
    # Side-band full manifest (timings, metrics) when REPRO_RUN_DIR is set.
    if run_dir() is not None:
        write_manifest(build_manifest(
            "fuzz", executor=runner,
            extra={"report": {k: report[k] for k in
                              ("format", "budget", "seed", "scenarios_run",
                               "violating_scenarios", "clean")}}))
    return report
