"""Vectorised rate estimation for the ABC/cellular router fast path.

The ABC router records one ``(timestamp, bytes)`` sample per packet on both
the enqueue and the dequeue side and queries the sliding-window rate once per
departing packet (Eq. 2's ``cr(t)`` denominator).  The scalar fast-path
implementation (:class:`repro.simulator.estimators.BatchedRateEstimator`)
already defers expiry to the query, but both its sample storage and its
expiry walk stay element-at-a-time Python.

:class:`VectorRateEstimator` keeps the same *hot-write* representation —
plain Python list tails named ``_times``/``_sizes`` plus an integer
``_total``, so the router's inlined per-packet append sites work on it
unchanged — and **folds** the tail into flat numpy arrays once it reaches
:attr:`VectorRateEstimator._FOLD` samples (roughly one fold per measurement
interval at the router's packet rates).  After a fold, window expiry over the
folded region is a single ``searchsorted`` plus one prefix-sum difference
instead of a Python loop, and the expired prefix is trimmed wholesale.

Bit-for-bit contract
--------------------
The returned rate is **bit-identical** to both scalar estimators for any
time-ordered interleaving of ``add``/``rate_bps`` calls:

* byte accounting is integer arithmetic end to end — the prefix-sum
  difference over ``int64`` equals the sequential Python additions exactly;
* ``searchsorted(..., side="left")`` stops at the first sample with
  ``time >= cutoff``, exactly where the scalar ``while times[i] < cutoff``
  loop stops;
* the span expression is copied verbatim from the scalar implementation.

``tests/test_vector_estimator.py`` pins the equivalence differentially.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class VectorRateEstimator:
    """Numpy-folded drop-in for :class:`BatchedRateEstimator`.

    Samples append to plain list tails (``_times``/``_sizes``) exactly like
    the scalar fast-path estimator; :meth:`rate_bps` folds a long-enough tail
    into sorted ``float64``/prefix-sum ``int64`` arrays and thereafter
    expires whole spans of samples per query with C-level ``searchsorted``.
    The head timestamp of the live folded region is cached as a Python float
    (``_fhead``) so the common "nothing to expire" query never touches a
    numpy scalar.
    """

    __slots__ = ("window", "_times", "_sizes", "_total", "_expired",
                 "_tstart", "_first_sample_time",
                 "_ftimes", "_fcum", "_fstart", "_fhead", "folds")

    #: Fold the list tail into the numpy arrays once it holds this many
    #: samples.  At the ABC router's per-packet sample rate this is on the
    #: order of one fold per measurement interval; between folds the write
    #: path is two list appends and an integer add.
    _FOLD = 128

    def __init__(self, window: float = 0.04):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._times: list[float] = []
        self._sizes: list[int] = []
        self._total = 0
        self._expired = 0
        self._tstart = 0  # expiry index inside the tail lists
        self._first_sample_time: Optional[float] = None
        self._ftimes: Optional[np.ndarray] = None  # folded timestamps
        self._fcum: Optional[np.ndarray] = None    # folded byte prefix sums
        self._fstart = 0                           # live start in _ftimes
        self._fhead: Optional[float] = None        # _ftimes[_fstart] or None
        self.folds = 0

    def add(self, now: float, size_bytes: int) -> None:
        """Record ``size_bytes`` observed at time ``now`` (O(1), no expiry)."""
        if self._first_sample_time is None:
            self._first_sample_time = now
        self._times.append(now)
        self._sizes.append(size_bytes)
        self._total += size_bytes

    def _fold(self) -> None:
        """Move the tail lists into the folded arrays (expired prefix first
        trimmed from both representations)."""
        times = self._times
        sizes = self._sizes
        tstart = self._tstart
        if tstart:
            del times[:tstart]
            del sizes[:tstart]
            self._tstart = 0
        if not times:
            return
        new_times = np.asarray(times, dtype=np.float64)
        # Prefix sums over int64 are exact for any realistic byte volume
        # (~9e18 byte headroom), so the expiry arithmetic below reproduces
        # the scalar estimator's Python-int additions bit for bit.
        new_cum = np.concatenate(
            (np.zeros(1, dtype=np.int64),
             np.cumsum(np.asarray(sizes, dtype=np.int64))))
        ftimes = self._ftimes
        fstart = self._fstart
        if ftimes is None or fstart == len(ftimes):
            self._ftimes = new_times
            self._fcum = new_cum
        else:
            fcum = self._fcum
            live_cum = fcum[fstart:] - fcum[fstart]
            self._ftimes = np.concatenate((ftimes[fstart:], new_times))
            self._fcum = np.concatenate((live_cum,
                                         new_cum[1:] + live_cum[-1]))
        self._fstart = 0
        self._fhead = float(self._ftimes[0])
        times.clear()
        sizes.clear()
        self.folds += 1

    def rate_bps(self, now: float) -> float:
        """Current rate estimate in bits per second (0.0 with no samples)."""
        cutoff = now - self.window
        if len(self._times) >= self._FOLD:
            self._fold()
        fhead = self._fhead
        if fhead is not None and fhead < cutoff:
            ftimes = self._ftimes
            # side="left": first index with ftimes[i] >= cutoff — exactly
            # where the scalar `while times[i] < cutoff` walk stops.
            new = int(ftimes.searchsorted(cutoff, side="left"))
            fstart = self._fstart
            if new > fstart:
                self._expired += int(self._fcum[new] - self._fcum[fstart])
                self._fstart = new
            if new < len(ftimes):
                fhead = float(ftimes[new])
                self._fhead = fhead
            else:
                fhead = None
                self._fhead = None
        if fhead is None:
            # Folded region empty or fully expired: expire the tail with the
            # scalar walk (verbatim from BatchedRateEstimator).
            times = self._times
            start = self._tstart
            n = len(times)
            if start < n and times[start] < cutoff:
                sizes = self._sizes
                expired = self._expired
                while start < n and times[start] < cutoff:
                    expired += sizes[start]
                    start += 1
                self._expired = expired
                self._tstart = start
            live = start < n
        else:
            live = True
        first = self._first_sample_time
        if not live or first is None:
            return 0.0
        span = now - first
        window = self.window
        if span > window:
            span = window
        elif span <= 0.0:
            span = window
        return (self._total - self._expired) * 8.0 / span

    def reset(self) -> None:
        self._times.clear()
        self._sizes.clear()
        self._total = 0
        self._expired = 0
        self._tstart = 0
        self._first_sample_time = None
        self._ftimes = None
        self._fcum = None
        self._fstart = 0
        self._fhead = None
