"""Synthetic cellular traces that stand in for the paper's recorded LTE traces.

The paper's emulation uses packet-delivery traces recorded on Verizon, AT&T
and T-Mobile LTE networks (uplink and downlink).  We cannot redistribute those
recordings, so this module generates synthetic traces that reproduce the
properties the paper's motivation section relies on:

* link rate varies rapidly — within one second the capacity can both double
  and halve (a 4× swing, §2);
* the dynamic range across a trace is large (hundreds of kbit/s to tens of
  Mbit/s);
* there are occasional outages during which no packets are delivered
  (the paper notes the traces "include outages (highlighting ABC's ability to
  handle ACK losses)", §6.2).

The generator is a geometric (log-space) random walk sampled every
``update_interval`` seconds, clipped to ``[min_rate, max_rate]``, with a
two-state (on/outage) Markov modulator.  Eight named configurations play the
role of the paper's eight operator traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cellular.trace import CellularTrace
from repro.simulator.packet import MTU


@dataclass
class SyntheticTraceConfig:
    """Parameters of the synthetic trace generator.

    Attributes
    ----------
    mean_rate_bps:
        Long-run geometric mean of the link rate.
    min_rate_bps, max_rate_bps:
        Hard clipping bounds (dynamic range of the link).
    volatility:
        Standard deviation of the per-step log-rate increment.  A volatility
        of ~0.25 with a 100 ms step allows the rate to double or halve within
        roughly a second, matching the paper's description.
    update_interval:
        Random-walk step, in seconds.
    outage_rate_per_s:
        Poisson rate of outage onsets (per second of trace).
    outage_duration_s:
        Mean outage duration (exponential).
    mean_reversion:
        Pull toward the long-run mean per step (0 = pure random walk).
    """

    mean_rate_bps: float = 10e6
    min_rate_bps: float = 0.3e6
    max_rate_bps: float = 30e6
    volatility: float = 0.25
    update_interval: float = 0.1
    outage_rate_per_s: float = 0.05
    outage_duration_s: float = 0.3
    mean_reversion: float = 0.05
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if self.min_rate_bps <= 0 or self.max_rate_bps <= self.min_rate_bps:
            raise ValueError("need 0 < min_rate_bps < max_rate_bps")
        if not self.min_rate_bps <= self.mean_rate_bps <= self.max_rate_bps:
            raise ValueError("mean_rate_bps must lie within [min, max]")
        if self.update_interval <= 0:
            raise ValueError("update_interval must be positive")
        if self.volatility < 0 or self.mean_reversion < 0:
            raise ValueError("volatility and mean_reversion must be non-negative")


def rate_series(config: SyntheticTraceConfig, duration: float,
                seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Generate the underlying piecewise-constant rate series.

    Returns ``(segment_start_times_s, rates_bps)``.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    rng = np.random.default_rng(seed)
    n_steps = int(math.ceil(duration / config.update_interval))
    times = np.arange(n_steps) * config.update_interval

    log_mean = math.log(config.mean_rate_bps)
    log_rate = log_mean
    rates = np.empty(n_steps)
    for i in range(n_steps):
        drift = config.mean_reversion * (log_mean - log_rate)
        log_rate += drift + rng.normal(0.0, config.volatility)
        log_rate = min(max(log_rate, math.log(config.min_rate_bps)),
                       math.log(config.max_rate_bps))
        rates[i] = math.exp(log_rate)

    # Outage modulation: zero-rate intervals with Poisson onsets.
    if config.outage_rate_per_s > 0:
        t = 0.0
        while True:
            gap = rng.exponential(1.0 / config.outage_rate_per_s)
            t += gap
            if t >= duration:
                break
            length = rng.exponential(config.outage_duration_s)
            start_idx = int(t / config.update_interval)
            end_idx = min(int((t + length) / config.update_interval) + 1, n_steps)
            rates[start_idx:end_idx] = 0.0
            t += length
    return times, rates


def synthetic_trace(config: SyntheticTraceConfig, duration: float,
                    seed: int = 0, name: Optional[str] = None) -> CellularTrace:
    """Generate a :class:`CellularTrace` of the requested duration."""
    times, rates = rate_series(config, duration, seed=seed)
    opportunities: List[float] = []
    step = config.update_interval
    for start, rate in zip(times, rates):
        if rate <= 0:
            continue
        interval = MTU * 8.0 / rate
        t = start
        end = start + step
        while t < end:
            opportunities.append(t)
            t += interval
    if not opportunities:
        # Degenerate config (all outage): provide one opportunity so the
        # trace object is valid; the link is effectively dead.
        opportunities = [duration]
    return CellularTrace(opportunities, name=name or config.name)


#: Configurations standing in for the paper's eight operator traces.  Rates
#: and volatilities differ per "operator" so the sweep exercises a range of
#: regimes, from a fast low-variance carrier to a slow bursty one.
TRACE_LIBRARY: Dict[str, SyntheticTraceConfig] = {
    "Verizon-LTE-1": SyntheticTraceConfig(mean_rate_bps=9e6, min_rate_bps=0.4e6,
                                          max_rate_bps=24e6, volatility=0.28,
                                          outage_rate_per_s=0.04, name="Verizon-LTE-1"),
    "Verizon-LTE-2": SyntheticTraceConfig(mean_rate_bps=6e6, min_rate_bps=0.3e6,
                                          max_rate_bps=20e6, volatility=0.35,
                                          outage_rate_per_s=0.06, name="Verizon-LTE-2"),
    "Verizon-LTE-3": SyntheticTraceConfig(mean_rate_bps=12e6, min_rate_bps=0.8e6,
                                          max_rate_bps=36e6, volatility=0.22,
                                          outage_rate_per_s=0.03, name="Verizon-LTE-3"),
    "Verizon-LTE-4": SyntheticTraceConfig(mean_rate_bps=4e6, min_rate_bps=0.2e6,
                                          max_rate_bps=14e6, volatility=0.40,
                                          outage_rate_per_s=0.08, name="Verizon-LTE-4"),
    "TMobile-LTE-1": SyntheticTraceConfig(mean_rate_bps=8e6, min_rate_bps=0.5e6,
                                          max_rate_bps=28e6, volatility=0.30,
                                          outage_rate_per_s=0.05, name="TMobile-LTE-1"),
    "TMobile-LTE-2": SyntheticTraceConfig(mean_rate_bps=5e6, min_rate_bps=0.3e6,
                                          max_rate_bps=16e6, volatility=0.33,
                                          outage_rate_per_s=0.07, name="TMobile-LTE-2"),
    "ATT-LTE-1": SyntheticTraceConfig(mean_rate_bps=7e6, min_rate_bps=0.4e6,
                                      max_rate_bps=22e6, volatility=0.26,
                                      outage_rate_per_s=0.05, name="ATT-LTE-1"),
    "ATT-LTE-2": SyntheticTraceConfig(mean_rate_bps=3e6, min_rate_bps=0.2e6,
                                      max_rate_bps=10e6, volatility=0.38,
                                      outage_rate_per_s=0.09, name="ATT-LTE-2"),
}


def synthetic_trace_set(duration: float = 30.0, seed: int = 1,
                        names: Optional[List[str]] = None) -> Dict[str, CellularTrace]:
    """Generate the standard eight-trace evaluation set (Figs. 9, 15, 16)."""
    selected = names if names is not None else list(TRACE_LIBRARY)
    traces = {}
    for offset, name in enumerate(selected):
        config = TRACE_LIBRARY[name]
        traces[name] = synthetic_trace(config, duration, seed=seed + offset, name=name)
    return traces


def lte_showcase_trace(duration: float = 30.0, seed: int = 7) -> CellularTrace:
    """The single LTE trace used for the motivating time series (Fig. 1).

    It is tuned to show the features Fig. 1 highlights: capacity mostly in the
    5–15 Mbit/s band, sharp drops to below 1 Mbit/s (where Cubic's bufferbloat
    appears) and sharp recoveries (where AQM schemes underutilise).
    """
    config = SyntheticTraceConfig(
        mean_rate_bps=8e6, min_rate_bps=0.4e6, max_rate_bps=16e6,
        volatility=0.35, update_interval=0.1, outage_rate_per_s=0.06,
        outage_duration_s=0.4, mean_reversion=0.04, name="LTE-showcase")
    return synthetic_trace(config, duration, seed=seed, name="LTE-showcase")


def uplink_downlink_pair(duration: float = 30.0, seed: int = 11
                         ) -> tuple[CellularTrace, CellularTrace]:
    """A correlated uplink/downlink trace pair for the two-bottleneck
    experiment (Fig. 8c)."""
    downlink = synthetic_trace(TRACE_LIBRARY["Verizon-LTE-1"], duration,
                               seed=seed, name="Verizon-downlink")
    uplink_cfg = SyntheticTraceConfig(
        mean_rate_bps=5e6, min_rate_bps=0.3e6, max_rate_bps=12e6,
        volatility=0.3, outage_rate_per_s=0.05, name="Verizon-uplink")
    uplink = synthetic_trace(uplink_cfg, duration, seed=seed + 1,
                             name="Verizon-uplink")
    return uplink, downlink
