"""Cellular link traces: Mahimahi-compatible format plus synthetic generators.

The paper evaluates ABC on packet-delivery traces recorded on Verizon, AT&T and
T-Mobile LTE networks and replayed with Mahimahi.  Those recordings are not
redistributable, so this package provides synthetic traces with the same
structural properties the paper highlights (§2): capacities that can double
and halve within a second (a 4× swing), a large dynamic range, and occasional
outages during which no packets are delivered.  The trace file format itself
is Mahimahi's (one millisecond timestamp per delivery opportunity), so real
recordings can be dropped in when available.
"""

from repro.cellular.synthetic import (
    SyntheticTraceConfig,
    lte_showcase_trace,
    synthetic_trace,
    synthetic_trace_set,
)
from repro.cellular.trace import CellularTrace

__all__ = [
    "CellularTrace",
    "SyntheticTraceConfig",
    "synthetic_trace",
    "synthetic_trace_set",
    "lte_showcase_trace",
]
