"""Mahimahi-style cellular link traces.

A trace is an ordered list of *delivery opportunities*: timestamps at which
the link can transmit one MTU-sized (1500-byte) packet.  Mahimahi stores them
as integer milliseconds, one per line; an opportunity repeated ``n`` times on
the same millisecond means ``n`` packets can be delivered in that millisecond.
This module keeps timestamps in seconds internally.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Iterable, List, Sequence, Union

import numpy as np

from repro.simulator.packet import MTU


class CellularTrace:
    """An immutable sequence of delivery-opportunity timestamps (seconds)."""

    def __init__(self, opportunity_times: Iterable[float], name: str = "trace",
                 bytes_per_opportunity: int = MTU):
        times = sorted(float(t) for t in opportunity_times)
        if not times:
            raise ValueError("a trace needs at least one delivery opportunity")
        if times[0] < 0:
            raise ValueError("opportunity times must be non-negative")
        self._times: List[float] = times
        # Precomputed array for vectorised window lookups: the i-th prefix
        # count is ``searchsorted(_times_np, t)``, so the capacity offered
        # over a window is a cumulative-count difference instead of a scan.
        self._times_np = np.asarray(times, dtype=float)
        self.name = name
        self.bytes_per_opportunity = bytes_per_opportunity

    # ------------------------------------------------------------ basic API
    @property
    def opportunity_times(self) -> Sequence[float]:
        return tuple(self._times)

    @property
    def duration(self) -> float:
        """Trace length in seconds (timestamp of the last opportunity)."""
        return self._times[-1]

    def __len__(self) -> int:
        return len(self._times)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (f"<CellularTrace {self.name!r} {len(self)} opportunities, "
                f"{self.duration:.1f}s, mean {self.mean_rate_bps() / 1e6:.2f} Mbit/s>")

    # ------------------------------------------------------------ rates
    def mean_rate_bps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return len(self._times) * self.bytes_per_opportunity * 8.0 / self.duration

    def opportunities_before(self, t: float) -> int:
        """Number of delivery opportunities with timestamp strictly below
        ``t`` (a cumulative-count lookup via ``searchsorted``)."""
        return int(np.searchsorted(self._times_np, t, side="left"))

    def bits_between(self, t0: float, t1: float) -> float:
        """Total bit-capacity the trace offers over ``[t0, t1)``.

        Closed form: the difference of two cumulative opportunity counts
        times the opportunity size — no per-opportunity iteration.
        """
        if t1 <= t0:
            return 0.0
        count = (self.opportunities_before(t1) - self.opportunities_before(t0))
        return count * self.bytes_per_opportunity * 8.0

    def rate_in_window(self, t0: float, t1: float) -> float:
        """Average deliverable rate (bps) between ``t0`` and ``t1``."""
        if t1 <= t0:
            return 0.0
        lo, hi = np.searchsorted(self._times_np, (t0, t1), side="left")
        return int(hi - lo) * self.bytes_per_opportunity * 8.0 / (t1 - t0)

    def rate_timeseries(self, bin_size: float = 0.1) -> tuple[np.ndarray, np.ndarray]:
        """Binned capacity time series ``(bin_centers_s, rate_bps)``."""
        n_bins = max(int(math.ceil(self.duration / bin_size)), 1)
        idx = (self._times_np / bin_size).astype(int)
        np.minimum(idx, n_bins - 1, out=idx)
        counts = np.bincount(idx, minlength=n_bins).astype(float)
        centers = (np.arange(n_bins) + 0.5) * bin_size
        return centers, counts * self.bytes_per_opportunity * 8.0 / bin_size

    # ------------------------------------------------------------ transforms
    def scaled(self, factor: float, name: str | None = None) -> "CellularTrace":
        """Scale capacity by ``factor`` by dilating/compressing time."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return CellularTrace((t / factor for t in self._times),
                             name=name or f"{self.name}-x{factor:g}",
                             bytes_per_opportunity=self.bytes_per_opportunity)

    def truncated(self, duration: float, name: str | None = None) -> "CellularTrace":
        """Keep only opportunities within the first ``duration`` seconds."""
        kept = [t for t in self._times if t <= duration]
        if not kept:
            raise ValueError("truncation left no opportunities")
        return CellularTrace(kept, name=name or f"{self.name}-{duration:g}s",
                             bytes_per_opportunity=self.bytes_per_opportunity)

    # ------------------------------------------------------------ file I/O
    @classmethod
    def from_mahimahi_file(cls, path: Union[str, Path],
                           name: str | None = None) -> "CellularTrace":
        """Load a Mahimahi trace (integer milliseconds, one per line)."""
        path = Path(path)
        times = []
        with path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                times.append(int(line) / 1000.0)
        return cls(times, name=name or path.stem)

    def to_mahimahi_file(self, path: Union[str, Path]) -> None:
        """Write the trace in Mahimahi's millisecond format."""
        path = Path(path)
        with path.open("w") as handle:
            for t in self._times:
                handle.write(f"{int(round(t * 1000))}\n")

    @classmethod
    def from_rate_series(cls, times_s: Sequence[float], rates_bps: Sequence[float],
                         name: str = "trace",
                         bytes_per_opportunity: int = MTU) -> "CellularTrace":
        """Build a trace from a piecewise-constant rate series.

        ``times_s`` are segment start times (the final segment ends at the
        last time plus the previous segment length, or one segment length
        after it if only one segment exists).
        """
        if len(times_s) != len(rates_bps):
            raise ValueError("times and rates must have the same length")
        if not times_s:
            raise ValueError("rate series must not be empty")
        opportunities: List[float] = []
        times = list(times_s)
        if len(times) > 1:
            last_span = times[-1] - times[-2]
        else:
            last_span = 1.0
        times.append(times[-1] + last_span)
        for (start, end), rate in zip(zip(times, times[1:]), rates_bps):
            if rate <= 0 or end <= start:
                continue
            interval = bytes_per_opportunity * 8.0 / rate
            t = start
            while t < end:
                opportunities.append(t)
                t += interval
        return cls(opportunities, name=name,
                   bytes_per_opportunity=bytes_per_opportunity)
