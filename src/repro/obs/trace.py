"""Chrome trace-event export: simulation timelines for ``chrome://tracing``.

Two renderings, both emitting the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
JSON that ``chrome://tracing`` (and Perfetto's legacy loader) accepts:

* **Simulation event timeline** — :class:`EventTraceRecorder` hooks the
  engine's dispatch loop (:meth:`EventLoop.set_trace_hook`) and records every
  fired event.  Exported events use **simulated time** as the timeline axis
  (µs) and the callback's **wall-clock cost** as the bar length, so a slow
  callback is literally a long bar; one tracing row (tid) per component class
  plus per-link queue-depth counter tracks.
* **Sweep worker timeline** — :func:`sweep_trace_events` renders the per-job
  records an observed :class:`~repro.runtime.executor.SweepExecutor` run
  collects (and a run manifest stores under ``executor.jobs``): one row per
  worker pid, one bar per sweep cell, wall-clock axis.

``tools/export_trace.py`` is the CLI for both.  Tracing is strictly opt-in:
with no hook installed the engine runs its untouched hot loop (the traced
loop is a separate method), so the disabled-mode overhead is zero.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Cap on recorded events; beyond it the recorder counts drops instead of
#: growing without bound (a 30 s metro cell can dispatch tens of millions).
DEFAULT_MAX_EVENTS = 2_000_000


class EventTraceRecorder:
    """Records every dispatched engine event via the engine's trace hook.

    Attach before the run, detach (or just export) after::

        recorder = EventTraceRecorder(scenario.env)
        scenario.run(duration)
        recorder.write_chrome(Path("trace.json"))
    """

    def __init__(self, loop: Any, max_events: int = DEFAULT_MAX_EVENTS):
        self._loop = loop
        self.max_events = max_events
        #: (sim_time_s, wall_ns, callback) triples, in dispatch order.
        self.records: List[tuple] = []
        self.dropped = 0
        loop.set_trace_hook(self._record)

    def _record(self, sim_time: float, callback: Any, wall_ns: int) -> None:
        if len(self.records) >= self.max_events:
            self.dropped += 1
            return
        self.records.append((sim_time, wall_ns, callback))

    def detach(self) -> None:
        self._loop.set_trace_hook(None)

    # ------------------------------------------------------------- export
    def chrome_events(self) -> List[Dict[str, Any]]:
        """Trace events: sim-time axis, wall-cost bars, one tid per class."""
        events: List[Dict[str, Any]] = []
        tids: Dict[str, int] = {}
        for sim_time, wall_ns, callback in self.records:
            owner = getattr(callback, "__self__", None)
            group = type(owner).__name__ if owner is not None else "function"
            tid = tids.get(group)
            if tid is None:
                tid = tids[group] = len(tids) + 1
            events.append({
                "name": f"{group}.{getattr(callback, '__name__', repr(callback))}",
                "cat": "sim",
                "ph": "X",
                "ts": sim_time * 1e6,
                # Bar length = wall cost of the callback (µs, floored so
                # zero-cost events stay visible).
                "dur": max(wall_ns / 1e3, 0.01),
                "pid": 1,
                "tid": tid,
            })
        events.extend(_thread_names(1, {v: k for k, v in tids.items()}))
        return events

    def queue_counter_events(self, scenario: Any) -> List[Dict[str, Any]]:
        """Per-link queue-depth counter tracks from the scenario monitors."""
        events: List[Dict[str, Any]] = []
        for name, monitor in getattr(scenario, "monitors", {}).items():
            times = getattr(monitor, "queue_sample_times", ())
            depths = getattr(monitor, "queue_sample_backlogs", ())
            for t, depth in zip(times, depths):
                events.append({
                    "name": f"queue:{name}", "cat": "queue", "ph": "C",
                    "ts": t * 1e6, "pid": 1,
                    "args": {"packets": depth},
                })
        return events

    def write_chrome(self, path: Path,
                     scenario: Any = None) -> Path:
        events = self.chrome_events()
        if scenario is not None:
            events.extend(self.queue_counter_events(scenario))
        return write_chrome_trace(path, events,
                                  metadata={"dropped_events": self.dropped})


def _thread_names(pid: int, names: Dict[int, str]) -> List[Dict[str, Any]]:
    """Metadata events labelling each tid row in the trace viewer."""
    return [{"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
             "args": {"name": label}} for tid, label in sorted(names.items())]


# ---------------------------------------------------------------------------
# Sweep worker timeline
# ---------------------------------------------------------------------------
def sweep_trace_events(job_records: List[Dict[str, Any]]
                       ) -> List[Dict[str, Any]]:
    """Per-worker job timeline from an executor's (or manifest's) records.

    Each record needs ``label``, ``pid``, ``start_unix`` and ``wall_seconds``
    (what :class:`~repro.runtime.executor.SweepExecutor` collects when
    observing); timestamps are re-based to the earliest job start.

    Resilient runs tag records with ``attempt``/``outcome``; each retried
    attempt renders as its own span (``label [attempt N]``) in a distinct
    category per outcome (``retry``/``timeout``/``worker_crash``), so a
    chaos run's timeline shows exactly which cells were retried, where, and
    why.  Records whose worker pid was never learned (a crash before the
    attempt announced itself) land on a dedicated ``unattributed`` row.
    """
    records = [r for r in job_records if r.get("start_unix") is not None]
    if not records:
        return []
    base = min(r["start_unix"] for r in records)
    pids = sorted({r["pid"] for r in records if r.get("pid") is not None})
    tid_of: Dict[Any, int] = {pid: index + 1
                              for index, pid in enumerate(pids)}
    names = {tid: f"worker pid {pid}" for pid, tid in tid_of.items()}
    if any(r.get("pid") is None for r in records):
        tid_of[None] = len(tid_of) + 1
        names[tid_of[None]] = "unattributed"
    events: List[Dict[str, Any]] = []
    for record in records:
        attempt = record.get("attempt")
        outcome = record.get("outcome")
        name = record.get("label") or "job"
        if attempt is not None and (attempt > 1 or outcome not in (None, "ok")):
            name = f"{name} [attempt {attempt}]"
        if outcome in ("timeout", "worker_crash"):
            cat = outcome
        elif outcome not in (None, "ok") or (attempt or 1) > 1:
            cat = "retry"
        else:
            cat = "sweep"
        events.append({
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": (record["start_unix"] - base) * 1e6,
            "dur": max(record["wall_seconds"] * 1e6, 0.01),
            "pid": 1,
            "tid": tid_of[record.get("pid")],
            "args": {k: v for k, v in record.items()
                     if k not in ("label", "pid", "start_unix")},
        })
    events.extend(_thread_names(1, names))
    return events


def write_chrome_trace(path: Path, events: List[Dict[str, Any]],
                       metadata: Optional[Dict[str, Any]] = None) -> Path:
    """Write events as a ``chrome://tracing``-loadable JSON object."""
    payload: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        payload["metadata"] = metadata
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload) + "\n")
    return path
