"""Observability: metrics registry, run manifests, progress, trace export.

The subsystem is opt-in via environment knobs and costs (near) nothing when
disabled:

* ``REPRO_TELEMETRY=1`` — turn the process-local metrics registry on
  (:mod:`repro.obs.metrics`).  With the knob unset every handle the
  instrumentation acquires is a shared no-op singleton, and the hot-path
  components are *harvested* (their existing always-on counters are read once
  at run end) rather than instrumented per event, so the per-packet pipeline
  is untouched.
* ``REPRO_RUN_DIR=<dir>`` — every sweep / metro / fuzz run writes a JSON
  provenance manifest there (:mod:`repro.obs.manifest`): git SHA, code
  version salt, knob snapshot, seeds, per-job timings, metrics snapshot.
* ``REPRO_PROGRESS=1`` — long sweeps render a live stderr progress line
  (cells done/total, cache-hit rate, ETA; :mod:`repro.obs.progress`).
* Chrome-trace export (:mod:`repro.obs.trace` + ``tools/export_trace.py``)
  renders a simulation's event timeline or a sweep's per-worker job timeline
  as ``chrome://tracing``-loadable JSON.

Import discipline: this package is imported by the simulator and the runtime,
so :mod:`repro.obs.metrics` (the only module loaded eagerly) must not import
either of them; :mod:`repro.obs.manifest` reaches into ``repro.runtime`` via
late imports only.
"""

from repro.obs.metrics import (TELEMETRY_ENV, counter, enabled, gauge,
                               override, registry, timer)

__all__ = ["TELEMETRY_ENV", "counter", "enabled", "gauge", "override",
           "registry", "timer"]
