"""Process-local metrics registry with near-zero disabled overhead.

Three instrument kinds cover every signal the platform emits:

* :class:`Counter` — monotonically increasing event counts (packets dropped,
  cache hits, compactions).
* :class:`Gauge` — last-written point-in-time values (worker count).
* :class:`TimerHist` — nanosecond-resolution duration histograms built on
  :func:`time.perf_counter_ns` (per-job wall time, cache I/O), recorded as
  count/total/min/max plus power-of-two log buckets so histograms from many
  workers merge exactly.

Disabled-mode contract
----------------------
``REPRO_TELEMETRY`` unset (the default) must leave the per-packet hot path
untouched — ``benchmarks/bench_engine_hotpath.py --check-overhead`` guards a
<2 % bound.  Two mechanisms make that possible:

1. The acquisition helpers (:func:`counter`/:func:`gauge`/:func:`timer`)
   return shared **no-op singletons** when telemetry is off, so cold-path
   call sites (the result cache, the sweep executor) can instrument
   unconditionally; a disabled instrument is one no-op method call.
2. Hot-path components are not instrumented per event at all: they already
   maintain plain integer counters for their own bookkeeping (the engine's
   ``events_processed``, a link's ``delivered_packets``, a sender's
   ``acks_received``), and :func:`harvest_scenario` reads those **once at run
   end** into the registry.  Enabled or disabled, the inner loops never see a
   telemetry call.

Workers and merging
-------------------
Each process owns one module-level registry.  Sweep workers accumulate
metrics while running a job, then ship a :meth:`MetricsRegistry.snapshot` back
through the pool and :meth:`MetricsRegistry.reset`; the parent merges the
deltas with :meth:`MetricsRegistry.merge`.  Counters and timer histograms
merge by summation (order-independent, so serial and parallel sweeps produce
identical totals — ``tests/test_obs.py`` pins this); gauges merge by ``max``
so the result cannot depend on worker completion order.

Like the fast-path knob (:mod:`repro.simulator.fastpath`), some components
read ``enabled()`` **at construction time** and keep the handles they
acquired; use :func:`override` around construction *and* execution when
toggling telemetry programmatically.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

#: Environment variable that turns the metrics registry on.
TELEMETRY_ENV = "REPRO_TELEMETRY"

_TRUTHY = ("1", "true", "yes", "on")

#: Programmatic override; None defers to the environment.
_override: Optional[bool] = None


def enabled() -> bool:
    """True when telemetry collection is active in this process."""
    if _override is not None:
        return _override
    return os.environ.get(TELEMETRY_ENV, "").strip().lower() in _TRUTHY


@contextmanager
def override(flag: Optional[bool]) -> Iterator[None]:
    """Force telemetry on/off within a ``with`` block (None = no-op)."""
    global _override
    if flag is None:
        yield
        return
    previous = _override
    _override = bool(flag)
    try:
        yield
    finally:
        _override = previous


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------
class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-write-wins point-in-time value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


#: Number of power-of-two duration buckets: bucket ``i`` counts observations
#: with ``ns.bit_length() == i`` (bucket 0 holds 0 ns), so 64 buckets span
#: every int64 nanosecond duration.
_TIMER_BUCKETS = 64


class TimerHist:
    """Nanosecond duration histogram (``time.perf_counter_ns`` resolution).

    Stores count / total / min / max exactly plus per-power-of-two bucket
    counts, which is enough for mean and coarse percentiles and — unlike a
    quantile sketch — merges exactly across worker processes.
    """

    __slots__ = ("name", "count", "total_ns", "min_ns", "max_ns", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_ns = 0
        self.min_ns: Optional[int] = None
        self.max_ns = 0
        self.buckets = [0] * _TIMER_BUCKETS

    def observe_ns(self, ns: int) -> None:
        if ns < 0:
            ns = 0
        self.count += 1
        self.total_ns += ns
        if self.min_ns is None or ns < self.min_ns:
            self.min_ns = ns
        if ns > self.max_ns:
            self.max_ns = ns
        self.buckets[ns.bit_length()] += 1

    @contextmanager
    def time(self) -> Iterator[None]:
        """Time a ``with`` block at perf_counter_ns resolution."""
        t0 = time.perf_counter_ns()
        try:
            yield
        finally:
            self.observe_ns(time.perf_counter_ns() - t0)

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    def to_jsonable(self) -> Dict[str, Any]:
        # Trailing zero buckets are trimmed so snapshots stay compact.
        trimmed = list(self.buckets)
        while trimmed and trimmed[-1] == 0:
            trimmed.pop()
        return {"count": self.count, "total_ns": self.total_ns,
                "min_ns": self.min_ns, "max_ns": self.max_ns,
                "buckets": trimmed}

    def merge(self, other: Dict[str, Any]) -> None:
        self.count += other["count"]
        self.total_ns += other["total_ns"]
        other_min = other["min_ns"]
        if other_min is not None and (self.min_ns is None
                                      or other_min < self.min_ns):
            self.min_ns = other_min
        if other["max_ns"] > self.max_ns:
            self.max_ns = other["max_ns"]
        for index, n in enumerate(other["buckets"]):
            self.buckets[index] += n


# ---------------------------------------------------------------------------
# No-op singletons (the disabled-mode handles)
# ---------------------------------------------------------------------------
class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullTimer:
    __slots__ = ()
    name = "null"
    count = 0
    total_ns = 0
    min_ns = None
    max_ns = 0
    mean_ns = 0.0

    def observe_ns(self, ns: int) -> None:
        pass

    @contextmanager
    def time(self) -> Iterator[None]:
        yield


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_TIMER = _NullTimer()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
class MetricsRegistry:
    """All instruments of one process, keyed by name."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, TimerHist] = {}

    # ------------------------------------------------------------- acquire
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def timer(self, name: str) -> TimerHist:
        instrument = self._timers.get(name)
        if instrument is None:
            instrument = self._timers[name] = TimerHist(name)
        return instrument

    # ------------------------------------------------------------ transport
    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able copy of every instrument (sorted for stable output)."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "timers": {name: t.to_jsonable()
                       for name, t in sorted(self._timers.items())},
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a worker's snapshot into this registry.

        Counters and timers merge by summation; gauges by ``max`` — all three
        are order-independent, so the merged totals cannot depend on worker
        scheduling.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            if value > gauge.value:
                gauge.value = value
        for name, data in snapshot.get("timers", {}).items():
            self.timer(name).merge(data)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()


_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """This process's registry (always real, even when telemetry is off)."""
    return _registry


def counter(name: str):
    """A live :class:`Counter`, or the no-op singleton when disabled."""
    return _registry.counter(name) if enabled() else NULL_COUNTER


def gauge(name: str):
    """A live :class:`Gauge`, or the no-op singleton when disabled."""
    return _registry.gauge(name) if enabled() else NULL_GAUGE


def timer(name: str):
    """A live :class:`TimerHist`, or the no-op singleton when disabled."""
    return _registry.timer(name) if enabled() else NULL_TIMER


# ---------------------------------------------------------------------------
# Scenario harvest
# ---------------------------------------------------------------------------
def harvest_scenario(scenario: Any) -> None:
    """Publish a finished scenario's built-in counters into the registry.

    Called by :meth:`repro.simulator.scenario.Scenario.run` once per run when
    telemetry is enabled.  Everything read here is a plain attribute the
    components maintain anyway (duck-typed, so this module imports nothing
    from the simulator), which is what keeps the disabled-mode hot path free
    of telemetry calls entirely.
    """
    reg = _registry
    env = scenario.env
    reg.counter("scenario.runs").inc()
    reg.counter("engine.events_dispatched").inc(env.events_processed)
    reg.counter("engine.events_cancelled").inc(env.cancels)
    reg.counter("engine.compactions").inc(env.compactions)
    # Timer-wheel backend counters (0 / absent on the heap backend).
    reg.counter("engine.wheel_rotations").inc(getattr(env, "rotations", 0))
    reg.counter("engine.overflow_spills").inc(
        getattr(env, "overflow_spills", 0))
    for link in scenario.links:
        reg.counter("link.arrived_packets").inc(link.arrived_packets)
        reg.counter("link.delivered_packets").inc(link.delivered_packets)
        reg.counter("link.dropped_packets").inc(link.dropped_packets)
        reg.counter("link.random_loss_packets").inc(link.random_loss_packets)
    fast_flows = classic_flows = 0
    for flow in scenario.flows:
        sender = flow.sender
        reg.counter("sender.acks_received").inc(sender.acks_received)
        reg.counter("sender.rto_rearms").inc(sender.rto_rearms)
        reg.counter("sender.timeouts").inc(sender.timeouts)
        reg.counter("sender.retransmissions").inc(sender.retransmissions)
        reg.counter("sender.packets_sent").inc(sender.packets_sent)
        # Fused pacing-loop counters (absent on non-paced/classic senders).
        reg.counter("sender.pace_ticks").inc(getattr(sender, "pace_ticks", 0))
        reg.counter("sender.pace_halts").inc(getattr(sender, "pace_halts", 0))
        reg.counter("receiver.packets_received").inc(
            flow.receiver.packets_received)
        if getattr(sender, "_fast", False):
            fast_flows += 1
        else:
            classic_flows += 1
    reg.counter("sender.fastpath_flows").inc(fast_flows)
    reg.counter("sender.classic_flows").inc(classic_flows)
