"""Run manifests: JSON provenance records for every sweep-scale run.

When ``REPRO_RUN_DIR`` names a directory, every :meth:`SweepSpec.run_cells`
call (and therefore every figure sweep, ``metro_pack`` city and fuzz
campaign) writes one manifest there — enough to answer, months later, *what
exactly produced this number*: the git SHA, the cache's code-version salt,
the full ``REPRO_*`` knob environment, the grid (schemes × traces × seeds),
per-job wall-clock timings (worker pid, queue wait), the executor's cache
statistics and — when ``REPRO_TELEMETRY=1`` — the merged metrics snapshot.

:func:`provenance` is the deterministic core of a manifest (no timestamps,
no timings): fuzz campaign reports embed it verbatim so a failing corpus
entry records the exact knob/seed environment that produced it without
breaking the campaign's byte-identical-report contract.

Manifests are side-band output: nothing in the repository reads them back at
run time, so schema growth is cheap.  ``tools/export_trace.py`` renders the
``executor.jobs`` timings as a ``chrome://tracing`` per-worker timeline.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Environment variable naming the manifest/trace output directory; unset
#: (the default) disables manifest emission entirely.
RUN_DIR_ENV = "REPRO_RUN_DIR"

#: Manifest schema version (bump on incompatible layout changes).
MANIFEST_SCHEMA = 1


def run_dir() -> Optional[Path]:
    """The manifest output directory, or None when manifests are disabled."""
    raw = os.environ.get(RUN_DIR_ENV, "").strip()
    return Path(raw).expanduser() if raw else None


def knob_snapshot() -> Dict[str, str]:
    """Every ``REPRO_*`` environment knob currently set (sorted)."""
    return {key: value for key, value in sorted(os.environ.items())
            if key.startswith("REPRO_")}


_GIT_SHA_CACHE: List[Optional[str]] = []


def git_sha() -> Optional[str]:
    """The repository HEAD commit, or None outside a git checkout.

    Memoized per process — HEAD cannot move under a running sweep, and fuzz
    campaigns call :func:`provenance` once per report.
    """
    if _GIT_SHA_CACHE:
        return _GIT_SHA_CACHE[0]
    sha = _read_git_sha()
    _GIT_SHA_CACHE.append(sha)
    return sha


def _read_git_sha() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent, capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def provenance() -> Dict[str, Any]:
    """The deterministic provenance record shared by every manifest.

    Contains no timestamps or timings, so two runs from the same checkout
    with the same environment produce byte-identical provenance — the
    property fuzz reports rely on when they embed it.
    """
    from repro.runtime.cache import effective_salt  # late: avoid import cycle

    return {
        "schema": MANIFEST_SCHEMA,
        "git_sha": git_sha(),
        "code_version_salt": effective_salt(),
        "knobs": knob_snapshot(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def executor_record(executor: Any) -> Dict[str, Any]:
    """JSON-able view of an executor's last run (stats + per-job timings).

    Resilient runs (timeouts/retries/fault injection) add their bookkeeping:
    retry/timeout/crash counters plus the full per-job failure histories, so
    a manifest answers *which cells were retried and why* months later and
    ``tools/export_trace.py`` can render retried attempts as separate spans.
    """
    stats = executor.last_stats
    record = {
        "total": stats.total,
        "cache_hits": stats.cache_hits,
        "cache_corrupt": stats.cache_corrupt,
        "executed": stats.executed,
        "workers": stats.workers,
        "wall_seconds": stats.wall_seconds,
        "pool_reused": stats.pool_reused,
        "jobs": list(stats.job_records),
    }
    for name in ("retries", "timeouts", "worker_crashes", "failed_jobs",
                 "cache_write_errors", "journal_hits"):
        value = getattr(stats, name, 0)
        if value:
            record[name] = value
    failures = getattr(stats, "failures", None)
    if failures:
        record["failures"] = list(failures)
    return record


def build_manifest(kind: str, *, spec: Optional[Dict[str, Any]] = None,
                   cells: Optional[List[Dict[str, Any]]] = None,
                   executor: Any = None,
                   extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble a full manifest dict (provenance + run-specific sections)."""
    from repro.obs.metrics import enabled, registry

    manifest = provenance()
    manifest["kind"] = kind
    manifest["created_unix"] = time.time()
    if spec is not None:
        manifest["spec"] = spec
    if cells is not None:
        manifest["cells"] = cells
    if executor is not None:
        manifest["executor"] = executor_record(executor)
    manifest["metrics"] = registry().snapshot() if enabled() else None
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(manifest: Dict[str, Any],
                   directory: Optional[Path] = None) -> Optional[Path]:
    """Write ``manifest`` as JSON into the run directory; returns the path.

    ``directory`` defaults to ``REPRO_RUN_DIR``; when neither is set the
    manifest is dropped and None returned.  Filenames embed a monotonic
    nanosecond timestamp plus the pid, so concurrent writers never collide.
    """
    directory = directory if directory is not None else run_dir()
    if directory is None:
        return None
    directory.mkdir(parents=True, exist_ok=True)
    name = (f"{manifest.get('kind', 'run')}-{time.time_ns()}"
            f"-{os.getpid()}.json")
    path = directory / name
    path.write_text(json.dumps(manifest, indent=1, sort_keys=True) + "\n")
    return path


def spec_summary(spec: Any) -> Dict[str, Any]:
    """Compact JSON-able description of a :class:`SweepSpec`-like grid."""
    return {
        "type": type(spec).__name__,
        "schemes": [str(s) for s in spec.schemes],
        "traces": [str(name) for name in spec.traces],
        "seeds": [int(s) for s in spec.seeds],
        "duration": spec.duration,
        "rtt": spec.rtt,
        "buffer_packets": spec.buffer_packets,
        "param_grid_cells": len(list(spec.param_grid)),
    }


def maybe_write_sweep_manifest(spec: Any, cells: List[Any],
                               executor: Any) -> Optional[Path]:
    """Emit one manifest for a finished sweep (no-op without REPRO_RUN_DIR)."""
    directory = run_dir()
    if directory is None:
        return None
    cell_records = [
        {"scheme": cell.scheme, "trace": cell.trace, "seed": cell.seed,
         "overrides": [[str(k), repr(v)] for k, v in cell.overrides]}
        for cell in cells]
    manifest = build_manifest(
        "sweep", spec=spec_summary(spec), cells=cell_records,
        executor=executor)
    return write_manifest(manifest, directory)
