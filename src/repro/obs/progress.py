"""Sweep progress reporting: a live stderr line or a user callback.

Long metro sweeps and fuzz campaigns run for minutes with no output; with
``REPRO_PROGRESS=1`` (or an explicit ``progress=`` callback on
:class:`~repro.runtime.executor.SweepExecutor`) the executor reports after
every completed cell::

    sweep  37/200 (18%)  cache 12% | 2.1 cells/s | ETA 78s

The reporter sits entirely outside the job hot path — one callback per
*completed job*, never per event — so it costs nothing at simulation scale.
The ETA extrapolates the mean wall time of the cells executed so far over
the cells still pending (cache hits are free and counted done up front).
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass
from typing import Callable, Optional

#: Environment variable that turns the default stderr reporter on.
PROGRESS_ENV = "REPRO_PROGRESS"

_TRUTHY = ("1", "true", "yes", "on")


def env_enabled() -> bool:
    """True when ``REPRO_PROGRESS`` asks for the default stderr reporter."""
    return os.environ.get(PROGRESS_ENV, "").strip().lower() in _TRUTHY


@dataclass
class SweepProgress:
    """One progress observation, passed to the reporter after each cell."""

    done: int                 #: cells finished (cache hits + executed)
    total: int                #: cells in this run() call
    executed: int             #: cells actually simulated so far
    cache_hits: int           #: cells served from the result cache
    elapsed_seconds: float    #: wall time since run() started
    eta_seconds: Optional[float]  #: None until at least one cell executed
    label: str = ""           #: label of the most recently finished job

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.done if self.done else 0.0


ProgressCallback = Callable[[SweepProgress], None]


def stderr_reporter(progress: SweepProgress) -> None:
    """Default reporter: one self-overwriting stderr line per completion."""
    pct = 100.0 * progress.done / progress.total if progress.total else 100.0
    rate = (progress.executed / progress.elapsed_seconds
            if progress.elapsed_seconds > 0 else 0.0)
    eta = ("--" if progress.eta_seconds is None
           else f"{progress.eta_seconds:.0f}s")
    line = (f"sweep {progress.done:>4}/{progress.total} ({pct:3.0f}%)  "
            f"cache {progress.cache_hit_rate * 100.0:3.0f}% | "
            f"{rate:5.1f} cells/s | ETA {eta}")
    end = "\n" if progress.done >= progress.total else "\r"
    print(line, end=end, file=sys.stderr, flush=True)


class ProgressTracker:
    """Bookkeeping between the executor's loop and a reporter callback."""

    def __init__(self, total: int, cache_hits: int,
                 callback: ProgressCallback):
        self._callback = callback
        self._total = total
        self._hits = cache_hits
        self._executed = 0
        self._started = time.perf_counter()
        if total:
            self._emit("")  # cache hits are done before anything runs

    def job_done(self, label: str = "") -> None:
        self._executed += 1
        self._emit(label)

    def _emit(self, label: str) -> None:
        elapsed = time.perf_counter() - self._started
        done = self._hits + self._executed
        remaining = self._total - done
        eta = (elapsed / self._executed * remaining
               if self._executed else None)
        self._callback(SweepProgress(
            done=done, total=self._total, executed=self._executed,
            cache_hits=self._hits, elapsed_seconds=elapsed,
            eta_seconds=eta, label=label))


def resolve_progress(progress) -> Optional[ProgressCallback]:
    """Normalise the executor's ``progress`` argument to a callback or None.

    ``None`` defers to the ``REPRO_PROGRESS`` environment knob (truthy =
    stderr reporter); ``False`` forces progress off regardless of the
    environment; ``True`` selects the stderr reporter; any callable is used
    as-is.
    """
    if progress is None:
        return stderr_reporter if env_enabled() else None
    if progress is False:
        return None
    if progress is True:
        return stderr_reporter
    if callable(progress):
        return progress
    raise TypeError(f"progress must be None, a bool or a callable, "
                    f"got {progress!r}")
