"""Module-level trace store shared between sweep processes.

A cellular trace can hold tens of thousands of delivery-opportunity
timestamps.  When a sweep fans out over a ``multiprocessing`` pool, shipping
the full trace inside every job's kwargs pickles (and re-parses) the same
timestamps once per cell — for the Fig. 9 grid that is 14 copies of each of
the eight traces.  The store fixes this: traces are registered once in the
parent, jobs carry only a tiny :class:`TraceRef`, and workers receive the
whole store exactly once via the pool initializer
(:func:`install_snapshot`).

Content addressing is preserved: a :class:`TraceRef` carries the
``stable_hash`` of the trace it names and exposes it through
``cache_fingerprint()``, so a job's :class:`~repro.runtime.cache.ResultCache`
key still changes whenever the *content* of the trace changes, never just its
display name.

The store is keyed by that content hash, so registering the same trace twice
(or two different sweeps registering identical traces) dedupes to a single
entry.  A persistent pool (:class:`~repro.runtime.executor.SweepExecutor`
used as a context manager) remembers which keys its workers were primed
with and restarts only when a submitted job references a trace the workers
do not hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Tuple

from repro.runtime.cache import stable_hash

#: key (content hash) -> trace object, in this process.
_STORE: Dict[str, Any] = {}


@dataclass(frozen=True)
class TraceRef:
    """A picklable stand-in for a registered trace.

    ``name`` is the trace's display name (cosmetic); ``key`` is the content
    hash under which the trace lives in the store.  The ref hashes like the
    trace it names (via ``cache_fingerprint``), so swapping a trace for its
    ref inside job kwargs keeps the result cache content-addressed.
    """

    name: str
    key: str

    def cache_fingerprint(self) -> Tuple[str, str]:
        return ("trace", self.key)

    def resolve(self) -> Any:
        return get_trace(self.key)


def register_trace(trace: Any) -> TraceRef:
    """Put ``trace`` in the store (idempotent) and return its ref."""
    key = stable_hash(trace)
    _STORE.setdefault(key, trace)
    return TraceRef(name=getattr(trace, "name", "trace"), key=key)


def get_trace(key: str) -> Any:
    """Look a trace up by content key; raise a helpful error when absent."""
    try:
        return _STORE[key]
    except KeyError:
        raise KeyError(
            f"trace {key!r} is not in this process's trace store; workers "
            "receive the store via the pool initializer — register traces "
            "before creating the pool, or run the sweep through "
            "SweepExecutor so the snapshot is installed for you") from None


def resolve_link_spec(spec: Any) -> Any:
    """Turn a :class:`TraceRef` back into its trace; pass anything else through."""
    if isinstance(spec, TraceRef):
        return spec.resolve()
    return spec


def store_snapshot() -> Dict[str, Any]:
    """The full store contents (introspection/debugging; pools ship only
    the subset their jobs reference, via :func:`snapshot_for`)."""
    return dict(_STORE)


def snapshot_for(keys: Iterable[str]) -> Dict[str, Any]:
    """Just the entries named by ``keys``, so a pool never pays for traces
    its jobs never reference (registered by earlier, unrelated sweeps)."""
    return {key: _STORE[key] for key in keys if key in _STORE}


def install_snapshot(snapshot: Dict[str, Any]) -> None:
    """Merge a snapshot into this process's store (pool initializer)."""
    _STORE.update(snapshot)


def clear_trace_store() -> int:
    """Empty the store (tests); returns the number of entries removed."""
    removed = len(_STORE)
    _STORE.clear()
    return removed
