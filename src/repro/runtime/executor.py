"""Parallel sweep execution with deterministic, cache-backed results.

The experiment sweeps in this repository (Figs. 8/9/15/16/18, Table 1, the
WiFi and coexistence grids) are embarrassingly parallel: every (scheme,
trace, seed, overrides) cell is an independent single-process simulation.
:class:`SweepExecutor` fans a list of :class:`SweepJob`\\ s out over a
``multiprocessing`` pool, falls back to in-process serial execution when one
worker is requested, and memoizes completed cells through
:class:`~repro.runtime.cache.ResultCache`.

Determinism contract
--------------------
Results are returned in job-submission order and each job runs in its own
simulator instance with explicit seeds, so the returned metrics are
bit-for-bit identical whether a sweep runs serially, in parallel, or is
replayed from the cache.  ``tests/test_runtime_executor.py`` enforces this.

Worker selection
----------------
``SweepExecutor(jobs=N)`` wins over the ``REPRO_JOBS`` environment variable,
which wins over the serial default (1).  ``0`` or ``"auto"`` means one worker
per CPU.  Job *functions* must be module-level callables and their kwargs
picklable, because parallel workers receive them by reference.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.runtime.cache import (CACHE_DIR_ENV, ResultCache, effective_salt,
                                 stable_hash)

#: Environment variable selecting the worker count (``1`` = serial).
JOBS_ENV = "REPRO_JOBS"


def resolve_worker_count(jobs: Optional[int | str] = None) -> int:
    """Resolve the worker count from the API arg or ``REPRO_JOBS``."""
    value: Any = jobs if jobs is not None else os.environ.get(JOBS_ENV, "1")
    if isinstance(value, str):
        value = value.strip().lower()
        if value in ("", "auto"):
            value = 0
        else:
            try:
                value = int(value)
            except ValueError as exc:
                raise ValueError(
                    f"{JOBS_ENV} must be an integer or 'auto', got {value!r}"
                ) from exc
    if value < 0:
        raise ValueError(f"worker count must be >= 0, got {value}")
    if value == 0:
        value = os.cpu_count() or 1
    return value


@dataclass
class SweepJob:
    """One independent sweep cell: a module-level function plus kwargs.

    ``label`` is purely cosmetic (progress/debug output); it does not enter
    the cache key, so relabeling a job still hits its cached result.
    """

    func: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def cache_key(self, salt: str) -> str:
        func_id = f"{self.func.__module__}.{self.func.__qualname__}"
        return stable_hash([func_id, self.kwargs, salt])

    def run(self) -> Any:
        return self.func(**self.kwargs)


def _execute_job(job: SweepJob) -> Any:
    """Module-level trampoline so pool workers can unpickle it."""
    return job.run()


@dataclass
class ExecutorStats:
    """What the last :meth:`SweepExecutor.run` call actually did."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    workers: int = 1
    wall_seconds: float = 0.0


class SweepExecutor:
    """Runs :class:`SweepJob` lists with optional parallelism and caching.

    Parameters
    ----------
    jobs:
        Worker count; ``None`` defers to ``REPRO_JOBS`` (default serial),
        ``0``/``"auto"`` uses every CPU.
    cache_dir:
        Directory for the on-disk result cache.  ``None`` defers to
        ``REPRO_CACHE_DIR``; when neither is set, caching is disabled.
    salt:
        Code-version salt mixed into every cache key (see
        :mod:`repro.runtime.cache`).
    """

    def __init__(self, jobs: Optional[int | str] = None,
                 cache_dir: Optional[os.PathLike | str] = None,
                 salt: Optional[str] = None):
        self.workers = resolve_worker_count(jobs)
        if cache_dir is None:
            cache_dir = os.environ.get(CACHE_DIR_ENV) or None
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if cache_dir is not None else None)
        self.salt = effective_salt(salt)
        self.last_stats = ExecutorStats()

    # ------------------------------------------------------------------ run
    def run(self, jobs: Sequence[SweepJob]) -> List[Any]:
        """Execute every job, returning results in submission order.

        Cached cells are served without executing; the remainder run either
        in-process (one worker) or on a ``multiprocessing`` pool.
        """
        jobs = list(jobs)
        started = time.perf_counter()
        results: List[Any] = [None] * len(jobs)
        keys: List[Optional[str]] = [None] * len(jobs)
        pending: List[int] = []
        hits = 0
        for index, job in enumerate(jobs):
            if self.cache is not None:
                keys[index] = job.cache_key(self.salt)
                hit, value = self.cache.get(keys[index])
                if hit:
                    results[index] = value
                    hits += 1
                    continue
            pending.append(index)

        if pending:
            outputs = self._execute([jobs[i] for i in pending])
            for index, value in zip(pending, outputs):
                results[index] = value
                if self.cache is not None:
                    self.cache.put(keys[index], value)

        self.last_stats = ExecutorStats(
            total=len(jobs), cache_hits=hits, executed=len(pending),
            workers=self.workers,
            wall_seconds=time.perf_counter() - started)
        return results

    def _execute(self, jobs: List[SweepJob]) -> List[Any]:
        if self.workers <= 1 or len(jobs) <= 1:
            return [_execute_job(job) for job in jobs]
        processes = min(self.workers, len(jobs))
        with multiprocessing.Pool(processes=processes) as pool:
            return pool.map(_execute_job, jobs, chunksize=1)


def get_executor(executor: Optional[SweepExecutor] = None,
                 jobs: Optional[int | str] = None,
                 cache_dir: Optional[os.PathLike | str] = None) -> SweepExecutor:
    """Shared convenience for experiment entry points.

    Returns ``executor`` unchanged when given one, otherwise builds a fresh
    :class:`SweepExecutor` from the ``jobs``/``cache_dir`` knobs (and thus the
    ``REPRO_JOBS``/``REPRO_CACHE_DIR`` environment defaults).
    """
    if executor is not None:
        return executor
    return SweepExecutor(jobs=jobs, cache_dir=cache_dir)
