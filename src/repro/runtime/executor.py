"""Parallel sweep execution with deterministic, cache-backed results.

The experiment sweeps in this repository (Figs. 8/9/15/16/18, Table 1, the
WiFi and coexistence grids) are embarrassingly parallel: every (scheme,
trace, seed, overrides) cell is an independent single-process simulation.
:class:`SweepExecutor` fans a list of :class:`SweepJob`\\ s out over a
``multiprocessing`` pool, falls back to in-process serial execution when one
worker is requested, and memoizes completed cells through
:class:`~repro.runtime.cache.ResultCache`.

Determinism contract
--------------------
Results are returned in job-submission order and each job runs in its own
simulator instance with explicit seeds, so the returned metrics are
bit-for-bit identical whether a sweep runs serially, in parallel, on a
reused pool, or is replayed from the cache.
``tests/test_runtime_executor.py`` enforces this.

Worker selection
----------------
``SweepExecutor(jobs=N)`` wins over the ``REPRO_JOBS`` environment variable,
which wins over the serial default (1).  ``0`` or ``"auto"`` means one worker
per CPU.  Job *functions* must be module-level callables and their kwargs
picklable, because parallel workers receive them by reference.

Pool reuse
----------
By default every :meth:`SweepExecutor.run` call spins up (and tears down) its
own pool, which costs ~1 s of worker start-up — enough to swamp the
parallel win on small grids.  Used as a context manager the executor keeps
one pool alive across ``run()`` calls::

    with SweepExecutor(jobs=4) as executor:
        first = spec_a.run(executor)    # pool starts here
        second = spec_b.run(executor)   # pool reused, no spin-up

Workers are primed with the shared trace store
(:mod:`repro.runtime.trace_store`) when the pool starts, so job kwargs carry
tiny :class:`~repro.runtime.trace_store.TraceRef` handles instead of pickling
every trace into every cell.  If new traces are registered after the pool
started, the next ``run()`` transparently restarts it with a fresh snapshot.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs import manifest as obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs.progress import ProgressTracker, resolve_progress
from repro.runtime.cache import (CACHE_DIR_ENV, ResultCache, effective_salt,
                                 stable_hash)
from repro.runtime.trace_store import (TraceRef, install_snapshot,
                                       snapshot_for)

#: Environment variable selecting the worker count (``1`` = serial).
JOBS_ENV = "REPRO_JOBS"

#: Environment variable selecting the default seed list for multi-seed
#: sweeps: comma- or space-separated integers (``REPRO_SEEDS="1,2,3"``).
SEEDS_ENV = "REPRO_SEEDS"


def resolve_worker_count(jobs: Optional[int | str] = None) -> int:
    """Resolve the worker count from the API arg or ``REPRO_JOBS``."""
    value: Any = jobs if jobs is not None else os.environ.get(JOBS_ENV, "1")
    if isinstance(value, str):
        value = value.strip().lower()
        if value in ("", "auto"):
            value = 0
        else:
            try:
                value = int(value)
            except ValueError as exc:
                raise ValueError(
                    f"{JOBS_ENV} must be an integer or 'auto', got {value!r}"
                ) from exc
    if value < 0:
        raise ValueError(f"worker count must be >= 0, got {value}")
    if value == 0:
        value = os.cpu_count() or 1
    return value


def resolve_seeds(seeds: Union[int, Sequence[int], None] = None
                  ) -> Optional[Tuple[int, ...]]:
    """Resolve a seed list from the API arg or the ``REPRO_SEEDS`` env var.

    The precedence mirrors :func:`resolve_worker_count`: an explicit
    ``seeds=`` argument (an int or an iterable of ints) wins over
    ``REPRO_SEEDS`` (comma- or space-separated integers), which wins over the
    entry point's legacy single-seed default (signalled by returning
    ``None``).
    """
    if seeds is not None:
        if isinstance(seeds, int):
            return (seeds,)
        resolved = tuple(int(s) for s in seeds)
        if not resolved:
            raise ValueError("seeds must contain at least one seed")
        return resolved
    raw = os.environ.get(SEEDS_ENV, "").strip()
    if not raw:
        return None
    try:
        parsed = tuple(int(part) for part in raw.replace(",", " ").split())
    except ValueError as exc:
        raise ValueError(
            f"{SEEDS_ENV} must be comma- or space-separated integers, "
            f"got {raw!r}") from exc
    if not parsed:
        raise ValueError(f"{SEEDS_ENV} must name at least one seed")
    return parsed


@dataclass
class SweepJob:
    """One independent sweep cell: a module-level function plus kwargs.

    ``label`` is purely cosmetic (progress/debug output); it does not enter
    the cache key, so relabeling a job still hits its cached result.
    """

    func: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def cache_key(self, salt: str) -> str:
        """Content-addressed cache key: function identity + kwargs + salt."""
        func_id = f"{self.func.__module__}.{self.func.__qualname__}"
        return stable_hash([func_id, self.kwargs, salt])

    def run(self) -> Any:
        return self.func(**self.kwargs)


def _execute_job(job: SweepJob) -> Any:
    """Module-level trampoline so pool workers can unpickle it."""
    return job.run()


def _execute_job_observed(payload: Tuple[SweepJob, float]
                          ) -> Tuple[Any, Dict[str, Any], Optional[dict]]:
    """Worker-side trampoline for observed runs.

    Returns ``(value, meta, metrics_snapshot)``: the job's result, a timing
    record (worker pid, wall-clock start, wall time, how long the job sat in
    the pool's queue) and — when ``REPRO_TELEMETRY`` is on — the worker
    registry's snapshot, which is then **reset** so every job ships exactly
    its own delta and the parent-side merge is order-independent.
    """
    job, submitted_unix = payload
    start_unix = time.time()
    t0 = time.perf_counter()
    value = job.run()
    wall = time.perf_counter() - t0
    meta = {
        "label": job.label,
        "pid": os.getpid(),
        "start_unix": start_unix,
        "wall_seconds": wall,
        "queue_wait_seconds": max(start_unix - submitted_unix, 0.0),
    }
    snapshot = None
    if obs_metrics.enabled():
        registry = obs_metrics.registry()
        snapshot = registry.snapshot()
        registry.reset()
    return value, meta, snapshot


def _needed_trace_keys(jobs: Sequence[SweepJob]) -> set:
    """Content keys of every :class:`TraceRef` the jobs' kwargs reference."""
    keys = set()
    for job in jobs:
        for value in job.kwargs.values():
            if isinstance(value, TraceRef):
                keys.add(value.key)
            elif isinstance(value, (tuple, list)):
                keys.update(item.key for item in value
                            if isinstance(item, TraceRef))
    return keys


@dataclass
class ExecutorStats:
    """What the last :meth:`SweepExecutor.run` call actually did."""

    total: int = 0
    cache_hits: int = 0
    #: Cache entries found corrupt during this run's scan — served as misses,
    #: deleted, then recomputed and rewritten (distinct from ordinary misses).
    cache_corrupt: int = 0
    #: Entries evicted by the REPRO_CACHE_MAX_MB size cap while this run's
    #: results were being stored (mtime-LRU, see repro.runtime.cache).
    cache_evictions: int = 0
    executed: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    pool_reused: bool = False
    #: Per-executed-job timing records (label, worker pid, start, wall time,
    #: queue wait) — populated only on observed runs (telemetry on,
    #: ``REPRO_RUN_DIR`` set, or a progress callback active); empty otherwise.
    job_records: List[Dict[str, Any]] = field(default_factory=list)


class SweepExecutor:
    """Runs :class:`SweepJob` lists with optional parallelism and caching.

    Parameters
    ----------
    jobs:
        Worker count; ``None`` defers to ``REPRO_JOBS`` (default serial),
        ``0``/``"auto"`` uses every CPU.
    cache_dir:
        Directory for the on-disk result cache.  ``None`` defers to
        ``REPRO_CACHE_DIR``; when neither is set, caching is disabled.
    salt:
        Code-version salt mixed into every cache key (see
        :mod:`repro.runtime.cache`).
    progress:
        Per-cell progress reporting: ``None`` defers to ``REPRO_PROGRESS``
        (truthy selects the stderr line), ``True`` forces the stderr line,
        ``False`` forces progress off, and any callable receives a
        :class:`~repro.obs.progress.SweepProgress` after every completed
        cell.

    Used as a plain object, every :meth:`run` call manages its own
    short-lived pool.  Used as a context manager (``with SweepExecutor(...)
    as ex:``) the pool persists across ``run()`` calls — see
    :meth:`open`/:meth:`close`.
    """

    def __init__(self, jobs: Optional[int | str] = None,
                 cache_dir: Optional[os.PathLike | str] = None,
                 salt: Optional[str] = None,
                 progress: Union[None, bool, Callable] = None):
        self.workers = resolve_worker_count(jobs)
        self.progress = progress
        if cache_dir is None:
            cache_dir = os.environ.get(CACHE_DIR_ENV) or None
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if cache_dir is not None else None)
        self.salt = effective_salt(salt)
        self.last_stats = ExecutorStats()
        self._persistent = False
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._pool_trace_keys: set = set()

    # ------------------------------------------------------------ pool reuse
    def open(self) -> "SweepExecutor":
        """Switch to persistent-pool mode.

        The pool itself starts lazily on the first parallel :meth:`run` and
        then stays warm until :meth:`close`, so repeated sweeps pay the
        worker spin-up cost once instead of once per sweep.
        """
        self._persistent = True
        return self

    def close(self) -> None:
        """Shut the persistent pool down (idempotent, safe without one)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        self._pool_trace_keys = set()

    def __enter__(self) -> "SweepExecutor":
        return self.open()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
        self._persistent = False

    def _ensure_pool(self, needed_keys: set) -> multiprocessing.pool.Pool:
        """The persistent pool, restarted only when it is missing a trace.

        Workers are primed with exactly the traces the submitted jobs
        reference — never with unrelated registrations from other sweeps, so
        worker memory stays bounded by one sweep's working set.  A ``run()``
        whose refs the workers already hold reuses the warm pool; one that
        needs anything else restarts it (the restart costs ~1 s, the same as
        a one-shot pool would have paid anyway).
        """
        if self._pool is not None and not needed_keys <= self._pool_trace_keys:
            self.close()
        if self._pool is None:
            snapshot = snapshot_for(needed_keys)
            self._pool = multiprocessing.Pool(
                processes=self.workers, initializer=install_snapshot,
                initargs=(snapshot,))
            self._pool_trace_keys = set(snapshot)
        return self._pool

    # ------------------------------------------------------------------ run
    def run(self, jobs: Sequence[SweepJob]) -> List[Any]:
        """Execute every job, returning results in submission order.

        Cached cells are served without executing; the remainder run either
        in-process (one worker) or on a ``multiprocessing`` pool.  With
        telemetry on, a progress reporter active, or ``REPRO_RUN_DIR`` set,
        the run is *observed*: per-job timing records are collected (and
        worker metrics merged back) without changing any result — results
        stay bit-identical either way.
        """
        jobs = list(jobs)
        started = time.perf_counter()
        results: List[Any] = [None] * len(jobs)
        keys: List[Optional[str]] = [None] * len(jobs)
        pending: List[int] = []
        hits = 0
        corrupt_before = self.cache.corrupt if self.cache is not None else 0
        evictions_before = self.cache.evictions if self.cache is not None else 0
        for index, job in enumerate(jobs):
            if self.cache is not None:
                keys[index] = job.cache_key(self.salt)
                hit, value = self.cache.get(keys[index])
                if hit:
                    results[index] = value
                    hits += 1
                    continue
            pending.append(index)

        callback = resolve_progress(self.progress)
        observing = (callback is not None or obs_metrics.enabled()
                     or obs_manifest.run_dir() is not None)
        tracker = (ProgressTracker(len(jobs), hits, callback)
                   if callback is not None else None)

        reused = False
        job_records: List[Dict[str, Any]] = []
        if pending:
            pending_jobs = [jobs[i] for i in pending]
            if observing:
                outputs, reused, job_records = self._execute_observed(
                    pending_jobs, tracker)
            else:
                outputs, reused = self._execute(pending_jobs)
            for index, value in zip(pending, outputs):
                results[index] = value
                if self.cache is not None:
                    self.cache.put(keys[index], value)

        corrupt = ((self.cache.corrupt - corrupt_before)
                   if self.cache is not None else 0)
        evictions = ((self.cache.evictions - evictions_before)
                     if self.cache is not None else 0)
        self.last_stats = ExecutorStats(
            total=len(jobs), cache_hits=hits, cache_corrupt=corrupt,
            cache_evictions=evictions,
            executed=len(pending), workers=self.workers,
            wall_seconds=time.perf_counter() - started,
            pool_reused=reused, job_records=job_records)
        if obs_metrics.enabled():
            self._publish_run_metrics(job_records, reused)
        return results

    def _publish_run_metrics(self, job_records: List[Dict[str, Any]],
                             reused: bool) -> None:
        """Fold the finished run's bookkeeping into the metrics registry."""
        registry = obs_metrics.registry()
        registry.counter("executor.runs").inc()
        if reused:
            registry.counter("executor.pool_reuses").inc()
        registry.gauge("executor.workers").set(self.workers)
        wall = registry.timer("executor.job_wall")
        wait = registry.timer("executor.queue_wait")
        for record in job_records:
            wall.observe_ns(int(record["wall_seconds"] * 1e9))
            wait.observe_ns(int(record["queue_wait_seconds"] * 1e9))

    def _execute(self, jobs: List[SweepJob]) -> Tuple[List[Any], bool]:
        """Run jobs; returns ``(results, pool_was_reused)``."""
        if self.workers <= 1 or len(jobs) <= 1:
            return [_execute_job(job) for job in jobs], False
        needed = _needed_trace_keys(jobs)
        if self._persistent:
            previous = self._pool
            pool = self._ensure_pool(needed)
            return (pool.map(_execute_job, jobs, chunksize=1),
                    pool is previous)
        # One-shot pool: ship only the traces these jobs actually reference.
        processes = min(self.workers, len(jobs))
        with multiprocessing.Pool(processes=processes,
                                  initializer=install_snapshot,
                                  initargs=(snapshot_for(needed),)) as pool:
            return pool.map(_execute_job, jobs, chunksize=1), False

    def _execute_observed(
            self, jobs: List[SweepJob], tracker: Optional[ProgressTracker]
    ) -> Tuple[List[Any], bool, List[Dict[str, Any]]]:
        """:meth:`_execute` plus per-job records, merge-back and progress.

        Parallel runs stream results through ``imap(chunksize=1)`` — the
        order-preserving twin of the unobserved path's ``map`` — so each
        completed cell can update the progress line and merge its worker
        metrics as it lands instead of at the end of the sweep.
        """
        records: List[Dict[str, Any]] = []
        if self.workers <= 1 or len(jobs) <= 1:
            # In-process: metrics accumulate directly in this registry (no
            # snapshot/reset round-trip, which would orphan live handles).
            outputs = []
            for job in jobs:
                start_unix = time.time()
                t0 = time.perf_counter()
                outputs.append(_execute_job(job))
                records.append({
                    "label": job.label, "pid": os.getpid(),
                    "start_unix": start_unix,
                    "wall_seconds": time.perf_counter() - t0,
                    "queue_wait_seconds": 0.0,
                })
                if tracker is not None:
                    tracker.job_done(job.label)
            return outputs, False, records
        payloads = [(job, time.time()) for job in jobs]
        needed = _needed_trace_keys(jobs)
        if self._persistent:
            previous = self._pool
            pool = self._ensure_pool(needed)
            outputs = self._drain_observed(pool, payloads, records, tracker)
            return outputs, pool is previous, records
        processes = min(self.workers, len(jobs))
        with multiprocessing.Pool(processes=processes,
                                  initializer=install_snapshot,
                                  initargs=(snapshot_for(needed),)) as pool:
            outputs = self._drain_observed(pool, payloads, records, tracker)
        return outputs, False, records

    @staticmethod
    def _drain_observed(pool, payloads, records, tracker) -> List[Any]:
        """Consume observed worker results in submission order."""
        registry = obs_metrics.registry()
        outputs: List[Any] = []
        for value, meta, snapshot in pool.imap(_execute_job_observed,
                                               payloads, chunksize=1):
            outputs.append(value)
            records.append(meta)
            if snapshot is not None:
                registry.merge(snapshot)
            if tracker is not None:
                tracker.job_done(meta["label"])
        return outputs


def get_executor(executor: Optional[SweepExecutor] = None,
                 jobs: Optional[int | str] = None,
                 cache_dir: Optional[os.PathLike | str] = None) -> SweepExecutor:
    """Shared convenience for experiment entry points.

    Returns ``executor`` unchanged when given one, otherwise builds a fresh
    :class:`SweepExecutor` from the ``jobs``/``cache_dir`` knobs (and thus the
    ``REPRO_JOBS``/``REPRO_CACHE_DIR`` environment defaults).
    """
    if executor is not None:
        return executor
    return SweepExecutor(jobs=jobs, cache_dir=cache_dir)
