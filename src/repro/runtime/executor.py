"""Parallel sweep execution with deterministic, cache-backed results.

The experiment sweeps in this repository (Figs. 8/9/15/16/18, Table 1, the
WiFi and coexistence grids) are embarrassingly parallel: every (scheme,
trace, seed, overrides) cell is an independent single-process simulation.
:class:`SweepExecutor` fans a list of :class:`SweepJob`\\ s out over a
``multiprocessing`` pool, falls back to in-process serial execution when one
worker is requested, and memoizes completed cells through
:class:`~repro.runtime.cache.ResultCache`.

Determinism contract
--------------------
Results are returned in job-submission order and each job runs in its own
simulator instance with explicit seeds, so the returned metrics are
bit-for-bit identical whether a sweep runs serially, in parallel, on a
reused pool, or is replayed from the cache.
``tests/test_runtime_executor.py`` enforces this; with fault injection
active, ``tests/test_runtime_faults.py`` extends it to the failure records.

Worker selection
----------------
``SweepExecutor(jobs=N)`` wins over the ``REPRO_JOBS`` environment variable,
which wins over the serial default (1).  ``0`` or ``"auto"`` means one worker
per CPU.  Job *functions* must be module-level callables and their kwargs
picklable, because parallel workers receive them by reference.

Pool reuse
----------
By default every :meth:`SweepExecutor.run` call spins up (and tears down) its
own pool, which costs ~1 s of worker start-up — enough to swamp the
parallel win on small grids.  Used as a context manager the executor keeps
one pool alive across ``run()`` calls::

    with SweepExecutor(jobs=4) as executor:
        first = spec_a.run(executor)    # pool starts here
        second = spec_b.run(executor)   # pool reused, no spin-up

Workers are primed with the shared trace store
(:mod:`repro.runtime.trace_store`) when the pool starts, so job kwargs carry
tiny :class:`~repro.runtime.trace_store.TraceRef` handles instead of pickling
every trace into every cell.  If new traces are registered after the pool
started, the next ``run()`` transparently restarts it with a fresh snapshot.

Fault tolerance
---------------
A wedged cell, a crashed worker or a mid-run ``KeyboardInterrupt`` must not
lose a whole sweep.  Four knobs, all construction-time like the others:

* ``REPRO_JOB_TIMEOUT`` / ``timeout=`` — per-job wall-clock deadline; a
  job attempt that exceeds it is abandoned and its (possibly wedged) worker
  is killed, letting the pool respawn a fresh one.
* ``REPRO_JOB_RETRIES`` / ``retries=`` — failed attempts (exception, crash
  or timeout) are retried up to this many times with seeded exponential
  backoff + jitter (``REPRO_RETRY_BACKOFF`` base seconds), so the schedule
  itself is part of the reproducible record.
* ``REPRO_FAULTS`` / ``faults=`` — deterministic chaos injection (see
  :mod:`repro.runtime.faults`): same spec + seed ⇒ the same faults hit the
  same cells, byte-reproducibly, serial or parallel.
* ``failure_policy=`` (``"strict"`` default, or ``"salvage"``; also
  ``REPRO_FAILURE_POLICY``) — after retries are exhausted, ``strict``
  re-raises the original exception (or a
  :class:`~repro.runtime.faults.JobFailureError`), while ``salvage``
  returns a picklable :class:`~repro.runtime.faults.JobFailure` sentinel
  *in the failed cell's slot* so the other 199 cells of a metro sweep
  survive with an explicit failure record.

Worker crashes are detected by pid liveness (workers announce each attempt
through a start queue), crashed/expired attempts are resubmitted, and the
pool's automatic respawn keeps the worker count constant.  Completed cells
can additionally be journaled for checkpoint/resume — see
:mod:`repro.runtime.journal`.  ``KeyboardInterrupt`` tears the pool down in
a ``finally`` path instead of orphaning workers.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
import signal
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.obs import manifest as obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs.progress import ProgressTracker, resolve_progress
from repro.runtime.cache import (CACHE_DIR_ENV, ResultCache, effective_salt,
                                 stable_hash)
from repro.runtime.faults import (FaultInjector, FaultSpec, JobAttempt,
                                  JobFailure, JobFailureError, crash_attempt,
                                  resolve_fault_spec, retry_backoff,
                                  timeout_attempt)
from repro.runtime.journal import RunJournal, resolve_journal_dir, run_key_for
from repro.runtime.trace_store import (TraceRef, install_snapshot,
                                       snapshot_for)

#: Environment variable selecting the worker count (``1`` = serial).
JOBS_ENV = "REPRO_JOBS"

#: Environment variable selecting the default seed list for multi-seed
#: sweeps: comma- or space-separated integers (``REPRO_SEEDS="1,2,3"``).
SEEDS_ENV = "REPRO_SEEDS"

#: Environment variable: per-job wall-clock timeout in seconds (unset/0 =
#: no deadline).  Parallel runs enforce it preemptively (the wedged worker
#: is killed and respawned); serial runs cannot preempt a running job, so
#: there it only applies to injected hangs.
TIMEOUT_ENV = "REPRO_JOB_TIMEOUT"

#: Environment variable: how many times a failed job attempt is retried
#: (default 0 — fail on the first exhausted attempt, the legacy behavior).
RETRIES_ENV = "REPRO_JOB_RETRIES"

#: Environment variable: base seconds for the seeded exponential retry
#: backoff (default 0.05; 0 disables the delay but keeps the retries).
BACKOFF_ENV = "REPRO_RETRY_BACKOFF"

#: Environment variable selecting the failure policy: ``strict`` (raise on
#: the first exhausted job) or ``salvage`` (return JobFailure sentinels
#: in-slot and keep the rest of the sweep).
FAILURE_POLICY_ENV = "REPRO_FAILURE_POLICY"

#: Parent-side poll interval while supervising resilient parallel runs.
_POLL_SECONDS = 0.01

#: How long a dead-pid / expired-deadline attempt stays *condemned* before
#: it is finalised as a crash/timeout.  A worker writes an attempt's result
#: to the pool's outqueue pipe *before* it picks up its next task, so it can
#: die on task N+1 while task N's bytes are still waiting for the parent's
#: result-handler thread.  Finalising on the first dead-pid sighting would
#: misread that finished attempt as crashed (dropping its real result and
#: breaking serial ≡ parallel determinism); the grace window lets any
#: already-piped result win the race.  A genuinely lost attempt can never
#: deliver, so the delay costs latency only, never correctness.
_LATE_RESULT_GRACE_SECONDS = 1.0


def resolve_worker_count(jobs: Optional[int | str] = None) -> int:
    """Resolve the worker count from the API arg or ``REPRO_JOBS``."""
    value: Any = jobs if jobs is not None else os.environ.get(JOBS_ENV, "1")
    if isinstance(value, str):
        value = value.strip().lower()
        if value in ("", "auto"):
            value = 0
        else:
            try:
                value = int(value)
            except ValueError as exc:
                raise ValueError(
                    f"{JOBS_ENV} must be an integer or 'auto', got {value!r}"
                ) from exc
    if value < 0:
        raise ValueError(f"worker count must be >= 0, got {value}")
    if value == 0:
        value = os.cpu_count() or 1
    return value


def resolve_seeds(seeds: Union[int, Sequence[int], None] = None
                  ) -> Optional[Tuple[int, ...]]:
    """Resolve a seed list from the API arg or the ``REPRO_SEEDS`` env var.

    The precedence mirrors :func:`resolve_worker_count`: an explicit
    ``seeds=`` argument (an int or an iterable of ints) wins over
    ``REPRO_SEEDS`` (comma- or space-separated integers), which wins over the
    entry point's legacy single-seed default (signalled by returning
    ``None``).
    """
    if seeds is not None:
        if isinstance(seeds, int):
            return (seeds,)
        resolved = tuple(int(s) for s in seeds)
        if not resolved:
            raise ValueError("seeds must contain at least one seed")
        return resolved
    raw = os.environ.get(SEEDS_ENV, "").strip()
    if not raw:
        return None
    try:
        parsed = tuple(int(part) for part in raw.replace(",", " ").split())
    except ValueError as exc:
        raise ValueError(
            f"{SEEDS_ENV} must be comma- or space-separated integers, "
            f"got {raw!r}") from exc
    if not parsed:
        raise ValueError(f"{SEEDS_ENV} must name at least one seed")
    return parsed


def resolve_job_timeout(timeout: Union[int, float, str, None] = None
                        ) -> Optional[float]:
    """Per-job deadline in seconds from the API arg or ``REPRO_JOB_TIMEOUT``.

    ``None``/unset/``0`` means no deadline.
    """
    value: Any = timeout if timeout is not None \
        else os.environ.get(TIMEOUT_ENV, "")
    if isinstance(value, str):
        value = value.strip()
        if not value:
            return None
        try:
            value = float(value)
        except ValueError as exc:
            raise ValueError(
                f"{TIMEOUT_ENV} must be a number of seconds, got "
                f"{value!r}") from exc
    value = float(value)
    if value < 0:
        raise ValueError(f"job timeout must be >= 0, got {value}")
    return value if value > 0 else None


def resolve_job_retries(retries: Union[int, str, None] = None) -> int:
    """Retry budget per job from the API arg or ``REPRO_JOB_RETRIES``."""
    value: Any = retries if retries is not None \
        else os.environ.get(RETRIES_ENV, "")
    if isinstance(value, str):
        value = value.strip()
        if not value:
            return 0
        try:
            value = int(value)
        except ValueError as exc:
            raise ValueError(
                f"{RETRIES_ENV} must be an integer, got {value!r}") from exc
    value = int(value)
    if value < 0:
        raise ValueError(f"job retries must be >= 0, got {value}")
    return value


def resolve_retry_backoff(backoff: Union[int, float, str, None] = None
                          ) -> float:
    """Backoff base seconds from the API arg or ``REPRO_RETRY_BACKOFF``."""
    value: Any = backoff if backoff is not None \
        else os.environ.get(BACKOFF_ENV, "")
    if isinstance(value, str):
        value = value.strip()
        if not value:
            return 0.05
        try:
            value = float(value)
        except ValueError as exc:
            raise ValueError(
                f"{BACKOFF_ENV} must be a number of seconds, got "
                f"{value!r}") from exc
    value = float(value)
    if value < 0:
        raise ValueError(f"retry backoff must be >= 0, got {value}")
    return value


def resolve_failure_policy(policy: Optional[str] = None) -> str:
    """``strict`` or ``salvage`` from the API arg or the environment."""
    value = policy if policy is not None \
        else os.environ.get(FAILURE_POLICY_ENV, "").strip().lower()
    if not value:
        return "strict"
    value = str(value).strip().lower()
    if value not in ("strict", "salvage"):
        raise ValueError(
            f"failure policy must be 'strict' or 'salvage', got {value!r}")
    return value


@dataclass
class SweepJob:
    """One independent sweep cell: a module-level function plus kwargs.

    ``label`` is purely cosmetic (progress/debug output); it does not enter
    the cache key, so relabeling a job still hits its cached result.
    """

    func: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def cache_key(self, salt: str) -> str:
        """Content-addressed cache key: function identity + kwargs + salt."""
        func_id = f"{self.func.__module__}.{self.func.__qualname__}"
        return stable_hash([func_id, self.kwargs, salt])

    def run(self) -> Any:
        return self.func(**self.kwargs)


def _execute_job(job: SweepJob) -> Any:
    """Module-level trampoline so pool workers can unpickle it."""
    return job.run()


def _execute_job_observed(payload: Tuple[SweepJob, float]
                          ) -> Tuple[Any, Dict[str, Any], Optional[dict]]:
    """Worker-side trampoline for observed runs.

    Returns ``(value, meta, metrics_snapshot)``: the job's result, a timing
    record (worker pid, wall-clock start, wall time, how long the job sat in
    the pool's queue) and — when ``REPRO_TELEMETRY`` is on — the worker
    registry's snapshot, which is then **reset** so every job ships exactly
    its own delta and the parent-side merge is order-independent.
    """
    job, submitted_unix = payload
    start_unix = time.time()
    t0 = time.perf_counter()
    value = job.run()
    wall = time.perf_counter() - t0
    meta = {
        "label": job.label,
        "pid": os.getpid(),
        "start_unix": start_unix,
        "wall_seconds": wall,
        "queue_wait_seconds": max(start_unix - submitted_unix, 0.0),
    }
    snapshot = None
    if obs_metrics.enabled():
        registry = obs_metrics.registry()
        snapshot = registry.snapshot()
        registry.reset()
    return value, meta, snapshot


#: Worker-side handle on the executor's start queue (set by the pool
#: initializer); resilient attempts announce (run id, slot, attempt, pid)
#: through it so the parent can arm deadlines and attribute worker deaths.
_START_QUEUE = None


def _pool_init(trace_snapshot: Dict[str, Any], start_queue=None) -> None:
    """Pool initializer: prime the trace store and keep the start queue."""
    global _START_QUEUE
    install_snapshot(trace_snapshot)
    _START_QUEUE = start_queue


def _attempt_outcome(job: SweepJob, job_key: str, attempt: int,
                     fault_spec: Optional[FaultSpec]) -> Dict[str, Any]:
    """Run one guarded attempt body; never raises.

    Shared verbatim by the serial driver and pool workers so an error's
    captured traceback is byte-identical across execution modes (same
    frames, same files, same lines).  Injected ``job_error`` faults fire
    inside the ``try`` for the same reason.
    """
    try:
        if fault_spec is not None:
            FaultInjector(fault_spec).maybe_error(job_key, attempt)
        value = job.run()
    except Exception as exc:
        from repro.runtime.faults import FaultInjectionError
        tb = "".join(traceback.format_exception(type(exc), exc,
                                                exc.__traceback__))
        return {"ok": False, "outcome": "error",
                "error_type": type(exc).__qualname__, "error": str(exc),
                "traceback": tb, "exception": exc,
                "injected": isinstance(exc, FaultInjectionError)}
    return {"ok": True, "value": value}


def _resilient_attempt(payload: tuple) -> tuple:
    """Worker-side trampoline for supervised (resilient) attempts.

    Announces itself on the start queue first — the parent arms the job's
    deadline and learns which pid to blame if this process dies — then fires
    any injected process faults (crash/hang) and runs the guarded attempt.
    """
    run_id, slot, attempt, job, job_key, fault_spec, submitted_unix = payload
    queue = _START_QUEUE
    if queue is not None:
        queue.put((run_id, slot, attempt, os.getpid()))
    if fault_spec is not None:
        FaultInjector(fault_spec).fire_process_faults(job_key, attempt)
    start_unix = time.time()
    t0 = time.perf_counter()
    outcome = _attempt_outcome(job, job_key, attempt, fault_spec)
    wall = time.perf_counter() - t0
    if not outcome["ok"] and outcome.get("exception") is not None:
        # The original exception rides home for strict-mode re-raising, but
        # only when it survives pickling — a poison result would kill the
        # whole drain loop otherwise.
        try:
            pickle.dumps(outcome["exception"])
        except Exception:
            outcome["exception"] = None
    meta = {
        "label": job.label,
        "pid": os.getpid(),
        "start_unix": start_unix,
        "wall_seconds": wall,
        "queue_wait_seconds": max(start_unix - submitted_unix, 0.0),
        "attempt": attempt,
        "outcome": "ok" if outcome["ok"] else "error",
    }
    snapshot = None
    if obs_metrics.enabled():
        registry = obs_metrics.registry()
        snapshot = registry.snapshot()
        registry.reset()
    return slot, attempt, outcome, meta, snapshot


def _needed_trace_keys(jobs: Sequence[SweepJob]) -> set:
    """Content keys of every :class:`TraceRef` the jobs' kwargs reference."""
    keys = set()
    for job in jobs:
        for value in job.kwargs.values():
            if isinstance(value, TraceRef):
                keys.add(value.key)
            elif isinstance(value, (tuple, list)):
                keys.update(item.key for item in value
                            if isinstance(item, TraceRef))
    return keys


@dataclass
class ExecutorStats:
    """What the last :meth:`SweepExecutor.run` call actually did."""

    total: int = 0
    cache_hits: int = 0
    #: Cache entries found corrupt during this run's scan — served as misses,
    #: deleted, then recomputed and rewritten (distinct from ordinary misses).
    cache_corrupt: int = 0
    #: Entries evicted by the REPRO_CACHE_MAX_MB size cap while this run's
    #: results were being stored (mtime-LRU, see repro.runtime.cache).
    cache_evictions: int = 0
    #: Cache writes that failed with an OSError (disk full, read-only dir)
    #: and were degraded to a warning + miss instead of crashing the sweep.
    cache_write_errors: int = 0
    executed: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    pool_reused: bool = False
    #: Attempts re-submitted after an error/crash/timeout (each retry of
    #: each job counts once).
    retries: int = 0
    #: Attempts abandoned at the REPRO_JOB_TIMEOUT deadline (their wedged
    #: workers are killed and respawned).
    timeouts: int = 0
    #: Worker processes that died mid-attempt (injected or real); the pool
    #: respawns them and the in-flight attempt is resubmitted or failed.
    worker_crashes: int = 0
    #: Jobs whose retry budget was exhausted; under the salvage policy each
    #: occupies its result slot as a JobFailure sentinel.
    failed_jobs: int = 0
    #: Cells served from a resume journal's *private* store (cache-less
    #: runs; journaled cells served by the result cache count as cache_hits).
    journal_hits: int = 0
    #: JSON-able JobFailure records, in slot order (salvage and strict both
    #: populate this before any strict-mode raise).
    failures: List[Dict[str, Any]] = field(default_factory=list)
    #: Per-executed-attempt timing records (label, worker pid, start, wall
    #: time, queue wait; resilient runs add attempt/outcome) — populated on
    #: observed and resilient runs; empty otherwise.
    job_records: List[Dict[str, Any]] = field(default_factory=list)


class SweepExecutor:
    """Runs :class:`SweepJob` lists with optional parallelism and caching.

    Parameters
    ----------
    jobs:
        Worker count; ``None`` defers to ``REPRO_JOBS`` (default serial),
        ``0``/``"auto"`` uses every CPU.
    cache_dir:
        Directory for the on-disk result cache.  ``None`` defers to
        ``REPRO_CACHE_DIR``; when neither is set, caching is disabled.
    salt:
        Code-version salt mixed into every cache key (see
        :mod:`repro.runtime.cache`).
    progress:
        Per-cell progress reporting: ``None`` defers to ``REPRO_PROGRESS``
        (truthy selects the stderr line), ``True`` forces the stderr line,
        ``False`` forces progress off, and any callable receives a
        :class:`~repro.obs.progress.SweepProgress` after every completed
        cell.
    timeout, retries, backoff:
        Fault-tolerance knobs; ``None`` defers to ``REPRO_JOB_TIMEOUT`` /
        ``REPRO_JOB_RETRIES`` / ``REPRO_RETRY_BACKOFF``.
    faults:
        Deterministic chaos spec (:class:`~repro.runtime.faults.FaultSpec`,
        a spec string, or ``False`` to force off); ``None`` defers to
        ``REPRO_FAULTS``.
    failure_policy:
        ``"strict"`` (default: raise after retries are exhausted) or
        ``"salvage"`` (return JobFailure sentinels in-slot); ``None`` defers
        to ``REPRO_FAILURE_POLICY``.
    journal:
        Checkpoint/resume journal: a directory, ``True`` (use
        ``REPRO_JOURNAL``/``REPRO_RUN_DIR``), ``False`` (force off), or
        ``None`` (defer to ``REPRO_JOURNAL``).  See
        :mod:`repro.runtime.journal`.

    Used as a plain object, every :meth:`run` call manages its own
    short-lived pool.  Used as a context manager (``with SweepExecutor(...)
    as ex:``) the pool persists across ``run()`` calls — see
    :meth:`open`/:meth:`close`.
    """

    def __init__(self, jobs: Optional[int | str] = None,
                 cache_dir: Optional[os.PathLike | str] = None,
                 salt: Optional[str] = None,
                 progress: Union[None, bool, Callable] = None,
                 timeout: Union[int, float, str, None] = None,
                 retries: Union[int, str, None] = None,
                 backoff: Union[int, float, str, None] = None,
                 faults: Any = None,
                 failure_policy: Optional[str] = None,
                 journal: Any = None):
        self.workers = resolve_worker_count(jobs)
        self.progress = progress
        if cache_dir is None:
            cache_dir = os.environ.get(CACHE_DIR_ENV) or None
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if cache_dir is not None else None)
        self.salt = effective_salt(salt)
        self.timeout = resolve_job_timeout(timeout)
        self.retries = resolve_job_retries(retries)
        self.backoff = resolve_retry_backoff(backoff)
        self.faults: Optional[FaultSpec] = resolve_fault_spec(faults)
        self.failure_policy = resolve_failure_policy(failure_policy)
        self.journal_dir = resolve_journal_dir(journal)
        self._injector: Optional[FaultInjector] = (
            FaultInjector(self.faults) if self.faults is not None else None)
        if (self._injector is not None
                and self.faults.rate("job_hang") > 0.0
                and self.timeout is None):
            raise ValueError(
                "REPRO_FAULTS injects job_hang but no job timeout is set — "
                "an injected hang would wedge the sweep forever; set "
                "REPRO_JOB_TIMEOUT (or timeout=)")
        if self.cache is not None and self._injector is not None:
            # cache_write_fail faults fire inside ResultCache.put, which
            # degrades them to a warning + miss like any real OSError.
            self.cache.fault_injector = self._injector
        self.last_stats = ExecutorStats()
        self._persistent = False
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._pool_trace_keys: set = set()
        self._start_queue = None
        self._run_counter = 0

    # ------------------------------------------------------------ pool reuse
    def open(self) -> "SweepExecutor":
        """Switch to persistent-pool mode.

        The pool itself starts lazily on the first parallel :meth:`run` and
        then stays warm until :meth:`close`, so repeated sweeps pay the
        worker spin-up cost once instead of once per sweep.
        """
        self._persistent = True
        return self

    def close(self) -> None:
        """Shut the persistent pool down (idempotent, safe without one)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        self._pool_trace_keys = set()

    def __enter__(self) -> "SweepExecutor":
        return self.open()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
        self._persistent = False

    def _get_start_queue(self):
        """The executor-lifetime start queue (survives pool restarts)."""
        if self._start_queue is None:
            self._start_queue = multiprocessing.SimpleQueue()
        return self._start_queue

    def _ensure_pool(self, needed_keys: set) -> multiprocessing.pool.Pool:
        """The persistent pool, restarted only when it is missing a trace.

        Workers are primed with exactly the traces the submitted jobs
        reference — never with unrelated registrations from other sweeps, so
        worker memory stays bounded by one sweep's working set.  A ``run()``
        whose refs the workers already hold reuses the warm pool; one that
        needs anything else restarts it (the restart costs ~1 s, the same as
        a one-shot pool would have paid anyway).
        """
        if self._pool is not None and not needed_keys <= self._pool_trace_keys:
            self.close()
        if self._pool is None:
            snapshot = snapshot_for(needed_keys)
            self._pool = multiprocessing.Pool(
                processes=self.workers, initializer=_pool_init,
                initargs=(snapshot, self._get_start_queue()))
            self._pool_trace_keys = set(snapshot)
        return self._pool

    def _abort_pool(self) -> None:
        """Emergency teardown: terminate + join the persistent pool.

        Called when a run is aborted (``KeyboardInterrupt``/``SystemExit``)
        so no orphaned workers outlive the interrupted sweep; one-shot pools
        terminate through their own ``with`` blocks.
        """
        pool, self._pool = self._pool, None
        self._pool_trace_keys = set()
        if pool is not None:
            pool.terminate()
            pool.join()

    # ------------------------------------------------------------------ run
    def run(self, jobs: Sequence[SweepJob],
            failure_policy: Optional[str] = None) -> List[Any]:
        """Execute every job, returning results in submission order.

        Cached (or journaled) cells are served without executing; the
        remainder run either in-process (one worker) or on a
        ``multiprocessing`` pool.  With telemetry on, a progress reporter
        active, or ``REPRO_RUN_DIR`` set, the run is *observed*: per-job
        timing records are collected (and worker metrics merged back)
        without changing any result — results stay bit-identical either way.

        With a timeout, retries, fault injection or a journal configured the
        run is *supervised*: attempts are tracked individually, failures are
        retried with seeded backoff, and exhausted jobs either raise
        (``strict``) or come back as in-slot
        :class:`~repro.runtime.faults.JobFailure` sentinels (``salvage``).
        ``failure_policy`` overrides the executor-level policy for this run.
        """
        jobs = list(jobs)
        policy = (resolve_failure_policy(failure_policy)
                  if failure_policy is not None else self.failure_policy)
        started = time.perf_counter()
        results: List[Any] = [None] * len(jobs)
        keys: List[Optional[str]] = [None] * len(jobs)
        resilient = (self._injector is not None or self.timeout is not None
                     or self.retries > 0 or self.journal_dir is not None
                     or policy == "salvage")
        need_keys = self.cache is not None or resilient
        hits = 0
        journal_hits = 0
        corrupt_before = self.cache.corrupt if self.cache is not None else 0
        evictions_before = self.cache.evictions if self.cache is not None else 0
        writefail_before = (self.cache.write_errors
                            if self.cache is not None else 0)
        if need_keys:
            for index, job in enumerate(jobs):
                keys[index] = job.cache_key(self.salt)
        journal: Optional[RunJournal] = None
        if self.journal_dir is not None and jobs:
            journal = RunJournal(self.journal_dir, run_key_for(keys),
                                 store=self.cache)
            journal.load()
        pending: List[int] = []
        for index, job in enumerate(jobs):
            if self.cache is not None:
                hit, value = self.cache.get(keys[index])
                if hit:
                    results[index] = value
                    hits += 1
                    if journal is not None:
                        journal.record(keys[index], job.label)
                    continue
            if journal is not None and journal.owns_store:
                hit, value = journal.lookup(keys[index])
                if hit:
                    results[index] = value
                    journal_hits += 1
                    continue
            pending.append(index)

        callback = resolve_progress(self.progress)
        observing = (callback is not None or obs_metrics.enabled()
                     or obs_manifest.run_dir() is not None)
        tracker = (ProgressTracker(len(jobs), hits + journal_hits, callback)
                   if callback is not None else None)

        reused = False
        job_records: List[Dict[str, Any]] = []
        counts = {"retries": 0, "timeouts": 0, "worker_crashes": 0}
        failures: Dict[int, JobFailure] = {}
        failure_excs: Dict[int, BaseException] = {}

        def commit(index: int, value: Any) -> None:
            """Land one completed cell: result slot, cache, journal."""
            results[index] = value
            if self.cache is not None:
                self.cache.put(keys[index], value)
            if journal is not None:
                journal.record(keys[index], jobs[index].label, value,
                               store_value=journal.owns_store)

        try:
            if pending:
                if resilient:
                    reused = self._execute_resilient(
                        pending, jobs, keys, tracker, commit, counts,
                        failures, failure_excs, job_records, results)
                elif observing:
                    outputs, reused, job_records = self._execute_observed(
                        [jobs[i] for i in pending], tracker)
                    for index, value in zip(pending, outputs):
                        commit(index, value)
                else:
                    outputs, reused = self._execute([jobs[i] for i in pending])
                    for index, value in zip(pending, outputs):
                        commit(index, value)
        except (KeyboardInterrupt, SystemExit):
            # Never orphan pool workers on an interrupted sweep: tear the
            # persistent pool down (one-shot pools terminate via their own
            # context managers) before letting the interrupt propagate.
            # Everything committed so far is already cached/journaled, so a
            # rerun resumes instead of restarting.
            self._abort_pool()
            raise
        finally:
            if journal is not None:
                journal.close()

        corrupt = ((self.cache.corrupt - corrupt_before)
                   if self.cache is not None else 0)
        evictions = ((self.cache.evictions - evictions_before)
                     if self.cache is not None else 0)
        write_errors = ((self.cache.write_errors - writefail_before)
                        if self.cache is not None else 0)
        self.last_stats = ExecutorStats(
            total=len(jobs), cache_hits=hits, cache_corrupt=corrupt,
            cache_evictions=evictions, cache_write_errors=write_errors,
            executed=len(pending), workers=self.workers,
            wall_seconds=time.perf_counter() - started,
            pool_reused=reused,
            retries=counts["retries"], timeouts=counts["timeouts"],
            worker_crashes=counts["worker_crashes"],
            failed_jobs=len(failures), journal_hits=journal_hits,
            failures=[failures[i].to_jsonable() for i in sorted(failures)],
            job_records=job_records)
        if obs_metrics.enabled():
            self._publish_run_metrics(job_records, reused)
        if failures and policy == "strict":
            first = min(failures)
            original = failure_excs.get(first)
            if original is not None:
                raise original
            raise JobFailureError(failures[first])
        return results

    def _publish_run_metrics(self, job_records: List[Dict[str, Any]],
                             reused: bool) -> None:
        """Fold the finished run's bookkeeping into the metrics registry."""
        registry = obs_metrics.registry()
        registry.counter("executor.runs").inc()
        if reused:
            registry.counter("executor.pool_reuses").inc()
        registry.gauge("executor.workers").set(self.workers)
        stats = self.last_stats
        for name in ("retries", "timeouts", "worker_crashes", "failed_jobs",
                     "journal_hits", "cache_write_errors"):
            value = getattr(stats, name)
            if value:
                registry.counter(f"executor.{name}").inc(value)
        wall = registry.timer("executor.job_wall")
        wait = registry.timer("executor.queue_wait")
        for record in job_records:
            wall.observe_ns(int(record["wall_seconds"] * 1e9))
            wait.observe_ns(int(record["queue_wait_seconds"] * 1e9))

    def _execute(self, jobs: List[SweepJob]) -> Tuple[List[Any], bool]:
        """Run jobs; returns ``(results, pool_was_reused)``."""
        if self.workers <= 1 or len(jobs) <= 1:
            return [_execute_job(job) for job in jobs], False
        needed = _needed_trace_keys(jobs)
        if self._persistent:
            previous = self._pool
            pool = self._ensure_pool(needed)
            return (pool.map(_execute_job, jobs, chunksize=1),
                    pool is previous)
        # One-shot pool: ship only the traces these jobs actually reference.
        processes = min(self.workers, len(jobs))
        with multiprocessing.Pool(processes=processes,
                                  initializer=_pool_init,
                                  initargs=(snapshot_for(needed), None)) as pool:
            return pool.map(_execute_job, jobs, chunksize=1), False

    def _execute_observed(
            self, jobs: List[SweepJob], tracker: Optional[ProgressTracker]
    ) -> Tuple[List[Any], bool, List[Dict[str, Any]]]:
        """:meth:`_execute` plus per-job records, merge-back and progress.

        Parallel runs stream results through ``imap(chunksize=1)`` — the
        order-preserving twin of the unobserved path's ``map`` — so each
        completed cell can update the progress line and merge its worker
        metrics as it lands instead of at the end of the sweep.
        """
        records: List[Dict[str, Any]] = []
        if self.workers <= 1 or len(jobs) <= 1:
            # In-process: metrics accumulate directly in this registry (no
            # snapshot/reset round-trip, which would orphan live handles).
            outputs = []
            for job in jobs:
                start_unix = time.time()
                t0 = time.perf_counter()
                outputs.append(_execute_job(job))
                records.append({
                    "label": job.label, "pid": os.getpid(),
                    "start_unix": start_unix,
                    "wall_seconds": time.perf_counter() - t0,
                    "queue_wait_seconds": 0.0,
                })
                if tracker is not None:
                    tracker.job_done(job.label)
            return outputs, False, records
        payloads = [(job, time.time()) for job in jobs]
        needed = _needed_trace_keys(jobs)
        if self._persistent:
            previous = self._pool
            pool = self._ensure_pool(needed)
            outputs = self._drain_observed(pool, payloads, records, tracker)
            return outputs, pool is previous, records
        processes = min(self.workers, len(jobs))
        with multiprocessing.Pool(processes=processes,
                                  initializer=_pool_init,
                                  initargs=(snapshot_for(needed), None)) as pool:
            outputs = self._drain_observed(pool, payloads, records, tracker)
        return outputs, False, records

    @staticmethod
    def _drain_observed(pool, payloads, records, tracker) -> List[Any]:
        """Consume observed worker results in submission order."""
        registry = obs_metrics.registry()
        outputs: List[Any] = []
        for value, meta, snapshot in pool.imap(_execute_job_observed,
                                               payloads, chunksize=1):
            outputs.append(value)
            records.append(meta)
            if snapshot is not None:
                registry.merge(snapshot)
            if tracker is not None:
                tracker.job_done(meta["label"])
        return outputs

    # ------------------------------------------------------- resilient paths
    def _execute_resilient(self, pending: List[int], jobs: List[SweepJob],
                           keys: List[Optional[str]],
                           tracker: Optional[ProgressTracker],
                           commit: Callable[[int, Any], None],
                           counts: Dict[str, int],
                           failures: Dict[int, JobFailure],
                           failure_excs: Dict[int, BaseException],
                           records: List[Dict[str, Any]],
                           results: List[Any]) -> bool:
        """Supervised execution: retries, deadlines, crash detection."""
        if self.workers <= 1:
            self._drive_resilient_serial(pending, jobs, keys, tracker, commit,
                                         counts, failures, failure_excs,
                                         records, results)
            return False
        needed = _needed_trace_keys([jobs[i] for i in pending])
        queue = self._get_start_queue()
        if self._persistent:
            previous = self._pool
            pool = self._ensure_pool(needed)
            self._drive_resilient_parallel(pool, pending, jobs, keys, tracker,
                                           commit, counts, failures,
                                           failure_excs, records, results)
            return pool is previous
        processes = min(self.workers, len(pending))
        with multiprocessing.Pool(processes=processes,
                                  initializer=_pool_init,
                                  initargs=(snapshot_for(needed),
                                            queue)) as pool:
            self._drive_resilient_parallel(pool, pending, jobs, keys, tracker,
                                           commit, counts, failures,
                                           failure_excs, records, results)
        return False

    def _fail_job(self, slot: int, attempts: List[JobAttempt],
                  jobs: List[SweepJob], keys: List[Optional[str]],
                  failures: Dict[int, JobFailure],
                  failure_excs: Dict[int, BaseException],
                  results: List[Any],
                  tracker: Optional[ProgressTracker],
                  original: Optional[BaseException]) -> None:
        """Retire a job whose retry budget ran out: in-slot sentinel."""
        failure = JobFailure(key=keys[slot] or "", label=jobs[slot].label,
                             attempts=tuple(attempts))
        failures[slot] = failure
        if original is not None:
            failure_excs[slot] = original
        results[slot] = failure
        if tracker is not None:
            tracker.job_done(jobs[slot].label)

    def _drive_resilient_serial(self, pending, jobs, keys, tracker, commit,
                                counts, failures, failure_excs, records,
                                results) -> None:
        """In-process supervised driver.

        Serial runs cannot preempt a wedged job, so process faults are
        *synthesized*: an injected crash/hang becomes the same canonical
        attempt record the parallel driver produces when it observes the
        real thing — which is exactly what makes serial and parallel chaos
        runs byte-identical.
        """
        injector = self._injector
        seed = self.faults.seed if self.faults is not None else 0
        for slot in pending:
            job, key = jobs[slot], keys[slot]
            attempts: List[JobAttempt] = []
            original: Optional[BaseException] = None
            for attempt in range(1, self.retries + 2):
                start_unix = time.time()
                t0 = time.perf_counter()
                rec: Optional[JobAttempt] = None
                if injector is not None and injector.should(
                        "worker_crash", key, attempt):
                    counts["worker_crashes"] += 1
                    rec = crash_attempt(attempt, injected=True)
                    tag = "worker_crash"
                elif injector is not None and injector.should(
                        "job_hang", key, attempt):
                    counts["timeouts"] += 1
                    rec = timeout_attempt(attempt, self.timeout, injected=True)
                    tag = "timeout"
                else:
                    outcome = _attempt_outcome(job, key, attempt, self.faults)
                    wall = time.perf_counter() - t0
                    if outcome["ok"]:
                        records.append({
                            "label": job.label, "pid": os.getpid(),
                            "start_unix": start_unix, "wall_seconds": wall,
                            "queue_wait_seconds": 0.0, "attempt": attempt,
                            "outcome": "ok"})
                        commit(slot, outcome["value"])
                        if tracker is not None:
                            tracker.job_done(job.label)
                        break
                    rec = JobAttempt(
                        attempt=attempt, outcome="error",
                        error=outcome["error"],
                        error_type=outcome["error_type"],
                        traceback=outcome["traceback"],
                        injected=outcome["injected"])
                    original = outcome.get("exception")
                    tag = "error"
                records.append({
                    "label": job.label, "pid": os.getpid(),
                    "start_unix": start_unix,
                    "wall_seconds": time.perf_counter() - t0,
                    "queue_wait_seconds": 0.0, "attempt": attempt,
                    "outcome": tag})
                if attempt <= self.retries:
                    delay = retry_backoff(key, attempt, self.backoff, seed)
                    attempts.append(dataclasses.replace(
                        rec, backoff_seconds=delay))
                    counts["retries"] += 1
                    if delay:
                        time.sleep(delay)
                else:
                    attempts.append(rec)
                    self._fail_job(slot, attempts, jobs, keys, failures,
                                   failure_excs, results, tracker, original)

    @staticmethod
    def _live_pids(pool) -> Set[int]:
        """Pids of pool workers currently alive (respawns change this set)."""
        try:
            return {worker.pid for worker in pool._pool
                    if worker.exitcode is None and worker.pid is not None}
        except Exception:
            return set()

    @staticmethod
    def _forget_async(pool, result) -> None:
        """Drop an abandoned AsyncResult from the pool's cache (best
        effort — a crashed/hung attempt's result will never arrive)."""
        try:
            pool._cache.pop(result._job, None)
        except Exception:
            pass

    def _drive_resilient_parallel(self, pool, pending, jobs, keys, tracker,
                                  commit, counts, failures, failure_excs,
                                  records, results) -> None:
        """Pool-supervisor loop: poll results, pids and deadlines.

        Every attempt announces ``(run id, slot, attempt, pid)`` on the
        start queue as its first act, which (a) arms the job's wall-clock
        deadline only once it actually starts running — queue wait never
        counts against ``REPRO_JOB_TIMEOUT`` — and (b) lets a worker death
        be attributed to the attempt it was running.  Crashed workers are
        respawned by the pool's own maintenance thread; wedged ones are
        killed at the deadline and respawn the same way.  Lost attempts are
        resubmitted (with seeded backoff) until the retry budget runs out.
        """
        injector = self._injector
        fault_spec = self.faults
        seed = fault_spec.seed if fault_spec is not None else 0
        timeout = self.timeout
        queue = self._get_start_queue()
        registry = obs_metrics.registry()
        self._run_counter += 1
        run_id = self._run_counter

        inflight: Dict[int, Dict[str, Any]] = {}
        attempts_log: Dict[int, List[JobAttempt]] = {s: [] for s in pending}
        originals: Dict[int, BaseException] = {}
        waiting: List[Tuple[float, int, int]] = []  # (due, slot, attempt)
        remaining = set(pending)

        def submit(slot: int, attempt: int) -> None:
            submitted_unix = time.time()
            payload = (run_id, slot, attempt, jobs[slot], keys[slot],
                       fault_spec, submitted_unix)
            inflight[slot] = {
                "result": pool.apply_async(_resilient_attempt, (payload,)),
                "attempt": attempt,
                "pid": None,
                "deadline": None,
                "submitted_unix": submitted_unix,
                "started_wall": None,
                "condemned": None,  # (tag, monotonic) once presumed lost
                "predicted_crash": (injector.should("worker_crash",
                                                    keys[slot], attempt)
                                    if injector is not None else False),
                "predicted_hang": (injector.should("job_hang", keys[slot],
                                                   attempt)
                                   if injector is not None else False),
            }

        def synth_meta(slot: int, state: Dict[str, Any], tag: str
                       ) -> Dict[str, Any]:
            started = state["started_wall"] or state["submitted_unix"]
            return {"label": jobs[slot].label, "pid": state["pid"],
                    "start_unix": started,
                    "wall_seconds": max(time.time() - started, 0.0),
                    "queue_wait_seconds": max(
                        started - state["submitted_unix"], 0.0),
                    "attempt": state["attempt"], "outcome": tag}

        def attempt_failed(slot: int, rec: JobAttempt,
                           original: Optional[BaseException],
                           meta: Dict[str, Any]) -> None:
            inflight.pop(slot, None)
            records.append(meta)
            if original is not None:
                originals[slot] = original
            if rec.attempt <= self.retries:
                delay = retry_backoff(keys[slot], rec.attempt, self.backoff,
                                      seed)
                attempts_log[slot].append(dataclasses.replace(
                    rec, backoff_seconds=delay))
                counts["retries"] += 1
                waiting.append((time.monotonic() + delay, slot,
                                rec.attempt + 1))
            else:
                attempts_log[slot].append(rec)
                remaining.discard(slot)
                self._fail_job(slot, attempts_log[slot], jobs, keys, failures,
                               failure_excs, results, tracker,
                               originals.get(slot))

        for slot in pending:
            submit(slot, 1)

        while remaining:
            progressed = False

            # 1. Start announcements: arm deadlines, learn attempt→pid.
            while not queue.empty():
                try:
                    msg_run, slot, attempt, pid = queue.get()
                except (EOFError, OSError):
                    break
                progressed = True
                if msg_run != run_id:
                    continue  # stale message from an aborted earlier run
                state = inflight.get(slot)
                if state is not None and state["attempt"] == attempt:
                    state["pid"] = pid
                    state["started_wall"] = time.time()
                    if timeout is not None:
                        state["deadline"] = time.monotonic() + timeout

            # 2. Completed attempts.
            for slot in list(inflight):
                state = inflight[slot]
                if not state["result"].ready():
                    continue
                progressed = True
                try:
                    _, attempt, outcome, meta, snapshot = \
                        state["result"].get()
                except Exception as exc:
                    # Pool plumbing failure (e.g. unpicklable result):
                    # treated as an errored attempt with the parent-side
                    # exception text.
                    rec = JobAttempt(attempt=state["attempt"],
                                     outcome="error", error=str(exc),
                                     error_type=type(exc).__qualname__)
                    attempt_failed(slot, rec, None,
                                   synth_meta(slot, state, "error"))
                    continue
                if snapshot is not None:
                    registry.merge(snapshot)
                if outcome["ok"]:
                    inflight.pop(slot)
                    remaining.discard(slot)
                    records.append(meta)
                    commit(slot, outcome["value"])
                    if tracker is not None:
                        tracker.job_done(meta["label"])
                else:
                    rec = JobAttempt(
                        attempt=attempt, outcome="error",
                        error=outcome["error"],
                        error_type=outcome["error_type"],
                        traceback=outcome["traceback"],
                        injected=outcome["injected"])
                    attempt_failed(slot, rec, outcome.get("exception"), meta)

            # 3. Worker deaths: condemn the attempt that announced the dead
            #    pid; the pool respawns the worker on its own.
            live = self._live_pids(pool)
            now = time.monotonic()
            for slot in list(inflight):
                state = inflight[slot]
                if (state["pid"] is None or state["pid"] in live
                        or state["result"].ready()
                        or state["condemned"] is not None):
                    continue
                progressed = True
                state["condemned"] = ("worker_crash", now)

            # 4. Deadlines: condemn expired attempts.
            if timeout is not None:
                for slot in list(inflight):
                    state = inflight[slot]
                    if (state["deadline"] is None or now < state["deadline"]
                            or state["result"].ready()
                            or state["condemned"] is not None):
                        continue
                    progressed = True
                    state["condemned"] = ("timeout", now)

            # 5. Finalise condemned attempts once the late-result grace
            #    window has elapsed with no result delivered (step 2 rescues
            #    any attempt whose result was already in the outqueue pipe
            #    when its worker died or its deadline expired — see
            #    _LATE_RESULT_GRACE_SECONDS).  Wedged workers are killed at
            #    finalisation so the pool can respawn a fresh one.
            for slot in list(inflight):
                state = inflight[slot]
                if state["condemned"] is None or state["result"].ready():
                    continue
                tag, since = state["condemned"]
                if time.monotonic() - since < _LATE_RESULT_GRACE_SECONDS:
                    continue
                progressed = True
                if tag == "worker_crash":
                    counts["worker_crashes"] += 1
                    rec = crash_attempt(state["attempt"],
                                        injected=state["predicted_crash"])
                else:
                    counts["timeouts"] += 1
                    rec = timeout_attempt(state["attempt"], timeout,
                                          injected=state["predicted_hang"])
                pid = state["pid"]
                self._forget_async(pool, state["result"])
                attempt_failed(slot, rec, None, synth_meta(slot, state, tag))
                if (tag == "timeout" and pid is not None
                        and pid in self._live_pids(pool)):
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except OSError:
                        pass

            # 6. Resubmit retries whose backoff elapsed.
            if waiting:
                now = time.monotonic()
                due = [item for item in waiting if item[0] <= now]
                if due:
                    progressed = True
                    waiting = [item for item in waiting if item[0] > now]
                    for _, slot, attempt in sorted(due,
                                                   key=lambda item: item[1]):
                        submit(slot, attempt)

            if not progressed:
                time.sleep(_POLL_SECONDS)


def get_executor(executor: Optional[SweepExecutor] = None,
                 jobs: Optional[int | str] = None,
                 cache_dir: Optional[os.PathLike | str] = None,
                 journal: Any = None,
                 failure_policy: Optional[str] = None) -> SweepExecutor:
    """Shared convenience for experiment entry points.

    Returns ``executor`` unchanged when given one, otherwise builds a fresh
    :class:`SweepExecutor` from the ``jobs``/``cache_dir``/``journal``/
    ``failure_policy`` knobs (and thus the ``REPRO_JOBS``/``REPRO_CACHE_DIR``
    /``REPRO_JOURNAL``/``REPRO_FAILURE_POLICY`` environment defaults).
    """
    if executor is not None:
        return executor
    return SweepExecutor(jobs=jobs, cache_dir=cache_dir, journal=journal,
                         failure_policy=failure_policy)
