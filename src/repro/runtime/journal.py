"""Per-run completion journals: checkpoint/resume for interrupted sweeps.

A metro sweep or long fuzz campaign that dies at cell 180 of 200 — worker
wedge, ``KeyboardInterrupt``, OOM kill — should not re-pay the first 180
cells.  The journal is the crash-safe record that makes that true: as each
cell completes, the executor appends one JSON line (the cell's
content-addressed cache key plus its label) to an append-only file named by
the *run key* — a stable hash of every job key in the sweep — and stores the
cell's value in a result store.  Re-running the identical sweep reads the
journal back, serves every journaled-and-loadable cell without executing it,
and runs only what is missing.  Final aggregates are bit-identical to an
uninterrupted run because the served values are the exact pickles the
interrupted run produced.

Two storage regimes, resolved automatically:

* executor has a :class:`~repro.runtime.cache.ResultCache` → the journal
  piggybacks on it (values are already content-addressed there; the journal
  adds only the completion log, and resume serves through ordinary cache
  hits);
* no cache → the journal keeps a private store under its own directory, so
  checkpoint/resume works even for cache-less runs (these serves are counted
  as ``journal_hits`` in :class:`~repro.runtime.executor.ExecutorStats`).

Activation: the executor's ``journal=`` argument, or the ``REPRO_JOURNAL``
environment knob — a directory path, or a truthy value to place journals
under ``REPRO_RUN_DIR``.  Failed cells are never journaled: a resumed run
retries them from scratch.

Crash safety: records are appended one ``\\n``-terminated JSON line at a
time and flushed immediately; a torn final line (the process died
mid-append) is ignored on load.  Journals are idempotent — re-journaling a
completed run is a no-op — and keyed by content, so a code change (via the
cache salt inside each job key) starts a fresh journal instead of resuming
against stale results.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, TextIO, Tuple

from repro.runtime.cache import ResultCache, stable_hash

#: Environment knob: a journal directory, or truthy to use ``REPRO_RUN_DIR``.
JOURNAL_ENV = "REPRO_JOURNAL"

_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("", "0", "false", "no", "off")


def resolve_journal_dir(journal: Any = None) -> Optional[Path]:
    """Resolve the journal directory from the API arg or ``REPRO_JOURNAL``.

    ``journal`` may be ``False`` (force off), ``True`` (require the
    environment to name a directory — ``REPRO_JOURNAL=<dir>`` or
    ``REPRO_RUN_DIR``), a path, or ``None`` (defer to the environment
    entirely).  Returns ``None`` when journaling is off.
    """
    if journal is False:
        return None
    if journal is not None and journal is not True:
        return Path(journal).expanduser()
    raw = os.environ.get(JOURNAL_ENV, "").strip()
    if journal is None and raw.lower() in _FALSY:
        return None
    if raw and raw.lower() not in _TRUTHY + _FALSY:
        return Path(raw).expanduser()
    # Truthy flag (or journal=True): land next to the run manifests.
    from repro.obs.manifest import run_dir
    directory = run_dir()
    if directory is not None:
        return directory / "journal"
    if journal is True or raw.lower() in _TRUTHY:
        raise ValueError(
            f"journaling requested but no directory available: set "
            f"{JOURNAL_ENV} to a path or set REPRO_RUN_DIR")
    return None


def run_key_for(job_keys: Sequence[str]) -> str:
    """The run identity: a stable hash of the sweep's sorted job keys.

    Order-independent (a resumed sweep must find its journal even if the
    caller happens to enumerate cells differently) and automatically salted,
    because every job key already embeds the code-version salt.
    """
    return stable_hash(["run-journal", sorted(job_keys)])


class RunJournal:
    """Append-only completed-cell log plus a value store for one run.

    Created by the executor at the start of a journaled run; ``load()``
    yields what a previous incarnation already finished, ``record()`` logs
    each new completion, ``close()`` releases the file handle (idempotent,
    called from the executor's ``finally``).
    """

    def __init__(self, directory: os.PathLike | str, run_key: str,
                 store: Optional[ResultCache] = None):
        self.directory = Path(directory)
        self.run_key = run_key
        self.path = self.directory / f"run-{run_key[:32]}.journal"
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Values live in the executor's cache when it has one; otherwise in
        #: a private content-addressed store next to the journal file.
        self.owns_store = store is None
        self.store = store if store is not None else ResultCache(
            self.directory / f"store-{run_key[:32]}")
        self._completed: Set[str] = set()
        self._handle: Optional[TextIO] = None

    # ----------------------------------------------------------------- load
    def load(self) -> Set[str]:
        """Keys journaled as completed by any previous run (torn tail ok)."""
        self._completed = set()
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return set(self._completed)
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final line from a crash mid-append
            key = record.get("key")
            if isinstance(key, str):
                self._completed.add(key)
        return set(self._completed)

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)`` for a journaled cell; store misses re-execute."""
        if key not in self._completed:
            return False, None
        return self.store.get(key)

    # --------------------------------------------------------------- record
    def record(self, key: str, label: str = "",
               value: Any = None, store_value: bool = False) -> None:
        """Journal one completed cell (flushed immediately for crash safety).

        ``store_value`` is set when the journal owns its private store — an
        executor with a cache already wrote the value via ``cache.put``.
        """
        if key in self._completed:
            return
        if store_value:
            self.store.put(key, value)
        if self._handle is None:
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps({"key": key, "label": label},
                                      sort_keys=True) + "\n")
        self._handle.flush()
        self._completed.add(key)

    @property
    def completed(self) -> int:
        return len(self._completed)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ---------------------------------------------------------------- admin
    def discard(self) -> None:
        """Remove this run's journal (and private store, if owned)."""
        self.close()
        self.path.unlink(missing_ok=True)
        if self.owns_store:
            self.store.clear()
        self._completed = set()

    def describe(self) -> Dict[str, Any]:
        return {"path": str(self.path), "run_key": self.run_key,
                "completed": len(self._completed),
                "private_store": self.owns_store}
