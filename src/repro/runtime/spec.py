"""Declarative sweep specifications.

A :class:`SweepSpec` names the axes of a figure-style sweep — schemes ×
traces × seeds × parameter overrides — and expands into independent
:class:`~repro.runtime.executor.SweepJob`\\ s, one per cell.  Each cell runs
:func:`repro.experiments.runner.run_single_bottleneck` in its own simulator
and returns a :class:`~repro.experiments.runner.SingleBottleneckResult`
stripped to its picklable metrics, so cells can cross process boundaries and
live in the on-disk cache.

Example
-------
::

    spec = SweepSpec(schemes=SCHEME_NAMES, traces=synthetic_trace_set(30.0),
                     duration=30.0)
    results = spec.run(SweepExecutor(jobs=4, cache_dir="~/.cache/repro"))
    results["abc"]["Verizon-LTE-1"].utilization

Validation happens at expansion time: an unknown scheme label or an empty
trace/scheme axis raises :class:`ValueError` immediately instead of failing
deep inside a half-finished sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.runtime.executor import SweepExecutor, SweepJob, get_executor
from repro.runtime.trace_store import register_trace, resolve_link_spec


def sweep_cell(**kwargs) -> Any:
    """Run one (scheme, trace, seed, overrides) cell.

    Module-level so multiprocessing workers can import it by name.
    ``link_spec`` (and any ``extra_links``) may be
    :class:`~repro.runtime.trace_store.TraceRef` handles, which are resolved
    against this process's trace store before the simulation runs.  Returns
    the :class:`SingleBottleneckResult` with its ``extra`` dict reduced to
    picklable values (the live ``Scenario``/flow objects are dropped,
    ``per_link_utilization`` is kept).
    """
    from repro.experiments.runner import run_single_bottleneck

    kwargs = dict(kwargs)
    kwargs["link_spec"] = resolve_link_spec(kwargs["link_spec"])
    if "extra_links" in kwargs:
        kwargs["extra_links"] = tuple(resolve_link_spec(link)
                                      for link in kwargs["extra_links"])
    result = run_single_bottleneck(**kwargs)
    return strip_result(result)


def strip_result(result: Any) -> Any:
    """Drop live simulator objects from a result's ``extra`` dict."""
    extra = getattr(result, "extra", None)
    if isinstance(extra, dict):
        result.extra = {k: v for k, v in extra.items()
                        if k == "per_link_utilization"}
    return result


def validate_schemes(schemes: Sequence[str]) -> List[str]:
    """Check every label against the scheme registry; raise ``ValueError``.

    Returns the normalised (lower-cased) labels on success.
    """
    from repro.experiments.runner import known_scheme_names

    schemes = list(schemes)
    if not schemes:
        raise ValueError("sweep needs at least one scheme")
    known = known_scheme_names()
    unknown = [s for s in schemes if str(s).lower() not in known]
    if unknown:
        raise ValueError(
            f"unknown scheme label(s) {unknown!r}; known schemes: "
            f"{sorted(known)}")
    return [str(s).lower() for s in schemes]


@dataclass(frozen=True)
class SweepCell:
    """The coordinates of one job inside a :class:`SweepSpec` grid."""

    scheme: str
    trace: str
    seed: int
    overrides: Tuple[Tuple[str, Any], ...] = ()


@dataclass
class SweepSpec:
    """Axes of a scheme × trace (× seed × overrides) sweep.

    ``traces`` maps display names to link specs (a
    :class:`~repro.cellular.trace.CellularTrace`, a rate in bps, or a
    :class:`~repro.simulator.link.CapacityModel`).  ``param_grid`` is an
    extra axis of kwargs overrides applied on top of the base parameters —
    e.g. ``[{"rtt": r} for r in rtts]`` reproduces the Fig. 18 RTT axis.

    ``seeds`` is the statistical axis: each (scheme, trace, overrides) cell
    runs once per seed, and
    :func:`repro.analysis.stats.aggregate_cells` (or the experiment entry
    points' ``seeds=`` parameters) turns the resulting ``run_cells()`` pairs
    into mean ± 95 % CI aggregates.  The default ``(0,)`` reproduces the
    single-seed figures bit-for-bit.
    """

    schemes: Sequence[str]
    traces: Mapping[str, Any]
    seeds: Sequence[int] = (0,)
    rtt: float = 0.1
    duration: float = 30.0
    buffer_packets: int = 250
    abc_params: Optional[Any] = None
    warmup: float = 0.0
    param_grid: Sequence[Mapping[str, Any]] = field(default_factory=lambda: ({},))

    def validate(self) -> None:
        self._validate_schemes()
        if not self.traces:
            raise ValueError("sweep needs a non-empty trace set")
        if not self.seeds:
            raise ValueError("sweep needs at least one seed")
        if not self.param_grid:
            raise ValueError("param_grid must contain at least one override "
                             "mapping (use [{}] for no overrides)")

    def _validate_schemes(self) -> None:
        """Hook: check the scheme axis.  Subclasses with a different label
        vocabulary (e.g. :class:`repro.metro.spec.MetroSpec`, whose labels
        are weighted scheme *mixes*) override this."""
        validate_schemes(self.schemes)

    def _make_job(self, scheme: str, trace_name: str, link_spec: Any,
                  seed: int, overrides: Mapping[str, Any]) -> SweepJob:
        """Hook: build the :class:`SweepJob` for one grid coordinate.

        The base spec runs :func:`sweep_cell`
        (→ :func:`~repro.experiments.runner.run_single_bottleneck`);
        subclasses substitute their own module-level job function while
        inheriting the grid expansion, duplicate detection, trace-store
        registration and executor/cache plumbing unchanged.
        """
        kwargs = dict(
            scheme=str(scheme).lower(), link_spec=link_spec,
            rtt=self.rtt, duration=self.duration,
            buffer_packets=self.buffer_packets,
            abc_params=self.abc_params, warmup=self.warmup,
            seed=seed)
        kwargs.update(overrides)
        return SweepJob(func=sweep_cell, kwargs=kwargs,
                        label=f"{scheme}/{trace_name}/seed{seed}")

    # ------------------------------------------------------------- expansion
    def expand(self) -> Tuple[List[SweepCell], List[SweepJob]]:
        """All cells in deterministic scheme→trace→seed→override order.

        Cellular traces are registered with the shared trace store and
        replaced inside job kwargs by tiny
        :class:`~repro.runtime.trace_store.TraceRef` handles, so a grid of
        ``S × T`` cells pickles each trace once per worker pool instead of
        once per cell.  The ref hashes like the trace's content, so cache
        keys stay content-addressed.
        """
        from repro.cellular.trace import CellularTrace

        self.validate()
        trace_specs = {
            name: (register_trace(spec)
                   if isinstance(spec, CellularTrace) else spec)
            for name, spec in self.traces.items()}
        cells: List[SweepCell] = []
        jobs: List[SweepJob] = []
        seen_cells: set = set()
        for scheme in self.schemes:
            for trace_name, link_spec in trace_specs.items():
                for seed in self.seeds:
                    for overrides in self.param_grid:
                        # A duplicate coordinate would silently run (and be
                        # aggregated) twice — e.g. a scheme listed under two
                        # spellings, a repeated seed, or two identical
                        # param_grid entries.  Fail loudly instead.
                        key = (str(scheme).lower(), trace_name, seed,
                               tuple(sorted((str(k), repr(v))
                                            for k, v in overrides.items())))
                        if key in seen_cells:
                            raise ValueError(
                                f"duplicate sweep cell: scheme={scheme!r}, "
                                f"trace={trace_name!r}, seed={seed}, "
                                f"overrides={dict(overrides)!r} — check the "
                                f"schemes/seeds/param_grid axes for repeats")
                        seen_cells.add(key)
                        # The job normalises the label inside its kwargs so a
                        # mixed-case spelling hashes to the same cache key;
                        # the cell keeps the caller's spelling so grouped
                        # results stay keyed the way they were requested.
                        cells.append(SweepCell(
                            scheme=str(scheme), trace=trace_name,
                            seed=seed,
                            overrides=tuple(sorted(overrides.items()))))
                        jobs.append(self._make_job(
                            scheme, trace_name, link_spec, seed, overrides))
        return cells, jobs

    # ------------------------------------------------------------------ run
    def run_cells(self, executor: Optional[SweepExecutor] = None,
                  failures: Optional[str] = None
                  ) -> List[Tuple[SweepCell, Any]]:
        """Execute the grid; returns ``(cell, result)`` pairs in grid order.

        When ``REPRO_RUN_DIR`` is set, a JSON provenance manifest for the
        finished sweep is written there (see :mod:`repro.obs.manifest`).

        ``failures`` selects the policy for cells whose retry budget runs
        out under the executor's fault-tolerance knobs: ``"strict"`` raises
        (the default), ``"salvage"`` keeps the good cells and returns
        :class:`~repro.runtime.faults.JobFailure` sentinels in the failed
        slots (test with :func:`~repro.runtime.faults.is_failure`).  ``None``
        defers to the executor / ``REPRO_FAILURE_POLICY``.
        """
        executor = get_executor(executor)
        cells, jobs = self.expand()
        results = list(zip(cells, executor.run(jobs,
                                               failure_policy=failures)))
        from repro.obs.manifest import maybe_write_sweep_manifest
        maybe_write_sweep_manifest(self, cells, executor)
        return results

    def run(self, executor: Optional[SweepExecutor] = None,
            failures: Optional[str] = None) -> Dict[str, Dict[str, Any]]:
        """Execute and group as ``results[scheme][trace]``.

        Requires a single seed and a single override mapping (the common
        figure-sweep shape); use :meth:`run_cells` for richer grids.
        ``failures`` is the strict-vs-salvage policy knob (see
        :meth:`run_cells`).
        """
        if len(self.seeds) != 1 or len(self.param_grid) != 1:
            raise ValueError("SweepSpec.run() requires exactly one seed and "
                             "one param_grid entry; use run_cells() instead")
        grouped: Dict[str, Dict[str, Any]] = {}
        for cell, result in self.run_cells(executor, failures=failures):
            grouped.setdefault(cell.scheme, {})[cell.trace] = result
        return grouped
