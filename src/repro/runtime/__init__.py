"""Sweep runtime: parallel execution + deterministic result caching.

This subsystem turns the repository's figure sweeps into fleets of
independent jobs:

* :class:`~repro.runtime.spec.SweepSpec` — declarative schemes × traces ×
  seeds × overrides grid that expands into jobs.
* :class:`~repro.runtime.executor.SweepExecutor` — runs jobs serially or on
  a ``multiprocessing`` pool (``REPRO_JOBS`` / ``jobs=`` knob) and memoizes
  results in an on-disk content-addressed cache (``REPRO_CACHE_DIR`` /
  ``cache_dir=`` knob).
* :class:`~repro.runtime.cache.ResultCache` — the cache itself, keyed by
  :func:`~repro.runtime.cache.stable_hash` of (job function, kwargs,
  code-version salt).

The invariant the rest of the repo relies on: a sweep's metrics are
bit-for-bit identical whether executed serially, in parallel, or replayed
from the cache.
"""

from repro.runtime.cache import (CACHE_DIR_ENV, CODE_VERSION_SALT, ResultCache,
                                 effective_salt, stable_hash)
from repro.runtime.executor import (JOBS_ENV, ExecutorStats, SweepExecutor,
                                    SweepJob, get_executor,
                                    resolve_worker_count)
from repro.runtime.spec import (SweepCell, SweepSpec, strip_result, sweep_cell,
                                validate_schemes)

__all__ = [
    "CACHE_DIR_ENV",
    "CODE_VERSION_SALT",
    "JOBS_ENV",
    "ExecutorStats",
    "ResultCache",
    "SweepCell",
    "SweepExecutor",
    "SweepJob",
    "SweepSpec",
    "effective_salt",
    "get_executor",
    "resolve_worker_count",
    "stable_hash",
    "strip_result",
    "sweep_cell",
    "validate_schemes",
]
