"""Sweep runtime: parallel execution + deterministic result caching.

This subsystem turns the repository's figure sweeps into fleets of
independent jobs:

* :class:`~repro.runtime.spec.SweepSpec` — declarative schemes × traces ×
  seeds × overrides grid that expands into jobs.
* :class:`~repro.runtime.executor.SweepExecutor` — runs jobs serially or on
  a ``multiprocessing`` pool (``REPRO_JOBS`` / ``jobs=`` knob) and memoizes
  results in an on-disk content-addressed cache (``REPRO_CACHE_DIR`` /
  ``cache_dir=`` knob).
* :class:`~repro.runtime.cache.ResultCache` — the cache itself, keyed by
  :func:`~repro.runtime.cache.stable_hash` of (job function, kwargs,
  code-version salt).

* :mod:`~repro.runtime.trace_store` — a module-level store that ships each
  cellular trace to pool workers once (via the pool initializer) instead of
  pickling it into every job; jobs carry tiny
  :class:`~repro.runtime.trace_store.TraceRef` handles.

Used as a context manager, :class:`SweepExecutor` keeps one pool alive
across ``run()`` calls, so repeated sweeps skip the ~1 s worker spin-up.
Multi-seed sweeps add a statistical seed axis selected by ``seeds=``
arguments or the ``REPRO_SEEDS`` environment variable
(:func:`~repro.runtime.executor.resolve_seeds`).

The invariant the rest of the repo relies on: a sweep's metrics are
bit-for-bit identical whether executed serially, in parallel, on a reused
pool, or replayed from the cache.
"""

from repro.runtime.cache import (CACHE_DIR_ENV, CODE_VERSION_SALT, ResultCache,
                                 effective_salt, stable_hash)
from repro.runtime.executor import (BACKOFF_ENV, FAILURE_POLICY_ENV, JOBS_ENV,
                                    RETRIES_ENV, SEEDS_ENV, TIMEOUT_ENV,
                                    ExecutorStats, SweepExecutor, SweepJob,
                                    get_executor, resolve_failure_policy,
                                    resolve_job_retries, resolve_job_timeout,
                                    resolve_retry_backoff, resolve_seeds,
                                    resolve_worker_count)
from repro.runtime.faults import (FAULT_KINDS, FAULTS_ENV, FaultInjectionError,
                                  FaultInjector, FaultSpec, JobAttempt,
                                  JobFailure, JobFailureError, is_failure,
                                  resolve_fault_spec, retry_backoff)
from repro.runtime.journal import (JOURNAL_ENV, RunJournal,
                                   resolve_journal_dir, run_key_for)
from repro.runtime.spec import (SweepCell, SweepSpec, strip_result, sweep_cell,
                                validate_schemes)
from repro.runtime.trace_store import (TraceRef, clear_trace_store, get_trace,
                                       register_trace, resolve_link_spec)

__all__ = [
    "BACKOFF_ENV",
    "CACHE_DIR_ENV",
    "CODE_VERSION_SALT",
    "FAILURE_POLICY_ENV",
    "FAULTS_ENV",
    "FAULT_KINDS",
    "JOBS_ENV",
    "JOURNAL_ENV",
    "RETRIES_ENV",
    "SEEDS_ENV",
    "TIMEOUT_ENV",
    "ExecutorStats",
    "FaultInjectionError",
    "FaultInjector",
    "FaultSpec",
    "JobAttempt",
    "JobFailure",
    "JobFailureError",
    "ResultCache",
    "RunJournal",
    "SweepCell",
    "SweepExecutor",
    "SweepJob",
    "SweepSpec",
    "TraceRef",
    "clear_trace_store",
    "effective_salt",
    "get_executor",
    "get_trace",
    "is_failure",
    "register_trace",
    "resolve_failure_policy",
    "resolve_fault_spec",
    "resolve_job_retries",
    "resolve_job_timeout",
    "resolve_journal_dir",
    "resolve_link_spec",
    "resolve_retry_backoff",
    "resolve_seeds",
    "resolve_worker_count",
    "retry_backoff",
    "run_key_for",
    "stable_hash",
    "strip_result",
    "sweep_cell",
    "validate_schemes",
]
