"""Content-addressed on-disk cache for sweep cell results.

Every sweep cell (one scheme on one trace with one seed and one set of
parameter overrides) is identified by a *stable hash* of the job that
produces it: the fully-qualified name of the job function, a canonical
encoding of its keyword arguments, and a code-version salt.  Two processes
(or two sessions days apart) that submit the same cell therefore compute the
same key and share the cached value, and any change to the salt — or to the
arguments, including the full content of a trace — invalidates the entry.

Cache directory layout
----------------------
::

    <cache_dir>/
        ab/                       # first two hex chars of the key
            ab3f...9c.pkl         # pickled job result, written atomically

The value files are ordinary pickles of the job's return value (metric
dataclasses, numpy arrays, plain containers).  Writes go through a temporary
file in the same directory followed by :func:`os.replace`, so a crashed or
concurrent writer can never leave a torn entry; unreadable entries are
treated as misses and deleted lazily.

The salt defaults to :data:`CODE_VERSION_SALT` (bump it when a simulator
change intentionally alters results) and can be extended per-environment via
``REPRO_CACHE_SALT``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional, Tuple

import numpy as np

from repro.obs import metrics as obs_metrics

#: Bump whenever simulator semantics change in a way that alters metrics;
#: stale cache entries from older code versions then miss instead of lying.
#: v3: hot-path overhaul — closed-form SquareWaveRate.bits_between changes
#: utilisation denominators, and the Fig. 6/7/11/13 entry points became
#: cacheable sweep jobs.
CODE_VERSION_SALT = "repro-runtime-v3"

#: Environment variable appended to the salt (e.g. per-branch caches).
SALT_ENV = "REPRO_CACHE_SALT"

#: Environment variable naming the default cache directory; when unset the
#: cache is disabled unless a directory is passed explicitly.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def effective_salt(salt: Optional[str] = None) -> str:
    """The code-version salt plus any ``REPRO_CACHE_SALT`` extension."""
    base = CODE_VERSION_SALT if salt is None else salt
    extra = os.environ.get(SALT_ENV, "")
    return f"{base}:{extra}" if extra else base


# ---------------------------------------------------------------------------
# Stable hashing
# ---------------------------------------------------------------------------
def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-encodable structure with a stable encoding.

    Floats are encoded via :func:`repr` (shortest round-trippable form), so
    bit-identical inputs hash identically and nothing is lost to formatting.
    Dataclasses and plain objects are encoded as (class name, field dict);
    numpy arrays as (dtype, shape, sha256 of the raw bytes).
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return ["f", repr(obj)]
    if isinstance(obj, (bytes, bytearray)):
        return ["b", hashlib.sha256(bytes(obj)).hexdigest()]
    if isinstance(obj, (list, tuple)):
        return ["l", [_canonical(item) for item in obj]]
    if isinstance(obj, (set, frozenset)):
        return ["s", sorted(json.dumps(_canonical(i), sort_keys=True) for i in obj)]
    if isinstance(obj, dict):
        return ["d", sorted((str(k), _canonical(v)) for k, v in obj.items())]
    if isinstance(obj, np.ndarray):
        return ["nd", str(obj.dtype), list(obj.shape),
                hashlib.sha256(np.ascontiguousarray(obj).tobytes()).hexdigest()]
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return _canonical(obj.item())
    # An explicit fingerprint wins over structural encoding (including for
    # dataclasses), so types like TraceRef can exclude cosmetic fields.
    fingerprint = getattr(obj, "cache_fingerprint", None)
    if callable(fingerprint):
        return ["fp", _type_name(obj), _canonical(fingerprint())]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)}
        return ["dc", _type_name(obj), _canonical(fields)]
    if hasattr(obj, "__dict__"):
        return ["o", _type_name(obj), _canonical(vars(obj))]
    return ["r", _type_name(obj), repr(obj)]


def _type_name(obj: Any) -> str:
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def stable_hash(obj: Any) -> str:
    """A sha256 hex digest of ``obj``'s canonical encoding.

    Stable across processes and Python invocations (no reliance on
    ``hash()``/``id()``), which is what makes the cache content-addressed.
    """
    encoded = json.dumps(_canonical(obj), sort_keys=True,
                         separators=(",", ":")).encode()
    return hashlib.sha256(encoded).hexdigest()


# ---------------------------------------------------------------------------
# On-disk cache
# ---------------------------------------------------------------------------
class ResultCache:
    """A content-addressed pickle store under ``root``.

    Values are looked up and stored by the hex keys produced by
    :func:`stable_hash`; the cache never inspects the values themselves.
    """

    def __init__(self, root: os.PathLike | str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        # Telemetry handles resolve at construction time: no-op singletons
        # when REPRO_TELEMETRY is off (see repro.obs.metrics).
        self._obs_hits = obs_metrics.counter("cache.hits")
        self._obs_misses = obs_metrics.counter("cache.misses")
        self._obs_stores = obs_metrics.counter("cache.writes")
        self._obs_corrupt = obs_metrics.counter("cache.corrupt")

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; unreadable entries count as misses."""
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            self._obs_misses.inc()
            return False, None
        except Exception:
            # A torn, truncated or garbage entry must behave as a miss (and
            # be deleted so the recomputed value can be rewritten) — never
            # crash a sweep.  Unpickling corrupt bytes can raise nearly
            # anything (UnpicklingError, EOFError, ImportError, IndexError,
            # ValueError, ...), so the net is deliberately wide; put() going
            # through a tempfile + rename means entries are never *written*
            # torn, this guards against external truncation/corruption.
            path.unlink(missing_ok=True)
            self.misses += 1
            self.corrupt += 1
            self._obs_misses.inc()
            self._obs_corrupt.inc()
            return False, None
        self.hits += 1
        self._obs_hits.inc()
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically (tempfile + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        self._obs_stores.inc()

    def contains(self, key: str) -> bool:
        return self._path(key).exists()

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        path = self._path(key)
        existed = path.exists()
        path.unlink(missing_ok=True)
        return existed

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*/*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))
