"""Content-addressed on-disk cache for sweep cell results.

Every sweep cell (one scheme on one trace with one seed and one set of
parameter overrides) is identified by a *stable hash* of the job that
produces it: the fully-qualified name of the job function, a canonical
encoding of its keyword arguments, and a code-version salt.  Two processes
(or two sessions days apart) that submit the same cell therefore compute the
same key and share the cached value, and any change to the salt — or to the
arguments, including the full content of a trace — invalidates the entry.

Cache directory layout
----------------------
::

    <cache_dir>/
        ab/                       # first two hex chars of the key
            ab3f...9c.pkl         # pickled job result, written atomically

The value files are ordinary pickles of the job's return value (metric
dataclasses, numpy arrays, plain containers).  Writes go through a temporary
file in the same directory followed by :func:`os.replace`, so a crashed or
concurrent writer can never leave a torn entry; unreadable entries are
treated as misses and deleted lazily.

The salt defaults to :data:`CODE_VERSION_SALT` (bump it when a simulator
change intentionally alters results) and can be extended per-environment via
``REPRO_CACHE_SALT``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import sys
import tempfile
from pathlib import Path
from typing import Any, Optional, Tuple

import numpy as np

from repro.obs import metrics as obs_metrics

#: Bump whenever simulator semantics change in a way that alters metrics;
#: stale cache entries from older code versions then miss instead of lying.
#: v3: hot-path overhaul — closed-form SquareWaveRate.bits_between changes
#: utilisation denominators, and the Fig. 6/7/11/13 entry points became
#: cacheable sweep jobs.
CODE_VERSION_SALT = "repro-runtime-v3"

#: Environment variable appended to the salt (e.g. per-branch caches).
SALT_ENV = "REPRO_CACHE_SALT"

#: Environment variable naming the default cache directory; when unset the
#: cache is disabled unless a directory is passed explicitly.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable capping the cache's on-disk size in megabytes.
#: When the cap is exceeded after a write, the oldest entries by mtime are
#: evicted (mtime-LRU: entries are only ever *written*, never touched on
#: read, so mtime order is write order).  Unset, empty or ``0`` = unbounded.
CACHE_MAX_MB_ENV = "REPRO_CACHE_MAX_MB"


def effective_salt(salt: Optional[str] = None) -> str:
    """The code-version salt plus any ``REPRO_CACHE_SALT`` extension."""
    base = CODE_VERSION_SALT if salt is None else salt
    extra = os.environ.get(SALT_ENV, "")
    return f"{base}:{extra}" if extra else base


# ---------------------------------------------------------------------------
# Stable hashing
# ---------------------------------------------------------------------------
def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-encodable structure with a stable encoding.

    Floats are encoded via :func:`repr` (shortest round-trippable form), so
    bit-identical inputs hash identically and nothing is lost to formatting.
    Dataclasses and plain objects are encoded as (class name, field dict);
    numpy arrays as (dtype, shape, sha256 of the raw bytes).
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return ["f", repr(obj)]
    if isinstance(obj, (bytes, bytearray)):
        return ["b", hashlib.sha256(bytes(obj)).hexdigest()]
    if isinstance(obj, (list, tuple)):
        return ["l", [_canonical(item) for item in obj]]
    if isinstance(obj, (set, frozenset)):
        return ["s", sorted(json.dumps(_canonical(i), sort_keys=True) for i in obj)]
    if isinstance(obj, dict):
        return ["d", sorted((str(k), _canonical(v)) for k, v in obj.items())]
    if isinstance(obj, np.ndarray):
        return ["nd", str(obj.dtype), list(obj.shape),
                hashlib.sha256(np.ascontiguousarray(obj).tobytes()).hexdigest()]
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return _canonical(obj.item())
    # An explicit fingerprint wins over structural encoding (including for
    # dataclasses), so types like TraceRef can exclude cosmetic fields.
    fingerprint = getattr(obj, "cache_fingerprint", None)
    if callable(fingerprint):
        return ["fp", _type_name(obj), _canonical(fingerprint())]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)}
        return ["dc", _type_name(obj), _canonical(fields)]
    if hasattr(obj, "__dict__"):
        return ["o", _type_name(obj), _canonical(vars(obj))]
    return ["r", _type_name(obj), repr(obj)]


def _type_name(obj: Any) -> str:
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def stable_hash(obj: Any) -> str:
    """A sha256 hex digest of ``obj``'s canonical encoding.

    Stable across processes and Python invocations (no reliance on
    ``hash()``/``id()``), which is what makes the cache content-addressed.
    """
    encoded = json.dumps(_canonical(obj), sort_keys=True,
                         separators=(",", ":")).encode()
    return hashlib.sha256(encoded).hexdigest()


# ---------------------------------------------------------------------------
# On-disk cache
# ---------------------------------------------------------------------------
class ResultCache:
    """A content-addressed pickle store under ``root``.

    Values are looked up and stored by the hex keys produced by
    :func:`stable_hash`; the cache never inspects the values themselves.
    """

    def __init__(self, root: os.PathLike | str,
                 max_mb: Optional[float] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.evictions = 0
        self.write_errors = 0
        #: Optional FaultInjector (set by the executor when REPRO_FAULTS
        #: includes cache_write_fail) — put() consults it to inject OSErrors.
        self.fault_injector = None
        # Size cap (REPRO_CACHE_MAX_MB, read once at construction like the
        # other runtime knobs); None/0 = unbounded.
        if max_mb is None:
            raw = os.environ.get(CACHE_MAX_MB_ENV, "").strip()
            max_mb = float(raw) if raw else 0.0
        self._max_bytes = int(max_mb * 1024 * 1024) if max_mb > 0 else None
        # Sweeping stats the whole tree on every put would make writes O(n);
        # instead a sweep runs on the first put and then once per
        # ``_sweep_interval`` bytes written by this process.  The cap is
        # therefore enforced to within one interval, which is the usual
        # contract for an LRU disk cache shared by concurrent writers.  The
        # interval never exceeds the cap itself, else a sub-megabyte cap
        # would wait for a megabyte of writes before its first eviction.
        self._sweep_interval = (
            max(self._max_bytes // 8, min(1 << 20, self._max_bytes))
            if self._max_bytes is not None else 0)
        self._bytes_since_sweep: Optional[int] = None  # None = sweep on first put
        # Telemetry handles resolve at construction time: no-op singletons
        # when REPRO_TELEMETRY is off (see repro.obs.metrics).
        self._obs_hits = obs_metrics.counter("cache.hits")
        self._obs_misses = obs_metrics.counter("cache.misses")
        self._obs_stores = obs_metrics.counter("cache.writes")
        self._obs_corrupt = obs_metrics.counter("cache.corrupt")
        self._obs_evictions = obs_metrics.counter("cache.evictions")
        self._obs_write_errors = obs_metrics.counter("cache.write_errors")

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; unreadable entries count as misses."""
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            self._obs_misses.inc()
            return False, None
        except Exception:
            # A torn, truncated or garbage entry must behave as a miss (and
            # be deleted so the recomputed value can be rewritten) — never
            # crash a sweep.  Unpickling corrupt bytes can raise nearly
            # anything (UnpicklingError, EOFError, ImportError, IndexError,
            # ValueError, ...), so the net is deliberately wide; put() going
            # through a tempfile + rename means entries are never *written*
            # torn, this guards against external truncation/corruption.
            path.unlink(missing_ok=True)
            self.misses += 1
            self.corrupt += 1
            self._obs_misses.inc()
            self._obs_corrupt.inc()
            return False, None
        self.hits += 1
        self._obs_hits.inc()
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically (tempfile + rename).

        A failed write (disk full, ``EACCES``, read-only directory) degrades
        to a warning + future miss — a sweep must never lose its computed
        results to cache-tier storage trouble.  Failures are counted in
        ``write_errors`` (surfaced as ``cache_write_errors`` in
        :class:`~repro.runtime.executor.ExecutorStats`).
        """
        try:
            if (self.fault_injector is not None
                    and self.fault_injector.should("cache_write_fail",
                                                   key, 1)):
                raise OSError("injected cache_write_fail")
            path = self._path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as exc:
            self.write_errors += 1
            self._obs_write_errors.inc()
            print(f"warning: result cache write failed for {key[:12]}… "
                  f"({exc}); continuing without caching this cell",
                  file=sys.stderr)
            return
        self.stores += 1
        self._obs_stores.inc()
        if self._max_bytes is not None:
            written = self._bytes_since_sweep
            if written is None:
                self._sweep()
            else:
                try:
                    written += path.stat().st_size
                except OSError:
                    written += 0
                if written >= self._sweep_interval:
                    self._sweep()
                else:
                    self._bytes_since_sweep = written

    def _sweep(self) -> None:
        """Evict oldest-mtime entries until the tree fits ``_max_bytes``.

        The entry just written carries the newest mtime, so it is evicted
        last; a concurrently-vanished file (another worker's eviction) is
        simply skipped.
        """
        entries = []
        total = 0
        for path in self.root.glob("*/*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total > self._max_bytes:
            entries.sort(key=lambda item: item[0])
            for _, size, path in entries:
                path.unlink(missing_ok=True)
                self.evictions += 1
                self._obs_evictions.inc()
                total -= size
                if total <= self._max_bytes:
                    break
        self._bytes_since_sweep = 0

    def contains(self, key: str) -> bool:
        return self._path(key).exists()

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        path = self._path(key)
        existed = path.exists()
        path.unlink(missing_ok=True)
        return existed

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*/*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))
