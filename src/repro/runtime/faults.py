"""Deterministic fault injection for the sweep runtime.

Chaos testing a sweep only pays off when a chaos run can be *replayed*: the
same faults must hit the same cells on every run, regardless of worker count
or scheduling, so a failure found under injection is as reproducible (and as
shrinkable) as a fuzz counterexample.  This module gets that property the
same way the result cache gets content addressing — every fault decision is
a pure function of ``(spec seed, fault kind, job cache key, attempt
number)``, hashed through SHA-256 into a uniform draw.  No process-local RNG
state, no wall clock, no worker identity.

Fault spec
----------
``REPRO_FAULTS`` holds a comma-separated ``kind:probability`` list plus an
optional ``seed:N`` token::

    REPRO_FAULTS="worker_crash:0.02,job_hang:0.01,cache_write_fail:0.05,seed:7"

Supported kinds:

``worker_crash``
    The worker process running the attempt dies (``os._exit`` in pool
    workers; synthesized in-process for serial runs).  Exercises the
    executor's pid-liveness detection, pool respawn and resubmission path.
``job_hang``
    The attempt wedges forever (the worker sleeps until killed; synthesized
    as an immediate timeout for serial runs).  Requires ``REPRO_JOB_TIMEOUT``
    — an injected hang with no timeout would hang the sweep, so resolving
    such a spec fails fast.
``job_error``
    The attempt raises :class:`FaultInjectionError` before the job body runs.
``cache_write_fail``
    The result cache's store for this key raises ``OSError`` (exercising the
    degrade-to-warning-and-miss path in :meth:`ResultCache.put`).

Faults fire *before* the job body executes, so a faulted attempt never
leaves partial simulator state or metrics behind — which is what makes the
serial and parallel failure records byte-identical
(``tests/test_runtime_faults.py`` pins this).

Failure records
---------------
After retries are exhausted the executor returns (or raises, per policy) a
:class:`JobFailure`: a frozen, picklable record of the job key, label and
every attempt (outcome, error text, traceback, deterministic backoff).  Wall
-clock timings deliberately live elsewhere (the executor's ``job_records`` /
run manifests), never in the failure record, so two chaos runs with the same
seed produce byte-identical failures.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Environment variable holding the fault spec (unset/empty = no injection).
FAULTS_ENV = "REPRO_FAULTS"

#: Fault kinds the injector understands (anything else is a spec error).
FAULT_KINDS = ("worker_crash", "job_hang", "job_error", "cache_write_fail")

#: Synthesized message for crashed attempts — shared by the serial
#: (synthesized) and parallel (pid-death-detected) paths so their failure
#: records match byte for byte.
CRASH_MESSAGE = "worker process died during job attempt"

#: Exit status used by injected worker crashes (visible in pool diagnostics).
CRASH_EXIT_CODE = 3


class FaultInjectionError(RuntimeError):
    """The error raised by an injected ``job_error`` fault."""


@dataclass(frozen=True)
class FaultSpec:
    """A parsed, validated fault spec: sorted (kind, probability) + seed.

    Frozen and picklable so the executor can ship it to pool workers inside
    each attempt payload; hashable content (via :meth:`cache_fingerprint`)
    so it can participate in stable hashing if ever embedded in a key.
    """

    rates: Tuple[Tuple[str, float], ...] = ()
    seed: int = 0

    @property
    def active(self) -> bool:
        return any(rate > 0.0 for _, rate in self.rates)

    def rate(self, kind: str) -> float:
        for name, rate in self.rates:
            if name == kind:
                return rate
        return 0.0

    def cache_fingerprint(self) -> Any:
        return [list(pair) for pair in self.rates] + [self.seed]

    def describe(self) -> str:
        parts = [f"{kind}:{rate:g}" for kind, rate in self.rates]
        parts.append(f"seed:{self.seed}")
        return ",".join(parts)

    @classmethod
    def parse(cls, raw: str) -> "FaultSpec":
        """Parse ``kind:prob,...[,seed:N]``; raise ``ValueError`` loudly."""
        rates: Dict[str, float] = {}
        seed = 0
        for token in raw.split(","):
            token = token.strip()
            if not token:
                continue
            name, sep, value = token.partition(":")
            name = name.strip().lower()
            if not sep:
                raise ValueError(
                    f"{FAULTS_ENV} token {token!r} must be kind:probability "
                    f"(or seed:N)")
            if name == "seed":
                try:
                    seed = int(value)
                except ValueError as exc:
                    raise ValueError(
                        f"{FAULTS_ENV} seed must be an integer, got "
                        f"{value!r}") from exc
                continue
            if name not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {name!r} in {FAULTS_ENV}; known "
                    f"kinds: {sorted(FAULT_KINDS)}")
            try:
                rate = float(value)
            except ValueError as exc:
                raise ValueError(
                    f"{FAULTS_ENV} probability for {name!r} must be a float, "
                    f"got {value!r}") from exc
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{FAULTS_ENV} probability for {name!r} must be in "
                    f"[0, 1], got {rate}")
            if name in rates:
                raise ValueError(
                    f"duplicate fault kind {name!r} in {FAULTS_ENV}")
            rates[name] = rate
        return cls(rates=tuple(sorted(rates.items())), seed=seed)


def resolve_fault_spec(faults: Any = None) -> Optional[FaultSpec]:
    """Resolve a fault spec from the API arg or ``REPRO_FAULTS``.

    Accepts a ready :class:`FaultSpec`, a spec string, ``False`` (force off),
    or ``None`` (defer to the environment).  Returns ``None`` when no fault
    is active so callers can branch on a single test.
    """
    if faults is False:
        return None
    if isinstance(faults, FaultSpec):
        return faults if faults.active else None
    if isinstance(faults, str):
        spec = FaultSpec.parse(faults)
        return spec if spec.active else None
    if faults is not None:
        raise TypeError(f"faults must be a FaultSpec, spec string, False or "
                        f"None, got {type(faults).__name__}")
    raw = os.environ.get(FAULTS_ENV, "").strip()
    if not raw:
        return None
    spec = FaultSpec.parse(raw)
    return spec if spec.active else None


def _uniform_draw(seed: int, kind: str, job_key: str, attempt: int) -> float:
    """A deterministic uniform draw in [0, 1) for one fault decision.

    Independent across (kind, job_key, attempt) but identical across
    processes, platforms and reruns — SHA-256 of the coordinate string, with
    the top 8 bytes read as an unsigned integer.
    """
    payload = f"{seed}|{kind}|{job_key}|{attempt}".encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclass(frozen=True)
class FaultInjector:
    """Stateless fault oracle over a :class:`FaultSpec`.

    Both the executor (parent side, for predictions and backoff) and the
    pool workers (attempt side, for actually firing faults) hold one; all
    decisions agree because they are pure functions of the coordinates.
    """

    spec: FaultSpec

    def should(self, kind: str, job_key: str, attempt: int) -> bool:
        rate = self.spec.rate(kind)
        if rate <= 0.0:
            return False
        return _uniform_draw(self.spec.seed, kind, job_key, attempt) < rate

    def fire_process_faults(self, job_key: str, attempt: int) -> None:
        """Fire process-level faults for this attempt (pool workers only).

        ``worker_crash`` hard-exits the process (bypassing ``finally``
        blocks, like a real segfault); ``job_hang`` wedges until the parent's
        timeout kills this worker.  Must be called before the job body so a
        faulted attempt leaves no partial state.  ``job_error`` is *not*
        fired here — it belongs inside the guarded attempt so serial and
        parallel runs capture byte-identical tracebacks.
        """
        if self.should("worker_crash", job_key, attempt):
            os._exit(CRASH_EXIT_CODE)
        if self.should("job_hang", job_key, attempt):
            import time
            while True:  # parent kills this pid at the job deadline
                time.sleep(60.0)

    def maybe_error(self, job_key: str, attempt: int) -> None:
        if self.should("job_error", job_key, attempt):
            raise FaultInjectionError(
                f"injected job_error (attempt {attempt})")


def retry_backoff(job_key: str, attempt: int, base: float,
                  seed: int = 0, cap: float = 30.0) -> float:
    """Deterministic exponential backoff with jitter, in seconds.

    ``attempt`` is the 1-based attempt that just failed; the returned delay
    precedes attempt ``attempt + 1``.  Exponential base doubling, capped,
    with a seeded jitter factor in [0.5, 1.0) drawn from the same hash
    family as the fault decisions — so the whole retry schedule is part of
    the reproducible record.
    """
    if base <= 0.0:
        return 0.0
    window = min(base * 2.0 ** (attempt - 1), cap)
    jitter = 0.5 + 0.5 * _uniform_draw(seed, "backoff", job_key, attempt)
    return window * jitter


# ---------------------------------------------------------------------------
# Failure records
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class JobAttempt:
    """One attempt inside a :class:`JobFailure` history.

    ``outcome`` is ``"error"``, ``"timeout"`` or ``"worker_crash"``;
    ``backoff_seconds`` is the deterministic delay scheduled *after* this
    attempt (0 for the final one).  No wall-clock fields — see the module
    docstring's byte-identity contract.
    """

    attempt: int
    outcome: str
    error: str
    error_type: str = ""
    traceback: str = ""
    injected: bool = False
    backoff_seconds: float = 0.0

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "attempt": self.attempt,
            "outcome": self.outcome,
            "error": self.error,
            "error_type": self.error_type,
            "traceback": self.traceback,
            "injected": self.injected,
            "backoff_seconds": self.backoff_seconds,
        }


@dataclass(frozen=True)
class JobFailure:
    """Picklable in-slot sentinel for a job whose retries were exhausted.

    Under the executor's ``salvage`` policy a sweep returns these in place
    of the failed cells' results, so 199 good cells survive one bad one;
    under ``strict`` the original exception (or a
    :class:`JobFailureError` wrapping this record) is raised instead.
    """

    key: str
    label: str
    attempts: Tuple[JobAttempt, ...] = ()

    @property
    def last(self) -> JobAttempt:
        return self.attempts[-1]

    @property
    def outcome(self) -> str:
        return self.last.outcome

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "label": self.label,
            "attempts": [a.to_jsonable() for a in self.attempts],
        }

    def describe(self) -> str:
        last = self.last
        return (f"job {self.label or self.key[:12]} failed after "
                f"{len(self.attempts)} attempt(s): [{last.outcome}] "
                f"{last.error}")


class JobFailureError(RuntimeError):
    """Raised by the ``strict`` policy when no original exception survives
    (crashes and timeouts have nothing to re-raise)."""

    def __init__(self, failure: JobFailure):
        super().__init__(failure.describe())
        self.failure = failure


def is_failure(value: Any) -> bool:
    """True when a sweep slot holds a :class:`JobFailure` sentinel."""
    return isinstance(value, JobFailure)


def crash_attempt(attempt: int, injected: bool,
                  backoff_seconds: float = 0.0) -> JobAttempt:
    """The canonical record for a crashed attempt (serial ≡ parallel)."""
    return JobAttempt(attempt=attempt, outcome="worker_crash",
                      error=CRASH_MESSAGE, error_type="WorkerCrash",
                      injected=injected, backoff_seconds=backoff_seconds)


def timeout_attempt(attempt: int, timeout: float, injected: bool,
                    backoff_seconds: float = 0.0) -> JobAttempt:
    """The canonical record for a timed-out attempt (serial ≡ parallel)."""
    return JobAttempt(attempt=attempt, outcome="timeout",
                      error=f"job attempt exceeded {timeout!r}s wall-clock "
                            f"timeout", error_type="JobTimeout",
                      injected=injected, backoff_seconds=backoff_seconds)
