"""VCP — Variable-structure Congestion control Protocol (Xia et al., 2005).

VCP routers measure a load factor over a fixed interval,

    ρ = (λ + κ_q · q / t_ρ) / (γ · C),

quantise it into three levels — low load, high load, overload — and stamp the
level into two bits of the packet header (the worst level along the path
wins).  Senders react once per RTT: multiplicative increase (×1.0625) on low
load, additive increase (+1) on high load and multiplicative decrease (×0.875)
on overload.

The ABC paper (§7, Appendix D) points out that this coarse, fixed-step
feedback is slow on time-varying links (doubling the rate takes ~12 RTTs,
versus 1 RTT for ABC) — behaviour this implementation preserves.  Parameters
follow the VCP paper: α = 1.0, β = 0.875, ξ = 0.0625, κ = 0.25, γ = 0.98.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import CongestionControl
from repro.simulator.packet import MTU, AckFeedback, Packet
from repro.simulator.qdisc import Qdisc

#: Load-factor region codes carried in the two ECN-like bits.
LOW_LOAD, HIGH_LOAD, OVERLOAD = 1, 2, 3

VCP_XI = 0.0625       # MI gain
VCP_ALPHA = 1.0       # AI step (packets per RTT)
VCP_BETA = 0.875      # MD factor
VCP_KAPPA = 0.25      # queue weighting in the load factor
VCP_GAMMA = 0.98      # target utilisation
VCP_INTERVAL = 0.2    # load-factor measurement interval t_rho (200 ms)


class VCPRouterQdisc(Qdisc):
    """VCP router: periodic load-factor measurement and 2-bit marking."""

    name = "vcp"

    def __init__(self, buffer_packets: int = 250, interval: float = VCP_INTERVAL,
                 kappa: float = VCP_KAPPA, gamma: float = VCP_GAMMA):
        super().__init__(buffer_packets=buffer_packets)
        self.interval = interval
        self.kappa = kappa
        self.gamma = gamma
        self._interval_start: Optional[float] = None
        self._input_bytes = 0
        self.load_factor = 0.0
        self.region = LOW_LOAD

    def _capacity_bps(self, now: float) -> float:
        if self.link is None:
            return 0.0
        return self.link.capacity_bps(now)

    def _maybe_update(self, now: float) -> None:
        if self._interval_start is None:
            self._interval_start = now
            return
        elapsed = now - self._interval_start
        if elapsed < self.interval:
            return
        capacity = self._capacity_bps(now)
        if capacity > 0:
            arrival_bps = self._input_bytes * 8.0 / elapsed
            queue_bps = self.kappa * self.backlog_bytes * 8.0 / elapsed
            self.load_factor = (arrival_bps + queue_bps) / (self.gamma * capacity)
        else:
            self.load_factor = float("inf")
        if self.load_factor < 0.8:
            self.region = LOW_LOAD
        elif self.load_factor < 1.0:
            self.region = HIGH_LOAD
        else:
            self.region = OVERLOAD
        self._interval_start = now
        self._input_bytes = 0

    def enqueue(self, packet: Packet, now: float) -> bool:
        if self.backlog_packets >= self.buffer_packets:
            self.dropped_packets += 1
            return False
        self._maybe_update(now)
        self._input_bytes += packet.size
        if "vcp_region" in packet.meta:
            packet.meta["vcp_region"] = max(int(packet.meta["vcp_region"]), self.region)
        self._push(packet, now)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        self._maybe_update(now)
        return self._pop(now)


class VCPSender(CongestionControl):
    """VCP sender: MI / AI / MD chosen by the echoed load-factor region."""

    name = "vcp"

    def __init__(self, mss: int = MTU, initial_cwnd: float = 2.0,
                 xi: float = VCP_XI, alpha: float = VCP_ALPHA,
                 beta: float = VCP_BETA):
        super().__init__(mss=mss, initial_cwnd=initial_cwnd)
        self.xi = xi
        self.alpha = alpha
        self.beta = beta
        self._srtt = 0.1
        self._last_md_time = float("-inf")

    def packet_meta(self, now: float) -> dict:
        return {"vcp_region": LOW_LOAD}

    def on_ack(self, feedback: AckFeedback) -> None:
        if feedback.rtt is not None:
            self._srtt = 0.875 * self._srtt + 0.125 * feedback.rtt
        region = int(feedback.meta.get("vcp_region", LOW_LOAD))
        acked_packets = feedback.bytes_acked / self.mss
        fraction_of_window = acked_packets / max(self._cwnd, 1.0)
        if region == OVERLOAD:
            # MD at most once per RTT, then freeze until fresh feedback.
            if feedback.now - self._last_md_time > self._srtt:
                self._cwnd = max(self._cwnd * self.beta, self.min_cwnd())
                self._last_md_time = feedback.now
        elif region == HIGH_LOAD:
            # AI: +alpha packets per RTT, spread across the window's ACKs.
            self._cwnd += self.alpha * fraction_of_window
        else:
            # MI: grow by a factor (1 + xi) per RTT, spread across ACKs.
            self._cwnd += self.xi * acked_packets
        self._clamp()

    def on_loss(self, now: float) -> None:
        self._cwnd = max(self._cwnd * self.beta, self.min_cwnd())

    def on_timeout(self, now: float) -> None:
        self._cwnd = self.min_cwnd()
