"""Explicit congestion control baselines: XCP, XCPw, RCP and VCP.

These are the schemes ABC is compared against in §6.3 and Appendix D.  Each
consists of a router qdisc that computes multi-bit feedback and a sender that
obeys it; the feedback travels in ``packet.meta`` — precisely the extra header
state the paper points out makes these protocols hard to deploy, and that ABC
replaces with a single re-purposed ECN bit.
"""

from repro.explicit.rcp import RCPRouterQdisc, RCPSender
from repro.explicit.vcp import VCPRouterQdisc, VCPSender
from repro.explicit.xcp import XCPRouterQdisc, XCPSender

__all__ = [
    "XCPRouterQdisc",
    "XCPSender",
    "RCPRouterQdisc",
    "RCPSender",
    "VCPRouterQdisc",
    "VCPSender",
]
