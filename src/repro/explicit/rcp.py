"""RCP (Rate Control Protocol, Dukkipati et al.), simplified single-rate form.

An RCP router advertises one rate ``R`` to every flow traversing it.  The rate
is updated once per control interval ``T`` (≈ the average RTT ``d``):

    R ← R · [ 1 + (T/d) · ( α·(C − y) − β·q/d ) / C ]

where ``y`` is the measured input rate and ``q`` the queue size.  Senders set
their sending rate to the smallest advertised ``R`` along the path.

Because RCP is *rate* based, it reacts a full control interval (plus the time
to drain queues) after a capacity drop and over-corrects afterwards, which is
the sluggishness Fig. 17b shows and why ABC achieves ~20 % more utilisation on
cellular traces (Appendix D).  The ABC paper uses α = 0.5, β = 0.25.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.cc.base import CongestionControl
from repro.simulator.estimators import WindowedRateEstimator
from repro.simulator.packet import MTU, AckFeedback, Packet
from repro.simulator.qdisc import Qdisc

RCP_ALPHA = 0.5
RCP_BETA = 0.25


class RCPRouterQdisc(Qdisc):
    """RCP router: periodic advertised-rate computation."""

    name = "rcp"

    def __init__(self, buffer_packets: int = 250, alpha: float = RCP_ALPHA,
                 beta: float = RCP_BETA, default_rtt: float = 0.1,
                 initial_rate_bps: Optional[float] = None):
        super().__init__(buffer_packets=buffer_packets)
        self.alpha = alpha
        self.beta = beta
        self.default_rtt = default_rtt
        self.rate_bps = initial_rate_bps if initial_rate_bps is not None else 1e6
        self._interval_start: Optional[float] = None
        self._input_bytes = 0
        self._sum_rtt_weighted = 0.0
        self.last_avg_rtt = default_rtt

    def _capacity_bps(self, now: float) -> float:
        if self.link is None:
            return 0.0
        return self.link.capacity_bps(now)

    def _maybe_update_rate(self, now: float) -> None:
        if self._interval_start is None:
            self._interval_start = now
            return
        interval = max(self.last_avg_rtt, 0.01)
        elapsed = now - self._interval_start
        if elapsed < interval:
            return
        capacity = self._capacity_bps(now)
        if capacity <= 0:
            self._interval_start = now
            self._input_bytes = 0
            self._sum_rtt_weighted = 0.0
            return
        input_rate = self._input_bytes * 8.0 / elapsed
        avg_rtt = (self._sum_rtt_weighted / self._input_bytes
                   if self._input_bytes > 0 else self.default_rtt)
        avg_rtt = max(avg_rtt, 1e-3)
        self.last_avg_rtt = avg_rtt
        queue_bits = self.backlog_bytes * 8.0
        adjustment = (self.alpha * (capacity - input_rate)
                      - self.beta * queue_bits / avg_rtt)
        factor = 1.0 + (elapsed / avg_rtt) * adjustment / capacity
        # Keep the advertised rate within sane bounds: never below a probing
        # floor (so an outage cannot pin the rate at zero forever) and never
        # above twice the current capacity estimate.
        ceiling = max(2.0 * capacity, 2e5)
        self.rate_bps = min(max(self.rate_bps * factor, 1e5), ceiling)
        self._interval_start = now
        self._input_bytes = 0
        self._sum_rtt_weighted = 0.0

    def enqueue(self, packet: Packet, now: float) -> bool:
        if self.backlog_packets >= self.buffer_packets:
            self.dropped_packets += 1
            return False
        self._maybe_update_rate(now)
        rtt = float(packet.meta.get("rcp_rtt", self.default_rtt))
        self._input_bytes += packet.size
        self._sum_rtt_weighted += rtt * packet.size
        if "rcp_rate_bps" in packet.meta:
            packet.meta["rcp_rate_bps"] = min(
                float(packet.meta["rcp_rate_bps"]), self.rate_bps)
        self._push(packet, now)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        self._maybe_update_rate(now)
        return self._pop(now)


class RCPSender(CongestionControl):
    """Rate-based sender that paces at the advertised RCP rate."""

    name = "rcp"
    needs_pacing = True

    def __init__(self, mss: int = MTU, initial_rate_bps: float = 1e6):
        super().__init__(mss=mss, initial_cwnd=4.0)
        self.rate_bps = initial_rate_bps
        self._srtt = 0.1

    def packet_meta(self, now: float) -> dict:
        return {
            "rcp_rtt": self._srtt,
            "rcp_rate_bps": math.inf,
        }

    def pacing_rate(self) -> float:
        return self.rate_bps

    def cwnd(self) -> float:
        # Cap in-flight data at twice the rate-delay product so a stale rate
        # cannot keep flooding a link whose capacity collapsed.
        return max(2.0 * self.rate_bps * self._srtt / (self.mss * 8.0), 4.0)

    def on_ack(self, feedback: AckFeedback) -> None:
        if feedback.rtt is not None:
            self._srtt = 0.875 * self._srtt + 0.125 * feedback.rtt
        advertised = feedback.meta.get("rcp_rate_bps")
        if advertised is not None and math.isfinite(advertised):
            self.rate_bps = max(float(advertised), 1e4)

    def on_loss(self, now: float) -> None:
        pass

    def on_timeout(self, now: float) -> None:
        self.rate_bps = max(self.rate_bps / 2.0, 1e4)
